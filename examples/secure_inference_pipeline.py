#!/usr/bin/env python
"""Scenario: confidential multi-GPU ML inference.

The paper's motivating deployment is mission-critical / cloud GPU
computing inside TEEs.  This example models a confidential inference
pipeline built with the public :class:`~repro.workloads.TraceBuilder` API:

1. **Ingest** — encrypted activations stream from host (CPU) memory to
   every GPU over PCIe (pinned pages, direct block access);
2. **Layer compute** — each GPU applies its layer shard with moderate
   local traffic;
3. **All-reduce exchange** — GPUs exchange partial results ring-style in
   bursts, the inter-GPU phase the metadata batching targets;
4. **Collect** — results are written back toward the host shard.

It then compares the conventional per-message protocol (Private) against
the paper's full proposal (Dynamic + batching), reporting latency overhead
and interconnect bytes — the two costs a deployment engineer would budget.
"""

from __future__ import annotations

from repro import MultiGpuSystem, scheme_config
from repro.memory.address_space import Placement
from repro.workloads.builder import TraceBuilder


def build_inference_trace(n_gpus: int = 4, batches: int = 28, seed: int = 7):
    b = TraceBuilder("secure_inference", n_gpus, seed=seed)
    lane_count = b.n_lanes
    activations = b.alloc(
        "activations", n_gpus * lane_count * 48, Placement.OWNER, owner=0, pinned=True
    )
    weights = b.alloc("weights", n_gpus * 8 * 64, Placement.BLOCKED)
    partials = b.alloc("partials", n_gpus * 4 * 64, Placement.BLOCKED)

    for batch in range(batches):
        for g in b.gpus():
            w_first, w_blocks = b.blocked_range(weights, g)
            p_first, p_blocks = b.blocked_range(partials, g)
            ring_next = b.peer_gpu(g, +1)
            n_first, n_blocks = b.blocked_range(partials, ring_next)
            for lane in range(lane_count):
                # 1. ingest this batch's activation slice from the host
                start = ((g - 1) * lane_count + lane) * 48 + batch
                b.burst(g, lane, activations, start % activations.n_blocks, 12, gap=0)
                # 2. layer compute against the local weight shard
                b.burst(g, lane, weights, w_first + (lane * 8) % max(1, w_blocks - 8),
                        8, gap=4)
                b.compute(g, lane, 120)
                # 3. ring exchange: read the neighbour's partials in a burst
                if n_blocks:
                    b.burst(g, lane, partials,
                            n_first + (batch * 16) % max(1, n_blocks - 16), 16, gap=0)
                # 4. update local partials
                b.burst(g, lane, partials,
                        p_first + (batch * 8) % max(1, p_blocks - 8), 8, gap=2,
                        write=True)
    return b.build()


def main() -> None:
    n_gpus = 4
    print("Confidential multi-GPU inference pipeline")
    print("=========================================")

    results = {}
    for scheme in ("unsecure", "private", "batching"):
        trace = build_inference_trace(n_gpus)
        results[scheme] = MultiGpuSystem(scheme_config(scheme, n_gpus=n_gpus)).run(trace)

    base = results["unsecure"]
    print(f"\nbaseline: {base.execution_cycles} cycles, "
          f"{base.traffic_bytes / 1024:.0f} KiB on the interconnects, "
          f"{base.remote_requests} remote block requests\n")

    print(f"{'protection':22s} {'latency overhead':>17s} {'interconnect bytes':>19s} "
          f"{'ACKs':>7s}")
    for scheme, label in (("private", "conventional (Private)"),
                          ("batching", "paper proposal (Ours)")):
        r = results[scheme]
        print(
            f"{label:22s} {r.slowdown_vs(base) - 1:17.1%} "
            f"{r.traffic_ratio_vs(base) - 1:+18.1%} {r.acks_sent:7d}"
        )

    ours, conv = results["batching"], results["private"]
    saved = 1 - ours.traffic_bytes / conv.traffic_bytes
    print(
        f"\nDynamic OTP allocation + metadata batching removes "
        f"{saved:.1%} of the secured traffic and cuts replay ACKs "
        f"{conv.acks_sent / max(1, ours.acks_sent):.0f}x, while preserving the "
        "same confidentiality, integrity, and replay guarantees (lazy "
        "verification never releases unverified data to the TCB boundary)."
    )


if __name__ == "__main__":
    main()
