#!/usr/bin/env python
"""Scenario: confidential multi-GPU ML serving + fine-tuning.

The paper's motivating deployment is mission-critical / cloud GPU
computing inside TEEs.  This example models the two workloads such a
deployment actually runs and budgets their protection cost:

**Inference pipeline** — built with the public
:class:`~repro.workloads.TraceBuilder` API:

1. **Ingest** — encrypted activations stream from host (CPU) memory to
   every GPU over PCIe (pinned pages, direct block access);
2. **Layer compute** — each GPU applies its layer shard with moderate
   local traffic;
3. **All-reduce exchange** — GPUs exchange partial results ring-style in
   bursts, the inter-GPU phase the metadata batching targets;
4. **Collect** — results are written back toward the host shard.

**Training step** — the :func:`~repro.workloads.training_step` composite
(forward compute + ring reduce-scatter / all-gather gradient
synchronization), the per-iteration traffic of any DDP fine-tuning job —
dominated by the collective, which is where secure-channel overheads bite
hardest (see ``docs/WORKLOADS.md``).

For both it compares the conventional per-message protocol (Private)
against the paper's full proposal (Dynamic + batching), reporting latency
overhead and interconnect bytes — the two costs a deployment engineer
would budget.

Usage::

    python examples/secure_inference_pipeline.py [--gpus N] [--batches B] [--scale S]
"""

from __future__ import annotations

import argparse

from repro import MultiGpuSystem, scheme_config
from repro.memory.address_space import Placement
from repro.workloads import training_step
from repro.workloads.builder import TraceBuilder

COMPARED = (("private", "conventional (Private)"),
            ("batching", "paper proposal (Ours)"))


def build_inference_trace(n_gpus: int = 4, batches: int = 28, seed: int = 7):
    b = TraceBuilder("secure_inference", n_gpus, seed=seed)
    lane_count = b.n_lanes
    activations = b.alloc(
        "activations", n_gpus * lane_count * 48, Placement.OWNER, owner=0, pinned=True
    )
    weights = b.alloc("weights", n_gpus * 8 * 64, Placement.BLOCKED)
    partials = b.alloc("partials", n_gpus * 4 * 64, Placement.BLOCKED)

    for batch in range(batches):
        for g in b.gpus():
            w_first, w_blocks = b.blocked_range(weights, g)
            p_first, p_blocks = b.blocked_range(partials, g)
            ring_next = b.peer_gpu(g, +1)
            n_first, n_blocks = b.blocked_range(partials, ring_next)
            for lane in range(lane_count):
                # 1. ingest this batch's activation slice from the host
                start = ((g - 1) * lane_count + lane) * 48 + batch
                b.burst(g, lane, activations, start % activations.n_blocks, 12, gap=0)
                # 2. layer compute against the local weight shard
                b.burst(g, lane, weights, w_first + (lane * 8) % max(1, w_blocks - 8),
                        8, gap=4)
                b.compute(g, lane, 120)
                # 3. ring exchange: read the neighbour's partials in a burst
                if n_blocks:
                    b.burst(g, lane, partials,
                            n_first + (batch * 16) % max(1, n_blocks - 16), 16, gap=0)
                # 4. update local partials
                b.burst(g, lane, partials,
                        p_first + (batch * 8) % max(1, p_blocks - 8), 8, gap=2,
                        write=True)
    return b.build()


def compare_schemes(label: str, build_trace, n_gpus: int) -> dict:
    """Simulate one workload under baseline/Private/Ours and print the budget."""
    results = {}
    for scheme in ("unsecure", "private", "batching"):
        results[scheme] = MultiGpuSystem(scheme_config(scheme, n_gpus=n_gpus)).run(
            build_trace()
        )

    base = results["unsecure"]
    print(f"\n{label}")
    print("-" * len(label))
    print(f"baseline: {base.execution_cycles} cycles, "
          f"{base.traffic_bytes / 1024:.0f} KiB on the interconnects, "
          f"{base.remote_requests} remote block requests\n")

    print(f"{'protection':22s} {'latency overhead':>17s} {'interconnect bytes':>19s} "
          f"{'ACKs':>7s}")
    for scheme, name in COMPARED:
        r = results[scheme]
        print(
            f"{name:22s} {r.slowdown_vs(base) - 1:17.1%} "
            f"{r.traffic_ratio_vs(base) - 1:+18.1%} {r.acks_sent:7d}"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description="confidential serving + fine-tuning budget")
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--batches", type=int, default=28,
                        help="inference pipeline batches")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="training-step workload scale")
    args = parser.parse_args()

    print("Confidential multi-GPU serving and fine-tuning")
    print("==============================================")

    inference = compare_schemes(
        "Inference pipeline (ingest -> layer compute -> ring exchange)",
        lambda: build_inference_trace(args.gpus, batches=args.batches),
        args.gpus,
    )
    training = compare_schemes(
        "Training step (forward compute + reduce-scatter/all-gather)",
        lambda: training_step(args.gpus, seed=7, scale=args.scale),
        args.gpus,
    )

    ours, conv = inference["batching"], inference["private"]
    saved = 1 - ours.traffic_bytes / conv.traffic_bytes
    print(
        f"\nOn the inference pipeline, dynamic OTP allocation + metadata "
        f"batching removes {saved:.1%} of the secured traffic and cuts "
        f"replay ACKs {conv.acks_sent / max(1, ours.acks_sent):.0f}x, while "
        "preserving the same confidentiality, integrity, and replay "
        "guarantees (lazy verification never releases unverified data to "
        "the TCB boundary)."
    )
    t_ours, t_conv = training["batching"], training["private"]
    t_base = training["unsecure"]
    print(
        f"\nOn the training step the traffic gap widens: the gradient "
        f"collective's dense 16-block chunks batch into one MsgMAC + one ACK "
        f"each ({t_conv.acks_sent / max(1, t_ours.acks_sent):.0f}x fewer "
        f"ACKs), so Ours adds {t_ours.traffic_ratio_vs(t_base) - 1:+.1%} "
        f"interconnect bytes against the per-message protocol's "
        f"{t_conv.traffic_ratio_vs(t_base) - 1:+.1%}, while also running "
        f"faster ({t_ours.slowdown_vs(t_base) - 1:.1%} vs "
        f"{t_conv.slowdown_vs(t_base) - 1:.1%} latency overhead)."
    )


if __name__ == "__main__":
    main()
