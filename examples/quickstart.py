#!/usr/bin/env python
"""Quickstart: simulate one workload under every protection scheme.

Runs matrix multiplication on a 4-GPU system (Table III configuration) and
prints execution time, traffic, and OTP hit rates for each OTP management
scheme, normalized to the unsecure baseline — a miniature Figure 21.

Usage::

    python examples/quickstart.py [workload] [--gpus N] [--scale S]
"""

from __future__ import annotations

import argparse

from repro import MultiGpuSystem, get_workload, scheme_config

SCHEMES = ("private", "shared", "cached", "dynamic", "batching")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="matrixmultiplication")
    parser.add_argument("--gpus", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    spec = get_workload(args.workload)
    print(f"workload: {spec.name} ({spec.suite}, {spec.rpki_class} RPKI), "
          f"{args.gpus} GPUs\n")

    def simulate(scheme: str):
        trace = spec.generate(n_gpus=args.gpus, seed=args.seed, scale=args.scale)
        return MultiGpuSystem(scheme_config(scheme, n_gpus=args.gpus)).run(trace)

    baseline = simulate("unsecure")
    print(f"unsecure baseline: {baseline.execution_cycles} cycles, "
          f"{baseline.traffic_bytes} bytes, {baseline.remote_requests} remote requests, "
          f"{baseline.migrations} page migrations\n")

    print(f"{'scheme':10s} {'slowdown':>9s} {'traffic':>8s} {'metadata':>9s} "
          f"{'send OTP hit':>13s} {'recv OTP hit':>13s}")
    for scheme in SCHEMES:
        r = simulate(scheme)
        print(
            f"{scheme:10s} {r.slowdown_vs(baseline):9.3f} "
            f"{r.traffic_ratio_vs(baseline):8.3f} "
            f"{r.meta_traffic_bytes / r.traffic_bytes:9.1%} "
            f"{r.otp_send.hit:13.1%} {r.otp_recv.hit:13.1%}"
        )

    print(
        "\nReading the table: 'batching' (the paper's proposal = Dynamic OTP "
        "allocation\n+ metadata batching) should show the lowest slowdown and "
        "the least traffic."
    )


if __name__ == "__main__":
    main()
