#!/usr/bin/env python
"""Scenario: estimate the protection cost of *your* application.

A team that knows their application's communication profile — roughly how
remote-heavy, how bursty, how skewed toward one neighbour — can estimate
what TEE-grade link protection will cost before writing a line of GPU
code.  This example dials the synthetic workload generator across remote
intensity, runs the paper's protection stack on each profile, captures a
message-level trace, and renders the cost curve as a terminal chart.
"""

from __future__ import annotations

from repro import MultiGpuSystem, scheme_config
from repro.experiments.ascii_chart import hbar_chart
from repro.tracing import MessageTracer
from repro.workloads.synthetic import synthetic_spec


def protection_overhead(remote_fraction: float) -> tuple[float, float]:
    """(slowdown, mean data-response latency) of Ours for one profile."""
    spec = synthetic_spec(
        f"app-r{remote_fraction:.0%}",
        remote_fraction=remote_fraction,
        burst_length=16,
        gap=3,
        skew=2.0,
    )
    baseline = MultiGpuSystem(scheme_config("unsecure")).run(
        spec.generate(n_gpus=4, seed=1, scale=0.4)
    )
    secured_system = MultiGpuSystem(scheme_config("batching"))
    tracer = MessageTracer().attach(secured_system)
    secured = secured_system.run(spec.generate(n_gpus=4, seed=1, scale=0.4))
    return secured.slowdown_vs(baseline), tracer.mean_latency("data_resp")


def main() -> None:
    print("Protection-cost estimator for a custom application profile")
    print("=" * 60)
    fractions = (0.1, 0.3, 0.5, 0.7, 0.9)
    rows = []
    latencies = {}
    for rf in fractions:
        slowdown, resp_latency = protection_overhead(rf)
        rows.append((f"{rf:.0%} remote", slowdown))
        latencies[rf] = resp_latency
    print()
    print(hbar_chart("slowdown of Ours vs unsecure, by remote intensity", rows,
                     baseline=1.0))
    print()
    print("mean secured data-response latency (cycles):")
    for rf in fractions:
        print(f"  {rf:.0%} remote: {latencies[rf]:7.1f}")
    print(
        "\nTakeaway: protection cost grows with how much of the working set\n"
        "crosses the untrusted links — yet even at 90% remote the full\n"
        "Dynamic+Batching stack holds the overhead to a few percent for\n"
        "this profile, because bursts of 16 amortize the metadata and the\n"
        "allocator keeps the hot pair's pads warm."
    )


if __name__ == "__main__":
    main()
