#!/usr/bin/env python
"""Scenario: provisioning OTP buffers for a multi-GPU product.

An architect sizing the security unit must trade on-chip SRAM against
communication slowdown.  This example sweeps the OTP multiplier for the
Private scheme (the Figure 8 / Table I trade-off) on a communication-heavy
workload, then shows what the paper's Dynamic + Batching proposal achieves
at the *smallest* provisioning — the punchline being that smarter
management beats 4x more SRAM.
"""

from __future__ import annotations

from repro import MultiGpuSystem, default_config, get_workload, scheme_config
from repro.experiments.table1_storage import storage_row

WORKLOAD = "syr2k"
N_GPUS = 4
MULTIPLIERS = (1, 2, 4, 8, 16)


def simulate(config, scale=0.5, seed=1):
    trace = get_workload(WORKLOAD).generate(n_gpus=N_GPUS, seed=seed, scale=scale)
    return MultiGpuSystem(config).run(trace)


def main() -> None:
    print(f"OTP buffer provisioning study — {WORKLOAD}, {N_GPUS} GPUs")
    print("=" * 58)

    baseline = simulate(scheme_config("unsecure", n_gpus=N_GPUS))

    print(f"\n{'config':18s} {'SRAM/GPU':>10s} {'slowdown':>9s} {'send OTP hit':>13s}")
    for m in MULTIPLIERS:
        report = simulate(scheme_config("private", n_gpus=N_GPUS, otp_multiplier=m))
        sram = storage_row(N_GPUS, m).per_gpu_kib
        print(
            f"Private OTP {m:2d}x    {sram:8.2f}KB {report.slowdown_vs(baseline):9.3f} "
            f"{report.otp_send.hit:13.1%}"
        )

    ours = simulate(default_config(N_GPUS, scheme="dynamic", batching=True))
    sram = storage_row(N_GPUS, 4).per_gpu_kib
    print(
        f"\nOurs (Dyn+Batch 4x) {sram:7.2f}KB {ours.slowdown_vs(baseline):9.3f} "
        f"{ours.otp_send.hit:13.1%}"
    )
    print(
        "\nTakeaway: dynamic allocation + batching at 4x provisioning "
        "competes with (or beats) Private at 16x — a 4x SRAM saving — because "
        "extra buffers cannot recover the bandwidth consumed by per-block "
        "security metadata."
    )


if __name__ == "__main__":
    main()
