#!/usr/bin/env python
"""Functional walk-through of the secure communication protocol.

Everything the timing simulator models — counter-mode pads, MsgMACs,
replay protection, batched MsgMAC verification with out-of-order delivery —
executed *for real* on the from-scratch AES-128/GCM substrate.  Two
endpoints exchange actual ciphertext; an attacker on the interconnect
tries tampering and replay and is caught.
"""

from __future__ import annotations

from repro.secure.protocol import ProtocolError, SecureEndpoint, WireMessage

SESSION_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
HASH_KEY = bytes.fromhex("f0e0d0c0b0a090807060504030201000")


def main() -> None:
    gpu1 = SecureEndpoint(node_id=1, session_key=SESSION_KEY, hash_key=HASH_KEY)
    gpu2 = SecureEndpoint(node_id=2, session_key=SESSION_KEY, hash_key=HASH_KEY)

    print("1. Conventional per-message protocol (Fig. 5)")
    payload = b"cacheline 0x1000: weights shard for layer 7".ljust(64, b".")
    wire = gpu1.send_block(2, payload)
    print(f"   MsgCTR={wire.counter}  ciphertext[:16]={wire.ciphertext[:16].hex()}")
    print(f"   MsgMAC={wire.mac.hex()}")
    received = gpu2.receive_block(wire)
    assert received == payload
    print("   receiver decrypted + verified OK")

    print("\n2. Replay attack (§II-C)")
    try:
        gpu2.receive_block(wire)  # attacker re-sends the captured message
    except ProtocolError as exc:
        print(f"   replay rejected: {exc}")

    print("\n3. Tampering on the interconnect")
    wire2 = gpu1.send_block(2, b"transfer: 1000 credits to account A".ljust(64, b"!"))
    flipped = WireMessage(
        wire2.sender_id,
        wire2.receiver_id,
        wire2.counter,
        bytes([wire2.ciphertext[0] ^ 0x01]) + wire2.ciphertext[1:],
        wire2.mac,
    )
    try:
        gpu2.receive_block(flipped)
    except ProtocolError as exc:
        print(f"   tamper rejected: {exc}")

    print("\n4. Batched MsgMAC with out-of-order delivery (Fig. 19/20)")
    blocks = [f"burst block {i:02d}".encode().ljust(64, b"-") for i in range(16)]
    wires = [gpu1.send_block(2, blk, in_batch=True) for blk in blocks]
    print(f"   16 blocks sent, per-block MACs held back (wire MAC = {wires[0].mac})")
    order = [3, 0, 7, 1, 15, 2, 9, 4, 5, 12, 6, 8, 10, 13, 11, 14]
    for i in order:  # network reorders within the batch
        decrypted = gpu2.receive_block(wires[i])
        assert decrypted == blocks[i]
    print(f"   all 16 decrypted lazily; MsgMAC storage holds {gpu2.stored_macs(1)} MACs")
    batch_mac = gpu1.close_batch(2)
    print(f"   Batched_MsgMAC={batch_mac.mac.hex()} covering counters "
          f"{batch_mac.first_counter}..{batch_mac.first_counter + batch_mac.count - 1}")
    assert gpu2.verify_batch(batch_mac)
    print("   batch verified: one 8-byte MAC + one ACK instead of 16 of each")

    print("\nAll protocol properties demonstrated on real ciphertext.")


if __name__ == "__main__":
    main()
