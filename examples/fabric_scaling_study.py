#!/usr/bin/env python
"""Scenario: choosing an interconnect organization for a secure GPU box.

A system architect is deciding between three GPU-fabric organizations for
a confidential-computing appliance — point-to-point NVLink bridges, a
central NVSwitch, or a rack-scale ring — and needs to know how each one
prices the security protocol.  Shared fabric segments amplify the
metadata-bandwidth tax, so the protection overhead is *not* fabric-neutral.

The study runs an all-to-all-heavy workload (matrix transpose) and a
neighbour-exchange workload (stencil) on every fabric, secured with the
paper's full proposal, each normalized to its own unsecured fabric.
"""

from __future__ import annotations

from dataclasses import replace

from repro import MultiGpuSystem, default_config, get_workload
from repro.configs import LinkConfig

FABRICS = ("p2p", "switch", "ring")
WORKLOADS = ("mt", "st")
N_GPUS = 4


def simulate(workload: str, fabric: str, secured: bool, scale: float = 0.5):
    link = LinkConfig(fabric=fabric)
    if secured:
        cfg = replace(
            default_config(N_GPUS, scheme="dynamic", batching=True), link=link
        )
    else:
        cfg = replace(default_config(N_GPUS), link=link)
    trace = get_workload(workload).generate(n_gpus=N_GPUS, seed=1, scale=scale)
    return MultiGpuSystem(cfg).run(trace)


def main() -> None:
    print("Fabric study: security overhead of Ours per interconnect organization")
    print("=" * 70)
    print(f"{'workload':10s} {'fabric':8s} {'baseline cyc':>13s} {'secured cyc':>12s} "
          f"{'overhead':>9s}")
    for workload in WORKLOADS:
        for fabric in FABRICS:
            base = simulate(workload, fabric, secured=False)
            secured = simulate(workload, fabric, secured=True)
            overhead = secured.execution_cycles / base.execution_cycles - 1
            print(
                f"{workload:10s} {fabric:8s} {base.execution_cycles:13d} "
                f"{secured.execution_cycles:12d} {overhead:9.1%}"
            )
    print(
        "\nReading the table: all-to-all traffic (mt) over a ring shares every\n"
        "segment, so the +37% metadata bytes hurt most there; a fat switch\n"
        "absorbs them almost for free. Halo exchange (st) only talks to ring\n"
        "neighbours, so the ring penalty largely disappears."
    )


if __name__ == "__main__":
    main()
