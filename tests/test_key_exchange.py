"""Boot-time key exchange tests."""

import pytest

from repro.crypto.key_exchange import (
    G,
    P,
    KeyExchange,
    KeyShare,
    derive_key,
    establish_session,
    is_probable_prime,
)
from repro.secure.protocol import SecureEndpoint


class TestDiffieHellman:
    def test_both_sides_agree(self):
        a = KeyExchange(0, private_exponent=0x1234567890ABCDEF)
        b = KeyExchange(1, private_exponent=0xFEDCBA0987654321)
        assert a.shared_secret(b.share()) == b.shared_secret(a.share())

    def test_third_party_disagrees(self):
        a = KeyExchange(0, 3_000_000_007)
        b = KeyExchange(1, 5_000_000_029)
        eve = KeyExchange(2, 7_000_000_003)
        assert a.shared_secret(b.share()) != eve.shared_secret(b.share())

    def test_group_parameters(self):
        assert P.bit_length() == 2048
        assert G == 2
        # the pi-derived constant must match RFC 3526 group 14's leading
        # and trailing words and actually be a safe prime
        assert hex(P)[2:18].upper() == "FFFFFFFFFFFFFFFF"
        assert P % 2 == 1
        assert is_probable_prime(P)
        assert is_probable_prime((P - 1) // 2)  # safe prime

    def test_miller_rabin_basics(self):
        assert is_probable_prime(2) and is_probable_prime(97)
        assert not is_probable_prime(1)
        assert not is_probable_prime(561)  # Carmichael number
        assert not is_probable_prime(2047)  # strong pseudoprime base 2 only

    def test_degenerate_public_rejected(self):
        a = KeyExchange(0, 12345678901234567)
        for bad in (0, 1, P - 1, P):
            with pytest.raises(ValueError):
                a.shared_secret(KeyShare(node_id=1, public=bad))

    def test_private_exponent_validated(self):
        with pytest.raises(ValueError):
            KeyExchange(0, 1)


class TestKeyDerivation:
    SECRET = b"shared secret bytes" * 4

    def test_keys_are_16_bytes_and_deterministic(self):
        k1 = derive_key(self.SECRET, 0, 1, "enc")
        k2 = derive_key(self.SECRET, 0, 1, "enc")
        assert k1 == k2 and len(k1) == 16

    def test_purpose_separation(self):
        assert derive_key(self.SECRET, 0, 1, "enc") != derive_key(self.SECRET, 0, 1, "mac")

    def test_direction_separation(self):
        assert derive_key(self.SECRET, 0, 1, "enc") != derive_key(self.SECRET, 1, 0, "enc")

    def test_secret_separation(self):
        assert derive_key(self.SECRET, 0, 1, "enc") != derive_key(b"other" * 8, 0, 1, "enc")

    def test_same_endpoint_rejected(self):
        with pytest.raises(ValueError):
            derive_key(self.SECRET, 1, 1, "enc")


class TestSessionEstablishment:
    def test_establish_and_protect_traffic(self):
        cpu = KeyExchange(0, 0xA5A5A5A5A5A5A5A5A5A5)
        gpu = KeyExchange(1, 0x5A5A5A5A5A5A5A5A5A5A)
        cpu_keys, gpu_keys = establish_session(cpu, gpu)
        assert cpu_keys == gpu_keys
        # the derived keys actually drive the secure protocol end to end
        sender = SecureEndpoint(0, cpu_keys["enc"], cpu_keys["mac"])
        receiver = SecureEndpoint(1, gpu_keys["enc"], gpu_keys["mac"])
        wire = sender.send_block(1, b"boot-strapped secure channel")
        assert receiver.receive_block(wire) == b"boot-strapped secure channel"

    def test_distinct_pairs_get_distinct_keys(self):
        exchanges = {n: KeyExchange(n, 10**9 + 7 + n * 12345) for n in range(3)}
        k01, _ = establish_session(exchanges[0], exchanges[1])
        k02, _ = establish_session(exchanges[0], exchanges[2])
        assert k01["enc"] != k02["enc"]
