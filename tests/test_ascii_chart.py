"""ASCII chart renderer tests."""

import pytest

from repro.experiments.ascii_chart import hbar_chart, stacked_bar


class TestHbarChart:
    def test_renders_all_items(self):
        chart = hbar_chart("Slowdowns", [("private", 1.17), ("ours", 1.08)])
        assert "Slowdowns" in chart
        assert "private" in chart and "ours" in chart
        assert "1.170" in chart and "1.080" in chart

    def test_larger_value_longer_bar(self):
        chart = hbar_chart("c", [("a", 2.0), ("b", 4.0)])
        bar_a = chart.splitlines()[2].count("#")
        bar_b = chart.splitlines()[3].count("#")
        assert bar_b > bar_a

    def test_baseline_marker_drawn(self):
        chart = hbar_chart("c", [("a", 0.4)], baseline=1.0)
        assert "|" in chart
        assert "marks 1.000" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            hbar_chart("c", [])
        with pytest.raises(ValueError):
            hbar_chart("c", [("a", 1.0)], width=2)

    def test_labels_aligned(self):
        chart = hbar_chart("c", [("short", 1.0), ("a-longer-label", 2.0)])
        lines = chart.splitlines()[2:]
        starts = {line.index("#") if "#" in line else None for line in lines}
        starts.discard(None)
        assert len(starts) <= 2  # bars start in the same column region


class TestStackedBar:
    def _items(self):
        return [
            ("private", {"hit": 0.5, "partial": 0.4, "miss": 0.1}),
            ("shared", {"hit": 0.2, "partial": 0.3, "miss": 0.5}),
        ]

    def test_renders_with_legend(self):
        chart = stacked_bar(
            "OTP", self._items(), symbols={"hit": "#", "partial": "+", "miss": "."}
        )
        assert "#=hit" in chart and "+=partial" in chart
        assert chart.count("[") == 2

    def test_bar_width_is_constant(self):
        chart = stacked_bar(
            "OTP", self._items(), symbols={"hit": "#", "partial": "+", "miss": "."},
            width=30,
        )
        for line in chart.splitlines():
            if "[" in line:
                inner = line[line.index("[") + 1 : line.index("]")]
                assert len(inner) == 30

    def test_empty_parts_handled(self):
        chart = stacked_bar("OTP", [("x", {"hit": 0.0})], symbols={"hit": "#"})
        assert "no data" in chart

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            stacked_bar("OTP", [], symbols={})
