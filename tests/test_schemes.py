"""OTP buffer-management scheme behaviour tests."""

import pytest

from repro.configs import SecurityConfig
from repro.secure.engine import AesGcmEngineModel
from repro.secure.otp_buffer import PadOutcome
from repro.secure.schemes import build_scheme
from repro.secure.schemes.cached import CachedScheme
from repro.secure.schemes.dynamic import DynamicScheme
from repro.secure.schemes.private import PrivateScheme
from repro.secure.schemes.shared import SharedScheme

PEERS = [0, 2, 3, 4]  # node 1's peers in a 4-GPU system
L = 40


def make(scheme, multiplier=4, **sec_overrides):
    sec = SecurityConfig(scheme=scheme, otp_multiplier=multiplier, **sec_overrides)
    engine = AesGcmEngineModel(pad_latency=L)
    return build_scheme(scheme, node=1, peers=PEERS, security=sec, engine=engine)


class TestBuildScheme:
    def test_unsecure_returns_none(self):
        assert make("unsecure") is None

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            make("quantum")

    def test_types(self):
        assert isinstance(make("private"), PrivateScheme)
        assert isinstance(make("shared"), SharedScheme)
        assert isinstance(make("cached"), CachedScheme)
        assert isinstance(make("dynamic"), DynamicScheme)


class TestPrivate:
    def test_pool_size_matches_paper(self):
        # 4 peers x 2 directions x 4 = 32 entries per processor (§III-A)
        assert make("private").pool_size() == 32

    def test_spaced_sends_hit(self):
        s = make("private")
        for t in (0, 100, 200):
            assert s.acquire_send(2, t).grant.outcome is PadOutcome.HIT

    def test_receiver_always_synced(self):
        assert make("private").acquire_send(2, 0).receiver_synced

    def test_burst_beyond_multiplier_misses(self):
        s = make("private", multiplier=2)
        outcomes = [s.acquire_send(2, 0).grant.outcome for _ in range(4)]
        assert outcomes[:2] == [PadOutcome.HIT, PadOutcome.HIT]
        assert outcomes[2] is PadOutcome.MISS

    def test_streams_are_per_peer(self):
        s = make("private", multiplier=1)
        assert s.acquire_send(2, 0).grant.outcome is PadOutcome.HIT
        assert s.acquire_send(3, 0).grant.outcome is PadOutcome.HIT

    def test_outcome_stats_recorded(self):
        s = make("private")
        s.acquire_send(2, 0)
        s.acquire_recv(2, 0)
        assert s.send_outcomes.total == 1
        assert s.recv_outcomes.total == 1

    def test_self_peer_rejected(self):
        with pytest.raises(ValueError):
            make("private").acquire_send(1, 0)


class TestShared:
    def test_pool_is_one_send_plus_per_peer_recv(self):
        # 1 send + 4 recv = 5 entries: the capacity-optimized layout
        assert make("shared").pool_size() == 5

    def test_destination_switch_desyncs_receiver(self):
        s = make("shared")
        first = s.acquire_send(2, 0)
        assert not first.receiver_synced  # nothing sent before
        again = s.acquire_send(2, 100)
        assert again.receiver_synced  # back-to-back same destination
        switched = s.acquire_send(3, 200)
        assert not switched.receiver_synced
        assert s.destination_switches == 2

    def test_single_send_entry_thrashes_on_bursts(self):
        s = make("shared")
        outcomes = [s.acquire_send(2, 0).grant.outcome for _ in range(3)]
        assert outcomes[0] is PadOutcome.HIT
        assert outcomes[1] is PadOutcome.MISS

    def test_desync_recv_costs_full_latency(self):
        s = make("shared")
        grant = s.acquire_recv(2, now=500, synced=False)
        assert grant.outcome is PadOutcome.MISS and grant.wait == L


class TestCached:
    def test_pool_total_matches_private(self):
        assert make("cached").pool_size() == 32

    def test_pool_conserved_under_traffic(self):
        s = make("cached")
        for t in range(0, 2000, 7):
            s.acquire_send(2, t)
            s.acquire_recv(3, t)
        assert s.pool_size() == 32

    def test_hot_stream_accumulates_entries(self):
        s = make("cached", multiplier=2)
        # hammer one stream; it should steal capacity from idle streams
        for t in range(0, 400, 5):
            s.acquire_send(2, t)
        assert s.stream_capacity("send", 2) > 2
        assert s.evictions > 0

    def test_evicted_stream_misses_like_shared(self):
        s = make("cached", multiplier=1)
        # drain every entry toward stream (send, 2)
        for t in range(0, 2000, 5):
            s.acquire_send(2, t)
        victim_capacity = s.stream_capacity("send", 4)
        if victim_capacity == 0:
            grant = s.acquire_send(4, 3000).grant
            assert grant.outcome is PadOutcome.MISS and grant.wait == L
            assert s.table_misses >= 1

    def test_spaced_single_stream_hits(self):
        s = make("cached")
        for t in (0, 100, 200, 300):
            assert s.acquire_send(2, t).grant.outcome is PadOutcome.HIT


class TestDynamic:
    def test_initial_allocation_matches_private(self):
        s = make("dynamic")
        assert s.pool_size() == 32
        for peer in PEERS:
            assert s.stream_capacity("send", peer) == 4
            assert s.stream_capacity("recv", peer) == 4

    def test_reallocation_follows_traffic(self):
        s = make("dynamic", interval=1000)
        # interval 0: all traffic is sends to peer 2
        for t in range(0, 1000, 10):
            s.note_send(2, t)
            s.acquire_send(2, t)
        # first observation in the next interval triggers the adjustment
        s.note_send(2, 1001)
        assert s.plans_applied == 1
        assert s.stream_capacity("send", 2) > 4
        assert s.pool_size() == 32  # pool conserved

    def test_starved_direction_loses_entries(self):
        s = make("dynamic", interval=500)
        for t in range(0, 500, 5):
            s.note_send(2, t)
        s.note_send(2, 501)
        total_recv = sum(s.stream_capacity("recv", p) for p in PEERS)
        assert total_recv < 16

    def test_adjustment_is_lazy_but_boundary_aligned(self):
        s = make("dynamic", interval=1000)
        for t in range(0, 1000, 10):
            s.note_send(2, t)  # enough samples to beat the noise gate
        s.note_send(2, 4200)  # 4 intervals later
        assert s.allocator.interval_start == 4000
        assert s.plans_applied == 1

    def test_sparse_interval_does_not_repartition(self):
        s = make("dynamic", interval=1000)
        for t in (0, 100, 200):  # 3 samples < min_samples
            s.note_send(2, t)
        s.note_send(2, 1001)
        assert s.plans_applied == 0
        assert s.stream_capacity("send", 2) == 4

    def test_balanced_traffic_stays_balanced(self):
        s = make("dynamic", interval=1000)
        for t in range(0, 1000, 20):
            for peer in PEERS:
                s.note_send(peer, t)
                s.note_recv(peer, t)
        s.note_send(2, 1001)
        for peer in PEERS:
            assert abs(s.stream_capacity("send", peer) - 4) <= 1
