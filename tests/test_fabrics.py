"""GPU-fabric organization tests: p2p, ring, switch."""

from dataclasses import replace

import pytest

from repro.configs import LinkConfig, scheme_config
from repro.interconnect.packet import Packet, PacketKind
from repro.interconnect.topology import FABRICS, Topology
from repro.system import run_workload
from repro.workloads import get_workload


def packet(src, dst, size=80):
    return Packet(kind=PacketKind.DATA_RESP, src=src, dst=dst, size_bytes=size)


class TestRing:
    def test_adjacent_is_single_hop(self):
        topo = Topology(4, fabric="ring")
        assert topo.hop_count(1, 2) == 1
        assert topo.hop_count(2, 1) == 1

    def test_opposite_corner_hops_through_ring(self):
        topo = Topology(4, fabric="ring")
        assert topo.hop_count(1, 3) == 2
        topo8 = Topology(8, fabric="ring")
        assert topo8.hop_count(1, 5) == 4

    def test_shortest_direction_chosen(self):
        topo = Topology(8, fabric="ring")
        assert topo.hop_count(1, 8) == 1  # counter-clockwise wrap
        assert topo.hop_count(8, 2) == 2

    def test_ring_arrival_grows_with_distance(self):
        topo = Topology(8, fabric="ring")
        near = topo.send(packet(1, 2), now=0)
        far = topo.send(packet(1, 5), now=0)
        assert far > near

    def test_intermediate_segments_are_shared(self):
        topo = Topology(4, fabric="ring")
        # 1->3 clockwise passes through node 2's cw link, shared with 2->3
        path_13 = topo.path(1, 3)
        path_23 = topo.path(2, 3)
        assert path_13[1] is path_23[0]

    def test_pcie_unchanged_by_fabric(self):
        topo = Topology(4, fabric="ring")
        assert topo.hop_count(0, 3) == 1
        assert topo.hop_count(3, 0) == 1


class TestSwitch:
    def test_all_gpu_traffic_crosses_the_switch(self):
        topo = Topology(4, fabric="switch")
        for src in (1, 2, 3):
            path = topo.path(src, 4)
            assert len(path) == 3
            assert path[1].name == "nvswitch"

    def test_switch_aggregate_bandwidth(self):
        topo = Topology(4, fabric="switch", switch_factor=2.0)
        switch = topo.path(1, 2)[1]
        assert switch.bytes_per_cycle == 100.0  # 2 x 50

    def test_switch_congests_under_all_to_all(self):
        fat = Topology(4, fabric="switch", switch_factor=100.0)
        thin = Topology(4, fabric="switch", switch_factor=0.5)
        last_fat = last_thin = 0
        for i, (s, d) in enumerate([(1, 2), (2, 3), (3, 4), (4, 1)] * 8):
            last_fat = max(last_fat, fat.send(packet(s, d), now=0))
            last_thin = max(last_thin, thin.send(packet(s, d), now=0))
        assert last_thin > last_fat


class TestFabricValidation:
    def test_unknown_fabric_rejected(self):
        with pytest.raises(ValueError):
            Topology(4, fabric="torus")

    def test_all_fabrics_enumerated(self):
        assert set(FABRICS) == {"p2p", "ring", "switch"}

    @pytest.mark.parametrize("fabric", FABRICS)
    def test_channels_listing_covers_fabric(self, fabric):
        topo = Topology(3, fabric=fabric)
        names = [c.name for c in topo.channels()]
        assert len(names) == len(set(names))
        if fabric == "switch":
            assert "nvswitch" in names
        if fabric == "ring":
            assert any(n.startswith("ring:") for n in names)


class TestEndToEndFabrics:
    @pytest.mark.parametrize("fabric", FABRICS)
    def test_simulation_completes_on_every_fabric(self, fabric):
        cfg = scheme_config("batching", n_gpus=4)
        cfg = replace(cfg, link=LinkConfig(fabric=fabric))
        trace = get_workload("stencil2d").generate(4, seed=1, scale=0.1)
        report = run_workload(cfg, trace)
        assert report.execution_cycles > 0

    def test_ring_is_slower_than_p2p_for_all_to_all(self):
        def run(fabric):
            cfg = replace(scheme_config("unsecure", n_gpus=4), link=LinkConfig(fabric=fabric))
            trace = get_workload("mt").generate(4, seed=1, scale=0.15)
            return run_workload(cfg, trace).execution_cycles

        assert run("ring") > run("p2p")
