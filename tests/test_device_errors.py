"""Error-path and edge-case tests for the device models."""

import pytest

from repro.configs import GpuConfig, MigrationConfig, SecurityConfig
from repro.gpu.cpu import HostCpu, Iommu
from repro.gpu.gpu import GpuDevice
from repro.interconnect.packet import Packet, PacketKind
from repro.memory.migration import AccessCounterMigrationPolicy
from repro.memory.page_table import PageTable
from repro.secure.engine import AesGcmEngineModel
from repro.secure.schemes.ideal import IdealScheme
from repro.workloads.base import Access, GpuTrace

from tests.test_gpu_device import make_gpu, reads


class TestGpuErrorPaths:
    def test_double_trace_load_rejected(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        gpu.load_trace(GpuTrace(lanes=[reads([4096])], instructions=1))
        with pytest.raises(RuntimeError):
            gpu.load_trace(GpuTrace(lanes=[reads([4096])], instructions=1))

    def test_stray_data_response_rejected(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        stray = Packet(kind=PacketKind.DATA_RESP, src=0, dst=1, size_bytes=80, txn_id=999)
        with pytest.raises(ValueError):
            gpu._on_message(stray, 0)

    def test_stray_write_ack_rejected(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        stray = Packet(kind=PacketKind.WRITE_ACK, src=0, dst=1, size_bytes=16, txn_id=999)
        with pytest.raises(ValueError):
            gpu._on_message(stray, 0)

    def test_unexpected_packet_kind_rejected(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        ack = Packet(kind=PacketKind.SEC_ACK, src=0, dst=1, size_bytes=16)
        with pytest.raises(ValueError):
            gpu._on_message(ack, 0)

    def test_unknown_migration_data_is_ignored(self, sim, fake_transport):
        # late blocks for a migration that already committed must be benign
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        late = Packet(kind=PacketKind.MIGRATION_DATA, src=0, dst=1, size_bytes=80, address=0)
        gpu._on_message(late, 0)  # no exception


class TestHostCpu:
    def test_cpu_rejects_data_responses(self, sim, fake_transport):
        cpu = HostCpu(sim, fake_transport)
        resp = Packet(kind=PacketKind.DATA_RESP, src=1, dst=0, size_bytes=80)
        with pytest.raises(ValueError):
            cpu._on_message(resp, 0)

    def test_cpu_serves_reads(self, sim, fake_transport):
        cpu = HostCpu(sim, fake_transport)
        fake_transport.register(1, lambda p, t: None)
        req = Packet(kind=PacketKind.READ_REQ, src=1, dst=0, size_bytes=16, txn_id=1)
        cpu._on_message(req, 0)
        sim.run()
        kinds = [p.kind for p in fake_transport.sent]
        assert PacketKind.DATA_RESP in kinds
        assert cpu.served_requests == 1

    def test_cpu_dram_serializes_bulk(self, sim, fake_transport):
        cpu = HostCpu(sim, fake_transport, dram_latency=10, dram_bytes_per_cycle=64)
        done1 = cpu._dram_access(4096)
        done2 = cpu._dram_access(4096)
        assert done2 > done1  # bandwidth occupancy accumulates

    def test_iommu_counts_walks(self):
        iommu = Iommu(walk_latency=99)
        assert iommu.walk() == 99
        assert iommu.walk() == 99
        assert iommu.walks == 2


class TestIdealScheme:
    def _scheme(self):
        return IdealScheme(1, [0, 2], SecurityConfig(scheme="ideal"), AesGcmEngineModel())

    def test_always_hits(self):
        s = self._scheme()
        for t in (0, 0, 0, 1000):
            assert s.acquire_send(2, t).grant.wait == 0
            assert s.acquire_recv(0, t, synced=False).wait == 0

    def test_stats_recorded(self):
        s = self._scheme()
        s.acquire_send(2, 0)
        assert s.send_outcomes.fraction("hit") == 1.0

    def test_pool_size_reports_unbounded(self):
        assert self._scheme().pool_size() == 0

    def test_ideal_upper_bounds_private_in_system(self, sim, fake_transport):
        from repro.configs import scheme_config
        from repro.system import run_workload
        from repro.workloads import get_workload

        trace = get_workload("fft").generate(4, seed=1, scale=0.1)
        ideal = run_workload(scheme_config("ideal"), trace)
        trace = get_workload("fft").generate(4, seed=1, scale=0.1)
        private = run_workload(scheme_config("private"), trace)
        assert ideal.execution_cycles <= private.execution_cycles * 1.02
