"""End-to-end system tests: full machine, real workload traces."""

import pytest

from repro.configs import default_config, scheme_config
from repro.system import MultiGpuSystem, run_workload
from repro.workloads import get_workload

SCALE = 0.15  # small traces keep these tests fast


def simulate(scheme, workload="matrixmultiplication", n_gpus=4, seed=1, **overrides):
    trace = get_workload(workload).generate(n_gpus=n_gpus, seed=seed, scale=SCALE)
    if overrides:
        config = default_config(n_gpus, scheme="dynamic" if scheme == "batching" else scheme,
                                batching=(scheme == "batching"), **overrides)
    else:
        config = scheme_config(scheme, n_gpus=n_gpus)
    return run_workload(config, trace)


class TestCompletion:
    @pytest.mark.parametrize("scheme", ["unsecure", "private", "shared", "cached", "dynamic", "batching"])
    def test_all_schemes_complete(self, scheme):
        report = simulate(scheme)
        assert report.execution_cycles > 0
        assert report.per_gpu_finish and all(v > 0 for v in report.per_gpu_finish.values())

    @pytest.mark.parametrize("n_gpus", [1, 2, 4, 8])
    def test_various_gpu_counts(self, n_gpus):
        report = simulate("batching", n_gpus=n_gpus)
        assert report.n_gpus == n_gpus
        assert report.execution_cycles > 0

    def test_system_runs_exactly_once(self):
        trace = get_workload("fir").generate(4, seed=1, scale=SCALE)
        system = MultiGpuSystem(scheme_config("unsecure"))
        system.run(trace)
        with pytest.raises(RuntimeError):
            system.run(trace)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = simulate("batching", seed=3)
        b = simulate("batching", seed=3)
        assert a.execution_cycles == b.execution_cycles
        assert a.traffic_bytes == b.traffic_bytes
        assert a.remote_requests == b.remote_requests

    def test_different_seed_changes_random_workloads(self):
        a = simulate("unsecure", workload="pagerank", seed=1)
        b = simulate("unsecure", workload="pagerank", seed=2)
        assert a.execution_cycles != b.execution_cycles


class TestInvariants:
    def test_secure_never_reduces_traffic(self):
        base = simulate("unsecure")
        for scheme in ("private", "cached", "dynamic", "batching"):
            secured = simulate(scheme)
            assert secured.traffic_bytes > base.traffic_bytes

    def test_batching_reduces_metadata_vs_conventional(self):
        conventional = simulate("dynamic")
        batched = simulate("batching")
        assert batched.meta_traffic_bytes < conventional.meta_traffic_bytes

    def test_byte_accounting_consistent(self):
        for scheme in ("unsecure", "private", "batching"):
            r = simulate(scheme)
            assert r.base_traffic_bytes + r.meta_traffic_bytes == r.traffic_bytes

    def test_unsecure_has_no_metadata(self):
        r = simulate("unsecure")
        assert r.meta_traffic_bytes == 0
        assert r.otp_send.hit == 0.0 and r.otp_send.miss == 0.0

    def test_secure_commu_mode_has_crypto_but_no_meta_bytes(self):
        r = simulate("private", count_metadata=False)
        assert r.meta_traffic_bytes == 0
        assert r.otp_send.hit + r.otp_send.partial + r.otp_send.miss == pytest.approx(1.0)

    def test_otp_distribution_sums_to_one(self):
        r = simulate("private")
        for dist in (r.otp_send, r.otp_recv):
            assert dist.hit + dist.partial + dist.miss == pytest.approx(1.0)
        assert r.otp_send.hidden == pytest.approx(r.otp_send.hit + r.otp_send.partial)

    def test_more_otp_entries_do_not_hurt(self):
        small = simulate("private", otp_multiplier=1)
        big = simulate("private", otp_multiplier=16)
        assert big.execution_cycles <= small.execution_cycles

    def test_replay_guard_fully_drains(self):
        trace = get_workload("kmeans").generate(4, seed=1, scale=SCALE)
        system = MultiGpuSystem(scheme_config("batching"))
        system.run(trace)
        for node, guard in system.transport.guards.items():
            assert guard.outstanding() == 0, f"node {node} has unacked messages"
            assert guard.violations == 0

    def test_migrations_move_pages(self):
        trace = get_workload("matrixmultiplication").generate(4, seed=1, scale=SCALE)
        system = MultiGpuSystem(scheme_config("unsecure"))
        report = system.run(trace)
        if report.migrations:
            assert system.page_table.migrations == report.migrations

    def test_rpki_reported(self):
        r = simulate("unsecure", workload="relu")
        assert r.rpki > 0


class TestSlowdownApi:
    def test_slowdown_and_traffic_ratio(self):
        base = simulate("unsecure")
        secured = simulate("private")
        assert secured.slowdown_vs(base) >= 1.0 or abs(secured.slowdown_vs(base) - 1) < 0.2
        assert secured.traffic_ratio_vs(base) > 1.0

    def test_slowdown_rejects_empty_baseline(self):
        base = simulate("unsecure")
        broken = simulate("private")
        broken.execution_cycles = 0
        with pytest.raises(ValueError):
            base.slowdown_vs(broken)
