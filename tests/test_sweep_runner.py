"""Tests for the parallel sweep runner and the persistent result cache.

The load-bearing property is determinism: a sweep must produce
bit-identical :class:`SimulationReport` metrics whether its cells ran
serially, across worker processes, or came back from the on-disk cache.
Everything the figures read goes through ``report_to_dict``, so dict
equality is the equality that matters.
"""

from __future__ import annotations

import json

import pytest

from repro.configs import scheme_config
from repro.experiments.common import ExperimentRunner, multi_seed_slowdowns
from repro.runner import (
    ResultCache,
    SweepJob,
    SweepRunner,
    default_cache,
    execute_job,
    job_key,
    report_from_dict,
    report_to_dict,
)
from repro.workloads import get_workload
from repro.workloads.synthetic import synthetic_spec

SCALE = 0.1


def _grid(seed: int = 1) -> list[SweepJob]:
    """A small representative sweep: 2 workloads x 3 schemes."""
    jobs = []
    for name in ("fir", "matrixmultiplication"):
        spec = get_workload(name)
        for scheme in ("unsecure", "private", "batching"):
            jobs.append(
                SweepJob(spec=spec, config=scheme_config(scheme), seed=seed, scale=SCALE)
            )
    return jobs


class TestDeterminism:
    def test_serial_parallel_cached_bit_identical(self, tmp_path):
        grid = _grid()
        serial = SweepRunner(jobs=1).run_jobs(grid)

        par_runner = SweepRunner(jobs=4, mode="parallel")
        parallel = par_runner.run_jobs(grid)
        assert par_runner.stats.parallel_runs == len(grid)
        assert par_runner.stats.mode == "parallel"

        cache = ResultCache(tmp_path / "cache")
        SweepRunner(jobs=1, cache=cache).run_jobs(grid)  # cold: populates
        warm_runner = SweepRunner(jobs=1, cache=cache)
        cached = warm_runner.run_jobs(grid)
        assert warm_runner.stats.cache_hits == len(grid)
        assert warm_runner.stats.serial_runs == 0

        for s, p, c in zip(serial, parallel, cached):
            assert report_to_dict(s) == report_to_dict(p) == report_to_dict(c)

    def test_experiment_runner_parallel_matches_serial(self):
        workloads = [get_workload("fir")]
        configs = {"private": scheme_config("private")}
        r_serial = ExperimentRunner(
            scale=SCALE, workloads=workloads, jobs=1, use_cache=False
        ).sweep(configs)
        r_par = ExperimentRunner(
            scale=SCALE, workloads=workloads, jobs=4, use_cache=False
        ).sweep(configs)
        assert r_serial[0].slowdown("private") == r_par[0].slowdown("private")
        assert report_to_dict(r_serial[0].baseline) == report_to_dict(r_par[0].baseline)

    def test_multi_seed_slowdowns_parallel_matches_serial(self):
        workloads = [get_workload("fir")]
        configs = {"private": scheme_config("private")}
        kwargs = dict(seeds=(1, 2), scale=SCALE, workloads=workloads, use_cache=False)
        assert multi_seed_slowdowns(configs, jobs=1, **kwargs) == multi_seed_slowdowns(
            configs, jobs=3, **kwargs
        )


class TestCache:
    def test_roundtrip_is_exact(self, tmp_path):
        job = _grid()[2]  # a secured scheme: exercises OTP stats and ACK counts
        report = execute_job(job)
        cache = ResultCache(tmp_path)
        key = job_key(job)
        cache.store(key, report)
        loaded = cache.load(key)
        assert report_to_dict(loaded) == report_to_dict(report)
        # integer keys survive the JSON round trip
        assert loaded.per_gpu_finish == report.per_gpu_finish
        assert set(loaded.timelines) == set(report.timelines)
        node = next(iter(report.timelines))
        assert loaded.timelines[node].stacked_fractions() == report.timelines[
            node
        ].stacked_fractions()

    def test_changed_config_field_misses(self, tmp_path):
        spec = get_workload("fir")
        base = scheme_config("private")
        job = SweepJob(spec=spec, config=base, seed=1, scale=SCALE)
        changed = SweepJob(
            spec=spec,
            config=base.with_security(aes_gcm_latency=base.security.aes_gcm_latency + 1),
            seed=1,
            scale=SCALE,
        )
        assert job_key(job) != job_key(changed)

        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run_jobs([job])
        runner2 = SweepRunner(jobs=1, cache=cache)
        runner2.run_jobs([changed])
        assert runner2.stats.cache_hits == 0
        assert runner2.stats.serial_runs == 1

    def test_seed_and_scale_change_the_key(self):
        spec = get_workload("fir")
        cfg = scheme_config("private")
        k = job_key(SweepJob(spec=spec, config=cfg, seed=1, scale=SCALE))
        assert k != job_key(SweepJob(spec=spec, config=cfg, seed=2, scale=SCALE))
        assert k != job_key(SweepJob(spec=spec, config=cfg, seed=1, scale=SCALE * 2))

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        job = _grid()[0]
        cache = ResultCache(tmp_path)
        key = job_key(job)
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text("{not json")
        runner = SweepRunner(jobs=1, cache=cache)
        report = runner.run_jobs([job])[0]
        assert runner.stats.cache_hits == 0
        # the entry was rewritten and now loads cleanly
        assert report_to_dict(cache.load(key)) == report_to_dict(report)

    def test_unwritable_cache_root_does_not_lose_results(self):
        job = _grid()[0]
        cache = ResultCache("/proc/definitely-not-writable/cache")
        runner = SweepRunner(jobs=1, cache=cache)
        report = runner.run_jobs([job])[0]  # must not raise
        assert report.workload == "fir"
        assert cache.stores == 0

    def test_non_registry_spec_is_not_persisted(self, tmp_path):
        spec = synthetic_spec("custom-synth", remote_fraction=0.5)
        job = SweepJob(spec=spec, config=scheme_config("unsecure"), seed=1, scale=SCALE)
        assert job_key(job) is None
        cache = ResultCache(tmp_path)
        SweepRunner(jobs=1, cache=cache).run_jobs([job])
        assert list(cache.root.glob("*.json")) == []

    def test_default_cache_respects_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert default_cache() is None
        assert default_cache(use_cache=True) is not None  # explicit arg wins
        monkeypatch.delenv("REPRO_NO_CACHE")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envdir"))
        cache = default_cache()
        assert cache is not None and cache.root == tmp_path / "envdir"


class TestSweepMechanics:
    def test_duplicate_jobs_deduplicate_but_keep_order(self):
        spec = get_workload("fir")
        a = SweepJob(spec=spec, config=scheme_config("unsecure"), seed=1, scale=SCALE)
        b = SweepJob(spec=spec, config=scheme_config("private"), seed=1, scale=SCALE)
        runner = SweepRunner(jobs=1)
        reports = runner.run_jobs([a, b, a, b, a])
        assert runner.stats.deduplicated == 3
        assert runner.stats.serial_runs == 2
        assert [r.scheme for r in reports] == [
            "unsecure", "private", "unsecure", "private", "unsecure",
        ]
        assert reports[0] is reports[2] is reports[4]

    def test_serial_retry_recovers_from_transient_failure(self, monkeypatch):
        import repro.runner.sweep as sweep_mod

        job = _grid()[0]
        real = sweep_mod.execute_job
        calls = {"n": 0}

        def flaky(j, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(j, **kw)

        monkeypatch.setattr(sweep_mod, "execute_job", flaky)
        runner = SweepRunner(jobs=1, retries=1)
        report = runner.run_jobs([job])[0]
        assert report.workload == job.spec.name
        assert runner.stats.retries == 1

    def test_serial_failure_exhausts_retries(self, monkeypatch):
        import repro.runner.sweep as sweep_mod
        from repro.runner import SweepError

        monkeypatch.setattr(
            sweep_mod,
            "execute_job",
            lambda j, **kw: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(SweepError):
            SweepRunner(jobs=1, retries=1).run_jobs([_grid()[0]])

    def test_memo_identity_preserved_within_runner(self):
        runner = ExperimentRunner(
            scale=SCALE, workloads=[get_workload("fir")], use_cache=False
        )
        spec = runner.workloads[0]
        cfg = scheme_config("unsecure")
        assert runner.run(spec, cfg) is runner.run(spec, cfg)

    def test_cache_file_is_valid_json_with_description(self, tmp_path):
        job = _grid()[0]
        cache = ResultCache(tmp_path)
        SweepRunner(jobs=1, cache=cache).run_jobs([job])
        (path,) = cache.root.glob("*.json")
        data = json.loads(path.read_text())
        assert data["describe"]["job"].startswith("fir/")
        assert report_from_dict(data["report"]).workload == "fir"


def _hang_worker(store_root, payload):
    """Stand-in worker that wedges its pool slot (see TestHungWorker)."""
    import time as _time

    _time.sleep(60.0)
    raise AssertionError("hung worker was never terminated")


class TestHungWorker:
    def test_wedged_pool_is_recycled_and_cells_rescued_serially(self, monkeypatch):
        """A worker that never returns must not hang the sweep: the runner
        gives up after ``timeout`` seconds, stops waiting on the remaining
        futures, kills the pool's processes, and re-runs every unharvested
        cell serially in the parent."""
        import multiprocessing
        import time

        import repro.runner.sweep as sweep_mod

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("monkeypatched worker needs fork start method")

        monkeypatch.setattr(sweep_mod, "_worker", _hang_worker)
        jobs = _grid()[:2]
        expected = [report_to_dict(execute_job(job)) for job in jobs]

        runner = SweepRunner(jobs=2, timeout=1.0, mode="parallel")
        start = time.monotonic()
        reports = runner.run_jobs(jobs)
        elapsed = time.monotonic() - start

        # Nowhere near the worker's 60 s sleep: one timeout for the first
        # future, the second skipped as wedged, then serial rescue.
        assert elapsed < 30.0
        assert [report_to_dict(r) for r in reports] == expected
        assert runner.stats.fallbacks >= 1
        assert runner.stats.parallel_runs == 0

        # The wedged pool processes were terminated, not leaked.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()


class TestRetryBackoff:
    """Exponential backoff with deterministic jitter + the failure manifest."""

    def test_retry_delay_grows_and_caps(self):
        runner = SweepRunner(jobs=1, retry_backoff=0.1, retry_backoff_max=0.5)
        job = _grid()[0]
        delays = [runner._retry_delay(job, attempt) for attempt in range(6)]
        # monotone non-decreasing bases: 0.1, 0.2, 0.4, then capped at 0.5
        bases = [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]
        for delay, base in zip(delays, bases):
            assert base <= delay <= base * 1.25

    def test_retry_delay_is_deterministic_per_cell(self):
        a = SweepRunner(jobs=1)
        b = SweepRunner(jobs=1)
        job = _grid()[0]
        assert a._retry_delay(job, 0) == b._retry_delay(job, 0)
        # different cells jitter differently at the same attempt
        other = _grid()[1]
        assert a._retry_delay(job, 0) != a._retry_delay(other, 0)

    def test_zero_backoff_disables_sleeping(self):
        runner = SweepRunner(jobs=1, retry_backoff=0.0)
        assert runner._retry_delay(_grid()[0], 3) == 0.0

    def test_rescued_cell_lands_in_failure_manifest(self, monkeypatch):
        import repro.runner.sweep as sweep_mod

        job = _grid()[0]
        real = sweep_mod.execute_job
        calls = {"n": 0}

        def flaky(j, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(j, **kw)

        monkeypatch.setattr(sweep_mod, "execute_job", flaky)
        runner = SweepRunner(jobs=1, retries=1, retry_backoff=0.001)
        runner.run_jobs([job])
        assert len(runner.stats.failures) == 1
        entry = runner.stats.failures[0]
        assert entry["cell"] == job.describe()
        assert entry["rescued"] is True
        assert entry["attempts"] == 2
        assert entry["backoff_s"] > 0
        assert entry["errors"] == [
            {"attempt": 1, "type": "RuntimeError", "message": "transient"}
        ]

    def test_exhausted_cell_lands_unrescued(self, monkeypatch):
        import repro.runner.sweep as sweep_mod
        from repro.runner import SweepError

        monkeypatch.setattr(
            sweep_mod,
            "execute_job",
            lambda j, **kw: (_ for _ in ()).throw(ValueError("persistent")),
        )
        runner = SweepRunner(jobs=1, retries=2, retry_backoff=0.001)
        with pytest.raises(SweepError):
            runner.run_jobs([_grid()[0]])
        entry = runner.stats.failures[0]
        assert entry["rescued"] is False
        assert entry["attempts"] == 3
        assert [e["type"] for e in entry["errors"]] == ["ValueError"] * 3
        assert runner.stats.retries == 2

    def test_clean_run_has_empty_manifest(self):
        runner = SweepRunner(jobs=1)
        runner.run_jobs([_grid()[0]])
        assert runner.stats.failures == []
        assert runner.stats.as_dict()["failures"] == []


class TestCpuAffinity:
    """``resolve_jobs`` must respect the scheduler affinity mask, not the
    host's raw core count — a cgroup-limited runner (CI container, the
    simulation service in a pod) oversubscribes its pool otherwise."""

    def test_available_cpus_reads_affinity_mask(self, monkeypatch):
        import repro.runner.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod.os, "sched_getaffinity", lambda pid: {0, 1, 2})
        assert sweep_mod.available_cpus() == 3

    def test_available_cpus_falls_back_to_cpu_count(self, monkeypatch):
        import repro.runner.sweep as sweep_mod

        monkeypatch.delattr(sweep_mod.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 7)
        assert sweep_mod.available_cpus() == 7

    def test_resolve_jobs_capped_by_affinity(self, monkeypatch):
        import repro.runner.sweep as sweep_mod
        from repro.runner import resolve_jobs

        monkeypatch.setattr(sweep_mod.os, "sched_getaffinity", lambda pid: {0, 1})
        assert resolve_jobs(8) == 2   # explicit request capped at the mask
        assert resolve_jobs(1) == 1   # requests inside the mask untouched
        monkeypatch.setenv("REPRO_JOBS", "16")
        assert resolve_jobs(None) == 2  # env-derived counts capped too

    def test_resolve_jobs_single_cpu_affinity_forces_one_worker(self, monkeypatch):
        import repro.runner.sweep as sweep_mod
        from repro.runner import resolve_jobs

        monkeypatch.setattr(sweep_mod.os, "sched_getaffinity", lambda pid: {5})
        assert resolve_jobs(4) == 1

    def test_auto_mode_goes_serial_under_single_cpu_affinity(self, monkeypatch):
        import repro.runner.sweep as sweep_mod

        # 8 host cores visible, but the mask allows one: auto must pick
        # serial — pool spawn on an oversubscribed core only loses time.
        monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 8)
        monkeypatch.setattr(sweep_mod.os, "sched_getaffinity", lambda pid: {0})
        runner = SweepRunner(jobs=4, mode="auto")
        assert runner._resolve_mode(n_workers=4, n_pending=10) == "serial"

    def test_auto_mode_parallel_with_wide_affinity(self, monkeypatch):
        import repro.runner.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod.os, "sched_getaffinity", lambda pid: {0, 1, 2, 3})
        runner = SweepRunner(jobs=4, mode="auto")
        assert runner._resolve_mode(n_workers=4, n_pending=10) == "parallel"
