"""Message-trace capture and export tests."""

import pytest

from repro.configs import scheme_config
from repro.system import MultiGpuSystem
from repro.tracing import MessageRecord, MessageTracer, load_trace
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def traced():
    system = MultiGpuSystem(scheme_config("private"))
    tracer = MessageTracer().attach(system)
    report = system.run(get_workload("fir").generate(4, seed=1, scale=0.08))
    return tracer, report


class TestCapture:
    def test_records_cover_traffic(self, traced):
        tracer, report = traced
        assert tracer.records
        # every recorded byte is on the fabric (ACKs are housekeeping and
        # excluded from the instrumentation hooks, hence <=)
        assert tracer.total_bytes() <= report.traffic_bytes

    def test_latencies_positive_and_sane(self, traced):
        tracer, _ = traced
        for record in tracer.records:
            assert record.delivered_at > record.sent_at
            assert record.latency < 100_000

    def test_kinds_are_packet_kinds(self, traced):
        tracer, _ = traced
        kinds = {r.kind for r in tracer.records}
        assert "read_req" in kinds
        assert "data_resp" in kinds

    def test_by_pair_grouping(self, traced):
        tracer, _ = traced
        pairs = tracer.by_pair()
        assert pairs
        for (src, dst), records in pairs.items():
            assert src != dst
            assert all(r.src == src and r.dst == dst for r in records)

    def test_mean_latency_filter(self, traced):
        tracer, _ = traced
        assert tracer.mean_latency() > 0
        resp = tracer.mean_latency("data_resp")
        assert resp > 0

    def test_double_attach_rejected(self):
        system = MultiGpuSystem(scheme_config("unsecure"))
        MessageTracer().attach(system)
        with pytest.raises(RuntimeError):
            MessageTracer().attach(system)

    def test_tracing_does_not_change_timing(self):
        def run(with_tracer):
            system = MultiGpuSystem(scheme_config("private"))
            if with_tracer:
                MessageTracer().attach(system)
            return system.run(
                get_workload("fir").generate(4, seed=1, scale=0.08)
            ).execution_cycles

        assert run(True) == run(False)


class TestExport:
    def test_jsonl_round_trip(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "trace.jsonl"
        count = tracer.dump_jsonl(path)
        assert count == len(tracer.records)
        loaded = load_trace(path)
        assert loaded == tracer.records

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"pid": 1}\nnot json\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        record = MessageRecord(1, "data_resp", 1, 2, 80, 17, 0, 50)
        path = tmp_path / "t.jsonl"
        import dataclasses, json

        path.write_text(json.dumps(dataclasses.asdict(record)) + "\n\n")
        assert load_trace(path) == [record]
