"""Message-trace capture and export tests."""

import pytest

from repro.configs import scheme_config
from repro.system import MultiGpuSystem
from repro.tracing import MessageRecord, MessageTracer, load_trace
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def traced():
    system = MultiGpuSystem(scheme_config("private"))
    tracer = MessageTracer().attach(system)
    report = system.run(get_workload("fir").generate(4, seed=1, scale=0.08))
    return tracer, report


class TestCapture:
    def test_records_cover_traffic(self, traced):
        tracer, report = traced
        assert tracer.records
        # every recorded byte is on the fabric (ACKs are housekeeping and
        # excluded from the instrumentation hooks, hence <=)
        assert tracer.total_bytes() <= report.traffic_bytes

    def test_latencies_positive_and_sane(self, traced):
        tracer, _ = traced
        for record in tracer.records:
            assert record.delivered_at > record.sent_at
            assert record.latency < 100_000

    def test_kinds_are_packet_kinds(self, traced):
        tracer, _ = traced
        kinds = {r.kind for r in tracer.records}
        assert "read_req" in kinds
        assert "data_resp" in kinds

    def test_by_pair_grouping(self, traced):
        tracer, _ = traced
        pairs = tracer.by_pair()
        assert pairs
        for (src, dst), records in pairs.items():
            assert src != dst
            assert all(r.src == src and r.dst == dst for r in records)

    def test_mean_latency_filter(self, traced):
        tracer, _ = traced
        assert tracer.mean_latency() > 0
        resp = tracer.mean_latency("data_resp")
        assert resp > 0

    def test_double_attach_rejected(self):
        system = MultiGpuSystem(scheme_config("unsecure"))
        MessageTracer().attach(system)
        with pytest.raises(RuntimeError):
            MessageTracer().attach(system)

    def test_no_pending_sends_after_clean_run(self, traced):
        # Housekeeping (ACK/NACK/batch-MAC) never reaches the arrival hook,
        # so tracking it would leak one _sent entry per ACK.
        tracer, _ = traced
        assert tracer._sent == {}

    def test_tracing_does_not_change_timing(self):
        def run(with_tracer):
            system = MultiGpuSystem(scheme_config("private"))
            if with_tracer:
                MessageTracer().attach(system)
            return system.run(
                get_workload("fir").generate(4, seed=1, scale=0.08)
            ).execution_cycles

        assert run(True) == run(False)


class TestDetach:
    def test_detach_restores_hooks_and_releases(self):
        system = MultiGpuSystem(scheme_config("unsecure"))
        transport = system.transport
        original_send = transport._note_send
        original_arrival = transport._note_arrival
        original_fault = transport._note_fault
        tracer = MessageTracer().attach(system)
        assert transport._note_send != original_send
        tracer.detach()
        # bound methods compare equal when instance and function match
        assert transport._note_send == original_send
        assert transport._note_arrival == original_arrival
        assert transport._note_fault == original_fault
        assert transport._tracer is None

    def test_detach_without_attach_raises(self):
        with pytest.raises(RuntimeError):
            MessageTracer().detach()
        system = MultiGpuSystem(scheme_config("unsecure"))
        tracer = MessageTracer().attach(system)
        tracer.detach()
        with pytest.raises(RuntimeError):
            tracer.detach()

    def test_attached_tracer_cannot_grab_second_transport(self):
        tracer = MessageTracer().attach(MultiGpuSystem(scheme_config("unsecure")))
        with pytest.raises(RuntimeError):
            tracer.attach(MultiGpuSystem(scheme_config("unsecure")))

    def test_reattach_after_detach_records_again(self):
        config = scheme_config("private")
        trace = get_workload("fir").generate(4, seed=1, scale=0.08)
        system = MultiGpuSystem(config)
        tracer = MessageTracer().attach(system)
        tracer.detach()
        second = MessageTracer().attach(system)
        system.run(trace)
        assert not tracer.records  # detached before the run saw traffic
        assert second.records

    def test_detached_run_timing_unchanged(self):
        def run(detached_tracer):
            system = MultiGpuSystem(scheme_config("private"))
            if detached_tracer:
                MessageTracer().attach(system).detach()
            trace = get_workload("fir").generate(4, seed=1, scale=0.08)
            return system.run(trace).execution_cycles

        assert run(True) == run(False)


class TestFaultEviction:
    """A fault-injected run must leave the pending-send table empty."""

    def _faulty_run(self, scheme, **rates):
        config = scheme_config(scheme).with_fault(seed=7, **rates)
        system = MultiGpuSystem(config)
        tracer = MessageTracer().attach(system)
        system.run(get_workload("fir").generate(4, seed=1, scale=0.1))
        return tracer

    def test_drop_heavy_run_leaves_no_pending_sends(self):
        tracer = self._faulty_run("private", drop_rate=0.05, corrupt_rate=0.05)
        counts = tracer.fault_counts()
        assert counts.get("drop", 0) > 0  # the scenario actually exercised drops
        assert tracer.records
        assert tracer._sent == {}

    def test_all_fault_kinds_leave_no_pending_sends(self):
        tracer = self._faulty_run(
            "batching",
            drop_rate=0.02,
            corrupt_rate=0.02,
            duplicate_rate=0.005,
            delay_rate=0.005,
        )
        assert tracer.records
        assert tracer._sent == {}

    def test_dropped_then_retransmitted_block_still_recorded(self):
        tracer = self._faulty_run("private", drop_rate=0.05)
        dropped = {e.pid for e in tracer.fault_events if e.event == "drop"}
        assert dropped
        recorded = {r.pid for r in tracer.records}
        given_up = {e.pid for e in tracer.fault_events if e.event == "give-up"}
        # every dropped block either made it after retransmission or was
        # reported as given up — none vanish from the trace bookkeeping
        assert dropped <= (recorded | given_up)


class TestExport:
    def test_jsonl_round_trip(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "trace.jsonl"
        count = tracer.dump_jsonl(path)
        assert count == len(tracer.records)
        loaded = load_trace(path)
        assert loaded == tracer.records

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"pid": 1}\nnot json\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        record = MessageRecord(1, "data_resp", 1, 2, 80, 17, 0, 50)
        path = tmp_path / "t.jsonl"
        import dataclasses, json

        path.write_text(json.dumps(dataclasses.asdict(record)) + "\n\n")
        assert load_trace(path) == [record]
