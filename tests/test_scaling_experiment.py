"""Scaling-experiment harness unit tests (tiny workload sets)."""

import pytest

from repro.experiments import fig24_25_scaling as scaling
from repro.experiments.common import ExperimentRunner
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def small_runner_8():
    workloads = [get_workload(n) for n in ("relu", "stencil2d")]
    return ExperimentRunner(n_gpus=8, seed=1, scale=0.1, workloads=workloads)


def test_runner_gpu_count_must_match(small_runner_8):
    with pytest.raises(ValueError):
        scaling.run(4, runner=small_runner_8)


def test_8gpu_structure(small_runner_8):
    result = scaling.run(8, runner=small_runner_8)
    assert result.n_gpus == 8
    assert set(result.slowdowns) == {"relu", "st"}
    for per_wl in result.slowdowns.values():
        assert set(per_wl) == set(scaling.SCHEME_KEYS)
    text = scaling.format_result(result)
    assert "Figure 24" in text
    assert "Ours improves" in text


def test_improvement_metric(small_runner_8):
    result = scaling.run(8, runner=small_runner_8)
    expected = result.average("private") / result.average("ours") - 1.0
    assert result.improvement_over("private") == pytest.approx(expected)


def test_16gpu_label():
    workloads = [get_workload("fir")]
    runner = ExperimentRunner(n_gpus=16, seed=1, scale=0.08, workloads=workloads)
    result = scaling.run(16, runner=runner)
    assert "Figure 25" in scaling.format_result(result)
