"""Experiment-harness tests (small scale for speed)."""

import pytest

from repro.experiments import fig08_otp_sensitivity as fig08
from repro.experiments import fig09_prior_schemes as fig09
from repro.experiments import fig10_otp_distribution as fig10
from repro.experiments import fig11_overhead_breakdown as fig11
from repro.experiments import fig12_traffic
from repro.experiments import fig13_14_timelines as fig1314
from repro.experiments import fig15_16_burstiness as fig1516
from repro.experiments import fig21_main_result as fig21
from repro.experiments import fig26_aes_latency as fig26
from repro.experiments import hw_overhead, table1_storage
from repro.experiments.common import ExperimentRunner, format_table, geometric_mean
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def runner():
    # three representative workloads keep the matrix small
    workloads = [get_workload(n) for n in ("relu", "matrixmultiplication", "fir")]
    return ExperimentRunner(n_gpus=4, seed=1, scale=0.15, workloads=workloads)


class TestCommon:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_runner_memoizes(self, runner):
        from repro.configs import scheme_config

        spec = runner.workloads[0]
        r1 = runner.run(spec, scheme_config("unsecure"))
        r2 = runner.run(spec, scheme_config("unsecure"))
        assert r1 is r2  # cached object, no re-simulation

    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in lines[-1]


class TestTable1:
    def test_all_rows_generated(self):
        rows = table1_storage.run()
        assert len(rows) == 4 * 5
        assert "2.75 KB" in table1_storage.format_result(rows)

    def test_paper_anchor_cells(self):
        for (n, m), (kib, otps) in table1_storage.PAPER_VALUES.items():
            row = table1_storage.storage_row(n, m)
            assert row.total_kib == pytest.approx(kib, abs=0.02)
            assert row.total_entries == otps


class TestFigureHarnesses:
    def test_fig08_runs_and_orders(self, runner):
        result = fig08.run(runner, multipliers=(1, 4))
        assert result.average(1) >= result.average(4) - 0.05
        assert "OTP 1x" in fig08.format_result(result)

    def test_fig09_shared_is_worst(self, runner):
        result = fig09.run(runner)
        assert result.average("shared") > result.average("private")
        assert result.average("shared") > result.average("cached")
        assert "average" in fig09.format_result(result)

    def test_fig10_distributions_normalized(self, runner):
        result = fig10.run(runner, schemes=("private", "shared"))
        for scheme in result.schemes:
            for direction in ("send", "recv"):
                d = result.distributions[scheme][direction]
                assert d.hit + d.partial + d.miss == pytest.approx(1.0, abs=1e-6)
        assert "OTP_Hit" in fig10.format_result(result)

    def test_fig11_traffic_adds_overhead(self, runner):
        result = fig11.run(runner)
        assert result.average("traffic") >= result.average("secure_commu")

    def test_fig12_metadata_inflates_traffic(self, runner):
        result = fig12_traffic.run(runner, schemes=("private", "batching"))
        assert result.average("private") > 1.1
        assert result.average("batching") < result.average("private")
        for shares in result.meta_share.values():
            assert 0 <= shares["private"] < 0.5

    def test_fig13_14_timeline_structure(self, runner):
        result = fig1314.run(runner)
        assert result.n_buckets >= 1
        assert len(result.send_fraction) == result.n_buckets
        for series in result.dest_fractions.values():
            assert len(series) == result.n_buckets
        assert fig1314.pattern_drift(result) >= 0.0

    def test_fig15_16_fractions(self, runner):
        result = fig1516.run(runner)
        for fracs in result.burst16.values():
            assert abs(sum(fracs) - 1.0) < 1e-6 or sum(fracs) == 0.0
        assert 0.0 <= result.fraction_within_160(16) <= 1.0
        assert "Figure 15" in fig1516.format_result(result, 16)
        assert "Figure 16" in fig1516.format_result(result, 32)

    def test_fig21_headline_shapes(self, runner):
        result = fig21.run(runner)
        assert result.average("batching_4x") < result.average("private_4x")
        assert result.average("private_16x") < result.average("private_4x") + 0.01
        assert "average" in fig21.format_result(result)

    def test_fig26_latency_monotonicity(self, runner):
        result = fig26.run(runner, latencies=(10, 40))
        for scheme in fig26.SCHEME_KEYS:
            assert result.averages[(scheme, 10)] <= result.averages[(scheme, 40)] + 0.02

    def test_hw_overhead_anchors(self):
        o = hw_overhead.compute(4, 4)
        assert o.monitor_counter_bits == 512
        assert o.msgmac_storage_kib_per_gpu == pytest.approx(2.0)
        assert o.otp_buffer_kib_per_gpu == pytest.approx(2.75, abs=0.01)
