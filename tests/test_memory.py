"""Unified-memory substrate tests."""

import pytest

from repro.memory.address_space import (
    AddressSpace,
    BLOCKS_PER_PAGE,
    PAGE_BYTES,
    Placement,
    block_of,
    page_of,
)
from repro.memory.directory import BlockDirectory
from repro.memory.migration import (
    AccessCounterMigrationPolicy,
    MigrationCost,
    MigrationDecision,
)
from repro.memory.page_table import PageTable


class TestAddressSpace:
    def test_page_and_block_math(self):
        assert page_of(0) == 0
        assert page_of(PAGE_BYTES) == 1
        assert block_of(64) == 1
        assert BLOCKS_PER_PAGE == 64

    def test_alloc_owner_placement(self):
        space = AddressSpace(gpu_nodes=[1, 2])
        arr = space.alloc("input", 3 * PAGE_BYTES, Placement.OWNER, owner=0)
        first = page_of(arr.base)
        assert all(space.initial_owner(first + i) == 0 for i in range(3))

    def test_alloc_interleaved_placement(self):
        space = AddressSpace(gpu_nodes=[1, 2, 3])
        arr = space.alloc("a", 6 * PAGE_BYTES, Placement.INTERLEAVED)
        first = page_of(arr.base)
        owners = [space.initial_owner(first + i) for i in range(6)]
        assert owners == [1, 2, 3, 1, 2, 3]

    def test_alloc_blocked_placement(self):
        space = AddressSpace(gpu_nodes=[1, 2])
        arr = space.alloc("a", 4 * PAGE_BYTES, Placement.BLOCKED)
        first = page_of(arr.base)
        owners = [space.initial_owner(first + i) for i in range(4)]
        assert owners == [1, 1, 2, 2]

    def test_allocations_do_not_overlap(self):
        space = AddressSpace(gpu_nodes=[1])
        a = space.alloc("a", PAGE_BYTES + 1, Placement.INTERLEAVED)
        b = space.alloc("b", PAGE_BYTES, Placement.INTERLEAVED)
        assert b.base >= a.base + 2 * PAGE_BYTES  # a occupies 2 pages

    def test_array_addressing(self):
        space = AddressSpace(gpu_nodes=[1])
        arr = space.alloc("a", PAGE_BYTES, Placement.INTERLEAVED)
        assert arr.addr(0) == arr.base
        assert arr.block_addr(2) == arr.base + 128
        with pytest.raises(IndexError):
            arr.addr(PAGE_BYTES)

    def test_duplicate_and_invalid_allocs(self):
        space = AddressSpace(gpu_nodes=[1])
        space.alloc("a", 64, Placement.INTERLEAVED)
        with pytest.raises(ValueError):
            space.alloc("a", 64, Placement.INTERLEAVED)
        with pytest.raises(ValueError):
            space.alloc("b", 0, Placement.INTERLEAVED)
        with pytest.raises(ValueError):
            space.alloc("c", 64, Placement.OWNER)  # owner missing

    def test_unallocated_page_raises(self):
        space = AddressSpace(gpu_nodes=[1])
        with pytest.raises(KeyError):
            space.initial_owner(999999)


class TestPageTable:
    def test_owner_and_migrate(self):
        pt = PageTable({10: 1, 11: 2})
        assert pt.owner(10) == 1
        old = pt.migrate(10, 3)
        assert old == 1
        assert pt.owner(10) == 3
        assert pt.migrations == 1

    def test_migrate_to_same_owner_rejected(self):
        pt = PageTable({10: 1})
        with pytest.raises(ValueError):
            pt.migrate(10, 1)

    def test_access_counts_and_reset_on_migration(self):
        pt = PageTable({5: 1})
        assert pt.record_access(5, 2) == 1
        assert pt.record_access(5, 2) == 2
        assert pt.record_access(5, 3) == 1
        pt.migrate(5, 2)
        assert pt.access_count(5, 2) == 0

    def test_unmapped_page_raises(self):
        pt = PageTable({})
        with pytest.raises(KeyError):
            pt.owner(1)

    def test_pages_owned_by(self):
        pt = PageTable({1: 1, 2: 2, 3: 1})
        assert sorted(pt.pages_owned_by(1)) == [1, 3]
        assert len(pt) == 3


class TestMigrationPolicy:
    def _policy(self, threshold=3):
        pt = PageTable({7: 1})
        return AccessCounterMigrationPolicy(pt, threshold=threshold), pt

    def test_direct_access_below_threshold(self):
        policy, _ = self._policy(threshold=3)
        assert policy.on_remote_access(7, 2) is MigrationDecision.DIRECT_ACCESS
        assert policy.on_remote_access(7, 2) is MigrationDecision.DIRECT_ACCESS
        assert policy.on_remote_access(7, 2) is MigrationDecision.MIGRATE

    def test_counters_are_per_accessor(self):
        policy, _ = self._policy(threshold=2)
        assert policy.on_remote_access(7, 2) is MigrationDecision.DIRECT_ACCESS
        assert policy.on_remote_access(7, 3) is MigrationDecision.DIRECT_ACCESS
        assert policy.on_remote_access(7, 2) is MigrationDecision.MIGRATE

    def test_pinned_pages_never_migrate(self):
        policy, _ = self._policy(threshold=1)
        policy.pin(7)
        for _ in range(5):
            assert policy.on_remote_access(7, 2) is MigrationDecision.DIRECT_ACCESS

    def test_pin_array_pages(self):
        policy, _ = self._policy()
        policy.pin_array_pages(100, 3)
        assert policy.is_pinned(101)
        assert not policy.is_pinned(103)

    def test_commit_updates_page_table(self):
        policy, pt = self._policy(threshold=1)
        assert policy.on_remote_access(7, 2) is MigrationDecision.MIGRATE
        old = policy.commit_migration(7, 2)
        assert old == 1 and pt.owner(7) == 2

    def test_cost_cycles(self):
        pt = PageTable({1: 1})
        policy = AccessCounterMigrationPolicy(
            pt, threshold=1, cost=MigrationCost(driver_cycles=10, shootdown_cycles=5)
        )
        assert policy.total_cost_cycles == 15

    def test_threshold_validation(self):
        pt = PageTable({})
        with pytest.raises(ValueError):
            AccessCounterMigrationPolicy(pt, threshold=0)


class TestBlockDirectory:
    def test_first_request_issues_later_merge(self):
        d = BlockDirectory()
        seen = []
        assert d.request(1, 100, lambda t: seen.append(("a", t))) is True
        assert d.request(1, 100, lambda t: seen.append(("b", t))) is False
        assert d.in_flight(1, 100)
        assert d.complete(1, 100, 55) == 2
        assert seen == [("a", 55), ("b", 55)]
        assert not d.in_flight(1, 100)

    def test_distinct_nodes_do_not_merge(self):
        d = BlockDirectory()
        assert d.request(1, 100, lambda t: None) is True
        assert d.request(2, 100, lambda t: None) is True
        assert d.pending_count() == 2
        assert d.pending_count(1) == 1

    def test_complete_without_request_raises(self):
        d = BlockDirectory()
        with pytest.raises(KeyError):
            d.complete(1, 5, 0)

    def test_counters(self):
        d = BlockDirectory()
        d.request(1, 1, lambda t: None)
        d.request(1, 1, lambda t: None)
        d.request(1, 2, lambda t: None)
        assert d.issued == 2
        assert d.merged == 1
