"""Synthetic workload generator: the dials must move the right metrics."""

import pytest

from repro.configs import scheme_config
from repro.memory.address_space import page_of
from repro.system import run_workload
from repro.workloads.synthetic import synthetic_spec, synthetic_workload

from tests.test_workload_structure import remote_fraction as measured_remote_fraction


def build(**knobs):
    return synthetic_workload(n_gpus=4, seed=1, scale=0.3, **knobs)


class TestDials:
    def test_remote_fraction_dial(self):
        low = build(remote_fraction=0.1)
        high = build(remote_fraction=0.9)
        assert measured_remote_fraction(high, 1) > measured_remote_fraction(low, 1) + 0.3

    def test_gap_dial_changes_rpki(self):
        fast = run_workload(scheme_config("unsecure"), build(gap=0))
        slow = run_workload(scheme_config("unsecure"), build(gap=20))
        assert fast.rpki > slow.rpki

    def test_skew_dial_concentrates_destinations(self):
        def owner_entropy(trace):
            counts = {}
            for lane in trace.gpu_traces[1].lanes:
                for a in lane:
                    o = trace.initial_owners[page_of(a.address)]
                    if o not in (0, 1):
                        counts[o] = counts.get(o, 0) + 1
            total = sum(counts.values())
            return max(counts.values()) / total if total else 0.0

        uniform = build(skew=0.0, remote_fraction=0.9, phase_length=1000)
        skewed = build(skew=20.0, remote_fraction=0.9, phase_length=1000)
        assert owner_entropy(skewed) > owner_entropy(uniform)

    def test_burst_length_dial(self):
        thin = run_workload(scheme_config("unsecure"), build(burst_length=2))
        fat = run_workload(scheme_config("unsecure"), build(burst_length=32))
        frac_fat = fat.burst16_fractions[0] + fat.burst16_fractions[1]
        frac_thin = thin.burst16_fractions[0] + thin.burst16_fractions[1]
        assert frac_fat >= frac_thin

    def test_cpu_share_dial(self):
        def cpu_touches(trace):
            return sum(
                1
                for lane in trace.gpu_traces[1].lanes
                for a in lane
                if trace.initial_owners[page_of(a.address)] == 0
            )

        none = build(cpu_share=0.0, remote_fraction=0.8)
        lots = build(cpu_share=0.9, remote_fraction=0.8)
        assert cpu_touches(lots) > cpu_touches(none)


class TestValidation:
    def test_traces_validate_and_run(self):
        trace = build()
        trace.validate()
        report = run_workload(scheme_config("batching"), trace)
        assert report.execution_cycles > 0

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            build(remote_fraction=1.5)
        with pytest.raises(ValueError):
            build(burst_length=0)
        with pytest.raises(ValueError):
            build(gap=-1)
        with pytest.raises(ValueError):
            build(cpu_share=-0.1)

    def test_spec_wrapper_is_registry_compatible(self):
        spec = synthetic_spec("my-app", rpki_class="high", remote_fraction=0.8)
        trace = spec.generate(n_gpus=4, seed=2, scale=0.2)
        trace.validate()
        assert spec.suite == "synthetic"

    def test_deterministic_per_seed(self):
        a = synthetic_workload(4, seed=9, scale=0.2)
        b = synthetic_workload(4, seed=9, scale=0.2)
        assert [x.address for x in a.gpu_traces[2].lanes[0]] == [
            x.address for x in b.gpu_traces[2].lanes[0]
        ]
