"""Observability layer: metrics registry, telemetry, exports, determinism.

The contract under test (see ``docs/OBSERVABILITY.md``): every scheme
emits one uniform, validated metric namespace; the snapshot is a pure
function of the job description, so serial / parallel / cache-hit runs
export byte-identical metrics files; and wall-clock profiling never leaks
into the deterministic snapshot.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.configs import scheme_config
from repro.obs import (
    KNOWN_NAMESPACES,
    MetricsRegistry,
    Telemetry,
    diff_metrics,
    encode_metric,
    metrics_to_jsonl,
    read_metrics,
    validate_metrics,
    validate_name,
    write_metrics_json,
    write_metrics_jsonl,
)
from repro.runner import ResultCache, SweepJob, SweepRunner, execute_job
from repro.sim.stats import Histogram, RatioStat
from repro.workloads import get_workload

SCALE = 0.1


def _job(scheme: str, **fault) -> SweepJob:
    config = scheme_config(scheme)
    if fault:
        config = config.with_fault(**fault)
    return SweepJob(spec=get_workload("fir"), config=config, seed=1, scale=SCALE)


def _adv_job(scheme: str, fault: dict | None = None, **adversary) -> SweepJob:
    config = scheme_config(scheme)
    if fault:
        config = config.with_fault(**fault)
    if adversary:
        config = config.with_adversary(**adversary)
    return SweepJob(spec=get_workload("fir"), config=config, seed=1, scale=SCALE)


class TestNameValidation:
    def test_good_names_pass(self):
        for name in ("otp.send", "fault.mac_reject", "engine.pushes", "otp.send.hit"):
            validate_name(name)

    def test_malformed_names_rejected(self):
        for name in ("otp", "Otp.send", "otp.", ".send", "otp send", "otp.Send"):
            with pytest.raises(ValueError):
                validate_name(name)

    def test_unknown_namespace_rejected(self):
        with pytest.raises(ValueError, match="unknown namespace"):
            validate_name("mystery.value")


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        c = reg.counter("msg.sent")
        c.add(3)
        assert reg.counter("msg.sent") is c
        assert reg.counter("msg.sent").value == 3
        assert "msg.sent" in reg
        assert len(reg) == 1

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("msg.sent")
        with pytest.raises(TypeError):
            reg.gauge("msg.sent")

    def test_register_adopts_component_primitive(self):
        reg = MetricsRegistry()
        hist = Histogram("burst16", edges=[40, 160])
        reg.register("burst.accum16", hist)
        reg.register("burst.accum16", hist)  # same object: no-op
        assert reg.get("burst.accum16") is hist
        with pytest.raises(ValueError):
            reg.register("burst.accum16", Histogram("other", edges=[40]))

    def test_register_rejects_unsupported_primitive(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("run.thing", object())

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("traffic.bytes").add(7)
        reg.gauge("run.rpki").set(1.5)
        ratio = RatioStat("otp")
        ratio.record("hit", 2)
        ratio.record("miss")
        reg.register("otp.send", ratio)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["traffic.bytes"] == {"type": "counter", "value": 7}
        assert snap["run.rpki"] == {"type": "gauge", "value": 1.5}
        assert snap["otp.send"] == {"type": "ratio", "counts": {"hit": 2, "miss": 1}}
        # snapshot must be JSON-safe as-is
        json.dumps(snap)

    def test_encode_histogram_payload(self):
        hist = Histogram("h", edges=[10, 20])
        for v in (5, 15, 25):
            hist.record(v)
        payload = encode_metric(hist)
        assert payload == {
            "type": "histogram",
            "edges": [10, 20],
            "counts": [1, 1, 1],
            "total": 3,
            "sum": 45,
        }


class TestTelemetry:
    def test_phase_accumulates_wall_clock(self):
        telemetry = Telemetry()
        with telemetry.phase("system.simulate"):
            pass
        with telemetry.phase("system.simulate"):
            pass
        profile = telemetry.profile_snapshot()
        assert profile["phases"]["system.simulate"]["calls"] == 2
        assert profile["phases"]["system.simulate"]["seconds"] >= 0.0
        assert telemetry.phase_seconds("system.simulate") >= 0.0
        assert telemetry.phase_seconds("never.entered") == 0.0

    def test_profile_excluded_from_metrics_snapshot(self):
        telemetry = Telemetry()
        with telemetry.phase("system.simulate"):
            telemetry.counter("msg.sent").add()
        snap = telemetry.snapshot()
        assert set(snap) == {"msg.sent"}

    def test_accessors_share_one_registry(self):
        telemetry = Telemetry()
        telemetry.counter("msg.sent").add(5)
        assert telemetry.metrics.counter("msg.sent").value == 5


class TestExport:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("traffic.bytes").add(100)
        reg.gauge("run.rpki").set(0.25)
        hist = Histogram("h", edges=[40])
        hist.record(10)
        reg.register("burst.accum16", hist)
        return reg.snapshot()

    def test_jsonl_round_trip(self, tmp_path):
        snap = self._snapshot()
        path = tmp_path / "m.jsonl"
        assert write_metrics_jsonl(snap, path) == len(snap)
        assert read_metrics(path) == snap

    def test_json_round_trip(self, tmp_path):
        snap = self._snapshot()
        path = tmp_path / "m.json"
        write_metrics_json(snap, path, meta={"workload": "fir"})
        assert read_metrics(path) == snap

    def test_jsonl_rendering_is_deterministic(self):
        snap = self._snapshot()
        assert metrics_to_jsonl(snap) == metrics_to_jsonl(dict(reversed(list(snap.items()))))

    def test_validate_clean_snapshot(self):
        assert validate_metrics(self._snapshot()) == []

    def test_validate_catches_violations(self):
        errors = validate_metrics(
            {
                "mystery.value": {"type": "counter", "value": 1},
                "not_dotted": {"type": "counter", "value": 1},
                "run.bad_counter": {"type": "counter", "value": "many"},
                "run.bad_type": {"type": "sparkline", "value": 1},
                "burst.bad_hist": {
                    "type": "histogram",
                    "edges": [10],
                    "counts": [1, 2],
                    "total": 99,
                },
            }
        )
        assert len(errors) == 5

    def test_diff_metrics(self):
        a = self._snapshot()
        b = dict(a)
        b["traffic.bytes"] = {"type": "counter", "value": 999}
        del b["run.rpki"]
        b["msg.sent"] = {"type": "counter", "value": 1}
        lines = diff_metrics(a, b)
        assert any(line.startswith("~ traffic.bytes") for line in lines)
        assert any(line.startswith("- run.rpki") for line in lines)
        assert any(line.startswith("+ msg.sent") for line in lines)
        assert diff_metrics(a, a) == []


class TestCli:
    @pytest.fixture()
    def export(self, tmp_path):
        path = tmp_path / "m.jsonl"
        reg = MetricsRegistry()
        reg.counter("traffic.bytes").add(100)
        reg.counter("msg.sent").add(7)
        write_metrics_jsonl(reg.snapshot(), path)
        return path

    def test_metrics_check_ok(self, export, capsys):
        assert main(["metrics", "check", str(export)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_metrics_check_fails_on_unknown_namespace(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "mystery.value", "type": "counter", "value": 1}\n')
        assert main(["metrics", "check", str(path)]) == 1
        assert "unknown namespace" in capsys.readouterr().err

    def test_metrics_dump_and_tail(self, export, capsys):
        assert main(["metrics", "dump", str(export)]) == 0
        dumped = capsys.readouterr().out.strip().splitlines()
        assert len(dumped) == 2
        assert main(["metrics", "tail", str(export), "-n", "1"]) == 0
        tailed = capsys.readouterr().out.strip().splitlines()
        assert tailed == dumped[-1:]

    def test_metrics_diff_exit_codes(self, export, tmp_path, capsys):
        assert main(["metrics", "diff", str(export), str(export)]) == 0
        other = tmp_path / "other.jsonl"
        reg = MetricsRegistry()
        reg.counter("traffic.bytes").add(1)
        write_metrics_jsonl(reg.snapshot(), other)
        capsys.readouterr()
        assert main(["metrics", "diff", str(export), str(other)]) == 1
        assert "traffic.bytes" in capsys.readouterr().out

    def test_run_writes_metrics_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        path = tmp_path / "run.jsonl"
        assert (
            main(
                ["run", "fir", "--scheme", "private", "--scale", "0.08",
                 "--metrics", str(path), "--no-cache"]
            )
            == 0
        )
        metrics = read_metrics(path)
        assert validate_metrics(metrics) == []
        assert "run.cycles" in metrics


#: what every simulated run must emit, regardless of scheme
CORE_METRICS = {
    "run.cycles",
    "run.remote_requests",
    "run.migrations",
    "run.rpki",
    "traffic.bytes",
    "traffic.base_bytes",
    "meta.bytes",
    "msg.sent",
    "msg.data_blocks",
    "engine.events",
    "engine.pushes",
    "engine.cancelled",
    "burst.accum16",
    "burst.accum32",
}


class TestUniformNamespace:
    @pytest.mark.parametrize(
        "scheme", ["unsecure", "private", "shared", "cached", "dynamic", "batching"]
    )
    def test_every_scheme_emits_core_namespace(self, scheme):
        report = execute_job(_job(scheme))
        assert CORE_METRICS <= set(report.metrics)
        assert validate_metrics(report.metrics) == []
        if scheme == "unsecure":
            assert not any(n.startswith("otp.") for n in report.metrics)
        else:
            assert {"otp.send", "otp.recv", "ack.sent", "batch.macs_sent"} <= set(
                report.metrics
            )
        if scheme == "dynamic":
            assert {
                "alloc.adjustments",
                "alloc.idle_intervals",
                "alloc.plans_applied",
            } <= set(report.metrics)

    def test_fault_run_emits_fault_metrics(self):
        report = execute_job(_job("private", drop_rate=0.05, corrupt_rate=0.05, seed=7))
        fault_names = {n for n in report.metrics if n.startswith("fault.")}
        assert "fault.drop" in fault_names
        assert validate_metrics(report.metrics) == []

    def test_fault_free_run_has_no_fault_metrics(self):
        report = execute_job(_job("private"))
        assert not any(n.startswith("fault.") for n in report.metrics)
        # rate-0 fault config is equally invisible
        report = execute_job(_job("private", drop_rate=0.0))
        assert not any(n.startswith("fault.") for n in report.metrics)

    def test_adversary_run_emits_adv_metrics(self):
        report = execute_job(_adv_job("private", flip_cipher_rate=0.05, seed=3))
        adv_names = {n for n in report.metrics if n.startswith("adv.")}
        assert "adv.injected" in adv_names
        assert "adv.detected" in adv_names
        assert report.metrics["adv.accepted_undetected"]["value"] == 0
        assert not any(n.startswith("fault.") for n in report.metrics)
        assert validate_metrics(report.metrics) == []

    def test_combined_fault_and_adversary_export_both_namespaces(self):
        report = execute_job(
            _adv_job(
                "private",
                fault={"drop_rate": 0.05, "corrupt_rate": 0.05, "seed": 7},
                flip_cipher_rate=0.03,
                replay_rate=0.02,
                seed=3,
            )
        )
        namespaces = {n.split(".", 1)[0] for n in report.metrics}
        assert "fault" in namespaces
        assert "adv" in namespaces
        assert report.metrics["adv.accepted_undetected"]["value"] == 0
        assert validate_metrics(report.metrics) == []

    def test_rate_zero_adversary_and_fault_export_neither(self):
        report = execute_job(_adv_job("private", fault={"drop_rate": 0.0}, flip_cipher_rate=0.0))
        namespaces = {n.split(".", 1)[0] for n in report.metrics}
        assert "fault" not in namespaces
        assert "adv" not in namespaces
        # and the export is byte-identical to the pristine config's
        pristine = execute_job(_job("private"))
        assert metrics_to_jsonl(report.metrics) == metrics_to_jsonl(pristine.metrics)

    def test_namespaces_used_are_known(self):
        report = execute_job(_job("batching"))
        assert {n.split(".", 1)[0] for n in report.metrics} <= KNOWN_NAMESPACES

    def test_metrics_match_report_fields(self):
        report = execute_job(_job("batching"))
        assert report.metrics["run.cycles"]["value"] == report.execution_cycles
        assert report.metrics["traffic.bytes"]["value"] == report.traffic_bytes
        assert report.metrics["meta.bytes"]["value"] == report.meta_traffic_bytes
        assert report.metrics["run.rpki"]["value"] == report.rpki
        assert report.metrics["ack.sent"]["value"] == report.acks_sent
        assert report.metrics["engine.events"]["value"] == report.events_processed


class TestMetricsDeterminism:
    def _grid(self):
        return [_job(scheme) for scheme in ("unsecure", "private", "batching")]

    def test_serial_parallel_cached_metrics_bit_identical(self, tmp_path):
        grid = self._grid()
        serial = SweepRunner(jobs=1).run_jobs(grid)
        parallel = SweepRunner(jobs=2, mode="parallel").run_jobs(grid)

        cache = ResultCache(tmp_path / "cache")
        SweepRunner(jobs=1, cache=cache).run_jobs(grid)  # cold: populates
        warm = SweepRunner(jobs=1, cache=cache)
        cached = warm.run_jobs(grid)
        assert warm.stats.cache_hits == len(grid)

        for s, p, c in zip(serial, parallel, cached):
            assert metrics_to_jsonl(s.metrics) == metrics_to_jsonl(p.metrics)
            assert metrics_to_jsonl(s.metrics) == metrics_to_jsonl(c.metrics)

    def test_cached_export_file_identical_to_live(self, tmp_path):
        job = _job("batching")
        cache = ResultCache(tmp_path / "cache")
        live = SweepRunner(jobs=1, cache=cache).run_jobs([job])[0]
        replay = SweepRunner(jobs=1, cache=cache).run_jobs([job])[0]
        live_path = tmp_path / "live.jsonl"
        replay_path = tmp_path / "replay.jsonl"
        write_metrics_jsonl(live.metrics, live_path)
        write_metrics_jsonl(replay.metrics, replay_path)
        assert live_path.read_bytes() == replay_path.read_bytes()
