"""PadStream semantics: the hit/partial/miss timing model."""

import pytest

from repro.secure.otp_buffer import PadOutcome, PadStream

L = 40  # generation latency used throughout


class TestConsume:
    def test_prefilled_pads_hit(self):
        s = PadStream(L, capacity=4)
        for _ in range(4):
            g = s.consume(now=100)
            # burst of 4 against capacity 4: all pads were ready
            assert g.outcome is PadOutcome.HIT
            assert g.wait == 0

    def test_burst_beyond_capacity_waits(self):
        s = PadStream(L, capacity=2)
        assert s.consume(0).outcome is PadOutcome.HIT
        assert s.consume(0).outcome is PadOutcome.HIT
        # everything past the capacity pays one on-demand generation —
        # never more, because the engine is fully pipelined
        for _ in range(5):
            g = s.consume(0)
            assert g.wait == L
            assert g.outcome is PadOutcome.MISS

    def test_partial_when_refill_in_flight(self):
        s = PadStream(L, capacity=1)
        s.consume(0)  # hit; refill ready at 40
        g = s.consume(30)
        assert g.wait == 10
        assert g.outcome is PadOutcome.PARTIAL

    def test_spaced_requests_always_hit(self):
        s = PadStream(L, capacity=1)
        for t in range(0, 500, L + 1):
            assert s.consume(t).outcome is PadOutcome.HIT

    def test_zero_capacity_always_misses_full_latency(self):
        s = PadStream(L, capacity=0)
        for t in (0, 5, 1000):
            g = s.consume(t)
            assert g.outcome is PadOutcome.MISS and g.wait == L

    def test_unprefilled_stream_warms_up(self):
        s = PadStream(L, capacity=2, now=0, prefilled=False)
        g = s.consume(0)
        assert g.outcome is PadOutcome.MISS and g.wait == L
        assert s.consume(200).outcome is PadOutcome.HIT

    def test_desync_costs_full_latency_then_recovers(self):
        s = PadStream(L, capacity=1)
        g = s.consume_desync(10)
        assert g.outcome is PadOutcome.MISS and g.wait == L
        # back-to-back follow-up: the regenerated next pad is ready at 10+L
        g2 = s.consume(10 + L)
        assert g2.outcome is PadOutcome.HIT

    def test_grant_hidden_property(self):
        s = PadStream(L, capacity=1)
        assert s.consume(0).hidden
        assert not s.consume(0).hidden


class TestCapacityManagement:
    def test_grow_adds_generating_pads(self):
        s = PadStream(L, capacity=0)
        s.grow(now=100, n=2)
        assert s.capacity == 2
        assert s.consume(100).wait == L  # still generating
        assert s.consume(100 + L).wait == 0

    def test_shrink_drops_least_ready_first(self):
        s = PadStream(L, capacity=2)
        s.consume(0)  # one pad now regenerating (ready at 40)
        assert s.shrink(1) == 1
        # the remaining pad is the ready one
        assert s.consume(1).outcome is PadOutcome.HIT

    def test_shrink_more_than_capacity(self):
        s = PadStream(L, capacity=2)
        assert s.shrink(5) == 2
        assert s.capacity == 0

    def test_set_capacity_both_directions(self):
        s = PadStream(L, capacity=4)
        s.set_capacity(0, 1)
        assert s.capacity == 1
        s.set_capacity(0, 6)
        assert s.capacity == 6

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PadStream(0, 1)
        with pytest.raises(ValueError):
            PadStream(L, -1)
        s = PadStream(L, 1)
        with pytest.raises(ValueError):
            s.grow(0, -1)
        with pytest.raises(ValueError):
            s.shrink(-1)
        with pytest.raises(ValueError):
            s.set_capacity(0, -2)


class TestAccounting:
    def test_consumed_counter(self):
        s = PadStream(L, capacity=1)
        s.consume(0)
        s.consume_desync(1)
        assert s.consumed == 2

    def test_earliest_ready_reporting(self):
        s = PadStream(L, capacity=1)
        assert s.earliest_ready() == 0
        s.consume(5)
        assert s.earliest_ready() == 5 + L
        s.shrink(1)
        assert s.earliest_ready() is None
