"""Workload generator and registry tests."""

import pytest

from repro.memory.address_space import PAGE_BYTES, Placement, page_of
from repro.workloads import (
    all_workloads,
    classify_rpki,
    get_workload,
    workloads_in_class,
)
from repro.workloads.base import Access, AccessKind, GpuTrace, WorkloadTrace
from repro.workloads.builder import TraceBuilder
from repro.workloads.rpki import rpki_of


class TestRegistry:
    def test_all_seventeen_workloads_present(self):
        specs = all_workloads()
        assert len(specs) == 17
        assert len({s.name for s in specs}) == 17
        assert len({s.abbr for s in specs}) == 17

    def test_table4_class_counts(self):
        assert len(workloads_in_class("high")) == 5
        assert len(workloads_in_class("medium")) == 9
        assert len(workloads_in_class("low")) == 3

    def test_lookup_by_name_and_abbr(self):
        assert get_workload("matrixtranspose").abbr == "mt"
        assert get_workload("mt").name == "matrixtranspose"
        assert get_workload("ges").name == "gesummv"

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("doom")
        with pytest.raises(ValueError):
            workloads_in_class("ultra")

    def test_suites_match_table4(self):
        assert get_workload("relu").suite == "DNNMark"
        assert get_workload("spmv").suite == "SHOC"
        assert get_workload("pr").suite == "Hetero-Mark"
        assert get_workload("syr2k").suite == "Polybench"
        assert get_workload("floyd").suite == "AMD APP SDK"


class TestGeneration:
    @pytest.mark.parametrize("spec", all_workloads(), ids=lambda s: s.abbr)
    def test_every_workload_generates_valid_traces(self, spec):
        trace = spec.generate(n_gpus=4, seed=1, scale=0.1)
        trace.validate()
        assert trace.total_accesses > 0
        assert trace.total_instructions > 0
        assert set(trace.gpu_traces) <= {1, 2, 3, 4}

    @pytest.mark.parametrize("n_gpus", [1, 2, 3, 8])
    def test_generation_scales_with_gpu_count(self, n_gpus):
        trace = get_workload("stencil2d").generate(n_gpus=n_gpus, seed=1, scale=0.1)
        trace.validate()
        assert len(trace.gpu_traces) == n_gpus

    def test_generation_is_deterministic(self):
        t1 = get_workload("pagerank").generate(4, seed=5, scale=0.1)
        t2 = get_workload("pagerank").generate(4, seed=5, scale=0.1)
        a1 = [a.address for a in t1.gpu_traces[1].lanes[0]]
        a2 = [a.address for a in t2.gpu_traces[1].lanes[0]]
        assert a1 == a2

    def test_scale_grows_traces(self):
        small = get_workload("fft").generate(4, seed=1, scale=0.1)
        large = get_workload("fft").generate(4, seed=1, scale=0.5)
        assert large.total_accesses > small.total_accesses

    def test_relu_input_is_cpu_owned_and_pinned(self):
        trace = get_workload("relu").generate(4, seed=1, scale=0.1)
        cpu_pages = [p for p, owner in trace.initial_owners.items() if owner == 0]
        assert cpu_pages
        assert set(cpu_pages) <= trace.pinned_pages


class TestTraceBuilder:
    def test_compute_accumulates_into_next_access(self):
        b = TraceBuilder("t", n_gpus=1, n_lanes=1)
        arr = b.alloc("a", 16)
        b.compute(1, 0, 100)
        b.access(1, 0, arr.block_addr(0), gap=5)
        trace = b.build(lane_jitter=0)
        assert trace.gpu_traces[1].lanes[0][0].gap == 105

    def test_burst_strides(self):
        b = TraceBuilder("t", n_gpus=1, n_lanes=1)
        arr = b.alloc("a", 256)
        b.burst(1, 0, arr, start_block=0, n_blocks=3, stride=2)
        addrs = [a.address for a in b.build(lane_jitter=0).gpu_traces[1].lanes[0]]
        assert addrs == [arr.block_addr(0), arr.block_addr(2), arr.block_addr(4)]

    def test_blocked_range_partitions_fully(self):
        b = TraceBuilder("t", n_gpus=3, n_lanes=1)
        arr = b.alloc("a", 9 * 64, Placement.BLOCKED)
        covered = 0
        for g in b.gpus():
            first, n = b.blocked_range(arr, g)
            covered += n
            # every block in the range must belong to g
            for blk in (first, first + n - 1):
                page = page_of(arr.block_addr(blk))
                assert b.space.initial_owner(page) == g
        assert covered == arr.n_blocks

    def test_lane_jitter_offsets_first_access(self):
        b = TraceBuilder("t", n_gpus=1, n_lanes=4, seed=1)
        arr = b.alloc("a", 64)
        for lane in range(4):
            b.access(1, lane, arr.block_addr(lane))
        trace = b.build(lane_jitter=100)
        gaps = [lane[0].gap for lane in trace.gpu_traces[1].lanes]
        assert any(g > 0 for g in gaps)
        assert all(0 <= g < 100 for g in gaps)

    def test_pinned_alloc_records_pages(self):
        b = TraceBuilder("t", n_gpus=2, n_lanes=1)
        arr = b.alloc("pinned", 2 * PAGE_BYTES // 64, pinned=True, placement=Placement.OWNER, owner=0)
        b.access(1, 0, arr.block_addr(0))
        trace = b.build()
        assert page_of(arr.base) in trace.pinned_pages

    def test_validation_rejects_unmapped_pages(self):
        trace = WorkloadTrace(
            name="broken",
            gpu_traces={1: GpuTrace(lanes=[[Access(0, 999 * PAGE_BYTES)]], instructions=1)},
            initial_owners={0: 1},
        )
        with pytest.raises(ValueError):
            trace.validate()

    def test_invalid_builder_arguments(self):
        with pytest.raises(ValueError):
            TraceBuilder("t", n_gpus=0)
        with pytest.raises(ValueError):
            TraceBuilder("t", n_gpus=1, n_lanes=0)
        b = TraceBuilder("t", n_gpus=1)
        with pytest.raises(ValueError):
            b.compute(1, 0, -5)


class TestRpki:
    def test_classification_thresholds(self):
        assert classify_rpki(500.0) == "high"
        assert classify_rpki(50.0) == "medium"
        assert classify_rpki(5.0) == "low"

    def test_boundaries(self):
        from repro.workloads.rpki import HIGH_THRESHOLD, MEDIUM_THRESHOLD

        assert classify_rpki(HIGH_THRESHOLD) == "high"
        assert classify_rpki(MEDIUM_THRESHOLD) == "medium"

    def test_rpki_of(self):
        assert rpki_of(500, 1_000_000) == pytest.approx(0.5)
        assert rpki_of(10, 0) == 0.0

    def test_negative_rpki_rejected(self):
        with pytest.raises(ValueError):
            classify_rpki(-1.0)

    def test_access_validation(self):
        with pytest.raises(ValueError):
            Access(gap=-1, address=0)
        with pytest.raises(ValueError):
            Access(gap=0, address=-5)
        assert Access(0, 0, AccessKind.WRITE).is_write
