"""Tests for the paper's core mechanisms: EWMA, the dynamic OTP allocator
(Formulas 1-4), and the metadata batching controller."""

import pytest

from repro.configs import MetadataConfig
from repro.core.batching import BatchingController, MsgMacStorage
from repro.core.dynamic_allocator import DynamicOtpAllocator, largest_remainder
from repro.core.ewma import Ewma


class TestEwma:
    def test_update_formula(self):
        e = Ewma(rate=0.9, initial=0.5)
        e.update(1.0)
        assert e.value == pytest.approx(0.1 * 0.5 + 0.9 * 1.0)

    def test_high_rate_tracks_current(self):
        fast = Ewma(0.9, initial=0.0)
        slow = Ewma(0.1, initial=0.0)
        for _ in range(3):
            fast.update(1.0)
            slow.update(1.0)
        assert fast.value > slow.value

    def test_converges_to_constant_input(self):
        e = Ewma(0.5, initial=0.0)
        for _ in range(50):
            e.update(0.7)
        assert e.value == pytest.approx(0.7, abs=1e-6)

    def test_reset(self):
        e = Ewma(0.5, initial=0.3)
        e.update(1.0)
        e.reset(0.3)
        assert e.value == 0.3 and e.samples == 0

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            Ewma(rate=1.5)
        with pytest.raises(ValueError):
            Ewma(rate=-0.1)


class TestLargestRemainder:
    def test_preserves_total(self):
        shares = largest_remainder(32, [0.61, 0.39])
        assert sum(shares) == 32

    def test_proportionality(self):
        shares = largest_remainder(10, [3.0, 1.0])
        assert shares == [8, 2]

    def test_zero_weights_fall_back_to_even(self):
        assert largest_remainder(4, [0.0, 0.0]) == [2, 2]

    def test_empty_and_invalid(self):
        assert largest_remainder(5, []) == []
        with pytest.raises(ValueError):
            largest_remainder(-1, [1.0])
        with pytest.raises(ValueError):
            largest_remainder(1, [-0.5])

    def test_equal_weight_ties_break_by_ascending_index(self):
        # Contract: largest remainder, then largest weight, then ascending
        # index.  On a full tie the spare units go to the lowest indices.
        assert largest_remainder(10, [1.0, 1.0, 1.0]) == [4, 3, 3]
        assert largest_remainder(11, [1.0, 1.0, 1.0]) == [4, 4, 3]
        assert largest_remainder(7, [1.0] * 5) == [2, 2, 1, 1, 1]

    def test_equal_remainder_ties_prefer_larger_weight(self):
        # Remainders tie at 0.5/0.5; the heavier peer gets the spare unit
        # even though it sits at the higher index.
        assert largest_remainder(2, [1.0, 3.0]) == [0, 2]
        assert largest_remainder(3, [1.0, 1.0]) == [2, 1]

    def test_tie_break_is_stable_under_appended_peers(self):
        # Adding a zero-weight peer must not reshuffle existing shares.
        base = largest_remainder(9, [1.0, 1.0, 1.0])
        extended = largest_remainder(9, [1.0, 1.0, 1.0, 0.0])
        assert extended[:3] == base and extended[3] == 0


class TestDynamicAllocator:
    def _alloc(self, pool=32, peers=(0, 2, 3, 4)):
        return DynamicOtpAllocator(list(peers), total_pool=pool, interval=1000)

    def test_even_plan_matches_private(self):
        plan = self._alloc().even_plan()
        assert plan.send_total == plan.recv_total == 16
        assert all(v == 4 for v in plan.send_per_peer.values())
        assert all(v == 4 for v in plan.recv_per_peer.values())

    def test_send_heavy_traffic_shifts_pool_to_send(self):
        alloc = self._alloc()
        for _ in range(90):
            alloc.record_send(2)
        for _ in range(10):
            alloc.record_recv(3)
        plan = alloc.adjust()
        assert plan.send_total > plan.recv_total
        plan.validate(32)

    def test_hot_peer_gets_more_pads(self):
        alloc = self._alloc()
        for _ in range(80):
            alloc.record_send(2)
        for _ in range(20):
            alloc.record_send(3)
        plan = alloc.adjust()
        assert plan.send_per_peer[2] > plan.send_per_peer[3]
        assert plan.send_per_peer[3] >= plan.send_per_peer[4]

    def test_counters_reset_each_interval(self):
        alloc = self._alloc()
        alloc.record_send(2)
        alloc.adjust()
        assert alloc.interval_send_total == 0

    def test_empty_interval_keeps_weights(self):
        alloc = self._alloc()
        before = alloc.send_weight.value
        plan = alloc.adjust()
        assert alloc.send_weight.value == before
        plan.validate(32)

    def test_maybe_adjust_honours_interval(self):
        alloc = self._alloc()
        alloc.record_send(2)
        assert alloc.maybe_adjust(now=999) is None
        assert alloc.maybe_adjust(now=1000) is not None
        assert alloc.interval_start == 1000
        assert alloc.maybe_adjust(now=1500) is None

    def test_maybe_adjust_skips_whole_empty_gaps(self):
        alloc = self._alloc()
        alloc.maybe_adjust(now=5500)
        assert alloc.interval_start == 5000
        assert alloc.idle_intervals == 4

    def test_multi_interval_gap_folds_counts_exactly_once(self):
        # Monitoring is tick-driven, so counts pending across a >2-interval
        # gap all belong to the first elapsed interval; the gap's empty
        # intervals must not decay the EWMAs (they saw no traffic).
        alloc = DynamicOtpAllocator([2, 3], total_pool=8, alpha=0.9, interval=1000)
        for _ in range(60):
            alloc.record_send(2)
        for _ in range(40):
            alloc.record_recv(3)
        plan = alloc.maybe_adjust(now=3500)  # 3 intervals elapsed at once
        assert plan is not None
        assert alloc.adjustments == 1
        # exactly one Formula-1 fold: S_1 = 0.1*0.5 + 0.9*0.6
        assert alloc.send_weight.value == pytest.approx(0.1 * 0.5 + 0.9 * 0.6)
        assert alloc.interval_start == 3000
        assert alloc.idle_intervals == 2
        assert alloc.interval_send_total == 0  # counters reset by the fold

    def test_gap_fold_matches_per_interval_iteration(self):
        # The single fold must be byte-identical to naively adjusting once
        # per elapsed interval (empty intervals leave the EWMAs untouched).
        def load(alloc):
            for _ in range(60):
                alloc.record_send(2)
            for _ in range(40):
                alloc.record_recv(3)

        folded = DynamicOtpAllocator([2, 3], total_pool=8, interval=1000)
        load(folded)
        folded.maybe_adjust(now=4500)

        stepped = DynamicOtpAllocator([2, 3], total_pool=8, interval=1000)
        load(stepped)
        for now in (1000, 2000, 3000, 4000):
            stepped.maybe_adjust(now=now)

        assert folded.send_weight.value == stepped.send_weight.value
        assert {p: w.value for p, w in folded.send_peer_weight.items()} == {
            p: w.value for p, w in stepped.send_peer_weight.items()
        }
        assert {p: w.value for p, w in folded.recv_peer_weight.items()} == {
            p: w.value for p, w in stepped.recv_peer_weight.items()
        }

    def test_paper_formula_1(self):
        # One interval with SReq=75, RReq=25 from S_0=0.5, alpha=0.9:
        # S_1 = 0.1*0.5 + 0.9*0.75 = 0.725
        alloc = DynamicOtpAllocator([2], total_pool=8, alpha=0.9, beta=0.5)
        for _ in range(75):
            alloc.record_send(2)
        for _ in range(25):
            alloc.record_recv(2)
        alloc.adjust()
        assert alloc.send_weight.value == pytest.approx(0.725)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicOtpAllocator([], 8)
        with pytest.raises(ValueError):
            DynamicOtpAllocator([1], -1)
        with pytest.raises(ValueError):
            DynamicOtpAllocator([1], 8, interval=0)


class TestBatchingController:
    def _controller(self, batch_size=4, timeout=100):
        return BatchingController(MetadataConfig(), batch_size, timeout)

    def test_first_block_opens_with_length_byte(self):
        c = self._controller()
        g = c.add_block(peer=2, now=0)
        assert g.opens_batch and not g.closes_batch
        md = MetadataConfig()
        assert g.meta_bytes == md.batched_block_meta_bytes + md.batch_len_bytes

    def test_middle_blocks_carry_ctr_and_id_only(self):
        c = self._controller()
        c.add_block(2, 0)
        g = c.add_block(2, 1)
        assert g.meta_bytes == MetadataConfig().batched_block_meta_bytes

    def test_batch_closes_at_size_with_mac(self):
        c = self._controller(batch_size=3)
        c.add_block(2, 0)
        c.add_block(2, 1)
        g = c.add_block(2, 2)
        assert g.closes_batch and g.batch_size == 3
        md = MetadataConfig()
        assert g.meta_bytes == md.batched_block_meta_bytes + md.msg_mac_bytes
        assert c.batches_closed_full == 1
        # next block opens a new batch
        assert c.add_block(2, 3).opens_batch

    def test_batches_are_per_peer(self):
        c = self._controller(batch_size=2)
        c.add_block(2, 0)
        g = c.add_block(3, 0)
        assert g.opens_batch
        assert c.open_batch(2) is not None and c.open_batch(3) is not None

    def test_timeout_close(self):
        c = self._controller(batch_size=16)
        g = c.add_block(2, 0)
        closed = c.timeout_close(2, g.batch_id)
        assert closed == 1
        assert c.batches_closed_timeout == 1
        assert c.open_batch(2) is None

    def test_stale_timeout_ignored(self):
        c = self._controller(batch_size=2)
        g1 = c.add_block(2, 0)
        c.add_block(2, 1)  # closes batch g1
        assert c.timeout_close(2, g1.batch_id) is None

    def test_stale_timeout_is_a_counted_noop(self):
        # The size-close vs. timeout-close race: the timer loses and must
        # change nothing — no close counter, no batch state, only the
        # stale_timeouts observability counter moves.
        c = self._controller(batch_size=2)
        g1 = c.add_block(2, 0)
        c.add_block(2, 1)  # full close wins the race
        full, timeout = c.batches_closed_full, c.batches_closed_timeout
        assert c.timeout_close(2, g1.batch_id) is None
        assert c.stale_timeouts == 1
        assert (c.batches_closed_full, c.batches_closed_timeout) == (full, timeout)
        assert c.open_batch(2) is None

    def test_stale_timeout_never_touches_the_successor_batch(self):
        # Interleaving: batch A full-closes, batch B opens toward the same
        # peer, then A's stale timer fires.  B must stay open and intact,
        # and B's *own* timer must still close it normally afterwards.
        c = self._controller(batch_size=2)
        ga = c.add_block(2, 0)
        c.add_block(2, 1)  # A closes full
        gb = c.add_block(2, 5)  # B opens
        assert c.timeout_close(2, ga.batch_id) is None  # A's timer, stale
        assert c.stale_timeouts == 1
        assert c.open_batch(2) == (gb.batch_id, 1)
        assert c.timeout_close(2, gb.batch_id) == 1  # B's timer, live
        assert c.batches_closed_timeout == 1
        # ...and B's id is now stale too: a duplicate timer is a no-op.
        assert c.timeout_close(2, gb.batch_id) is None
        assert c.stale_timeouts == 2

    def test_batch_ids_never_reused_across_peers_or_batches(self):
        c = self._controller(batch_size=1)
        seen = {c.add_block(p, t).batch_id for t, p in enumerate((2, 3, 2, 4, 3))}
        assert len(seen) == 5

    def test_batched_meta_is_smaller_than_conventional(self):
        c = self._controller(batch_size=16)
        md = MetadataConfig()
        total_batched = sum(c.add_block(2, t).meta_bytes for t in range(16))
        total_conventional = 16 * md.per_message_meta_bytes
        assert total_batched < total_conventional

    def test_validation(self):
        with pytest.raises(ValueError):
            self._controller(batch_size=0)
        with pytest.raises(ValueError):
            self._controller(timeout=0)


class TestMsgMacStorage:
    def test_store_and_release(self):
        s = MsgMacStorage(capacity_per_pair=4)
        for _ in range(3):
            s.store(sender=1)
        assert s.occupancy(1) == 3
        s.release_batch(1, 3)
        assert s.occupancy(1) == 0
        assert s.max_occupancy == 3

    def test_overflow_counted_not_fatal(self):
        s = MsgMacStorage(capacity_per_pair=2)
        for _ in range(3):
            s.store(1)
        assert s.overflows == 1

    def test_release_more_than_stored_raises(self):
        s = MsgMacStorage()
        s.store(1)
        with pytest.raises(ValueError):
            s.release_batch(1, 2)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MsgMacStorage(0)
