"""Doc-lint: the documentation must not drift from the code.

Three mechanical checks over the repo's own documentation set:

* every **relative link** in the markdown pages resolves to a real file
  or directory;
* every ``repro-sim`` / ``python -m repro`` command quoted in a ```bash
  block parses against the *real* CLI parser (argparse dry-run — stale
  subcommands, renamed flags, and removed choices fail here);
* every **metric name** quoted in ``docs/OBSERVABILITY.md`` uses a known
  registry namespace, and the page's namespace table matches
  ``KNOWN_NAMESPACES`` exactly (both directions — a namespace added in
  code must be documented, a documented one must exist);
* the **README documentation map** lists every page under ``docs/`` —
  adding a page without indexing it fails here;
* ``docs/SERVICE.md`` keeps a worked transcript covering the whole
  service verb set (serve / submit / status / cancel).

Wired into CI as part of the tier-1 test run.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import _build_parser
from repro.obs.metrics import KNOWN_NAMESPACES

ROOT = Path(__file__).resolve().parents[1]

#: The documentation this repo maintains (PAPER.md / PAPERS.md / SNIPPETS.md /
#: ISSUE.md / CHANGES.md are driver-provided working notes, not docs).
DOC_FILES = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "ROADMAP.md",
    *sorted((ROOT / "docs").glob("*.md")),
]

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"```bash\n(.*?)```", re.DOTALL)
_METRIC_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_*]+)+)`")


def doc_ids():
    return [str(p.relative_to(ROOT)) for p in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids())
def test_relative_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue  # pure in-page anchor
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: dead relative links {broken}"


def _cli_commands(text: str):
    """Yield argv lists for every repro CLI command in ```bash fences."""
    for block in _FENCE_RE.findall(text):
        for raw in block.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                tokens = shlex.split(line, comments=True)
            except ValueError:
                continue  # prose or deliberately partial shell syntax
            if not tokens:
                continue
            if tokens[0] == "repro-sim":
                yield line, tokens[1:]
            elif tokens[:3] == ["python", "-m", "repro"]:
                yield line, tokens[3:]


def all_cli_commands():
    commands = []
    for doc in DOC_FILES:
        for line, argv in _cli_commands(doc.read_text()):
            commands.append(pytest.param(argv, id=f"{doc.name}:{line[:60]}"))
    return commands


@pytest.mark.parametrize("argv", all_cli_commands())
def test_documented_cli_commands_parse(argv):
    parser = _build_parser()
    try:
        parser.parse_args(argv)
    except SystemExit as exc:  # argparse reports errors via sys.exit
        pytest.fail(f"documented command no longer parses: repro-sim {' '.join(argv)}"
                    f" (exit {exc.code})")


def test_docs_quote_at_least_a_few_commands():
    """The parser dry-run must actually be exercising something."""
    assert len(all_cli_commands()) >= 10


def test_readme_documentation_map_is_complete():
    """Every page under docs/ is indexed in the README documentation map."""
    readme = (ROOT / "README.md").read_text()
    start = readme.index("## Documentation map")
    end = readme.index("## ", start + 3)
    doc_map = readme[start:end]
    missing = [
        f"docs/{page.name}"
        for page in sorted((ROOT / "docs").glob("*.md"))
        if f"docs/{page.name}" not in doc_map
    ]
    assert not missing, f"README documentation map is missing {missing}"


def test_service_doc_covers_every_service_verb():
    """SERVICE.md's worked transcript exercises the full verb set."""
    verbs = {
        argv[0]
        for _, argv in _cli_commands((ROOT / "docs" / "SERVICE.md").read_text())
        if argv
    }
    assert {"serve", "submit", "status", "cancel"} <= verbs, (
        f"SERVICE.md transcript only covers {sorted(verbs)}"
    )


class TestObservabilityNamespace:
    DOC = ROOT / "docs" / "OBSERVABILITY.md"

    def _namespace_section(self) -> str:
        """The '## Metric namespace' section, where metric names are listed."""
        text = self.DOC.read_text()
        start = text.index("## Metric namespace")
        end = text.index("## ", start + 3)
        return text[start:end]

    def test_quoted_metric_names_use_known_namespaces(self):
        section = self._namespace_section()
        names = _METRIC_RE.findall(section)
        assert len(names) >= 20  # the table must actually enumerate metrics
        unknown = {
            name for name in names
            if name.split(".", 1)[0] not in KNOWN_NAMESPACES
        }
        assert not unknown, f"docs quote metrics outside KNOWN_NAMESPACES: {sorted(unknown)}"

    def test_namespace_table_matches_registry(self):
        """The markdown namespace table and KNOWN_NAMESPACES agree exactly."""
        documented = set()
        for line in self.DOC.read_text().splitlines():
            match = re.match(r"\|\s*`([a-z_]+)`\s*\|", line)
            if match:
                documented.add(match.group(1))
        assert documented == set(KNOWN_NAMESPACES), (
            f"namespace table drift: documented-only {sorted(documented - set(KNOWN_NAMESPACES))}, "
            f"code-only {sorted(set(KNOWN_NAMESPACES) - documented)}"
        )
