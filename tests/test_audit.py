"""Functional-replay audit: the timing simulation's protocol trace must be
cryptographically realizable on the real AES-GCM substrate."""

import pytest

from repro.configs import default_config
from repro.secure.audit import AuditEntry, functional_replay
from repro.system import run_workload
from repro.workloads import get_workload


def _audited_run(scheme="private", batching=False, workload="fir", scale=0.05):
    config = default_config(4, scheme=scheme, batching=batching, audit=True)
    trace = get_workload(workload).generate(4, seed=1, scale=scale)
    from repro.system import MultiGpuSystem

    system = MultiGpuSystem(config)
    system.run(trace)
    return system.transport.audit_log


class TestAuditedSimulation:
    def test_conventional_run_replays_cleanly(self):
        log = _audited_run(scheme="private")
        assert log, "audited run must record messages"
        report = functional_replay(log)
        assert report.ok, report.failures
        assert report.messages == len([e for e in log if not e.timeout_close])
        assert report.replay_rejected and report.tamper_rejected

    def test_batched_run_replays_and_verifies_batches(self):
        log = _audited_run(scheme="dynamic", batching=True, workload="kmeans", scale=0.08)
        report = functional_replay(log)
        assert report.ok, report.failures
        assert report.batched_messages > 0
        assert report.batches_verified > 0

    def test_audit_disabled_by_default(self):
        config = default_config(4, scheme="private")
        trace = get_workload("fir").generate(4, seed=1, scale=0.05)
        from repro.system import MultiGpuSystem

        system = MultiGpuSystem(config)
        system.run(trace)
        assert system.transport.audit_log is None


class TestReplayMechanics:
    def test_counter_drift_detected(self):
        # a log whose counters skip ahead cannot be reproduced faithfully
        log = [
            AuditEntry(1, 2, 0, False, False, 0),
            AuditEntry(1, 2, 5, False, False, 0),  # endpoint would use 1
        ]
        report = functional_replay(log)
        assert any("counter drift" in f for f in report.failures)

    def test_clean_synthetic_log(self):
        log = [AuditEntry(1, 2, c, False, False, 0) for c in range(5)]
        report = functional_replay(log)
        assert report.ok and report.messages == 5

    def test_synthetic_batch_log(self):
        log = [
            AuditEntry(1, 2, 0, True, False, 0),
            AuditEntry(1, 2, 1, True, False, 0),
            AuditEntry(1, 2, 2, True, True, 3),
        ]
        report = functional_replay(log)
        assert report.ok, report.failures
        assert report.batches_verified == 1

    def test_timeout_close_entry(self):
        log = [
            AuditEntry(1, 2, 0, True, False, 0),
            AuditEntry(1, 2, -1, True, True, 1, timeout_close=True),
        ]
        report = functional_replay(log)
        assert report.ok, report.failures
        assert report.batches_verified == 1

    def test_trailing_open_batch_closed_at_end(self):
        log = [AuditEntry(1, 2, 0, True, False, 0)]
        report = functional_replay(log)
        assert report.batches_verified == 1
