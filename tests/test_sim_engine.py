"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventQueue, SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_during_run_is_honoured():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(5, lambda: seen.append(sim.now))

    sim.schedule(10, first)
    sim.run()
    assert seen == [10, 15]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: sim.schedule_at(5, lambda: None))
    with pytest.raises(SimulationError):
        sim.run()


def test_cancelled_event_is_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append("cancelled"))
    sim.schedule(20, lambda: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_max_events_limit():
    sim = Simulator(max_events=2)
    fired = []
    for i in range(5):
        sim.schedule(i, lambda i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1]


def test_max_cycles_limit():
    sim = Simulator(max_cycles=15)
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(20, lambda: fired.append(20))
    sim.run()
    assert fired == [10]


def test_end_hooks_fire_once_after_run():
    sim = Simulator()
    calls = []
    sim.add_end_hook(lambda: calls.append(sim.now))
    sim.schedule(42, lambda: None)
    sim.run()
    assert calls == [42]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(3, lambda: None)
    assert sim.step() is True
    assert sim.now == 3


def test_event_queue_peek_skips_cancelled():
    q = EventQueue()
    e1 = q.push(5, lambda: None)
    q.push(9, lambda: None)
    e1.cancel()
    assert q.peek_time() == 9


def test_pop_compacts_heap_dominated_by_cancelled_events():
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in range(1000)]
    live = events[500]
    for event in events:
        if event is not live:
            event.cancel()
    assert len(q) == 1000
    popped = q.pop()
    assert popped is live
    # one pop drained every cancelled entry: the ones before the live event
    # on the way to it, and the consecutive cancelled run behind it eagerly
    assert len(q) == 0
    assert q.pop() is None


def test_pop_compaction_stops_at_next_live_event():
    q = EventQueue()
    first = q.push(1, lambda: None)
    cancelled = [q.push(t, lambda: None) for t in range(2, 6)]
    survivor = q.push(6, lambda: None)
    for event in cancelled:
        event.cancel()
    assert q.pop() is first
    # the cancelled run was compacted away, but the live survivor remains
    assert len(q) == 1
    assert q.peek_time() == 6
    assert q.pop() is survivor


def test_peek_time_drains_cancelled_prefix():
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in range(10)]
    for event in events[:9]:
        event.cancel()
    assert q.peek_time() == 9
    assert len(q) == 1  # the cancelled prefix was physically removed


def test_all_cancelled_heap_drains_to_empty():
    q = EventQueue()
    for event in [q.push(t, lambda: None) for t in range(50)]:
        event.cancel()
    assert q.peek_time() is None
    assert len(q) == 0


def test_cancelled_wakeup_storm_simulation_still_correct():
    """A component that always reschedules its wakeup (the GPU lane pump
    pattern) must not change observable behavior under eager compaction."""
    sim = Simulator()
    fired = []
    pending = []
    for t in range(1, 200):
        if pending:
            pending[-1].cancel()
        pending.append(sim.schedule(t, lambda t=t: fired.append(t)))
    sim.run()
    assert fired == [199]
    assert sim.events_processed == 1


def test_events_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 7
