"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventQueue, SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_during_run_is_honoured():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(5, lambda: seen.append(sim.now))

    sim.schedule(10, first)
    sim.run()
    assert seen == [10, 15]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: sim.schedule_at(5, lambda: None))
    with pytest.raises(SimulationError):
        sim.run()


def test_cancelled_event_is_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append("cancelled"))
    sim.schedule(20, lambda: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_max_events_limit():
    sim = Simulator(max_events=2)
    fired = []
    for i in range(5):
        sim.schedule(i, lambda i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1]


def test_max_cycles_limit():
    sim = Simulator(max_cycles=15)
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(20, lambda: fired.append(20))
    sim.run()
    assert fired == [10]


def test_end_hooks_fire_once_after_run():
    sim = Simulator()
    calls = []
    sim.add_end_hook(lambda: calls.append(sim.now))
    sim.schedule(42, lambda: None)
    sim.run()
    assert calls == [42]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(3, lambda: None)
    assert sim.step() is True
    assert sim.now == 3


def test_event_queue_peek_skips_cancelled():
    q = EventQueue()
    e1 = q.push(5, lambda: None)
    q.push(9, lambda: None)
    e1.cancel()
    assert q.peek_time() == 9


def test_events_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 7
