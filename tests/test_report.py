"""Report generator smoke test (tiny workload set)."""

from repro.experiments.report import generate_all
from repro.workloads import get_workload


def test_generate_all_writes_every_section(tmp_path):
    workloads = [get_workload("fir"), get_workload("kmeans")]
    sections = generate_all(
        tmp_path,
        scale=0.08,
        include_scaling=False,
        verbose=False,
        workloads=workloads,
    )
    expected = {
        "table1_storage",
        "hw_overhead",
        "fig15_16_burstiness",
        "fig13_14_timelines",
        "fig08_otp_sensitivity",
        "fig09_prior_schemes",
        "fig11_overhead_breakdown",
        "fig21_main_result",
        "fig10_22_otp_distribution",
        "fig12_23_traffic",
        "fig26_aes_latency",
    }
    assert expected <= set(sections)
    for name in expected:
        assert (tmp_path / f"{name}.txt").exists()
        assert sections[name].strip()
    combined = (tmp_path / "report.txt").read_text()
    assert "Figure 21" in combined and "Table I" in combined
