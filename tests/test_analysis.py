"""Analysis utilities tests."""

import pytest

from repro.analysis import burst_summary, compare_schemes, traffic_breakdown
from repro.configs import scheme_config
from repro.system import run_workload
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def reports():
    def simulate(scheme):
        trace = get_workload("kmeans").generate(4, seed=1, scale=0.15)
        return run_workload(scheme_config(scheme), trace)

    return {s: simulate(s) for s in ("unsecure", "private", "batching")}


class TestCompare:
    def test_compare_private_vs_batching(self, reports):
        cmp = compare_schemes(reports["private"], reports["batching"])
        assert cmp.workload == "kmeans"
        assert cmp.baseline_scheme == "private"
        assert cmp.candidate_scheme == "batching"
        assert cmp.traffic_saving > 0  # batching removes metadata bytes
        assert cmp.candidate_wins == (cmp.speedup > 1.0)

    def test_compare_requires_same_workload(self, reports):
        other = run_workload(
            scheme_config("private"), get_workload("fir").generate(4, seed=1, scale=0.15)
        )
        with pytest.raises(ValueError):
            compare_schemes(reports["private"], other)


class TestTrafficBreakdown:
    def test_breakdown_consistency(self, reports):
        bd = traffic_breakdown(reports["private"])
        assert bd.base_bytes + bd.meta_bytes == bd.total_bytes
        assert 0 < bd.meta_fraction < 0.5
        assert bd.amplification > 1.0

    def test_unsecure_has_no_amplification(self, reports):
        bd = traffic_breakdown(reports["unsecure"])
        assert bd.meta_fraction == 0.0
        assert bd.amplification == 1.0


class TestBurstSummary:
    def test_summary_fields(self, reports):
        summary = burst_summary(reports["unsecure"], group=16)
        assert set(summary) == {"within_160", "within_640", "tail"}
        assert 0.0 <= summary["within_160"] <= summary["within_640"] <= 1.0

    def test_group_32(self, reports):
        s16 = burst_summary(reports["unsecure"], 16)
        s32 = burst_summary(reports["unsecure"], 32)
        assert s32["within_160"] <= s16["within_160"] + 1e-9

    def test_invalid_group_rejected(self, reports):
        with pytest.raises(ValueError):
            burst_summary(reports["unsecure"], group=8)
