"""Tests for the simulation service: protocol, scheduler, server.

The load-bearing contracts (``docs/SERVICE.md``):

* a report served through the queue is **byte-identical** (canonical
  JSON) to the same cell run directly through ``SweepRunner``;
* identical concurrent submissions **coalesce to one execution** and
  every subscriber receives the full report;
* a full admission queue **rejects with a structured retry-after
  error** — nothing is silently dropped;
* cancellation works on queued and in-flight jobs, deadlines surface a
  structured ``deadline_exceeded`` error (never a hang), and drain
  completes every admitted execution.

Scheduler tests drive :class:`SimulationService` directly inside
``asyncio.run``; the end-to-end test goes through a real Unix socket.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.configs import scheme_config
from repro.runner import ResultCache, SweepJob, SweepRunner, report_to_dict
from repro.service import (
    PriorityRoundRobin,
    ServiceClient,
    ServiceError,
    SimulationServer,
    SimulationService,
    canonical_report_json,
)
from repro.service import protocol
from repro.workloads import get_workload

GPUS = 2
SCALE = 0.05


def _job(scheme: str = "unsecure", seed: int = 1, workload: str = "fir") -> SweepJob:
    return SweepJob(
        spec=get_workload(workload),
        config=scheme_config(scheme, n_gpus=GPUS),
        seed=seed,
        scale=SCALE,
    )


def _direct(*jobs: SweepJob):
    return SweepRunner(jobs=1).run_jobs(list(jobs))


def _counter(service: SimulationService, name: str) -> int:
    snapshot = service.metrics_snapshot()
    return snapshot.get(name, {}).get("value", 0)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "ping", "n": 3, "nested": {"b": [1, 2]}}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_non_json_and_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_validate_rejects_unknown_op(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request({"op": "frobnicate"})

    def test_validate_submit_fills_defaults(self):
        request = protocol.validate_request(
            {"op": "submit", "job": {"workload": "fir"}}
        )
        assert request["job"] == {
            "workload": "fir", "scheme": "batching", "gpus": 4,
            "seed": 1, "scale": 1.0, "n_lanes": 8,
        }
        assert request["wait"] is True and request["deadline_s"] is None

    @pytest.mark.parametrize("bad", [
        {"op": "submit"},                                            # no job
        {"op": "submit", "job": {"workload": "fir", "scheme": "rot13"}},
        {"op": "submit", "job": {"workload": "fir", "gpus": 1}},
        {"op": "submit", "job": {"workload": "fir", "scale": -1}},
        {"op": "submit", "job": {"workload": "fir"}, "deadline_s": 0},
        {"op": "submit", "job": {"workload": "fir"}, "wait": "yes"},
        {"op": "cancel"},                                            # no job_id
    ])
    def test_validate_rejects_malformed_requests(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(bad)

    def test_error_response_requires_known_code(self):
        response = protocol.error("queue_full", "full", retry_after_s=1.5)
        assert response["ok"] is False
        assert response["error"]["code"] == "queue_full"
        assert response["error"]["retry_after_s"] == 1.5
        with pytest.raises(ValueError):
            protocol.error("made_up_code", "nope")

    def test_canonical_json_same_for_report_and_dict(self):
        report = _direct(_job())[0]
        assert canonical_report_json(report) == canonical_report_json(
            report_to_dict(report)
        )


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class TestScheduler:
    def test_served_report_byte_identical_to_direct_runner(self):
        async def scenario():
            async with SimulationService() as service:
                ticket = service.submit(_job("batching"))
                return await ticket.future

        served = asyncio.run(scenario())
        direct = _direct(_job("batching"))[0]
        assert canonical_report_json(served) == canonical_report_json(direct)

    def test_identical_submissions_coalesce_to_one_execution(self):
        batches: list[list[SweepJob]] = []
        runner = SweepRunner(jobs=1)

        def recording(jobs):
            batches.append(list(jobs))
            return runner.run_jobs(jobs)

        async def scenario():
            async with SimulationService(run_batch=recording) as service:
                first = service.submit(_job(), client="alice")
                second = service.submit(_job(), client="bob")  # identical cell
                reports = await asyncio.gather(first.future, second.future)
                assert second.source == "coalesced"
                assert _counter(service, "service.coalesced") == 1
                assert _counter(service, "service.served") == 2
                return reports

        first_report, second_report = asyncio.run(scenario())
        assert len(batches) == 1 and len(batches[0]) == 1  # one execution total
        # both clients got the full report, byte-identical to direct
        expected = canonical_report_json(_direct(_job())[0])
        assert canonical_report_json(first_report) == expected
        assert canonical_report_json(second_report) == expected

    def test_completed_cells_short_circuit_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(jobs=1, cache=cache).run_jobs([_job()])  # warm the cache

        def explode(jobs):
            raise AssertionError("cache hit must not execute")

        async def scenario():
            async with SimulationService(cache=cache, run_batch=explode) as service:
                ticket = service.submit(_job())
                report = await ticket.future
                assert ticket.source == "cache"
                assert _counter(service, "service.cache_hits") == 1
                return report

        report = asyncio.run(scenario())
        assert canonical_report_json(report) == canonical_report_json(_direct(_job())[0])

    def test_queue_full_rejected_with_retry_after(self):
        async def scenario():
            service = SimulationService(max_queue=1)  # never started: queue holds
            service.submit(_job(seed=1))
            with pytest.raises(ServiceError) as excinfo:
                service.submit(_job(seed=2))
            assert excinfo.value.code == "queue_full"
            assert excinfo.value.retry_after_s > 0
            assert _counter(service, "service.rejected") == 1

        asyncio.run(scenario())

    def test_draining_rejects_new_submissions(self):
        async def scenario():
            async with SimulationService() as service:
                await service.drain()
                with pytest.raises(ServiceError) as excinfo:
                    service.submit(_job())
                assert excinfo.value.code == "draining"

        asyncio.run(scenario())

    def test_cancel_queued_job(self):
        async def scenario():
            service = SimulationService()  # never started: stays queued
            ticket = service.submit(_job())
            assert service.status()["queue_depth"] == 1
            assert service.cancel(ticket.job_id) == "cancelled"
            assert service.status()["queue_depth"] == 0  # execution dequeued
            with pytest.raises(ServiceError) as excinfo:
                await ticket.future
            assert excinfo.value.code == "cancelled"

        asyncio.run(scenario())

    def test_cancel_inflight_job_detaches_but_execution_completes(self):
        release = threading.Event()
        executed: list[int] = []
        runner = SweepRunner(jobs=1)

        def gated(jobs):
            release.wait(timeout=30)
            executed.append(len(jobs))
            return runner.run_jobs(jobs)

        async def scenario():
            async with SimulationService(run_batch=gated) as service:
                ticket = service.submit(_job())
                while ticket.state != "running":  # dispatcher picks it up
                    await asyncio.sleep(0.01)
                assert service.cancel(ticket.job_id) == "cancelled"
                with pytest.raises(ServiceError) as excinfo:
                    await ticket.future  # resolved instantly, no hang
                assert excinfo.value.code == "cancelled"
                release.set()
                await service.drain()  # the execution itself still completes

        asyncio.run(scenario())
        assert executed == [1]

    def test_cancel_unknown_job_is_structured(self):
        async def scenario():
            async with SimulationService() as service:
                with pytest.raises(ServiceError) as excinfo:
                    service.cancel("j999999")
                assert excinfo.value.code == "unknown_job"

        asyncio.run(scenario())

    def test_deadline_surfaces_structured_error_not_a_hang(self):
        async def scenario():
            service = SimulationService()  # never started: job can't finish
            ticket = service.submit(_job(), deadline_s=0.05)
            with pytest.raises(ServiceError) as excinfo:
                await asyncio.wait_for(ticket.future, timeout=5.0)
            assert excinfo.value.code == "deadline_exceeded"
            assert ticket.state == "expired"
            assert _counter(service, "service.expired") == 1

        asyncio.run(scenario())

    def test_failed_batch_resolves_tickets_with_execution_failed(self):
        def explode(jobs):
            raise RuntimeError("worker crashed")

        async def scenario():
            async with SimulationService(run_batch=explode) as service:
                ticket = service.submit(_job())
                with pytest.raises(ServiceError) as excinfo:
                    await ticket.future
                assert excinfo.value.code == "execution_failed"
                assert _counter(service, "service.failed") == 1

        asyncio.run(scenario())

    def test_clients_drain_round_robin(self):
        batches: list[list[str]] = []
        runner = SweepRunner(jobs=1)

        def recording(jobs):
            batches.append([job.describe() for job in jobs])
            return runner.run_jobs(jobs)

        async def scenario():
            async with SimulationService(run_batch=recording) as service:
                # distinct workloads so no trace key is shared across cells
                tickets = [
                    service.submit(_job(workload="fir", seed=1), client="alice"),
                    service.submit(_job(workload="fir", seed=2), client="alice"),
                    service.submit(_job(workload="matrixmultiplication", seed=1), client="bob"),
                    service.submit(_job(workload="matrixmultiplication", seed=2), client="bob"),
                ]
                await asyncio.gather(*(t.future for t in tickets))

        asyncio.run(scenario())
        owners = ["alice" if "fir" in batch[0] else "bob" for batch in batches]
        assert owners == ["alice", "bob", "alice", "bob"]  # interleaved, not FIFO

    def test_trace_key_siblings_batch_together(self):
        batches: list[list[SweepJob]] = []
        runner = SweepRunner(jobs=1)

        def recording(jobs):
            batches.append(list(jobs))
            return runner.run_jobs(jobs)

        async def scenario():
            async with SimulationService(run_batch=recording) as service:
                tickets = [
                    # same (workload, gpus, seed, scale) -> same trace key
                    service.submit(_job("unsecure"), client="alice"),
                    service.submit(_job("private"), client="bob"),
                    service.submit(_job("batching"), client="alice"),
                    # different seed -> different trace key, separate batch
                    service.submit(_job("unsecure", seed=9), client="bob"),
                ]
                await asyncio.gather(*(t.future for t in tickets))

        asyncio.run(scenario())
        assert sorted(len(batch) for batch in batches) == [1, 3]

    def test_drain_completes_every_admitted_execution(self):
        async def scenario():
            async with SimulationService() as service:
                tickets = [service.submit(_job(scheme)) for scheme in
                           ("unsecure", "private", "batching")]
                await service.drain()
                assert all(t.state == "done" for t in tickets)
                return [t.report for t in tickets]

        reports = asyncio.run(scenario())
        assert all(report is not None for report in reports)


# ----------------------------------------------------------------------
# End-to-end over a real Unix socket
# ----------------------------------------------------------------------
class TestServerEndToEnd:
    def test_submit_status_metrics_cancel_over_socket(self, tmp_path):
        socket_path = tmp_path / "service.sock"

        def client_session():
            with ServiceClient(socket_path, timeout=120.0) as client:
                assert client.ping()["ok"]

                served = client.submit(
                    "fir", scheme="batching", gpus=GPUS, scale=SCALE, client="e2e"
                )
                assert served["ok"] and served["state"] == "done"

                # job lookups: known id resolves, unknown id is structured
                looked_up = client.status(served["job_id"])
                assert looked_up["ok"] and looked_up["job"]["state"] == "done"
                missing = client.status("j999999")
                assert not missing["ok"]
                assert missing["error"]["code"] == "unknown_job"
                cancel_missing = client.cancel("j999999")
                assert cancel_missing["error"]["code"] == "unknown_job"

                # malformed line -> structured bad_request, connection lives
                bad = client.request({"op": "submit"})
                assert not bad["ok"] and bad["error"]["code"] == "bad_request"
                unknown = client.request(
                    {"op": "submit", "job": {"workload": "definitely-not-real"}}
                )
                assert unknown["error"]["code"] == "unknown_workload"

                metrics = client.metrics()
                assert metrics["ok"]
                assert metrics["metrics"]["service.served"]["value"] == 1
                snapshot = client.status()
                assert snapshot["ok"] and snapshot["queue_depth"] == 0
                return served

        async def scenario():
            service = SimulationService()
            server = SimulationServer(service, socket_path)
            await server.start()
            try:
                return await asyncio.to_thread(client_session)
            finally:
                await server.drain_and_stop()

        served = asyncio.run(scenario())
        direct = _direct(_job("batching"))[0]
        assert canonical_report_json(served["report"]) == canonical_report_json(direct)
        assert not socket_path.exists()  # drain_and_stop removed the socket

    def test_concurrent_identical_submissions_over_socket(self, tmp_path):
        socket_path = tmp_path / "service.sock"
        release = threading.Event()
        executions: list[int] = []
        runner = SweepRunner(jobs=1)

        def gated(jobs):
            release.wait(timeout=30)
            executions.append(len(jobs))
            return runner.run_jobs(jobs)

        def submit_once(name):
            with ServiceClient(socket_path, timeout=120.0) as client:
                return client.submit(
                    "fir", scheme="unsecure", gpus=GPUS, scale=SCALE, client=name
                )

        async def scenario():
            service = SimulationService(run_batch=gated)
            server = SimulationServer(service, socket_path)
            await server.start()
            try:
                first = asyncio.create_task(asyncio.to_thread(submit_once, "alice"))
                second = asyncio.create_task(asyncio.to_thread(submit_once, "bob"))
                while _counter(service, "service.submitted") < 2:
                    await asyncio.sleep(0.01)
                release.set()  # both submissions are in; let the batch run
                responses = await asyncio.gather(first, second)
                assert _counter(service, "service.coalesced") == 1
                return responses
            finally:
                release.set()
                await server.drain_and_stop()

        responses = asyncio.run(scenario())
        assert executions == [1]  # single-flight: one execution for two clients
        expected = canonical_report_json(_direct(_job())[0])
        for response in responses:
            assert response["ok"], response
            assert canonical_report_json(response["report"]) == expected


# ----------------------------------------------------------------------
# Priority classes (docs/SERVICE.md: strict across, round-robin within)
# ----------------------------------------------------------------------
class TestPriorityRoundRobin:
    def _drain(self, queue: PriorityRoundRobin) -> list:
        items = []
        while (item := queue.pop()) is not None:
            items.append(item)
        return items

    def test_strict_priority_across_classes(self):
        queue = PriorityRoundRobin()
        queue.push("backfill", client="cron", priority="low")
        queue.push("sweep", client="cron", priority="normal")
        queue.push("debug", client="human", priority="high")
        assert self._drain(queue) == ["debug", "sweep", "backfill"]

    def test_round_robin_within_class_fifo_per_client(self):
        queue = PriorityRoundRobin()
        for n in (1, 2, 3):
            queue.push(f"a{n}", client="alice")
        queue.push("b1", client="bob")
        queue.push("b2", client="bob")
        assert self._drain(queue) == ["a1", "b1", "a2", "b2", "a3"]

    def test_bulk_client_cannot_starve_peer_of_same_class(self):
        queue = PriorityRoundRobin()
        for n in range(100):
            queue.push(f"bulk{n}", client="bulk")
        queue.push("urgent-ish", client="small")
        # The small client is served within one rotation, not after 100.
        assert queue.pop() == "bulk0"
        assert queue.pop() == "urgent-ish"

    def test_lower_class_waits_out_entire_higher_class(self):
        queue = PriorityRoundRobin()
        queue.push("low1", client="a", priority="low")
        for n in (1, 2):
            queue.push(f"high{n}", client="b", priority="high")
        assert self._drain(queue) == ["high1", "high2", "low1"]
        # ...and a late high arrival jumps ahead of queued normals.
        queue.push("normal1", client="a")
        queue.push("high3", client="b", priority="high")
        assert self._drain(queue) == ["high3", "normal1"]

    def test_remove_and_take_keep_rotation_consistent(self):
        queue = PriorityRoundRobin()
        queue.push("x1", client="alice")
        queue.push("y1", client="bob")
        queue.push("x2", client="alice")
        assert queue.remove("x1") is True
        assert queue.remove("x1") is False  # already gone
        assert queue.take(lambda item: item.startswith("y")) == ["y1"]
        assert len(queue) == 1
        # alice's emptied-then-refilled queue must not get two rotation slots
        queue.push("x3", client="alice")
        assert self._drain(queue) == ["x2", "x3"]
        assert len(queue) == 0

    def test_unknown_priority_rejected(self):
        queue = PriorityRoundRobin()
        with pytest.raises(ValueError, match="unknown priority"):
            queue.push("x", client="alice", priority="urgent")

    def test_iter_sees_every_queued_item(self):
        queue = PriorityRoundRobin()
        queue.push("a", client="alice", priority="low")
        queue.push("b", client="bob", priority="high")
        assert sorted(queue) == ["a", "b"]


class TestSchedulerPriorities:
    def test_high_priority_dispatched_before_earlier_normal(self):
        batches: list[list[int]] = []
        runner = SweepRunner(jobs=1)

        def recording(jobs):
            batches.append([job.seed for job in jobs])
            return runner.run_jobs(jobs)

        async def scenario():
            service = SimulationService(run_batch=recording)
            # Queue before the dispatcher starts: admission order is
            # normal, low, high -- dispatch order must be high, normal, low.
            normal = service.submit(_job(seed=1), client="bulk")
            low = service.submit(_job(seed=2), client="backfill", priority="low")
            high = service.submit(_job(seed=3), client="debug", priority="high")
            async with service:
                await asyncio.gather(normal.future, low.future, high.future)

        asyncio.run(scenario())
        assert batches == [[3], [1], [2]]

    def test_bad_priority_is_structured_rejection(self):
        async def scenario():
            async with SimulationService() as service:
                with pytest.raises(ServiceError) as excinfo:
                    service.submit(_job(), priority="urgent")
                assert excinfo.value.code == "bad_request"

        asyncio.run(scenario())

    def test_status_reports_priority(self):
        async def scenario():
            service = SimulationService()  # never started: stays queued
            ticket = service.submit(_job(), client="ops", priority="high")
            job = service.status(ticket.job_id)["job"]
            assert job["priority"] == "high"

        asyncio.run(scenario())

    def test_protocol_validates_and_defaults_priority(self):
        request = protocol.validate_request(
            {"op": "submit", "job": {"workload": "fir"}, "priority": "low"}
        )
        assert request["priority"] == "low"
        defaulted = protocol.validate_request(
            {"op": "submit", "job": {"workload": "fir"}}
        )
        assert defaulted["priority"] == "normal"
        with pytest.raises(protocol.ProtocolError, match="priority"):
            protocol.validate_request(
                {"op": "submit", "job": {"workload": "fir"}, "priority": "urgent"}
            )
