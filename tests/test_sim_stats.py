"""Statistics primitive tests."""

import pytest

from repro.sim.stats import Counter, Gauge, Histogram, IntervalSeries, RatioStat, StatsRegistry


def test_counter_add_and_reset():
    c = Counter("bytes")
    c.add()
    c.add(41)
    assert c.value == 42
    c.reset()
    assert c.value == 0


def test_gauge_set_overwrites():
    g = Gauge("rpki")
    assert g.value == 0.0
    g.set(1.5)
    g.set(0.25)
    assert g.value == 0.25


def test_histogram_binning_matches_paper_edges():
    h = Histogram("burst16", edges=[40, 160, 640, 2560])
    for v in [0, 39]:
        h.record(v)
    h.record(40)
    h.record(159)
    h.record(2560)
    assert h.counts == [2, 2, 0, 0, 1]
    assert h.total == 5


def test_histogram_fractions_sum_to_one():
    h = Histogram("h", edges=[10])
    for v in (1, 5, 20, 30):
        h.record(v)
    assert sum(h.fractions()) == pytest.approx(1.0)
    assert h.mean == pytest.approx(14.0)


def test_histogram_labels():
    h = Histogram("h", edges=[40, 160])
    assert h.bin_labels() == ["[-inf, 40)", "[40, 160)", "[160, inf)"]


def test_histogram_underflow_bin_catches_negatives():
    # bisect_right sends anything below edges[0] — negatives included —
    # to bin 0, so its label must read [-inf, ...), not [0, ...).
    h = Histogram("h", edges=[40, 160])
    for v in (-5, 0, 39):
        h.record(v)
    assert h.counts == [3, 0, 0]
    assert h.bin_labels()[0] == "[-inf, 40)"


def test_histogram_rejects_unsorted_edges():
    with pytest.raises(ValueError):
        Histogram("bad", edges=[5, 1])


def test_interval_series_bucketing():
    s = IntervalSeries("sendrecv", interval=100)
    s.record(5, "send")
    s.record(99, "send")
    s.record(100, "recv")
    s.record(250, "send", amount=3)
    assert s.series("send", 3) == [2.0, 0.0, 3.0]
    assert s.series("recv", 3) == [0.0, 1.0, 0.0]
    assert s.n_buckets() == 3


def test_interval_series_stacked_fractions():
    s = IntervalSeries("dest", interval=10)
    s.record(0, "gpu2", 3)
    s.record(0, "gpu3", 1)
    s.record(15, "gpu2", 2)
    fracs = s.stacked_fractions()
    assert fracs["gpu2"][0] == pytest.approx(0.75)
    assert fracs["gpu3"][0] == pytest.approx(0.25)
    assert fracs["gpu2"][1] == pytest.approx(1.0)


def test_interval_series_rejects_bad_interval():
    with pytest.raises(ValueError):
        IntervalSeries("x", interval=0)


def test_ratio_stat_fractions():
    r = RatioStat("otp")
    r.record("hit", 3)
    r.record("partial")
    r.record("miss", 6)
    assert r.total == 10
    assert r.fraction("hit") == pytest.approx(0.3)
    fr = r.fractions()
    assert sum(fr.values()) == pytest.approx(1.0)


def test_ratio_stat_merge():
    a = RatioStat("a")
    a.record("hit", 2)
    b = RatioStat("b")
    b.record("hit", 1)
    b.record("miss", 1)
    a.merge(b)
    assert a.counts == {"hit": 3, "miss": 1}


def test_ratio_stat_empty_fraction_is_zero():
    assert RatioStat("e").fraction("hit") == 0.0


def test_registry_returns_same_instance():
    reg = StatsRegistry("gpu0")
    c1 = reg.counter("sends")
    c1.add(5)
    assert reg.counter("sends").value == 5
    assert "sends" in reg
    assert "other" not in reg
    assert set(reg.all()) == {"sends"}
