"""Functional protocol tests: real pads, MACs, replay and batch checks."""

import pytest

from repro.secure.protocol import ProtocolError, SecureEndpoint

KEY = bytes(range(16))
HKEY = bytes(range(16, 32))


def make_pair():
    return SecureEndpoint(1, KEY, HKEY), SecureEndpoint(2, KEY, HKEY)


class TestPointToPoint:
    def test_round_trip(self):
        a, b = make_pair()
        wire = a.send_block(2, b"hello gpu 2, here is a cache block")
        assert wire.ciphertext != b"hello gpu 2, here is a cache block"
        assert b.receive_block(wire) == b"hello gpu 2, here is a cache block"

    def test_counters_advance_per_receiver(self):
        a, _ = make_pair()
        w1 = a.send_block(2, b"x")
        w2 = a.send_block(2, b"y")
        w3 = a.send_block(3, b"z")
        assert (w1.counter, w2.counter, w3.counter) == (0, 1, 0)

    def test_tampered_ciphertext_rejected(self):
        a, b = make_pair()
        wire = a.send_block(2, b"payload")
        forged = type(wire)(
            wire.sender_id,
            wire.receiver_id,
            wire.counter,
            bytes([wire.ciphertext[0] ^ 1]) + wire.ciphertext[1:],
            wire.mac,
        )
        with pytest.raises(ProtocolError):
            b.receive_block(forged)

    def test_replay_rejected(self):
        a, b = make_pair()
        wire = a.send_block(2, b"secret")
        b.receive_block(wire)
        with pytest.raises(ProtocolError):
            b.receive_block(wire)

    def test_wrong_receiver_rejected(self):
        a, b = make_pair()
        wire = a.send_block(3, b"for node 3")
        with pytest.raises(ProtocolError):
            b.receive_block(wire)

    def test_oversized_payload_rejected(self):
        a, _ = make_pair()
        with pytest.raises(ValueError):
            a.send_block(2, bytes(65))

    def test_different_keys_cannot_decrypt(self):
        a = SecureEndpoint(1, KEY, HKEY)
        eve = SecureEndpoint(2, bytes(16), HKEY)
        wire = a.send_block(2, b"confidential")
        with pytest.raises(ProtocolError):
            eve.receive_block(wire)  # MAC check fails under the wrong key


class TestBatchedProtocol:
    def test_batch_round_trip(self):
        a, b = make_pair()
        payloads = [bytes([i]) * 32 for i in range(16)]
        wires = [a.send_block(2, p, in_batch=True) for p in payloads]
        assert all(w.mac is None for w in wires)
        received = [b.receive_block(w) for w in wires]
        assert received == payloads  # lazy: data usable before verification
        batch = a.close_batch(2)
        assert batch.count == 16
        assert b.verify_batch(batch)
        assert b.stored_macs(1) == 0

    def test_out_of_order_blocks_verify(self):
        a, b = make_pair()
        wires = [a.send_block(2, bytes([i]) * 8, in_batch=True) for i in range(4)]
        for w in (wires[2], wires[0], wires[3], wires[1]):
            b.receive_block(w)
        assert b.verify_batch(a.close_batch(2))

    def test_tampered_batch_member_fails_batch_mac(self):
        a, b = make_pair()
        wires = [a.send_block(2, bytes([i]) * 8, in_batch=True) for i in range(4)]
        bad = type(wires[1])(
            wires[1].sender_id,
            wires[1].receiver_id,
            wires[1].counter,
            bytes([wires[1].ciphertext[0] ^ 0xFF]) + wires[1].ciphertext[1:],
            None,
        )
        for w in (wires[0], bad, wires[2], wires[3]):
            b.receive_block(w)
        assert not b.verify_batch(a.close_batch(2))

    def test_verify_before_all_blocks_raises(self):
        a, b = make_pair()
        wires = [a.send_block(2, b"x", in_batch=True) for _ in range(3)]
        b.receive_block(wires[0])
        with pytest.raises(ProtocolError):
            b.verify_batch(a.close_batch(2))

    def test_close_empty_batch_raises(self):
        a, _ = make_pair()
        with pytest.raises(ProtocolError):
            a.close_batch(2)

    def test_storage_occupancy_tracks_open_batch(self):
        a, b = make_pair()
        for i in range(5):
            b.receive_block(a.send_block(2, bytes([i]), in_batch=True))
        assert b.stored_macs(1) == 5
