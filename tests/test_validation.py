"""Claims-validation framework tests (small workload set)."""

import pytest

from repro.experiments.common import ExperimentRunner
from repro.validation import (
    Claim,
    check_paper_claims,
    format_verdicts,
    paper_claims,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def verdicts():
    workloads = [get_workload(n) for n in ("relu", "matrixmultiplication", "spmv", "fir")]
    runner = ExperimentRunner(n_gpus=4, seed=1, scale=0.25, workloads=workloads)
    return check_paper_claims(runner)


def test_claim_list_is_well_formed():
    claims = paper_claims()
    assert len(claims) >= 8
    assert len({c.claim_id for c in claims}) == len(claims)
    for claim in claims:
        assert claim.source and claim.statement


def test_all_claims_evaluate(verdicts):
    assert len(verdicts) == len(paper_claims())
    for v in verdicts:
        assert v.detail  # every verdict carries its evidence


def test_core_claims_pass_at_small_scale(verdicts):
    by_id = {v.claim.claim_id: v for v in verdicts}
    # the claims that must hold even on a 4-workload mini-sweep
    for claim_id in (
        "shared-worst",
        "metadata-traffic",
        "traffic-slowdown-split",
        "batching-cuts-traffic",
    ):
        assert by_id[claim_id].passed, by_id[claim_id].detail


def test_format_verdicts_readable(verdicts):
    text = format_verdicts(verdicts)
    assert "Paper-claim validation" in text
    assert "claims reproduced" in text
    assert text.count("PASS") + text.count("FAIL") == len(verdicts)


def test_broken_claim_reports_failure():
    broken = Claim(
        "broken", "none", "always errors",
        check=lambda m: 1 / 0,
        detail=lambda m: "unreachable",
    )
    from repro.validation import Verdict

    try:
        passed = bool(broken.check({}))
        detail = "?"
    except Exception as exc:
        passed, detail = False, f"evaluation error: {exc}"
    v = Verdict(claim=broken, passed=passed, detail=detail)
    assert not v.passed and "evaluation error" in v.detail
