"""Shared test fixtures and fakes."""

from __future__ import annotations

import pytest

from repro.interconnect.packet import Packet
from repro.sim.engine import Simulator


class FakeTransport:
    """Fixed-delay transport for device-level unit tests.

    Delivers every packet ``delay`` cycles after it is sent and keeps a log
    so tests can assert on the message flow without a real fabric.
    """

    def __init__(self, sim: Simulator, delay: int = 10) -> None:
        self.sim = sim
        self.delay = delay
        self.handlers = {}
        self.sent: list[Packet] = []

    def register(self, node: int, handler) -> None:
        self.handlers[node] = handler

    def send(self, packet: Packet, now: int) -> None:
        self.sent.append(packet)
        handler = self.handlers.get(packet.dst)
        if handler is None:
            raise AssertionError(f"no handler registered for node {packet.dst}")
        self.sim.schedule(self.delay, lambda: handler(packet, self.sim.now))


@pytest.fixture(autouse=True)
def _isolated_trace_store(monkeypatch, tmp_path_factory):
    """Point the on-disk trace store at a session-scoped temp dir.

    Tests must not leave ``results/.tracestore`` artifacts in the working
    tree; sharing one directory per session keeps cross-process store-hit
    behavior testable.
    """
    root = tmp_path_factory.getbasetemp() / "tracestore"
    monkeypatch.setenv("REPRO_TRACE_DIR", str(root))


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fake_transport(sim):
    return FakeTransport(sim)
