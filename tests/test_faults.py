"""Adversarial fault injection: every attack must be caught by real crypto."""

import pytest

from repro.configs import default_config
from repro.secure.audit import AuditEntry
from repro.secure.faults import AttackPlan, adversarial_replay, plan_attacks
from repro.system import MultiGpuSystem
from repro.workloads import get_workload


def audited_log(scheme="private", batching=False, workload="fir", scale=0.05):
    config = default_config(4, scheme=scheme, batching=batching, audit=True)
    trace = get_workload(workload).generate(4, seed=1, scale=scale)
    system = MultiGpuSystem(config)
    system.run(trace)
    return system.transport.audit_log


class TestPlanAttacks:
    def test_rates_select_victims(self):
        log = [AuditEntry(1, 2, c, False, False, 0) for c in range(200)]
        plan = plan_attacks(log, tamper_rate=0.2, replay_rate=0.2, seed=3)
        assert plan.tampered and plan.replayed
        assert not plan.tampered & plan.replayed
        assert plan.total < 200

    def test_timeout_entries_never_attacked(self):
        log = [AuditEntry(1, 2, -1, True, True, 4, timeout_close=True)] * 10
        plan = plan_attacks(log, tamper_rate=1.0, replay_rate=0.0)
        assert plan.total == 0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            plan_attacks([], tamper_rate=1.5)
        with pytest.raises(ValueError):
            plan_attacks([], tamper_rate=0.7, replay_rate=0.7)

    def test_rate_zero_attacks_nothing(self):
        log = [AuditEntry(1, 2, c, False, False, 0) for c in range(100)]
        plan = plan_attacks(log, tamper_rate=0.0, replay_rate=0.0)
        assert plan.total == 0
        assert plan.tampered == plan.replayed == frozenset()

    def test_rate_one_attacks_everything(self):
        log = [AuditEntry(1, 2, c, False, False, 0) for c in range(100)]
        all_tampered = plan_attacks(log, tamper_rate=1.0, replay_rate=0.0)
        assert all_tampered.tampered == frozenset(range(100))
        assert not all_tampered.replayed
        all_replayed = plan_attacks(log, tamper_rate=0.0, replay_rate=1.0)
        assert all_replayed.replayed == frozenset(range(100))

    def test_empty_log_yields_empty_plan(self):
        plan = plan_attacks([], tamper_rate=1.0, replay_rate=0.0)
        assert plan.total == 0


class TestAdversarialReplay:
    def test_conventional_tampers_all_detected(self):
        log = audited_log(scheme="private")
        plan = plan_attacks(log, tamper_rate=0.1, replay_rate=0.0, seed=1)
        assert plan.tampered
        report = adversarial_replay(log, plan)
        assert report.all_detected, report.clean_failures
        assert report.tampers_detected == report.tampers_injected > 0

    def test_replays_all_detected(self):
        log = audited_log(scheme="private")
        plan = plan_attacks(log, tamper_rate=0.0, replay_rate=0.1, seed=2)
        assert plan.replayed
        report = adversarial_replay(log, plan)
        assert report.all_detected, report.clean_failures
        assert report.replays_detected == report.replays_injected > 0

    def test_batched_tampers_caught_at_batch_mac(self):
        log = audited_log(scheme="dynamic", batching=True, workload="kmeans", scale=0.08)
        plan = plan_attacks(log, tamper_rate=0.05, replay_rate=0.0, seed=4)
        assert plan.tampered
        report = adversarial_replay(log, plan)
        assert report.all_detected, report.clean_failures

    def test_mixed_attack_campaign(self):
        log = audited_log(scheme="dynamic", batching=True, workload="kmeans", scale=0.08)
        plan = plan_attacks(log, tamper_rate=0.04, replay_rate=0.04, seed=5)
        report = adversarial_replay(log, plan)
        assert report.all_detected, report.clean_failures
        assert report.messages > 0

    def test_no_attacks_means_clean_run(self):
        log = audited_log(scheme="private")
        report = adversarial_replay(log, AttackPlan(frozenset(), frozenset()))
        assert report.all_detected
        assert report.tampers_injected == report.replays_injected == 0

    def test_empty_log_replays_cleanly(self):
        report = adversarial_replay([], AttackPlan(frozenset(), frozenset()))
        assert report.all_detected
        assert report.messages == 0

    def test_overlapping_tamper_and_replay_tamper_wins(self):
        """A position claimed by both attack sets is handled as a tamper:
        the flipped-bit copy is rejected at the MAC and the replay of that
        position never happens (nothing clean was delivered to replay)."""
        log = audited_log(scheme="private")
        victims = frozenset(range(0, min(10, len(log))))
        report = adversarial_replay(log, AttackPlan(tampered=victims, replayed=victims))
        assert report.all_detected, report.clean_failures
        assert report.tampers_injected == len(victims)
        assert report.replays_injected == 0


class TestBidirectionalBatches:
    def test_send_and_recv_mac_stores_are_separate(self):
        """Regression: A<->B batched traffic must not collide in storage."""
        from repro.secure.protocol import SecureEndpoint

        a = SecureEndpoint(1, bytes(16), bytes(range(16)))
        b = SecureEndpoint(2, bytes(16), bytes(range(16)))
        # interleave batched blocks in both directions with equal counters
        wires_ab = [a.send_block(2, bytes([i]) * 8, in_batch=True) for i in range(4)]
        wires_ba = [b.send_block(1, bytes([i + 50]) * 8, in_batch=True) for i in range(4)]
        for wab, wba in zip(wires_ab, wires_ba):
            b.receive_block(wab)
            a.receive_block(wba)
        assert b.verify_batch(a.close_batch(2))
        assert a.verify_batch(b.close_batch(1))
