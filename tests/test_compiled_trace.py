"""Property tests for the compiled trace layer and cross-scheme sharing.

Two contracts are pinned here:

1. **Losslessness** — compiling a `WorkloadTrace` to the array-backed
   `CompiledTrace` and back (including through the `.npz` byte format the
   on-disk store persists) reconstructs the authoring form exactly.
2. **Determinism** — a sweep replaying one shared trace across schemes
   (serially, through the process pool, or via the result cache) produces
   reports byte-identical to generating the trace per cell.
"""

from __future__ import annotations

import pytest

from repro.configs import scheme_config
from repro.runner import ResultCache, SweepJob, SweepRunner, execute_job, report_to_dict
from repro.runner.trace_store import TraceStore, default_trace_store, trace_key
from repro.workloads import get_workload
from repro.workloads.compiled import (
    compile_trace,
    dump_bytes,
    ensure_compiled,
    load_bytes,
    to_workload_trace,
)
from repro.workloads.synthetic import synthetic_spec

SCALE = 0.1
WORKLOADS = ("fir", "matrixmultiplication", "pagerank")


def _trace(name: str, seed: int = 1):
    return get_workload(name).generate(n_gpus=4, seed=seed, scale=SCALE)


class TestLosslessRoundTrip:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_compile_then_decompile_is_identity(self, name):
        trace = _trace(name)
        compiled = compile_trace(trace)
        restored = to_workload_trace(compiled)
        assert restored == trace
        # and re-compiling the restored form reproduces the compiled form
        assert compile_trace(restored) == compiled

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_npz_bytes_round_trip(self, name):
        compiled = compile_trace(_trace(name))
        blob = dump_bytes(compiled)
        assert load_bytes(blob) == compiled

    def test_compiled_totals_match_authoring_form(self):
        trace = _trace("fir")
        compiled = compile_trace(trace)
        n_accesses = sum(
            len(lane) for gt in trace.gpu_traces.values() for lane in gt.lanes
        )
        assert compiled.total_accesses == n_accesses
        assert compiled.total_instructions == sum(
            gt.instructions for gt in trace.gpu_traces.values()
        )

    def test_workload_trace_compile_method(self):
        trace = _trace("fir")
        assert trace.compile() == compile_trace(trace)
        assert ensure_compiled(trace) == compile_trace(trace)
        compiled = trace.compile()
        assert ensure_compiled(compiled) is compiled

    def test_truncated_blob_raises_value_error(self):
        blob = dump_bytes(compile_trace(_trace("fir")))
        with pytest.raises(ValueError):
            load_bytes(blob[: len(blob) // 2])


class TestTraceStore:
    def test_memo_then_disk_hits(self, tmp_path):
        spec = get_workload("fir")
        store = TraceStore(tmp_path)
        first, src1 = store.get_or_generate(spec, 4, 1, SCALE, 8)
        again, src2 = store.get_or_generate(spec, 4, 1, SCALE, 8)
        assert (src1, src2) == ("generated", "memo")
        assert again is first  # literally the same shared object
        # a fresh store over the same root loads from disk
        cold = TraceStore(tmp_path)
        loaded, src3 = cold.get_or_generate(spec, 4, 1, SCALE, 8)
        assert src3 == "disk"
        assert loaded == first

    def test_key_covers_every_generation_parameter(self):
        base = trace_key("fir", 4, 1, SCALE, 8)
        assert base != trace_key("mis", 4, 1, SCALE, 8)
        assert base != trace_key("fir", 2, 1, SCALE, 8)
        assert base != trace_key("fir", 4, 2, SCALE, 8)
        assert base != trace_key("fir", 4, 1, SCALE * 2, 8)
        assert base != trace_key("fir", 4, 1, SCALE, 4)

    def test_non_registry_spec_generates_without_keys(self, tmp_path):
        spec = synthetic_spec("custom-synth", remote_fraction=0.5)
        store = TraceStore(tmp_path)
        _, source = store.get_or_generate(spec, 4, 1, SCALE, 8)
        assert source == "generated"
        assert list(tmp_path.glob("*.npz")) == []

    def test_memo_only_store_has_no_disk_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE_STORE", "1")
        store = default_trace_store()
        assert store.root is None
        spec = get_workload("fir")
        _, src1 = store.get_or_generate(spec, 4, 1, SCALE, 8)
        _, src2 = store.get_or_generate(spec, 4, 1, SCALE, 8)
        assert (src1, src2) == ("generated", "memo")


class TestSharedTraceDeterminism:
    """Shared-trace sweeps must be bit-identical to per-cell generation."""

    def _grid(self):
        jobs = []
        for name in ("fir", "matrixmultiplication"):
            spec = get_workload(name)
            for scheme in ("unsecure", "private", "batching"):
                jobs.append(
                    SweepJob(spec=spec, config=scheme_config(scheme), seed=1, scale=SCALE)
                )
        return jobs

    def test_shared_serial_parallel_cached_all_match_per_cell(self, tmp_path):
        grid = self._grid()
        # ground truth: per-cell generation, no store, no sharing
        expected = [report_to_dict(execute_job(job)) for job in grid]

        shared = SweepRunner(jobs=1, trace_store=TraceStore(tmp_path / "ts"))
        serial = shared.run_jobs(grid)
        assert [report_to_dict(r) for r in serial] == expected
        # 2 workloads generate; the other 4 cells reuse the memo
        assert shared.stats.trace_reused == 4
        assert shared.stats.mode == "serial"
        assert int(shared.telemetry.counter("trace.reused").value) == 4

        par = SweepRunner(jobs=4, mode="parallel", trace_store=TraceStore(tmp_path / "ts"))
        parallel = par.run_jobs(grid)
        assert [report_to_dict(r) for r in parallel] == expected
        assert par.stats.mode == "parallel"

        cache = ResultCache(tmp_path / "cache")
        SweepRunner(jobs=1, cache=cache, trace_store=TraceStore(tmp_path / "ts")).run_jobs(grid)
        warm = SweepRunner(jobs=1, cache=cache, trace_store=TraceStore(tmp_path / "ts"))
        cached = warm.run_jobs(grid)
        assert warm.stats.cache_hits == len(grid)
        assert [report_to_dict(r) for r in cached] == expected

    def test_execute_job_trace_paths_agree(self, tmp_path):
        job = self._grid()[2]  # a secured scheme
        fresh = report_to_dict(execute_job(job))
        store = TraceStore(tmp_path)
        via_store = report_to_dict(execute_job(job, trace_store=store))
        trace, _ = store.get_or_generate(
            job.spec, job.config.n_gpus, job.seed, job.scale, job.n_lanes
        )
        via_shared = report_to_dict(execute_job(job, trace=trace))
        assert fresh == via_store == via_shared

    def test_parallel_workers_share_parent_store_root(self, tmp_path):
        """Pool workers must persist into the parent's store root — not a
        default root of their own (which would litter ``results/``)."""
        grid = self._grid()
        root = tmp_path / "par-ts"
        runner = SweepRunner(jobs=2, mode="parallel", trace_store=TraceStore(root))
        runner.run_jobs(grid)
        assert runner.stats.parallel_runs == len(grid)
        assert list(root.glob("*.npz"))

    def test_auto_mode_goes_serial_on_small_grids(self):
        grid = self._grid()[:2]
        runner = SweepRunner(jobs=4)
        runner.run_jobs(grid)
        assert runner.stats.mode == "serial"
