"""GPU device model tests against a fixed-delay fake transport."""

import pytest

from repro.configs import GpuConfig, MigrationConfig
from repro.gpu.compute_unit import ComputeUnitLane, LaneState
from repro.gpu.cpu import HostCpu
from repro.gpu.gpu import GpuDevice
from repro.interconnect.packet import PacketKind
from repro.memory.address_space import BLOCK_BYTES, PAGE_BYTES
from repro.memory.migration import AccessCounterMigrationPolicy, MigrationCost
from repro.memory.page_table import PageTable
from repro.workloads.base import Access, AccessKind, GpuTrace


def make_gpu(sim, transport, owners, node=1, threshold=100, **gpu_overrides):
    pt = PageTable(owners)
    policy = AccessCounterMigrationPolicy(
        pt, threshold=threshold, cost=MigrationCost(driver_cycles=50, shootdown_cycles=20)
    )
    cfg = GpuConfig(**gpu_overrides) if gpu_overrides else GpuConfig()
    gpu = GpuDevice(
        node_id=node,
        sim=sim,
        cfg=cfg,
        transport=transport,
        page_table=pt,
        migration_policy=policy,
        migration_cfg=MigrationConfig(driver_cycles=50, shootdown_cycles=20),
    )
    return gpu, pt


def reads(addresses, gap=1):
    return [Access(gap=gap, address=a) for a in addresses]


class TestComputeUnitLane:
    def test_state_progression(self):
        lane = ComputeUnitLane(0, reads([0, 64], gap=5), max_outstanding=1)
        assert lane.state(0) is LaneState.WAITING
        assert lane.state(5) is LaneState.READY
        lane.issue(5, consumes_slot=True)
        assert lane.state(10) is LaneState.BLOCKED
        lane.complete()
        assert lane.state(10) is LaneState.READY
        lane.issue(10, consumes_slot=False)
        assert lane.state(10) is LaneState.DONE
        assert lane.drained

    def test_gap_measured_from_issue(self):
        lane = ComputeUnitLane(0, reads([0, 64], gap=3))
        lane.issue(7, consumes_slot=False)
        assert lane.ready_at == 10

    def test_issue_when_not_ready_raises(self):
        lane = ComputeUnitLane(0, reads([0], gap=10))
        with pytest.raises(RuntimeError):
            lane.issue(0, consumes_slot=False)

    def test_complete_without_outstanding_raises(self):
        lane = ComputeUnitLane(0, [])
        with pytest.raises(RuntimeError):
            lane.complete()

    def test_empty_trace_is_drained(self):
        lane = ComputeUnitLane(0, [])
        assert lane.drained and lane.finished


class TestGpuLocalExecution:
    def test_pure_local_reads_finish(self, sim, fake_transport):
        # GPU 1 owns page 1; all accesses local.
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        addrs = [PAGE_BYTES + i * BLOCK_BYTES for i in range(8)]
        gpu.load_trace(GpuTrace(lanes=[reads(addrs)], instructions=1000))
        gpu.start()
        sim.run()
        assert gpu.finish_cycle is not None
        assert gpu.remote_requests == 0
        assert gpu._local_accesses.value == 8
        assert fake_transport.sent == []

    def test_cache_hits_filter_memory_traffic(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        addr = PAGE_BYTES
        # serial accesses (gap larger than walk+HBM) so the first fill lands
        # before the next lookup; the remaining nine then hit in L1
        gpu.load_trace(GpuTrace(lanes=[reads([addr] * 10, gap=500)], instructions=100))
        gpu.start()
        sim.run()
        assert gpu._cache_hits.value == 9
        assert gpu.hbm.accesses == 1

    def test_rpki_computation(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        gpu.load_trace(GpuTrace(lanes=[reads([PAGE_BYTES])], instructions=2000))
        gpu.start()
        sim.run()
        assert gpu.rpki() == 0.0


class TestGpuRemoteExecution:
    def _run_remote(self, sim, fake_transport, n_blocks=4, **overrides):
        # GPU 1's accesses land on a page owned by the CPU (node 0).
        gpu, pt = make_gpu(sim, fake_transport, {0: 0}, **overrides)
        HostCpu(sim, fake_transport)
        addrs = [i * BLOCK_BYTES for i in range(n_blocks)]
        gpu.load_trace(GpuTrace(lanes=[reads(addrs)], instructions=1000))
        gpu.start()
        sim.run()
        return gpu

    def test_remote_reads_round_trip(self, sim, fake_transport):
        gpu = self._run_remote(sim, fake_transport, n_blocks=4)
        assert gpu.finish_cycle is not None
        kinds = [p.kind for p in fake_transport.sent]
        assert kinds.count(PacketKind.READ_REQ) == 4
        assert kinds.count(PacketKind.DATA_RESP) == 4
        assert gpu.remote_requests == 4
        assert gpu.rpki() == pytest.approx(4.0)

    def test_duplicate_block_requests_merge(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {0: 0}, lane_outstanding=8)
        HostCpu(sim, fake_transport)
        # two lanes read the same block at the same time: one fetch expected
        lanes = [reads([0], gap=0), reads([0], gap=0)]
        gpu.load_trace(GpuTrace(lanes=lanes, instructions=100))
        gpu.start()
        sim.run()
        reqs = [p for p in fake_transport.sent if p.kind is PacketKind.READ_REQ]
        assert len(reqs) == 1
        assert gpu.directory.merged == 1
        assert gpu.finish_cycle is not None

    def test_remote_write_completes_via_ack(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {0: 0})
        HostCpu(sim, fake_transport)
        trace = [Access(gap=1, address=0, kind=AccessKind.WRITE)]
        gpu.load_trace(GpuTrace(lanes=[trace], instructions=100))
        gpu.start()
        sim.run()
        kinds = [p.kind for p in fake_transport.sent]
        assert PacketKind.WRITE_REQ in kinds
        assert PacketKind.WRITE_ACK in kinds
        assert gpu.finish_cycle is not None

    def test_second_read_of_same_block_hits_l2(self, sim, fake_transport):
        gpu = self._run_remote(sim, fake_transport, n_blocks=1)
        assert gpu._cache_hits.value == 0
        # re-run same address: already filled into L2+L1 by the response
        assert gpu.l2.contains(0)

    def test_global_window_throttles_issue(self, sim, fake_transport):
        gpu, _ = make_gpu(
            sim, fake_transport, {0: 0}, max_outstanding=2, n_lanes=1, lane_outstanding=64
        )
        HostCpu(sim, fake_transport)
        addrs = [i * BLOCK_BYTES for i in range(8)]
        gpu.load_trace(GpuTrace(lanes=[reads(addrs, gap=0)], instructions=100))
        gpu.start()
        # after the first pump, at most 2 requests may be outstanding
        sim.step()  # initial pump event
        reqs = [p for p in fake_transport.sent if p.kind is PacketKind.READ_REQ]
        assert len(reqs) == 2
        sim.run()
        assert gpu.finish_cycle is not None
        assert gpu.remote_requests == 8


class TestMigration:
    def test_threshold_triggers_page_pull(self, sim, fake_transport):
        gpu, pt = make_gpu(sim, fake_transport, {0: 0}, threshold=3)
        HostCpu(sim, fake_transport)
        # 6 distinct blocks of the same CPU page, reads cross the threshold
        addrs = [i * BLOCK_BYTES for i in range(6)]
        gpu.load_trace(GpuTrace(lanes=[reads(addrs, gap=2)], instructions=100))
        gpu.start()
        sim.run()
        assert pt.owner(0) == 1
        assert pt.migrations == 1
        kinds = [p.kind for p in fake_transport.sent]
        assert kinds.count(PacketKind.MIGRATION_REQ) == 1
        assert kinds.count(PacketKind.MIGRATION_DATA) == 64

    def test_pinned_page_never_migrates(self, sim, fake_transport):
        gpu, pt = make_gpu(sim, fake_transport, {0: 0}, threshold=2)
        gpu.migration_policy.pin(0)
        HostCpu(sim, fake_transport)
        addrs = [i * BLOCK_BYTES for i in range(6)]
        gpu.load_trace(GpuTrace(lanes=[reads(addrs, gap=2)], instructions=100))
        gpu.start()
        sim.run()
        assert pt.owner(0) == 0
        assert pt.migrations == 0

    def test_migration_commit_callback_fires(self, sim, fake_transport):
        commits = []
        gpu, pt = make_gpu(sim, fake_transport, {0: 0}, threshold=1)
        gpu.on_migration_commit = lambda page, old, new: commits.append((page, old, new))
        HostCpu(sim, fake_transport)
        gpu.load_trace(GpuTrace(lanes=[reads([0, 64], gap=2)], instructions=100))
        gpu.start()
        sim.run()
        assert commits == [(0, 0, 1)]

    def test_invalidate_page_clears_state(self, sim, fake_transport):
        gpu, _ = make_gpu(sim, fake_transport, {1: 1})
        gpu.load_trace(GpuTrace(lanes=[reads([PAGE_BYTES])], instructions=10))
        gpu.start()
        sim.run()
        assert gpu.l2.contains(PAGE_BYTES)
        gpu.invalidate_page(1)
        assert not gpu.l2.contains(PAGE_BYTES)
