"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "matrixtranspose" in out
    assert "fig21" in out
    assert "batching" in out


def test_run_command(capsys):
    assert main(["run", "fir", "--scheme", "private", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "execution cycles" in out
    assert "OTP send" in out


def test_run_unsecure_hides_otp_lines(capsys):
    assert main(["run", "fir", "--scheme", "unsecure", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "OTP send" not in out


def test_compare_command(capsys):
    assert main(["compare", "aes", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    for scheme in ("private", "shared", "cached", "dynamic", "batching"):
        assert scheme in out


def test_experiment_command_analytic(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_unknown_workload_fails():
    with pytest.raises(KeyError):
        main(["run", "not-a-workload"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
