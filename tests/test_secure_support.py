"""Engine model, metadata accountant, and replay guard tests."""

import pytest

from repro.configs import MetadataConfig
from repro.interconnect.packet import Packet, PacketKind
from repro.secure.engine import AesGcmEngineModel
from repro.secure.metadata import MetadataAccountant
from repro.secure.replay import ReplayGuard


class TestEngineModel:
    def test_fast_paths(self):
        e = AesGcmEngineModel(pad_latency=40, ghash_latency=4, xor_latency=1)
        assert e.encrypt_fast_path == 1
        assert e.mac_fast_path == 4

    def test_counters(self):
        e = AesGcmEngineModel()
        e.count_pad(3)
        e.count_mac()
        assert e.pads_generated == 3 and e.macs_computed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AesGcmEngineModel(pad_latency=0)
        with pytest.raises(ValueError):
            AesGcmEngineModel(ghash_latency=-1)


class TestMetadataAccountant:
    def _packet(self, kind=PacketKind.DATA_RESP):
        return Packet(kind=kind, src=1, dst=2, size_bytes=80)

    def test_conventional_meta_is_ctr_mac_id(self):
        acc = MetadataAccountant(MetadataConfig())
        assert acc.conventional_meta(self._packet()) == 8 + 8 + 1

    def test_batched_meta_variants(self):
        acc = MetadataAccountant(MetadataConfig())
        middle = acc.batched_block_meta(False, False)
        opener = acc.batched_block_meta(True, False)
        closer = acc.batched_block_meta(False, True)
        assert middle == 8 + 1
        assert opener == middle + 1
        assert closer == middle + 8

    def test_secure_commu_mode_zeroes_bandwidth(self):
        acc = MetadataAccountant(MetadataConfig(), count_metadata=False)
        assert acc.conventional_meta(self._packet()) == 0
        assert acc.batched_block_meta(True, True) == 0
        assert acc.ack_packet_size() == 1  # still serializable

    def test_ack_and_batch_mac_sizes(self):
        acc = MetadataAccountant(MetadataConfig())
        assert acc.ack_packet_size() == 16
        assert acc.standalone_batch_mac_size() == 8 + 1 + 1

    def test_ack_policy(self):
        assert MetadataAccountant.needs_ack(PacketKind.DATA_RESP)
        assert MetadataAccountant.needs_ack(PacketKind.WRITE_REQ)
        assert MetadataAccountant.needs_ack(PacketKind.MIGRATION_DATA)
        assert not MetadataAccountant.needs_ack(PacketKind.READ_REQ)
        assert not MetadataAccountant.needs_ack(PacketKind.SEC_ACK)

    def test_batchable_policy(self):
        assert MetadataAccountant.batchable(PacketKind.DATA_RESP)
        assert MetadataAccountant.batchable(PacketKind.MIGRATION_DATA)
        assert not MetadataAccountant.batchable(PacketKind.WRITE_REQ)


class TestReplayGuard:
    def test_fifo_ack_matching(self):
        g = ReplayGuard(node=1)
        g.on_send(2, counter=0)
        g.on_send(2, counter=1)
        assert g.on_ack(2, counter=0)
        assert g.on_ack(2, counter=1)
        assert g.acked == 2 and g.violations == 0

    def test_counter_mismatch_is_violation(self):
        g = ReplayGuard(1)
        g.on_send(2, counter=7)
        assert not g.on_ack(2, counter=9)
        assert g.violations == 1

    def test_unexpected_ack_is_violation(self):
        g = ReplayGuard(1)
        assert not g.on_ack(2)
        assert g.violations == 1

    def test_batch_retire(self):
        g = ReplayGuard(1)
        for c in range(16):
            g.on_send(3, c)
        assert g.on_ack(3, retire=16)
        assert g.outstanding(3) == 0

    def test_max_outstanding_high_water(self):
        g = ReplayGuard(1)
        for c in range(5):
            g.on_send(2, c)
        g.on_ack(2, retire=5)
        assert g.max_outstanding == 5
        assert g.outstanding() == 0

    def test_outstanding_per_peer(self):
        g = ReplayGuard(1)
        g.on_send(2, 0)
        g.on_send(3, 0)
        assert g.outstanding(2) == 1
        assert g.outstanding() == 2

    def test_mismatch_resynchronizes_through_lost_entries(self):
        """Regression: a deep-queue ACK means the entries ahead of it were
        lost in flight; the guard must retire through it instead of leaving
        a stale head that miscounts every later ACK as a violation."""
        g = ReplayGuard(1)
        for c in (0, 1, 2):
            g.on_send(2, c)
        assert not g.on_ack(2, counter=1)  # counter 0 was lost
        assert g.violations == 1
        assert g.dropped == 1  # entry 0 retired with lost semantics
        assert g.acked == 1  # entry 1 retired as acknowledged
        assert g.outstanding(2) == 1  # only entry 2 remains
        # the queue is resynchronized: the next ACK matches cleanly
        assert g.on_ack(2, counter=2)
        assert g.violations == 1

    def test_forged_ack_leaves_queue_untouched(self):
        g = ReplayGuard(1)
        g.on_send(2, 5)
        assert not g.on_ack(2, counter=99)  # never sent
        assert g.violations == 1
        assert g.dropped == 0
        assert g.outstanding(2) == 1
        assert g.on_ack(2, counter=5)  # real ACK still matches

    def test_retire_lost_voids_a_specific_entry(self):
        g = ReplayGuard(1)
        for c in (0, 1, 2):
            g.on_send(2, c)
        assert g.retire_lost(2, 1)
        assert g.dropped == 1
        assert g.outstanding(2) == 2
        assert not g.retire_lost(2, 1)  # already gone
        # FIFO matching proceeds as if 1 was never queued
        assert g.on_ack(2, counter=0)
        assert g.on_ack(2, counter=2)
        assert g.violations == 0

class TestReplayGuardWindow:
    """Out-of-order ACK tolerance: the boundary is exact (depth < window)."""

    def _sent(self, window: int, n: int = 6) -> ReplayGuard:
        g = ReplayGuard(1, window=window)
        for c in range(n):
            g.on_send(2, c)
        return g

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            ReplayGuard(1, window=-1)

    def test_window_zero_is_strict_fifo(self):
        g = self._sent(0, n=3)
        assert not g.on_ack(2, counter=1)  # depth 1: violation under w=0
        assert g.violations == 1
        assert g.reorder_accepts == 0

    def test_window_one_equals_strict_fifo(self):
        # depth must satisfy 0 < d < 1: impossible, so w=1 accepts only heads
        g = self._sent(1, n=3)
        assert not g.on_ack(2, counter=1)
        assert g.violations == 1
        assert g.reorder_accepts == 0

    def test_depth_zero_is_a_plain_head_match(self):
        g = self._sent(4)
        assert g.on_ack(2, counter=0)
        assert g.reorder_accepts == 0
        assert g.violations == 0

    def test_last_in_window_depth_accepted(self):
        w = 4
        g = self._sent(w)
        assert g.on_ack(2, counter=w - 1)  # depth W-1: last legal position
        assert g.violations == 0
        assert g.dropped == 0
        assert g.reorder_accepts == 1
        assert g.max_reorder_depth == w - 1
        # overtaken entries are still queued and still ACK cleanly
        assert g.outstanding(2) == 5
        assert g.on_ack(2, counter=0)
        assert g.violations == 0

    def test_exact_window_depth_resyncs(self):
        w = 4
        g = self._sent(w)
        assert not g.on_ack(2, counter=w)  # depth W: first illegal position
        assert g.violations == 1
        # resynchronization: entries ahead retired as lost, match as acked
        assert g.dropped == w
        assert g.acked == 1
        assert g.outstanding(2) == 1
        assert g.reorder_accepts == 0

    def test_beyond_window_depth_resyncs(self):
        w = 4
        g = self._sent(w)
        assert not g.on_ack(2, counter=w + 1)  # depth W+1
        assert g.violations == 1
        assert g.dropped == w + 1
        assert g.acked == 1

    def test_reordered_acks_drain_whole_queue_without_violations(self):
        g = self._sent(3, n=4)
        for counter in (2, 1, 0, 3):  # worst legal shuffle for w=3
            assert g.on_ack(2, counter=counter)
        assert g.violations == 0
        assert g.dropped == 0
        assert g.acked == 4
        assert g.outstanding(2) == 0
        assert g.max_reorder_depth == 2

    def test_forged_ack_still_rejected_inside_window(self):
        g = self._sent(3, n=2)
        assert not g.on_ack(2, counter=99)  # never sent
        assert g.violations == 1
        assert g.outstanding(2) == 2  # queue untouched
