"""Engine model, metadata accountant, and replay guard tests."""

import pytest

from repro.configs import MetadataConfig
from repro.interconnect.packet import Packet, PacketKind
from repro.secure.engine import AesGcmEngineModel
from repro.secure.metadata import MetadataAccountant
from repro.secure.replay import ReplayGuard


class TestEngineModel:
    def test_fast_paths(self):
        e = AesGcmEngineModel(pad_latency=40, ghash_latency=4, xor_latency=1)
        assert e.encrypt_fast_path == 1
        assert e.mac_fast_path == 4

    def test_counters(self):
        e = AesGcmEngineModel()
        e.count_pad(3)
        e.count_mac()
        assert e.pads_generated == 3 and e.macs_computed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AesGcmEngineModel(pad_latency=0)
        with pytest.raises(ValueError):
            AesGcmEngineModel(ghash_latency=-1)


class TestMetadataAccountant:
    def _packet(self, kind=PacketKind.DATA_RESP):
        return Packet(kind=kind, src=1, dst=2, size_bytes=80)

    def test_conventional_meta_is_ctr_mac_id(self):
        acc = MetadataAccountant(MetadataConfig())
        assert acc.conventional_meta(self._packet()) == 8 + 8 + 1

    def test_batched_meta_variants(self):
        acc = MetadataAccountant(MetadataConfig())
        middle = acc.batched_block_meta(False, False)
        opener = acc.batched_block_meta(True, False)
        closer = acc.batched_block_meta(False, True)
        assert middle == 8 + 1
        assert opener == middle + 1
        assert closer == middle + 8

    def test_secure_commu_mode_zeroes_bandwidth(self):
        acc = MetadataAccountant(MetadataConfig(), count_metadata=False)
        assert acc.conventional_meta(self._packet()) == 0
        assert acc.batched_block_meta(True, True) == 0
        assert acc.ack_packet_size() == 1  # still serializable

    def test_ack_and_batch_mac_sizes(self):
        acc = MetadataAccountant(MetadataConfig())
        assert acc.ack_packet_size() == 16
        assert acc.standalone_batch_mac_size() == 8 + 1 + 1

    def test_ack_policy(self):
        assert MetadataAccountant.needs_ack(PacketKind.DATA_RESP)
        assert MetadataAccountant.needs_ack(PacketKind.WRITE_REQ)
        assert MetadataAccountant.needs_ack(PacketKind.MIGRATION_DATA)
        assert not MetadataAccountant.needs_ack(PacketKind.READ_REQ)
        assert not MetadataAccountant.needs_ack(PacketKind.SEC_ACK)

    def test_batchable_policy(self):
        assert MetadataAccountant.batchable(PacketKind.DATA_RESP)
        assert MetadataAccountant.batchable(PacketKind.MIGRATION_DATA)
        assert not MetadataAccountant.batchable(PacketKind.WRITE_REQ)


class TestReplayGuard:
    def test_fifo_ack_matching(self):
        g = ReplayGuard(node=1)
        g.on_send(2, counter=0)
        g.on_send(2, counter=1)
        assert g.on_ack(2, counter=0)
        assert g.on_ack(2, counter=1)
        assert g.acked == 2 and g.violations == 0

    def test_counter_mismatch_is_violation(self):
        g = ReplayGuard(1)
        g.on_send(2, counter=7)
        assert not g.on_ack(2, counter=9)
        assert g.violations == 1

    def test_unexpected_ack_is_violation(self):
        g = ReplayGuard(1)
        assert not g.on_ack(2)
        assert g.violations == 1

    def test_batch_retire(self):
        g = ReplayGuard(1)
        for c in range(16):
            g.on_send(3, c)
        assert g.on_ack(3, retire=16)
        assert g.outstanding(3) == 0

    def test_max_outstanding_high_water(self):
        g = ReplayGuard(1)
        for c in range(5):
            g.on_send(2, c)
        g.on_ack(2, retire=5)
        assert g.max_outstanding == 5
        assert g.outstanding() == 0

    def test_outstanding_per_peer(self):
        g = ReplayGuard(1)
        g.on_send(2, 0)
        g.on_send(3, 0)
        assert g.outstanding(2) == 1
        assert g.outstanding() == 2

    def test_mismatch_resynchronizes_through_lost_entries(self):
        """Regression: a deep-queue ACK means the entries ahead of it were
        lost in flight; the guard must retire through it instead of leaving
        a stale head that miscounts every later ACK as a violation."""
        g = ReplayGuard(1)
        for c in (0, 1, 2):
            g.on_send(2, c)
        assert not g.on_ack(2, counter=1)  # counter 0 was lost
        assert g.violations == 1
        assert g.dropped == 1  # entry 0 retired with lost semantics
        assert g.acked == 1  # entry 1 retired as acknowledged
        assert g.outstanding(2) == 1  # only entry 2 remains
        # the queue is resynchronized: the next ACK matches cleanly
        assert g.on_ack(2, counter=2)
        assert g.violations == 1

    def test_forged_ack_leaves_queue_untouched(self):
        g = ReplayGuard(1)
        g.on_send(2, 5)
        assert not g.on_ack(2, counter=99)  # never sent
        assert g.violations == 1
        assert g.dropped == 0
        assert g.outstanding(2) == 1
        assert g.on_ack(2, counter=5)  # real ACK still matches

    def test_retire_lost_voids_a_specific_entry(self):
        g = ReplayGuard(1)
        for c in (0, 1, 2):
            g.on_send(2, c)
        assert g.retire_lost(2, 1)
        assert g.dropped == 1
        assert g.outstanding(2) == 2
        assert not g.retire_lost(2, 1)  # already gone
        # FIFO matching proceeds as if 1 was never queued
        assert g.on_ack(2, counter=0)
        assert g.on_ack(2, counter=2)
        assert g.violations == 0
