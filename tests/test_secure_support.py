"""Engine model, metadata accountant, and replay guard tests."""

import pytest

from repro.configs import MetadataConfig
from repro.interconnect.packet import Packet, PacketKind
from repro.secure.engine import AesGcmEngineModel
from repro.secure.metadata import MetadataAccountant
from repro.secure.replay import ReplayGuard


class TestEngineModel:
    def test_fast_paths(self):
        e = AesGcmEngineModel(pad_latency=40, ghash_latency=4, xor_latency=1)
        assert e.encrypt_fast_path == 1
        assert e.mac_fast_path == 4

    def test_counters(self):
        e = AesGcmEngineModel()
        e.count_pad(3)
        e.count_mac()
        assert e.pads_generated == 3 and e.macs_computed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AesGcmEngineModel(pad_latency=0)
        with pytest.raises(ValueError):
            AesGcmEngineModel(ghash_latency=-1)


class TestMetadataAccountant:
    def _packet(self, kind=PacketKind.DATA_RESP):
        return Packet(kind=kind, src=1, dst=2, size_bytes=80)

    def test_conventional_meta_is_ctr_mac_id(self):
        acc = MetadataAccountant(MetadataConfig())
        assert acc.conventional_meta(self._packet()) == 8 + 8 + 1

    def test_batched_meta_variants(self):
        acc = MetadataAccountant(MetadataConfig())
        middle = acc.batched_block_meta(False, False)
        opener = acc.batched_block_meta(True, False)
        closer = acc.batched_block_meta(False, True)
        assert middle == 8 + 1
        assert opener == middle + 1
        assert closer == middle + 8

    def test_secure_commu_mode_zeroes_bandwidth(self):
        acc = MetadataAccountant(MetadataConfig(), count_metadata=False)
        assert acc.conventional_meta(self._packet()) == 0
        assert acc.batched_block_meta(True, True) == 0
        assert acc.ack_packet_size() == 1  # still serializable

    def test_ack_and_batch_mac_sizes(self):
        acc = MetadataAccountant(MetadataConfig())
        assert acc.ack_packet_size() == 16
        assert acc.standalone_batch_mac_size() == 8 + 1 + 1

    def test_ack_policy(self):
        assert MetadataAccountant.needs_ack(PacketKind.DATA_RESP)
        assert MetadataAccountant.needs_ack(PacketKind.WRITE_REQ)
        assert MetadataAccountant.needs_ack(PacketKind.MIGRATION_DATA)
        assert not MetadataAccountant.needs_ack(PacketKind.READ_REQ)
        assert not MetadataAccountant.needs_ack(PacketKind.SEC_ACK)

    def test_batchable_policy(self):
        assert MetadataAccountant.batchable(PacketKind.DATA_RESP)
        assert MetadataAccountant.batchable(PacketKind.MIGRATION_DATA)
        assert not MetadataAccountant.batchable(PacketKind.WRITE_REQ)


class TestReplayGuard:
    def test_fifo_ack_matching(self):
        g = ReplayGuard(node=1)
        g.on_send(2, counter=0)
        g.on_send(2, counter=1)
        assert g.on_ack(2, counter=0)
        assert g.on_ack(2, counter=1)
        assert g.acked == 2 and g.violations == 0

    def test_counter_mismatch_is_violation(self):
        g = ReplayGuard(1)
        g.on_send(2, counter=7)
        assert not g.on_ack(2, counter=9)
        assert g.violations == 1

    def test_unexpected_ack_is_violation(self):
        g = ReplayGuard(1)
        assert not g.on_ack(2)
        assert g.violations == 1

    def test_batch_retire(self):
        g = ReplayGuard(1)
        for c in range(16):
            g.on_send(3, c)
        assert g.on_ack(3, retire=16)
        assert g.outstanding(3) == 0

    def test_max_outstanding_high_water(self):
        g = ReplayGuard(1)
        for c in range(5):
            g.on_send(2, c)
        g.on_ack(2, retire=5)
        assert g.max_outstanding == 5
        assert g.outstanding() == 0

    def test_outstanding_per_peer(self):
        g = ReplayGuard(1)
        g.on_send(2, 0)
        g.on_send(3, 0)
        assert g.outstanding(2) == 1
        assert g.outstanding() == 2

    def test_mismatch_resynchronizes_through_lost_entries(self):
        """Regression: a deep-queue ACK means the entries ahead of it were
        lost in flight; the guard must retire through it instead of leaving
        a stale head that miscounts every later ACK as a violation."""
        g = ReplayGuard(1)
        for c in (0, 1, 2):
            g.on_send(2, c)
        assert not g.on_ack(2, counter=1)  # counter 0 was lost
        assert g.violations == 1
        assert g.dropped == 1  # entry 0 retired with lost semantics
        assert g.acked == 1  # entry 1 retired as acknowledged
        assert g.outstanding(2) == 1  # only entry 2 remains
        # the queue is resynchronized: the next ACK matches cleanly
        assert g.on_ack(2, counter=2)
        assert g.violations == 1

    def test_forged_ack_leaves_queue_untouched(self):
        g = ReplayGuard(1)
        g.on_send(2, 5)
        assert not g.on_ack(2, counter=99)  # never sent
        assert g.violations == 1
        assert g.dropped == 0
        assert g.outstanding(2) == 1
        assert g.on_ack(2, counter=5)  # real ACK still matches

    def test_retire_lost_voids_a_specific_entry(self):
        g = ReplayGuard(1)
        for c in (0, 1, 2):
            g.on_send(2, c)
        assert g.retire_lost(2, 1)
        assert g.dropped == 1
        assert g.outstanding(2) == 2
        assert not g.retire_lost(2, 1)  # already gone
        # FIFO matching proceeds as if 1 was never queued
        assert g.on_ack(2, counter=0)
        assert g.on_ack(2, counter=2)
        assert g.violations == 0

class TestReplayGuardWindow:
    """Out-of-order ACK tolerance: the boundary is exact (depth < window)."""

    def _sent(self, window: int, n: int = 6) -> ReplayGuard:
        g = ReplayGuard(1, window=window)
        for c in range(n):
            g.on_send(2, c)
        return g

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            ReplayGuard(1, window=-1)

    def test_window_zero_is_strict_fifo(self):
        g = self._sent(0, n=3)
        assert not g.on_ack(2, counter=1)  # depth 1: violation under w=0
        assert g.violations == 1
        assert g.reorder_accepts == 0

    def test_window_one_equals_strict_fifo(self):
        # depth must satisfy 0 < d < 1: impossible, so w=1 accepts only heads
        g = self._sent(1, n=3)
        assert not g.on_ack(2, counter=1)
        assert g.violations == 1
        assert g.reorder_accepts == 0

    def test_depth_zero_is_a_plain_head_match(self):
        g = self._sent(4)
        assert g.on_ack(2, counter=0)
        assert g.reorder_accepts == 0
        assert g.violations == 0

    def test_last_in_window_depth_accepted(self):
        w = 4
        g = self._sent(w)
        assert g.on_ack(2, counter=w - 1)  # depth W-1: last legal position
        assert g.violations == 0
        assert g.dropped == 0
        assert g.reorder_accepts == 1
        assert g.max_reorder_depth == w - 1
        # overtaken entries are still queued and still ACK cleanly
        assert g.outstanding(2) == 5
        assert g.on_ack(2, counter=0)
        assert g.violations == 0

    def test_exact_window_depth_resyncs(self):
        w = 4
        g = self._sent(w)
        assert not g.on_ack(2, counter=w)  # depth W: first illegal position
        assert g.violations == 1
        # resynchronization: entries ahead retired as lost, match as acked
        assert g.dropped == w
        assert g.acked == 1
        assert g.outstanding(2) == 1
        assert g.reorder_accepts == 0

    def test_beyond_window_depth_resyncs(self):
        w = 4
        g = self._sent(w)
        assert not g.on_ack(2, counter=w + 1)  # depth W+1
        assert g.violations == 1
        assert g.dropped == w + 1
        assert g.acked == 1

    def test_reordered_acks_drain_whole_queue_without_violations(self):
        g = self._sent(3, n=4)
        for counter in (2, 1, 0, 3):  # worst legal shuffle for w=3
            assert g.on_ack(2, counter=counter)
        assert g.violations == 0
        assert g.dropped == 0
        assert g.acked == 4
        assert g.outstanding(2) == 0
        assert g.max_reorder_depth == 2

    def test_forged_ack_still_rejected_inside_window(self):
        g = self._sent(3, n=2)
        assert not g.on_ack(2, counter=99)  # never sent
        assert g.violations == 1
        assert g.outstanding(2) == 2  # queue untouched


class TestReplayGuardMixedChannels:
    """Batch-tagged and conventional entries share a queue but not a FIFO.

    The windowed-ACK edge cases: a blind FIFO ``on_ack(counter=None)``
    must not retire batch-tagged entries that a later batch ACK needs, and
    conventional-ACK freshness depth is measured over untagged entries
    only — batch entries parked at the head are on the slower channel, not
    "overtaken".
    """

    def test_batch_entries_at_head_do_not_count_toward_depth(self):
        # Queue: [b0 b1 | 10 11 12]; the batch is still open, so counter 10
        # sits at untagged depth 0 and must ACK cleanly even under w=0.
        g = ReplayGuard(1, window=0)
        g.on_send(2, 0, batch_id=7)
        g.on_send(2, 1, batch_id=7)
        for c in (10, 11, 12):
            g.on_send(2, c)
        assert g.on_ack(2, counter=10)
        assert g.violations == 0 and g.reorder_accepts == 0
        # the batch ACK then retires exactly its own members
        assert g.on_ack(2, batch_id=7)
        assert g.outstanding(2) == 2
        assert g.acked == 3

    def _mixed(self, window: int) -> ReplayGuard:
        # Queue: [b0 10 11 b1 12 13] — untagged subsequence [10 11 12 13]
        # interleaved with batch-5 tags at both ends.
        g = ReplayGuard(1, window=window)
        g.on_send(2, 0, batch_id=5)
        for c in (10, 11):
            g.on_send(2, c)
        g.on_send(2, 1, batch_id=5)
        for c in (12, 13):
            g.on_send(2, c)
        return g

    def test_untagged_depth_window_minus_one_accepted(self):
        w = 3
        g = self._mixed(w)
        assert g.on_ack(2, counter=12)  # untagged depth 2 == W-1
        assert g.violations == 0
        assert g.max_reorder_depth == w - 1
        assert g.outstanding(2) == 5  # nothing dropped, tags intact

    def test_untagged_depth_window_resyncs_but_spares_tagged(self):
        g = self._mixed(3)
        assert not g.on_ack(2, counter=13)  # untagged depth 3 == W: resync
        assert g.violations == 1
        assert g.dropped == 3  # 10, 11, 12; the tagged 0 and 1 survive
        # both batch members are still retirable by their batch ACK
        assert g.on_ack(2, batch_id=5)
        assert g.outstanding(2) == 0
        assert g.violations == 1  # no new violation from the batch ACK

    def test_window_zero_mixed_queue_stays_strict_on_untagged(self):
        g = ReplayGuard(1, window=0)
        g.on_send(2, 0, batch_id=3)
        g.on_send(2, 10)
        g.on_send(2, 11)
        assert not g.on_ack(2, counter=11)  # untagged depth 1: violation
        assert g.violations == 1
        assert g.dropped == 1  # 10 resynced away; the tagged 0 survives
        assert g.on_ack(2, batch_id=3)
        assert g.outstanding(2) == 0

    def test_blind_fifo_ack_with_mixed_queue_retires_head(self):
        # Legacy channel: counter-less FIFO retirement is position-blind by
        # contract; guard ledgers must still balance afterwards.
        g = ReplayGuard(1)
        g.on_send(2, 0)
        g.on_send(2, 1)
        assert g.on_ack(2)  # blind FIFO: retires 0
        assert g.on_ack(2, counter=1)
        assert g.outstanding(2) == 0 and g.acked == 2

    def test_double_acked_batch_is_a_violation_and_a_noop(self):
        g = ReplayGuard(1)
        g.on_send(2, 0, batch_id=9)
        g.on_send(2, 10)
        assert g.on_ack(2, batch_id=9)
        before = g.outstanding(2)
        assert not g.on_ack(2, batch_id=9)  # replayed batch ACK
        assert g.violations == 1
        assert g.outstanding(2) == before

    def test_retire_lost_discards_the_batch_tag(self):
        # A retransmitted block is voided; the later batch ACK answers only
        # the surviving member and must not resurrect the voided one.
        g = ReplayGuard(1)
        g.on_send(2, 0, batch_id=4)
        g.on_send(2, 1, batch_id=4)
        assert g.retire_lost(2, 0)
        assert g.on_ack(2, batch_id=4)
        assert g.acked == 1 and g.dropped == 1
        assert g.outstanding(2) == 0
