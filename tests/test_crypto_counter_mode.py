"""Counter-mode OTP and MAC construction tests."""

import pytest

from repro.crypto.counter_mode import (
    AUTH_PAD_BYTES,
    ENC_PAD_BYTES,
    OneTimePad,
    PadGenerator,
    make_seed,
)
from repro.crypto.mac import MessageMAC, batched_mac, truncate_mac

KEY = bytes(range(16))


def test_seed_encodes_all_identity_fields():
    s1 = make_seed(7, 1, 2)
    s2 = make_seed(8, 1, 2)
    s3 = make_seed(7, 3, 2)
    s4 = make_seed(7, 1, 4)
    assert len({s1, s2, s3, s4}) == 4


def test_seed_without_receiver_matches_shared_scheme():
    assert make_seed(5, 1, None) != make_seed(5, 1, 2)
    assert make_seed(5, 1, None) == make_seed(5, 1, None)


def test_seed_rejects_negative_counter():
    with pytest.raises(ValueError):
        make_seed(-1, 0, 1)


def test_pad_sizes():
    pad = PadGenerator(KEY).generate(0, 1, 2)
    assert len(pad.enc_pad) == ENC_PAD_BYTES
    assert len(pad.auth_pad) == AUTH_PAD_BYTES


def test_pads_unique_per_counter_and_pair():
    gen = PadGenerator(KEY)
    pads = {
        gen.generate(c, s, r).enc_pad
        for c in range(3)
        for s in range(2)
        for r in range(2)
        if s != r
    }
    assert len(pads) == 3 * 2  # (s,r) in {(0,1),(1,0)} x 3 counters


def test_encrypt_decrypt_round_trip():
    pad = PadGenerator(KEY).generate(12, 0, 3)
    payload = bytes(range(64))
    ciphertext = pad.encrypt(payload)
    assert ciphertext != payload
    assert pad.decrypt(ciphertext) == payload


def test_encrypt_rejects_oversized_payload():
    pad = PadGenerator(KEY).generate(0, 0, 1)
    with pytest.raises(ValueError):
        pad.encrypt(bytes(65))


def test_deterministic_generation():
    g1 = PadGenerator(KEY)
    g2 = PadGenerator(KEY)
    assert g1.generate(9, 2, 5).enc_pad == g2.generate(9, 2, 5).enc_pad


def test_lane_separation_no_repeated_blocks():
    pad = PadGenerator(KEY).generate(0, 0, 1)
    lanes = [pad.enc_pad[i : i + 16] for i in range(0, 64, 16)]
    assert len(set(lanes)) == 4
    assert pad.auth_pad not in lanes


def test_message_mac_verifies_and_rejects_tampering():
    gen = PadGenerator(KEY)
    mac = MessageMAC(hash_key=bytes(15) + b"\x01")
    pad = gen.generate(4, 1, 2)
    ciphertext = pad.encrypt(b"x" * 64)
    tag = mac.compute(ciphertext, pad)
    assert len(tag) == 8
    assert mac.verify(ciphertext, pad, tag)
    assert not mac.verify(ciphertext[:-1] + b"!", pad, tag)


def test_mac_depends_on_pad():
    gen = PadGenerator(KEY)
    mac = MessageMAC(hash_key=bytes(15) + b"\x01")
    ciphertext = b"y" * 64
    t1 = mac.compute(ciphertext, gen.generate(0, 1, 2))
    t2 = mac.compute(ciphertext, gen.generate(1, 1, 2))
    assert t1 != t2


def test_batched_mac_sensitive_to_order_and_members():
    hk = bytes(15) + b"\x02"
    macs = [bytes([i]) * 8 for i in range(4)]
    whole = batched_mac(hk, macs)
    assert whole != batched_mac(hk, list(reversed(macs)))
    assert whole != batched_mac(hk, macs[:3])
    assert whole == batched_mac(hk, list(macs))


def test_batched_mac_rejects_empty_batch():
    with pytest.raises(ValueError):
        batched_mac(bytes(16), [])


def test_truncate_mac_bounds():
    with pytest.raises(ValueError):
        truncate_mac(bytes(16), 0)
    with pytest.raises(ValueError):
        truncate_mac(bytes(8), 9)
    assert truncate_mac(bytes(16), 4) == bytes(4)
