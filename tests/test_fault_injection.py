"""Link-fault injection and the secure channel's recovery protocol.

The contract under test (see ``docs/ROBUSTNESS.md``): with faults enabled,
secure schemes never deliver a corrupted block and never silently lose a
message — every injected fault is either recovered by retransmission or
reported in a structured :class:`LinkFailureError` — while the unsecure
fabric consumes the damage without noticing.  And at fault rate zero the
whole subsystem must be invisible: bit-identical reports and cache keys.
"""

from __future__ import annotations

import pytest

from repro.configs import FaultConfig, scheme_config
from repro.interconnect.faults import FaultInjector, FaultVerdict, LinkFailureError
from repro.runner import (
    ResultCache,
    SweepJob,
    SweepRunner,
    execute_job,
    job_key,
    report_from_dict,
    report_to_dict,
)
from repro.sim.stats import FaultStats
from repro.system import MultiGpuSystem
from repro.tracing import MessageTracer
from repro.workloads import get_workload

SCALE = 0.1


def faulted(scheme, **overrides):
    defaults = dict(drop_rate=0.02, corrupt_rate=0.02, duplicate_rate=0.005, delay_rate=0.005, seed=7)
    defaults.update(overrides)
    return scheme_config(scheme).with_fault(**defaults)


def run_fir(config, seed=1, scale=SCALE):
    return execute_job(SweepJob(get_workload("fir"), config, seed=seed, scale=scale))


class TestFaultConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(corrupt_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=0.6, corrupt_rate=0.6)

    def test_recovery_knob_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(ack_timeout=0)
        with pytest.raises(ValueError):
            FaultConfig(max_retries=-1)
        with pytest.raises(ValueError):
            FaultConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            FaultConfig(backoff_max=10, ack_timeout=100)
        with pytest.raises(ValueError):
            FaultConfig(delay_cycles=-1)

    def test_enabled_needs_a_nonzero_rate(self):
        assert not FaultConfig().enabled
        assert not FaultConfig(ack_timeout=99, seed=5).enabled
        assert FaultConfig(drop_rate=0.01).enabled
        assert FaultConfig().total_rate == 0.0


class TestFaultInjector:
    def test_deterministic_per_pair_sequence(self):
        cfg = FaultConfig(drop_rate=0.2, corrupt_rate=0.2, seed=3)
        one = FaultInjector(cfg)
        a = [one.decide(1, 2) for _ in range(50)]
        another = FaultInjector(cfg)
        b = [another.decide(1, 2) for _ in range(50)]
        assert a == b
        assert len(set(a)) > 1  # the stream actually varies

    def test_pairs_and_directions_are_independent_streams(self):
        cfg = FaultConfig(drop_rate=0.3, corrupt_rate=0.3, seed=1)
        inj = FaultInjector(cfg)
        fwd = [inj.decide(1, 2) for _ in range(100)]
        # interleaving other pairs must not perturb the (1, 2) stream
        inj2 = FaultInjector(cfg)
        fwd2 = []
        for _ in range(100):
            inj2.decide(2, 1)
            fwd2.append(inj2.decide(1, 2))
            inj2.decide(0, 3)
        assert fwd == fwd2

    def test_seed_changes_the_stream(self):
        mk = lambda seed: [
            FaultInjector(FaultConfig(drop_rate=0.5, seed=seed)).decide(1, 2)
            for _ in range(64)
        ]
        assert mk(1) != mk(2)

    def test_extreme_rates(self):
        all_drop = FaultInjector(FaultConfig(drop_rate=1.0))
        assert all(all_drop.decide(1, 2) is FaultVerdict.DROP for _ in range(20))
        clean = FaultInjector(FaultConfig(drop_rate=0.0, corrupt_rate=0.0))
        assert all(clean.decide(1, 2) is FaultVerdict.OK for _ in range(20))


class TestRateZeroInvisibility:
    """The subsystem must be undetectable when no fault rate is set."""

    def test_cache_key_ignores_dormant_fault_section(self):
        spec = get_workload("fir")
        base = scheme_config("private")
        key = job_key(SweepJob(spec, base, seed=1, scale=SCALE))
        # non-rate knobs (timeouts, seeds) don't matter while rates are zero
        tweaked = base.with_fault(ack_timeout=999, seed=42, max_retries=2)
        assert job_key(SweepJob(spec, tweaked, seed=1, scale=SCALE)) == key
        # any non-zero rate opts the section into the hash
        hot = base.with_fault(drop_rate=0.01)
        assert job_key(SweepJob(spec, hot, seed=1, scale=SCALE)) != key
        # and the injector seed then matters too
        assert job_key(
            SweepJob(spec, base.with_fault(drop_rate=0.01, seed=1), seed=1, scale=SCALE)
        ) != job_key(SweepJob(spec, hot, seed=1, scale=SCALE))

    def test_rate_zero_report_is_identical_and_has_no_fault_stats(self):
        clean = run_fir(scheme_config("private"))
        dormant = run_fir(scheme_config("private").with_fault(ack_timeout=999, seed=42))
        assert clean.fault_stats is None and dormant.fault_stats is None
        assert report_to_dict(clean) == report_to_dict(dormant)
        assert "fault_stats" not in report_to_dict(clean)


class TestUnsecureFabric:
    def test_silent_loss_and_corruption(self):
        report = run_fir(faulted("unsecure", drop_rate=0.05, corrupt_rate=0.05,
                                 duplicate_rate=0.0, delay_rate=0.0))
        stats = report.fault_stats
        assert stats.lost_messages == stats.drops_injected > 0
        assert stats.corrupted_deliveries == stats.corruptions_injected > 0
        assert stats.undetected > 0
        # no detection, no recovery machinery
        assert stats.retransmits == stats.nacks_sent == stats.timeouts_fired == 0

    def test_drops_and_corruption_do_not_change_timing(self):
        clean = run_fir(scheme_config("unsecure"))
        damaged = run_fir(faulted("unsecure", drop_rate=0.05, corrupt_rate=0.05,
                                  duplicate_rate=0.0, delay_rate=0.0))
        assert damaged.execution_cycles == clean.execution_cycles

    def test_delay_spikes_do_change_timing(self):
        slow = run_fir(faulted("unsecure", drop_rate=0.0, corrupt_rate=0.0,
                               duplicate_rate=0.0, delay_rate=0.3, delay_cycles=5000))
        clean = run_fir(scheme_config("unsecure"))
        assert slow.fault_stats.delays_injected > 0
        assert slow.execution_cycles > clean.execution_cycles


class TestSecureRecovery:
    @pytest.mark.parametrize("scheme", ["private", "dynamic", "batching"])
    def test_drops_are_recovered_not_lost(self, scheme):
        report = run_fir(faulted(scheme, drop_rate=0.05, corrupt_rate=0.0,
                                 duplicate_rate=0.0, delay_rate=0.0))
        stats = report.fault_stats
        assert stats.drops_injected > 0
        assert stats.lost_messages == 0 and stats.corrupted_deliveries == 0
        assert stats.timeouts_fired > 0
        assert stats.retransmits >= stats.drops_injected
        assert stats.link_failures == 0

    @pytest.mark.parametrize("scheme", ["private", "batching"])
    def test_every_corruption_is_detected_before_delivery(self, scheme):
        report = run_fir(faulted(scheme, drop_rate=0.0, corrupt_rate=0.3,
                                 duplicate_rate=0.0, delay_rate=0.0))
        stats = report.fault_stats
        assert stats.corruptions_injected > 0
        assert stats.corruptions_detected == stats.corruptions_injected
        assert stats.corrupted_deliveries == 0
        assert stats.nacks_sent > 0 and stats.retransmits > 0

    def test_wire_duplicates_are_discarded_by_counter_check(self):
        report = run_fir(faulted("private", drop_rate=0.0, corrupt_rate=0.0,
                                 duplicate_rate=0.5, delay_rate=0.0))
        stats = report.fault_stats
        assert stats.duplicates_injected > 0
        assert stats.duplicates_discarded == stats.duplicates_injected
        assert stats.lost_messages == 0 and stats.link_failures == 0

    def test_delay_spike_causes_spurious_retransmit_not_failure(self):
        report = run_fir(
            faulted("private", drop_rate=0.0, corrupt_rate=0.0, duplicate_rate=0.0,
                    delay_rate=1.0, delay_cycles=2000, ack_timeout=400, max_retries=10)
        )
        stats = report.fault_stats
        assert stats.delays_injected > 0
        assert stats.timeouts_fired > 0
        assert stats.spurious_retransmits > 0
        assert stats.link_failures == 0
        assert stats.lost_messages == 0 and stats.corrupted_deliveries == 0

    def test_retransmissions_burn_fresh_pads(self):
        report = run_fir(faulted("private", drop_rate=0.05, corrupt_rate=0.05,
                                 duplicate_rate=0.0, delay_rate=0.0))
        stats = report.fault_stats
        # every retransmit supersedes a copy whose pad is gone for good,
        # and every MAC rejection burned a receive pad on garbage
        assert stats.wasted_otps >= stats.retransmits


class TestLinkFailure:
    def test_exhausted_retry_budget_raises_structured_error(self):
        config = faulted("private", drop_rate=0.0, corrupt_rate=1.0,
                         duplicate_rate=0.0, delay_rate=0.0,
                         max_retries=1, ack_timeout=200)
        with pytest.raises(LinkFailureError) as exc_info:
            run_fir(config)
        err = exc_info.value
        assert err.attempts == 2  # the original plus max_retries copies
        assert err.src != err.dst
        assert err.gave_up_at >= err.first_sent
        assert err.fault_stats["corruptions_injected"] > 0
        diag = err.diagnostic
        assert diag["src"] == err.src and diag["attempts"] == 2
        assert "undeliverable" in str(err)

    def test_zero_retry_budget_fails_on_first_fault(self):
        config = faulted("private", drop_rate=1.0, corrupt_rate=0.0,
                         duplicate_rate=0.0, delay_rate=0.0,
                         max_retries=0, ack_timeout=100)
        with pytest.raises(LinkFailureError) as exc_info:
            run_fir(config)
        assert exc_info.value.attempts == 1


class TestDeterminismAndSerialization:
    def test_serial_parallel_cached_identical_under_faults(self, tmp_path):
        grid = [
            SweepJob(get_workload(name), faulted(scheme), seed=1, scale=SCALE)
            for name in ("fir", "matrixmultiplication")
            for scheme in ("unsecure", "private", "batching")
        ]
        serial = SweepRunner(jobs=1).run_jobs(grid)
        par_runner = SweepRunner(jobs=4, mode="parallel")
        parallel = par_runner.run_jobs(grid)
        assert par_runner.stats.parallel_runs == len(grid)

        cache = ResultCache(tmp_path / "cache")
        SweepRunner(jobs=1, cache=cache).run_jobs(grid)
        warm = SweepRunner(jobs=1, cache=cache)
        cached = warm.run_jobs(grid)
        assert warm.stats.cache_hits == len(grid)

        for s, p, c in zip(serial, parallel, cached):
            assert report_to_dict(s) == report_to_dict(p) == report_to_dict(c)
        assert all(r.fault_stats is not None for r in serial)

    def test_fault_stats_round_trip(self):
        report = run_fir(faulted("private"))
        data = report_to_dict(report)
        assert data["fault_stats"]["drops_injected"] == report.fault_stats.drops_injected
        restored = report_from_dict(data)
        assert restored.fault_stats == report.fault_stats
        assert isinstance(restored.fault_stats, FaultStats)

    def test_fault_stats_merge_and_undetected(self):
        a = FaultStats(drops_injected=2, lost_messages=1)
        b = FaultStats(drops_injected=3, corrupted_deliveries=4)
        a.merge(b)
        assert a.drops_injected == 5
        assert a.undetected == 5


class TestTracing:
    def test_tracer_records_fault_events(self):
        config = faulted("private", drop_rate=0.05, corrupt_rate=0.05)
        trace = get_workload("fir").generate(4, seed=1, scale=SCALE)
        system = MultiGpuSystem(config)
        tracer = MessageTracer().attach(system)
        report = system.run(trace)
        assert tracer.fault_events
        counts = tracer.fault_counts()
        known = {
            "drop", "corrupt", "duplicate", "delay", "mac-reject", "dup-discard",
            "dup-content", "timeout", "retransmit", "give-up",
        }
        assert set(counts) <= known
        assert counts.get("drop", 0) == report.fault_stats.drops_injected
        assert counts.get("retransmit", 0) == report.fault_stats.retransmits
        assert all(e.cycle >= 0 for e in tracer.fault_events)

    def test_tracer_silent_on_clean_channel(self):
        trace = get_workload("fir").generate(4, seed=1, scale=SCALE)
        system = MultiGpuSystem(scheme_config("private"))
        tracer = MessageTracer().attach(system)
        system.run(trace)
        assert tracer.fault_events == []


class TestExperiment:
    def test_smoke_enforces_zero_undetected(self, capsys):
        from repro.experiments.fig_fault_sweep import smoke

        result = smoke(scale=0.05, rates=(0.0, 0.05), use_cache=False)
        out = capsys.readouterr().out
        assert "0 undetected" in out
        assert result.undetected("unsecure", 0.05) > 0
        for scheme in ("private", "dynamic", "batching"):
            assert result.undetected(scheme, 0.05) == 0
        # the fault-free anchor column really ran without injection
        assert result.fault_totals["private"][0.0] == FaultStats()

    def test_format_result_renders(self):
        from repro.experiments.fig_fault_sweep import format_result, run
        from repro.experiments.common import ExperimentRunner

        runner = ExperimentRunner(
            scale=0.05, workloads=[get_workload("fir")], use_cache=False
        )
        result = run(runner, rates=(0.0, 0.05), schemes=("unsecure", "private"))
        text = format_result(result)
        assert "unsecure" in text and "private" in text and "retransmits" in text
