"""Cross-process stress tests for the persistent stores.

The contract (``src/repro/runner/atomic.py``): any number of
uncoordinated writers — pool workers, parallel CLI runs, fleet workers
sharing a results volume — may store the *same* key at once, and

* readers never observe a torn or half-written entry,
* duplicate puts are benign (last complete rename wins, content is a
  pure function of the key so winner == every loser),
* a killed writer leaves at most a ``.tmp-*`` orphan, which
  ``sweep_stale_tmp`` reaps and which readers never mistake for data.

These tests hammer :class:`ResultCache` and :class:`TraceStore` from
many forked processes hitting one directory through a start barrier, so
the rename window is actually contended.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.configs import scheme_config
from repro.runner import ResultCache, SweepJob, SweepRunner
from repro.runner.atomic import TMP_PREFIX, atomic_write_text, sweep_stale_tmp
from repro.runner.jobs import job_key
from repro.runner.trace_store import TraceStore, trace_key
from repro.service.protocol import canonical_report_json
from repro.workloads import get_workload

GPUS = 2
SCALE = 0.05
WRITERS = 8
ROUNDS = 5


def _job(seed: int = 1) -> SweepJob:
    return SweepJob(
        spec=get_workload("fir"),
        config=scheme_config("unsecure", n_gpus=GPUS),
        seed=seed,
        scale=SCALE,
    )


def _hammer_cache(root, barrier, writer_id, report):
    """One writer process: contend on a shared key, then write its own."""
    cache = ResultCache(root)
    shared = job_key(_job(seed=1))
    barrier.wait(timeout=60)
    for _ in range(ROUNDS):
        cache.store(shared, report, describe={"writer": writer_id})
    cache.store(job_key(_job(seed=100 + writer_id)), report)


def _hammer_trace_store(root, barrier, _writer_id, _report):
    """One generator process: all race get_or_generate of the same key."""
    store = TraceStore(root)
    spec = get_workload("fir")
    barrier.wait(timeout=60)
    for _ in range(ROUNDS):
        store.get_or_generate(spec, GPUS, 1, SCALE, 8)


def _run_writers(target, root, report):
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(WRITERS)
    procs = [
        ctx.Process(target=target, args=(root, barrier, writer_id, report))
        for writer_id in range(WRITERS)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    assert all(proc.exitcode == 0 for proc in procs), [p.exitcode for p in procs]


class TestResultCacheConcurrency:
    def test_concurrent_writers_leave_clean_readable_cache(self, tmp_path):
        root = tmp_path / "cache"
        report = SweepRunner(jobs=1, cache=None).run_jobs([_job(seed=1)])[0]
        _run_writers(_hammer_cache, root, report)

        # No torn entries, no tmp orphans, exactly the expected files.
        assert list(root.glob(f"{TMP_PREFIX}*")) == []
        entries = sorted(root.glob("*.json"))
        assert len(entries) == 1 + WRITERS  # shared key + one per writer
        for entry in entries:
            json.loads(entry.read_text())  # every file is complete JSON

        # The contended key reads back byte-identical to the report.
        loaded = ResultCache(root).load(job_key(_job(seed=1)))
        assert loaded is not None
        assert canonical_report_json(loaded) == canonical_report_json(report)

    def test_duplicate_puts_of_same_key_are_benign(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        report = SweepRunner(jobs=1, cache=None).run_jobs([_job()])[0]
        key = job_key(_job())
        for _ in range(3):
            cache.store(key, report)
        assert cache.stores == 3
        assert len(list(cache.root.glob("*.json"))) == 1
        assert canonical_report_json(cache.load(key)) == canonical_report_json(report)

    def test_torn_write_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        report = SweepRunner(jobs=1, cache=None).run_jobs([_job()])[0]
        key = job_key(_job())
        cache.store(key, report)
        cache.path_for(key).write_text('{"report": {"truncat')  # simulate a torn legacy write
        assert cache.load(key) is None  # a miss, then overwritten
        cache.store(key, report)
        assert canonical_report_json(cache.load(key)) == canonical_report_json(report)


class TestTraceStoreConcurrency:
    def test_concurrent_generators_converge_on_one_clean_entry(self, tmp_path):
        root = tmp_path / "traces"
        _run_writers(_hammer_trace_store, root, None)

        assert list(root.glob(f"{TMP_PREFIX}*")) == []
        key = trace_key("fir", GPUS, 1, SCALE, 8)
        entries = list(root.glob("*.npz"))
        assert [entry.name for entry in entries] == [f"{key}.npz"]

        # A cold store reads the winner back and it matches a fresh
        # generation exactly (traces are a pure function of the key).
        loaded = TraceStore(root).get(key)
        assert loaded is not None
        fresh, source = TraceStore(tmp_path / "fresh").get_or_generate(
            get_workload("fir"), GPUS, 1, SCALE, 8
        )
        assert source == "generated"
        assert loaded == fresh

    def test_stale_tmp_orphans_are_reaped_on_first_store_write(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        orphan = root / f"{TMP_PREFIX}dead-writer.json"
        orphan.write_text("half a paylo")
        old = 1_000_000_000  # well past any staleness cutoff
        os.utime(orphan, (old, old))
        fresh_tmp = root / f"{TMP_PREFIX}live-writer.json"
        fresh_tmp.write_text("in flight")  # young: presumed live, kept

        report = SweepRunner(jobs=1, cache=None).run_jobs([_job()])[0]
        ResultCache(root).store(job_key(_job()), report)

        assert not orphan.exists()
        assert fresh_tmp.exists()

    def test_sweep_stale_tmp_tolerates_races_and_reports_count(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        for n in range(3):
            path = root / f"{TMP_PREFIX}orphan-{n}"
            path.write_text("x")
            os.utime(path, (1_000_000_000, 1_000_000_000))
        atomic_write_text(root / "real.json", "{}")
        assert sweep_stale_tmp(root) == 3
        assert sweep_stale_tmp(root) == 0
        assert (root / "real.json").exists()
        assert sweep_stale_tmp(tmp_path / "never-created") == 0
