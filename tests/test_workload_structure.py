"""Structural assertions on individual workload generators.

The experiments rely on each generator exhibiting its benchmark's
communication signature; these tests pin those signatures directly on the
generated traces (no simulation).
"""

import pytest

from repro.memory.address_space import page_of
from repro.workloads import get_workload


def owners_touched(trace, gpu):
    """Set of initial owners of the pages GPU ``gpu`` touches remotely."""
    owners = set()
    for lane in trace.gpu_traces[gpu].lanes:
        for access in lane:
            owner = trace.initial_owners[page_of(access.address)]
            if owner != gpu:
                owners.add(owner)
    return owners


def remote_fraction(trace, gpu):
    total = remote = 0
    for lane in trace.gpu_traces[gpu].lanes:
        for access in lane:
            total += 1
            if trace.initial_owners[page_of(access.address)] != gpu:
                remote += 1
    return remote / total if total else 0.0


class TestHighRpkiWorkloads:
    def test_relu_reads_only_cpu_and_self(self):
        trace = get_workload("relu").generate(4, seed=1, scale=0.2)
        assert owners_touched(trace, 1) == {0}  # all remote traffic to host

    def test_mt_touches_every_peer(self):
        trace = get_workload("mt").generate(4, seed=1, scale=0.2)
        assert owners_touched(trace, 1) >= {2, 3, 4}

    def test_mt_is_remote_dominated(self):
        trace = get_workload("mt").generate(4, seed=1, scale=0.2)
        assert remote_fraction(trace, 1) > 0.5

    def test_spmv_gathers_from_all_gpus(self):
        trace = get_workload("spmv").generate(4, seed=1, scale=0.2)
        assert owners_touched(trace, 2) >= {1, 3, 4}

    def test_pagerank_has_skewed_popularity(self):
        trace = get_workload("pr").generate(4, seed=1, scale=0.3)
        counts = {}
        for lane in trace.gpu_traces[1].lanes:
            for access in lane:
                counts[access.address] = counts.get(access.address, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # Zipf gathers: the hottest block is touched far more than the median
        assert top[0] >= 5 * top[len(top) // 2]


class TestPhaseStructure:
    def test_mm_destination_rotates_across_phases(self):
        """mm must read different B owners in different execution regions."""
        trace = get_workload("mm").generate(4, seed=1, scale=0.3)
        lane = trace.gpu_traces[1].lanes[0]
        owners_sequence = [
            trace.initial_owners[page_of(a.address)] for a in lane
        ]
        remote = [o for o in owners_sequence if o != 1]
        first_half = set(remote[: len(remote) // 4])
        last_half = set(remote[-len(remote) // 4 :])
        assert first_half != last_half  # the hot source moves over time

    def test_fft_changes_partner_between_stages(self):
        trace = get_workload("fft").generate(4, seed=1, scale=0.3)
        remote_owners = []
        for lane in trace.gpu_traces[1].lanes:
            for a in lane:
                o = trace.initial_owners[page_of(a.address)]
                if o != 1:
                    remote_owners.append(o)
        assert len(set(remote_owners)) >= 2  # at least two butterfly partners

    def test_stencil_only_talks_to_ring_neighbours(self):
        trace = get_workload("st").generate(4, seed=1, scale=0.2)
        assert owners_touched(trace, 2) <= {1, 3}


class TestLowRpkiWorkloads:
    @pytest.mark.parametrize("name", ["aes", "fir", "floyd"])
    def test_low_class_is_mostly_local(self, name):
        trace = get_workload(name).generate(4, seed=1, scale=0.2)
        assert remote_fraction(trace, 1) < 0.35

    def test_low_class_has_bigger_gaps_than_high(self):
        low = get_workload("aes").generate(4, seed=1, scale=0.2)
        high = get_workload("relu").generate(4, seed=1, scale=0.2)

        def mean_gap(trace):
            gaps = [a.gap for lane in trace.gpu_traces[1].lanes for a in lane]
            return sum(gaps) / len(gaps)

        assert mean_gap(low) > 3 * mean_gap(high)


class TestPinning:
    @pytest.mark.parametrize("name", ["relu", "mt", "syr2k", "aes", "fir"])
    def test_streaming_inputs_are_pinned(self, name):
        trace = get_workload(name).generate(4, seed=1, scale=0.2)
        assert trace.pinned_pages

    @pytest.mark.parametrize("name", ["mm", "km", "floyd"])
    def test_migration_workloads_leave_pages_migratable(self, name):
        trace = get_workload(name).generate(4, seed=1, scale=0.2)
        touched = set()
        for gt in trace.gpu_traces.values():
            for lane in gt.lanes:
                touched.update(page_of(a.address) for a in lane)
        assert touched - trace.pinned_pages  # some pages can move
