"""System-level property tests on randomized synthetic workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configs import default_config, scheme_config
from repro.system import run_workload
from repro.workloads.synthetic import synthetic_workload

_knobs = st.fixed_dictionaries(
    {
        "remote_fraction": st.floats(0.0, 1.0),
        "burst_length": st.integers(1, 24),
        "gap": st.integers(0, 10),
        "skew": st.floats(0.0, 8.0),
        "phase_length": st.integers(1, 20),
        "cpu_share": st.floats(0.0, 1.0),
    }
)


def _trace(seed, knobs):
    return synthetic_workload(
        n_gpus=3, seed=seed, scale=0.08, n_lanes=4, bursts_per_lane=10, **knobs
    )


@given(seed=st.integers(0, 10_000), knobs=_knobs)
@settings(max_examples=8, deadline=None)
def test_any_profile_simulates_deterministically(seed, knobs):
    cfg = scheme_config("batching", n_gpus=3)
    r1 = run_workload(cfg, _trace(seed, knobs))
    r2 = run_workload(cfg, _trace(seed, knobs))
    assert r1.execution_cycles == r2.execution_cycles
    assert r1.traffic_bytes == r2.traffic_bytes
    assert r1.execution_cycles > 0


@given(seed=st.integers(0, 10_000), knobs=_knobs)
@settings(max_examples=6, deadline=None)
def test_security_never_shrinks_traffic(seed, knobs):
    base = run_workload(scheme_config("unsecure", n_gpus=3), _trace(seed, knobs))
    secured = run_workload(scheme_config("private", n_gpus=3), _trace(seed, knobs))
    assert secured.traffic_bytes >= base.traffic_bytes
    assert secured.base_traffic_bytes + secured.meta_traffic_bytes == secured.traffic_bytes


@given(seed=st.integers(0, 10_000), knobs=_knobs)
@settings(max_examples=6, deadline=None)
def test_batching_metadata_bounded_by_degenerate_overhead(seed, knobs):
    """Batching can only lose bytes on timeout-closed singleton batches.

    Each such batch pays a 1 B length field plus a standalone-MAC header
    over the conventional protocol (the paper's premise is that bursts
    exist); bursty traffic must come out strictly ahead.
    """
    conventional = run_workload(
        default_config(3, scheme="dynamic"), _trace(seed, knobs)
    )
    batched = run_workload(
        default_config(3, scheme="dynamic", batching=True), _trace(seed, knobs)
    )
    # worst case per timeout-closed batch: +len byte +standalone MAC packet
    # header vs the per-message MAC it replaced
    slack = 4 * max(1, batched.batch_macs_sent)
    assert batched.meta_traffic_bytes <= conventional.meta_traffic_bytes + slack
    # Strict savings only when the trace actually produced remote traffic:
    # a profile whose lanes all resolved locally has nothing to batch, and
    # 0 < 0 would fail vacuously.
    if (
        knobs["burst_length"] >= 8
        and knobs["remote_fraction"] >= 0.3
        and conventional.meta_traffic_bytes > 0
    ):
        assert batched.meta_traffic_bytes < conventional.meta_traffic_bytes


@given(seed=st.integers(0, 10_000), knobs=_knobs)
@settings(max_examples=6, deadline=None)
def test_replay_guards_drain_on_any_profile(seed, knobs):
    from repro.system import MultiGpuSystem

    system = MultiGpuSystem(default_config(3, scheme="dynamic", batching=True))
    system.run(_trace(seed, knobs))
    for guard in system.transport.guards.values():
        assert guard.outstanding() == 0
        assert guard.violations == 0
