"""Ablation and extension study tests (small scale)."""

import pytest

from repro.experiments import ablations
from repro.experiments.common import ExperimentRunner
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def runner():
    workloads = [get_workload(n) for n in ("relu", "matrixmultiplication", "fir")]
    return ExperimentRunner(n_gpus=4, seed=1, scale=0.12, workloads=workloads)


class TestSweeps:
    def test_batch_size_sweep_structure(self, runner):
        result = ablations.batch_size_sweep(runner, sizes=(4, 16))
        assert set(result.averages) == {4, 16}
        assert all(v > 0.8 for v in result.averages.values())
        assert result.best() in (4, 16)
        assert "batch_size" in ablations.format_sweep(result)

    def test_batch_timeout_sweep(self, runner):
        result = ablations.batch_timeout_sweep(runner, timeouts=(40, 640))
        assert set(result.averages) == {40, 640}

    def test_interval_sweep_distinct_configs(self, runner):
        result = ablations.interval_sweep(runner, intervals=(250, 4000))
        # the memoization fix: different intervals are different configs;
        # values may coincide numerically but must both be present
        assert set(result.averages) == {250, 4000}

    def test_ewma_sweep_keys(self, runner):
        result = ablations.ewma_sweep(runner, alphas=(0.9,), betas=(0.25, 0.9))
        assert set(result.averages) == {(0.9, 0.25), (0.9, 0.9)}

    def test_migration_threshold_sweep(self, runner):
        result = ablations.migration_threshold_sweep(runner, thresholds=(4, 32))
        assert set(result.averages) == {4, 32}


class TestIdealBound:
    def test_ideal_is_an_upper_bound(self, runner):
        result = ablations.ideal_bound(runner)
        assert result.average("ideal") <= result.average("dynamic") + 0.02
        assert result.average("ideal_batched") <= result.average("ideal") + 0.02
        assert "Ideal" in ablations.format_ideal_bound(result)


class TestExtensions:
    def test_extension_variants(self, runner):
        result = ablations.extensions_study(runner)
        ours_slow, ours_traffic = result.averages["ours"]
        comp_slow, comp_traffic = result.averages["ours+compressed_ctr"]
        prot_slow, prot_traffic = result.averages["ours+protect_requests"]
        # compressed counters remove bytes and never slow things down much
        assert comp_traffic < ours_traffic
        assert comp_slow <= ours_slow + 0.02
        # protecting requests costs both bandwidth and latency
        assert prot_traffic > ours_traffic
        assert prot_slow >= ours_slow - 0.02
        assert "variant" in ablations.format_extensions(result)
