"""Active-adversary harness: injector, invariant monitor, quarantine.

The contract under test (see ``docs/ROBUSTNESS.md``): an in-fabric
adversary mutating, replaying, redirecting, and forging wire traffic never
gets a manipulated block accepted by a secure scheme — every injected
attack resolves to detected or provably-harmless — while the unsecure
baseline silently consumes the same manipulations.  Dormant adversary
configs must be byte-invisible: identical reports, metrics, and cache keys.
"""

from __future__ import annotations

import pytest

from repro import MultiGpuSystem
from repro.configs import AdversaryConfig, scheme_config
from repro.interconnect.topology import CPU_NODE, Topology
from repro.runner import SweepJob, execute_job
from repro.runner.jobs import job_key
from repro.runner.serialize import report_from_dict, report_to_dict
from repro.secure.adversary import (
    AdversaryInjector,
    AttackKind,
    AttackReport,
)
from repro.secure.invariants import InvariantMonitor, InvariantViolationError
from repro.workloads import get_workload

SCALE = 0.1

#: A mix exercising every attack class at once.
ALL_RATES = dict(
    flip_cipher_rate=0.02,
    flip_mac_rate=0.01,
    replay_rate=0.02,
    reorder_rate=0.02,
    truncate_rate=0.01,
    splice_rate=0.01,
    forge_rate=0.01,
    seed=3,
)


def _run(scheme: str, **adversary):
    config = scheme_config(scheme)
    if adversary:
        config = config.with_adversary(**adversary)
    trace = get_workload("fir").generate(n_gpus=4, seed=1, scale=SCALE)
    return MultiGpuSystem(config).run(trace)


class TestAdversaryConfig:
    def test_defaults_are_dormant(self):
        cfg = AdversaryConfig()
        assert not cfg.enabled
        assert cfg.total_rate == 0.0

    def test_any_rate_enables(self):
        assert AdversaryConfig(forge_rate=0.01).enabled

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            AdversaryConfig(replay_rate=-0.1)
        with pytest.raises(ValueError):
            AdversaryConfig(flip_cipher_rate=1.5)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            AdversaryConfig(flip_cipher_rate=0.6, replay_rate=0.6)

    def test_with_adversary_builder(self):
        config = scheme_config("private").with_adversary(splice_rate=0.05, seed=9)
        assert config.adversary.splice_rate == 0.05
        assert config.adversary.seed == 9
        assert config.security == scheme_config("private").security


class TestAdversaryInjector:
    def _injector(self, **overrides) -> AdversaryInjector:
        cfg = AdversaryConfig(**{**ALL_RATES, **overrides})
        return AdversaryInjector(cfg, [CPU_NODE, 1, 2, 3, 4])

    def test_decisions_are_seed_deterministic(self):
        a, b = self._injector(), self._injector()
        rolls_a = [a.decide(1, 2) for _ in range(500)]
        rolls_b = [b.decide(1, 2) for _ in range(500)]
        assert rolls_a == rolls_b
        assert any(r is not None for r in rolls_a)

    def test_pairs_roll_independently(self):
        inj = self._injector()
        rolls_12 = [inj.decide(1, 2) for _ in range(200)]
        other = self._injector()
        rolls_21 = [other.decide(2, 1) for _ in range(200)]
        assert rolls_12 != rolls_21  # directed pairs have distinct streams

    def test_seed_changes_the_stream(self):
        base_inj = self._injector()
        base = [base_inj.decide(1, 2) for _ in range(200)]
        other_inj = self._injector(seed=99)
        other = [other_inj.decide(1, 2) for _ in range(200)]
        assert base != other

    def test_all_attack_kinds_reachable(self):
        inj = self._injector()
        seen = set()
        for _ in range(5000):
            kind = inj.decide(1, 2)
            if kind is not None:
                seen.add(kind)
        assert seen == set(AttackKind)

    def test_quarantined_pair_stops_rolling(self):
        inj = self._injector()
        inj.on_quarantine(1, 2)
        assert all(inj.decide(1, 2) is None for _ in range(300))
        assert (1, 2) in inj.quarantined_pairs
        # the reverse direction is unaffected
        assert any(inj.decide(2, 1) is not None for _ in range(300))

    def test_splice_target_avoids_the_pair(self):
        inj = self._injector()
        target = inj.splice_target(1, 2)
        assert target not in (1, 2)


class TestAttackReport:
    def _populated(self) -> AttackReport:
        r = AttackReport()
        r.note_injected(AttackKind.REPLAY)
        r.note_injected(AttackKind.FORGE)
        r.note_detected(AttackKind.REPLAY)
        r.note_accepted(AttackKind.FORGE)
        r.note_quarantined(1, 2)
        return r

    def test_round_trip(self):
        r = self._populated()
        clone = AttackReport.from_dict(r.as_dict())
        assert clone.as_dict() == r.as_dict()

    def test_totals(self):
        r = self._populated()
        assert r.total_injected == 2
        assert r.total_detected == 1
        assert r.accepted_undetected == 1
        assert r.unresolved == 0

    def test_merge_accumulates(self):
        a, b = self._populated(), self._populated()
        a.merge(b)
        assert a.total_injected == 4
        assert a.accepted_undetected == 2
        assert a.quarantined == [[1, 2], [1, 2]]

    def test_report_serialization_round_trip(self):
        report = _run("private", **ALL_RATES)
        data = report_to_dict(report)
        assert "attack_report" in data
        clone = report_from_dict(data)
        assert clone.attack_report.as_dict() == report.attack_report.as_dict()

    def test_clean_report_has_no_attack_section(self):
        report = _run("private")
        assert report.attack_report is None
        assert "attack_report" not in report_to_dict(report)


class TestZeroUndetectedContract:
    @pytest.mark.parametrize("scheme", ["private", "dynamic", "batching"])
    def test_secure_scheme_detects_everything(self, scheme):
        report = _run(scheme, **ALL_RATES)
        ledger = report.attack_report
        assert ledger.total_injected > 0
        assert ledger.accepted_undetected == 0
        assert ledger.unresolved == 0
        assert report.metrics["adv.accepted_undetected"]["value"] == 0
        assert report.metrics["adv.invariant_violations"]["value"] == 0

    def test_unsecure_baseline_accepts_attacks(self):
        report = _run("unsecure", **ALL_RATES)
        ledger = report.attack_report
        assert ledger.total_injected > 0
        assert ledger.accepted_undetected > 0
        assert ledger.unresolved == 0

    def test_attack_runs_are_deterministic(self):
        a = report_to_dict(_run("private", **ALL_RATES))
        b = report_to_dict(_run("private", **ALL_RATES))
        assert a == b


class TestDormantByteIdentity:
    def test_rate_zero_adversary_is_invisible(self):
        pristine = report_to_dict(_run("private"))
        dormant = report_to_dict(_run("private", flip_cipher_rate=0.0))
        assert dormant == pristine

    def test_rate_zero_adversary_shares_the_cache_key(self):
        spec = get_workload("fir")
        plain = SweepJob(spec=spec, config=scheme_config("private"), seed=1, scale=SCALE)
        dormant = SweepJob(
            spec=spec,
            config=scheme_config("private").with_adversary(replay_rate=0.0),
            seed=1,
            scale=SCALE,
        )
        active = SweepJob(
            spec=spec,
            config=scheme_config("private").with_adversary(replay_rate=0.01),
            seed=1,
            scale=SCALE,
        )
        assert job_key(plain) == job_key(dormant)
        assert job_key(plain) != job_key(active)

    def test_adversary_metrics_absent_when_dormant(self):
        report = execute_job(
            SweepJob(
                spec=get_workload("fir"),
                config=scheme_config("private").with_adversary(forge_rate=0.0),
                seed=1,
                scale=SCALE,
            )
        )
        assert not any(n.startswith("adv.") for n in report.metrics)


class TestQuarantine:
    def test_detections_trigger_quarantine_and_run_completes(self):
        report = _run(
            "private",
            flip_cipher_rate=0.05,
            flip_mac_rate=0.02,
            truncate_rate=0.02,
            seed=5,
            quarantine_threshold=3,
        )
        ledger = report.attack_report
        assert ledger.quarantined, "expected at least one quarantined link"
        assert ledger.accepted_undetected == 0
        assert ledger.unresolved == 0
        assert report.metrics["adv.quarantined_links"]["value"] == len(
            ledger.quarantined
        )

    def test_threshold_zero_never_quarantines(self):
        report = _run("private", flip_cipher_rate=0.05, seed=5)
        assert report.attack_report.quarantined == []

    def test_p2p_reroute_changes_the_path(self):
        topo = Topology(4)
        before = topo.path(1, 2)
        assert topo.quarantine(1, 2)
        after = topo.path(1, 2)
        assert after != before
        assert topo.is_quarantined(1, 2)
        assert not topo.is_quarantined(2, 1)  # directed
        assert topo.quarantine(1, 2)  # idempotent

    def test_ring_reroute_uses_the_other_direction(self):
        topo = Topology(4, fabric="ring")
        before = topo.path(1, 2)
        assert topo.quarantine(1, 2)
        after = topo.path(1, 2)
        assert after != before
        assert len(after) == topo.n_gpus - 1  # long way round

    def test_switch_reroute_avoids_direct_transit(self):
        topo = Topology(4, fabric="switch")
        before = topo.path(1, 2)
        assert topo.quarantine(1, 2)
        assert topo.path(1, 2) != before

    def test_cpu_links_cannot_be_rerouted(self):
        topo = Topology(4)
        assert not topo.quarantine(CPU_NODE, 1)
        assert not topo.quarantine(1, CPU_NODE)

    def test_two_gpu_p2p_falls_back_to_host_detour(self):
        topo = Topology(2)
        assert topo.quarantine(1, 2)
        names = [ch.name for ch in topo.path(1, 2)]
        assert any("pcie" in name for name in names)


class TestInvariantMonitor:
    def test_clean_transcript_passes(self):
        m = InvariantMonitor()
        m.on_counter(1, 2, 0)
        m.on_send_pad(1, 2, 0)
        m.on_recv_pad(1, 2, 0)
        m.on_delivered(1, 2, 0, pid=7)
        m.check()

    def test_counter_regression_flagged(self):
        m = InvariantMonitor()
        m.on_counter(1, 2, 5)
        m.on_counter(1, 2, 5)
        with pytest.raises(InvariantViolationError, match="monotonic"):
            m.check()

    def test_pad_double_consumption_flagged(self):
        m = InvariantMonitor()
        m.on_send_pad(1, 2, 3)
        m.on_send_pad(1, 2, 3)
        with pytest.raises(InvariantViolationError, match="send pad"):
            m.check()

    def test_tampered_delivery_flagged(self):
        m = InvariantMonitor()
        m.on_tampered_copy(1, 2, 4, pid=11)
        m.on_delivered(1, 2, 4, pid=11)
        with pytest.raises(InvariantViolationError, match="tampered"):
            m.check()

    def test_delivery_after_mac_reject_flagged(self):
        m = InvariantMonitor()
        m.on_mac_reject(1, 2, 4, pid=11)
        m.on_delivered(1, 2, 4, pid=11)
        with pytest.raises(InvariantViolationError, match="rejection"):
            m.check()

    def test_copy_identity_is_per_pid(self):
        # the same counter on a different wire copy is a different block
        m = InvariantMonitor()
        m.on_tampered_copy(1, 2, 4, pid=11)
        m.on_delivered(1, 2, 4, pid=12)
        m.check()

    def test_unresolved_attacks_flagged(self):
        m = InvariantMonitor()
        report = AttackReport()
        report.note_injected(AttackKind.SPLICE)
        m.check_attack_report(report)
        with pytest.raises(InvariantViolationError, match="never resolved"):
            m.check()


class TestExperimentHarness:
    def test_smoke_assertions_importable(self):
        from repro.experiments.fig_adversary import (
            MIXES,
            adversary_config,
            adversary_overrides,
        )

        for mix in MIXES:
            overrides = adversary_overrides(mix, rate=0.04)
            rates = [v for k, v in overrides.items() if k.endswith("_rate")]
            assert abs(sum(rates) - 0.04) < 1e-12
            config = adversary_config("private", mix)
            assert config.adversary.enabled

    def test_rate_zero_config_is_pristine(self):
        from repro.experiments.fig_adversary import adversary_config

        assert adversary_config("private", "all", rate=0.0) == scheme_config("private")
