"""Secure/unsecure transport integration tests on a tiny 2-GPU system."""

import pytest

from repro.configs import default_config
from repro.interconnect.packet import Packet, PacketKind
from repro.interconnect.topology import Topology
from repro.secure.channel import SecureTransport, UnsecureTransport, build_transport
from repro.sim.engine import Simulator


def make_fabric(scheme="private", n_gpus=2, **security_overrides):
    cfg = default_config(n_gpus=n_gpus, scheme=scheme, **security_overrides)
    sim = Simulator()
    topo = Topology(n_gpus=n_gpus)
    transport = build_transport(sim, topo, cfg)
    inboxes = {node: [] for node in topo.nodes()}
    for node in topo.nodes():
        transport.register(node, lambda p, t, n=node: inboxes[n].append((p, t)))
    return sim, topo, transport, inboxes


def data_packet(src=1, dst=2, txn=7):
    return Packet(kind=PacketKind.DATA_RESP, src=src, dst=dst, size_bytes=80, txn_id=txn)


class TestBuildTransport:
    def test_unsecure_builds_plain_transport(self):
        _, _, transport, _ = make_fabric("unsecure")
        assert isinstance(transport, UnsecureTransport)

    def test_managed_scheme_builds_secure_transport(self):
        _, _, transport, _ = make_fabric("cached")
        assert isinstance(transport, SecureTransport)

    def test_secure_transport_rejects_unsecure(self):
        cfg = default_config(scheme="unsecure")
        with pytest.raises(ValueError):
            SecureTransport(Simulator(), Topology(4), cfg)


class TestUnsecureTransport:
    def test_delivery_and_no_metadata(self):
        sim, topo, transport, inboxes = make_fabric("unsecure")
        transport.send(data_packet(), now=0)
        sim.run()
        [(packet, time)] = inboxes[2]
        assert packet.meta_bytes == 0
        assert topo.meta_bytes == 0
        # 80 B serializes on the source egress port (2 cycles) + 60-cycle
        # wire latency + 2 more cycles on the destination ingress port
        assert time == 64

    def test_duplicate_registration_rejected(self):
        _, _, transport, _ = make_fabric("unsecure")
        with pytest.raises(ValueError):
            transport.register(1, lambda p, t: None)


class TestSecureTransport:
    def test_metadata_attached_and_counted(self):
        sim, topo, transport, inboxes = make_fabric("private")
        transport.send(data_packet(), now=0)
        sim.run()
        [(packet, _)] = inboxes[2]
        assert packet.meta_bytes == 17  # CTR 8 + MAC 8 + senderID 1
        assert packet.size_bytes == 97
        # data packets trigger a replay ACK back to the sender
        assert transport.acks_sent == 1
        assert topo.meta_bytes == 17 + 16  # message meta + ACK

    def test_secure_delivery_is_slower_than_unsecure(self):
        sim_u, _, t_u, in_u = make_fabric("unsecure")
        t_u.send(data_packet(), now=0)
        sim_u.run()
        sim_s, _, t_s, in_s = make_fabric("shared")
        # exhaust the shared send pad so the second message pays latency
        t_s.send(data_packet(txn=1), now=0)
        t_s.send(data_packet(txn=2), now=0)
        sim_s.run()
        unsecure_time = in_u[2][0][1]
        secure_second = in_s[2][1][1]
        assert secure_second > unsecure_time

    def test_ack_retires_replay_entry(self):
        sim, _, transport, _ = make_fabric("private")
        transport.send(data_packet(), now=0)
        assert transport.guards[1].outstanding(2) == 1
        sim.run()
        assert transport.guards[1].outstanding(2) == 0
        assert transport.guards[1].violations == 0

    def test_read_requests_not_acked(self):
        sim, _, transport, _ = make_fabric("private")
        req = Packet(kind=PacketKind.READ_REQ, src=1, dst=2, size_bytes=16)
        transport.send(req, now=0)
        sim.run()
        assert transport.acks_sent == 0

    def test_secure_commu_mode_has_zero_metadata_bytes(self):
        sim, topo, transport, inboxes = make_fabric("private", count_metadata=False)
        transport.send(data_packet(), now=0)
        sim.run()
        assert topo.meta_bytes == 0
        assert transport.acks_sent == 0
        assert transport.guards[1].outstanding(2) == 0  # still retired
        assert len(inboxes[2]) == 1

    def test_otp_summary_structure(self):
        sim, _, transport, _ = make_fabric("private")
        transport.send(data_packet(), now=0)
        sim.run()
        summary = transport.otp_summary()
        assert set(summary) == {"send", "recv"}
        assert sum(summary["send"].values()) == pytest.approx(1.0)

    def test_housekeeping_kinds_rejected_from_devices(self):
        _, _, transport, _ = make_fabric("private")
        ack = Packet(kind=PacketKind.SEC_ACK, src=1, dst=2, size_bytes=16)
        with pytest.raises(ValueError):
            transport.send(ack, now=0)


class TestBatchedTransport:
    def _batched(self, batch_size=4, timeout=100):
        return make_fabric(
            "dynamic", batching=True, batch_size=batch_size, batch_timeout=timeout
        )

    def test_full_batch_single_ack(self):
        sim, topo, transport, inboxes = self._batched(batch_size=4)
        for i in range(4):
            transport.send(data_packet(txn=i), now=0)
        sim.run()
        assert len(inboxes[2]) == 4
        assert transport.acks_sent == 1  # one ACK for the whole batch
        assert transport.guards[1].outstanding(2) == 0

    def test_batched_metadata_smaller_than_conventional(self):
        sim, topo, transport, _ = self._batched(batch_size=4)
        for i in range(4):
            transport.send(data_packet(txn=i), now=0)
        sim.run()
        batched_meta = topo.meta_bytes
        sim2, topo2, transport2, _ = make_fabric("dynamic")
        for i in range(4):
            transport2.send(data_packet(txn=i), now=0)
        sim2.run()
        assert batched_meta < topo2.meta_bytes

    def test_timeout_close_emits_standalone_mac(self):
        sim, _, transport, inboxes = self._batched(batch_size=16, timeout=50)
        transport.send(data_packet(txn=1), now=0)
        transport.send(data_packet(txn=2), now=0)
        sim.run()
        assert transport.batch_macs_sent == 1
        assert transport.acks_sent == 1
        assert transport.guards[1].outstanding(2) == 0
        assert len(inboxes[2]) == 2  # BATCH_MAC is consumed by the transport

    def test_mac_storage_drains_after_batch(self):
        sim, _, transport, _ = self._batched(batch_size=4)
        for i in range(4):
            transport.send(data_packet(txn=i), now=0)
        sim.run()
        storage = transport.mac_storage[2]
        assert storage.occupancy(1) == 0
        assert storage.max_occupancy >= 1

    def test_write_requests_stay_conventional(self):
        sim, _, transport, _ = self._batched(batch_size=4)
        w = Packet(kind=PacketKind.WRITE_REQ, src=1, dst=2, size_bytes=80)
        transport.send(w, now=0)
        sim.run()
        assert transport.acks_sent == 1  # per-message ACK, no batching


class TestInstrumentation:
    def test_timelines_record_send_and_recv(self):
        sim, _, transport, _ = make_fabric("private")
        transport.send(data_packet(), now=0)
        sim.run()
        tl1 = transport.timelines[1]
        tl2 = transport.timelines[2]
        assert sum(tl1.series("send", 1)) == 1
        assert sum(tl1.series("to2", 1)) == 1
        assert sum(tl2.series("recv", tl2.n_buckets())) == 1

    def test_burst_histogram_records_after_16_blocks(self):
        sim, _, transport, _ = make_fabric("unsecure")
        for i in range(16):
            transport.send(data_packet(txn=i), now=0)
        sim.run()
        assert transport.burst16.total == 1
        assert transport.burst32.total == 0

    def test_acks_do_not_pollute_timelines(self):
        sim, _, transport, _ = make_fabric("private")
        transport.send(data_packet(), now=0)
        sim.run()
        tl2 = transport.timelines[2]
        assert "to1" not in tl2.channels()  # the ACK is housekeeping
