"""Property-based tests (hypothesis) on core data structures.

These pin the invariants the simulator's correctness rests on: pad-stream
wait bounds, allocator pool conservation, cache/TLB capacity limits, link
FIFO monotonicity, batching byte accounting, EWMA convexity, and the
functional crypto round-trip.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configs import MetadataConfig
from repro.core.batching import BatchingController
from repro.core.dynamic_allocator import DynamicOtpAllocator, largest_remainder
from repro.core.ewma import Ewma
from repro.crypto.counter_mode import PadGenerator
from repro.crypto.gcm import AESGCM
from repro.gpu.cache import SetAssociativeCache
from repro.interconnect.link import Channel
from repro.interconnect.packet import Packet, PacketKind
from repro.secure.otp_buffer import PadOutcome, PadStream
from repro.secure.replay import ReplayGuard


# ---------------------------------------------------------------------------
# PadStream
# ---------------------------------------------------------------------------
@given(
    latency=st.integers(1, 100),
    capacity=st.integers(0, 16),
    gaps=st.lists(st.integers(0, 200), min_size=1, max_size=60),
)
def test_pad_wait_never_exceeds_latency(latency, capacity, gaps):
    """A fully pipelined engine bounds every wait by one generation."""
    stream = PadStream(latency, capacity)
    now = 0
    for gap in gaps:
        now += gap
        grant = stream.consume(now)
        assert 0 <= grant.wait <= latency
        if grant.outcome is PadOutcome.HIT:
            assert grant.wait == 0
        elif grant.outcome is PadOutcome.MISS:
            assert grant.wait == latency


@given(
    latency=st.integers(1, 60),
    capacity=st.integers(1, 8),
    ops=st.lists(st.integers(-3, 5), min_size=1, max_size=30),
)
def test_pad_capacity_tracks_grow_shrink(latency, capacity, ops):
    stream = PadStream(latency, capacity)
    expected = capacity
    now = 0
    for op in ops:
        now += 10
        if op >= 0:
            stream.grow(now, op)
            expected += op
        else:
            removed = stream.shrink(-op)
            expected -= removed
        assert stream.capacity == expected
        assert stream.capacity >= 0


@given(
    latency=st.integers(1, 60),
    spacing=st.integers(0, 200),
    n=st.integers(1, 40),
)
def test_pads_spaced_beyond_latency_always_hit(latency, spacing, n):
    stream = PadStream(latency, capacity=1)
    if spacing < latency:
        return  # property only claimed for spaced traffic
    for i in range(n):
        assert stream.consume(i * spacing).outcome is PadOutcome.HIT


# ---------------------------------------------------------------------------
# Dynamic allocator
# ---------------------------------------------------------------------------
@given(
    total=st.integers(0, 200),
    weights=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=10),
)
def test_largest_remainder_conserves_total(total, weights):
    shares = largest_remainder(total, weights)
    assert sum(shares) == total
    assert all(s >= 0 for s in shares)


@given(
    pool=st.integers(8, 128),
    events=st.lists(
        st.tuples(st.sampled_from(["s", "r"]), st.integers(0, 3), st.integers(1, 50)),
        min_size=1,
        max_size=20,
    ),
)
@settings(max_examples=50)
def test_allocator_plans_always_cover_pool(pool, events):
    peers = [0, 2, 3, 4]
    alloc = DynamicOtpAllocator(peers, total_pool=pool, min_samples=1)
    for direction, peer_idx, count in events:
        for _ in range(count):
            if direction == "s":
                alloc.record_send(peers[peer_idx])
            else:
                alloc.record_recv(peers[peer_idx])
        plan = alloc.adjust()
        plan.validate(pool)
        floor = alloc.min_per_stream
        assert all(v >= floor for v in plan.send_per_peer.values())
        assert all(v >= floor for v in plan.recv_per_peer.values())


@given(rate=st.floats(0.01, 1.0), samples=st.lists(st.floats(0, 1), min_size=1, max_size=50))
def test_ewma_stays_within_sample_hull(rate, samples):
    e = Ewma(rate, initial=samples[0])
    lo, hi = samples[0], samples[0]
    for s in samples:
        e.update(s)
        lo, hi = min(lo, s), max(hi, s)
        assert lo - 1e-9 <= e.value <= hi + 1e-9


# ---------------------------------------------------------------------------
# Batching accounting
# ---------------------------------------------------------------------------
@given(
    batch_size=st.integers(1, 64),
    n_blocks=st.integers(1, 200),
)
def test_batched_meta_never_exceeds_conventional(batch_size, n_blocks):
    md = MetadataConfig()
    controller = BatchingController(md, batch_size=batch_size, timeout=100)
    total = sum(controller.add_block(peer=2, now=i).meta_bytes for i in range(n_blocks))
    conventional = n_blocks * md.per_message_meta_bytes
    # batching can only save wire bytes (equality possible for size-1 batches
    # minus the length byte overhead)
    assert total <= conventional + n_blocks * md.batch_len_bytes


@given(batch_size=st.integers(2, 32), n_blocks=st.integers(1, 100))
def test_batch_close_counting(batch_size, n_blocks):
    controller = BatchingController(MetadataConfig(), batch_size=batch_size, timeout=100)
    closes = sum(
        1 for i in range(n_blocks) if controller.add_block(2, i).closes_batch
    )
    assert closes == n_blocks // batch_size


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------
@given(
    addresses=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200),
)
def test_cache_occupancy_never_exceeds_geometry(addresses):
    cache = SetAssociativeCache("t", size_bytes=1024, assoc=2)  # 16 lines
    for addr in addresses:
        if not cache.lookup(addr):
            cache.fill(addr)
    assert cache.occupancy <= 16
    assert cache.stats.accesses == len(addresses)


@given(addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
def test_cache_fill_then_immediate_lookup_hits(addresses):
    cache = SetAssociativeCache("t", size_bytes=4096, assoc=4)
    for addr in addresses:
        cache.fill(addr)
        assert cache.lookup(addr)


# ---------------------------------------------------------------------------
# Link channel
# ---------------------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(1, 4096), min_size=1, max_size=50),
    gaps=st.lists(st.integers(0, 100), min_size=1, max_size=50),
)
def test_channel_arrivals_are_fifo_monotonic(sizes, gaps):
    channel = Channel("c", bytes_per_cycle=32.0, latency=10)
    now = 0
    last_arrival = 0
    total = 0
    for size, gap in zip(sizes, gaps):
        now += gap
        packet = Packet(kind=PacketKind.DATA_RESP, src=1, dst=2, size_bytes=size)
        arrival = channel.send(packet, now)
        assert arrival >= last_arrival  # FIFO: no reordering
        assert arrival >= now + 10  # at least the wire latency
        last_arrival = arrival
        total += size
    assert channel.total_bytes == total


# ---------------------------------------------------------------------------
# Replay guard
# ---------------------------------------------------------------------------
@given(n=st.integers(1, 100), retire_chunks=st.lists(st.integers(1, 10), max_size=20))
def test_replay_guard_conservation(n, retire_chunks):
    guard = ReplayGuard(1)
    for c in range(n):
        guard.on_send(2, c)
    retired = 0
    for chunk in retire_chunks:
        if retired + chunk > n:
            break
        assert guard.on_ack(2, retire=chunk)
        retired += chunk
    assert guard.outstanding(2) == n - retired
    assert guard.max_outstanding == n


# ---------------------------------------------------------------------------
# Functional crypto round trips
# ---------------------------------------------------------------------------
@given(payload=st.binary(min_size=0, max_size=64), counter=st.integers(0, 1 << 32))
@settings(max_examples=25, deadline=None)
def test_pad_round_trip_property(payload, counter):
    pad = PadGenerator(bytes(16)).generate(counter, 1, 2)
    assert pad.decrypt(pad.encrypt(payload)) == payload


@given(plaintext=st.binary(min_size=0, max_size=96), aad=st.binary(max_size=32))
@settings(max_examples=15, deadline=None)
def test_gcm_round_trip_property(plaintext, aad):
    gcm = AESGCM(bytes(range(16)))
    ciphertext, tag = gcm.encrypt(b"twelve-bytes", plaintext, aad)
    assert gcm.decrypt(b"twelve-bytes", ciphertext, tag, aad) == plaintext
