"""Tests for the differential conformance harness (``repro.verify``).

Two halves:

* a clean build passes every oracle family on a small cell set, and
* deliberately seeded bugs — an off-by-one in the metadata wire bytes, a
  transport that drops ACKs, an allocator that mints pool entries, a
  batcher that inflates block metadata — are each *caught* by the oracle
  family built to catch that class, and the shrinker reduces the failure
  to a replayable artifact of at most two cells.

Seeded bugs are injected with ``monkeypatch`` and all seeded runs go
through :func:`~repro.runner.jobs.execute_job` directly: worker processes
would not see the patch and the persistent cache must never be poisoned
with bugged results.
"""

from __future__ import annotations

import pytest

from repro.configs import AdversaryConfig
from repro.runner import execute_job
from repro.secure.channel import SecureTransport
from repro.secure.metadata import MetadataAccountant
from repro.verify import CellRef, ReproArtifact, Violation, evaluate_cells, shrink
from repro.verify import analytic, differential, metamorphic
from repro.workloads import get_workload

SCALE = 0.1
N_GPUS = 4
WORKLOAD = "matrixtranspose"  # migration-free at this scale: every oracle applies

SCHEMES = ("unsecure", "ideal", "private", "shared", "cached", "dynamic", "batching")


def _cell(scheme: str, workload: str = WORKLOAD, scale: float = SCALE) -> CellRef:
    return CellRef(workload=workload, scheme=scheme, n_gpus=N_GPUS, seed=1, scale=scale)


def _trace(workload: str = WORKLOAD, scale: float = SCALE, n_gpus: int = N_GPUS):
    from repro.workloads.compiled import compile_trace

    return compile_trace(
        get_workload(workload).generate(n_gpus=n_gpus, seed=1, scale=scale, n_lanes=8)
    )


@pytest.fixture(scope="module")
def clean_group():
    """One migration-free workload across all schemes, one shared trace."""
    trace = _trace()
    cells = {s: _cell(s) for s in SCHEMES}
    reports = {s: execute_job(cells[s].job(), trace=trace) for s in SCHEMES}
    return trace, cells, reports


# ---------------------------------------------------------------------------
# A clean build passes
# ---------------------------------------------------------------------------
class TestCleanBuild:
    def test_analytic_oracles_pass(self, clean_group):
        _trace_, cells, reports = clean_group
        for scheme in SCHEMES:
            assert analytic.check_report(cells[scheme], reports[scheme]) == []

    def test_differential_oracles_pass(self, clean_group):
        _trace_, cells, reports = clean_group
        assert differential.check_group(cells, reports) == []

    def test_collective_conservation_passes(self):
        cell = _cell("unsecure", workload="allreduce_ring", scale=0.25)
        trace = _trace("allreduce_ring", scale=0.25)
        assert analytic.check_collective_trace(cell, trace) == []

    def test_collective_conservation_catches_a_missing_transfer(self):
        from repro.workloads.compiled import (
            CompiledGpuTrace, CompiledLane, CompiledTrace,
        )

        from repro.memory.address_space import page_of

        trace = _trace("allreduce_ring", scale=0.25)
        victim = trace.gpu_traces[1]
        lane_idx, access_idx = next(
            (li, ai)
            for li, lane in enumerate(victim.lanes)
            for ai, (addr, write) in enumerate(zip(lane.addrs, lane.writes))
            if not write and trace.initial_owners[page_of(addr)] != 1
        )
        lane = victim.lanes[lane_idx]

        def cut_at(seq, i):
            return seq[:i] + seq[i + 1 :]

        cut = CompiledLane(
            cut_at(lane.gaps, access_idx),
            cut_at(lane.addrs, access_idx),
            cut_at(lane.writes, access_idx),
        )
        tampered = CompiledTrace(
            name=trace.name,
            gpu_traces={
                **trace.gpu_traces,
                1: CompiledGpuTrace(
                    (*victim.lanes[:lane_idx], cut, *victim.lanes[lane_idx + 1 :]),
                    victim.instructions,
                ),
            },
            pinned_pages=trace.pinned_pages,
            initial_owners=trace.initial_owners,
        )
        cell = _cell("unsecure", workload="allreduce_ring", scale=0.25)
        found = analytic.check_collective_trace(cell, tampered)
        assert [v.oracle for v in found] == ["analytic.collective_conservation"]

    def test_relabel_passes_for_static_and_adaptive_schemes(self, clean_group):
        trace, cells, reports = clean_group
        for scheme in ("ideal", "private", "dynamic", "batching"):
            assert metamorphic.check_relabel(cells[scheme], trace, reports[scheme]) == []

    def test_dormant_configs_are_invisible(self, clean_group):
        trace, cells, reports = clean_group
        assert metamorphic.check_dormant(cells["batching"], trace, reports["batching"]) == []

    def test_batch_size_one_matches_conventional(self, clean_group):
        trace, cells, _reports = clean_group
        assert metamorphic.check_batch_size_one(cells["dynamic"], trace) == []

    def test_seed_stability_tolerates_near_ties(self):
        geo = {
            1: {"ideal": 1.03, "batching": 1.20, "private": 1.22, "shared": 2.0},
            2: {"ideal": 1.02, "batching": 1.23, "private": 1.21, "shared": 1.9},
        }
        assert metamorphic.check_seed_stability(geo) == []

    def test_seed_stability_flags_a_wide_reordering(self):
        geo = {
            1: {"ideal": 1.0, "batching": 1.2, "private": 1.5, "shared": 2.0},
            2: {"ideal": 1.0, "batching": 1.5, "private": 1.2, "shared": 2.0},
        }
        found = metamorphic.check_seed_stability(geo)
        assert [v.oracle for v in found] == ["metamorphic.seed_stability"]


# ---------------------------------------------------------------------------
# Seeded bugs: each oracle family catches its class
# ---------------------------------------------------------------------------
class TestSeededBugs:
    def test_metadata_off_by_one_caught_by_analytic(self, monkeypatch):
        original = MetadataAccountant.conventional_meta
        monkeypatch.setattr(
            MetadataAccountant,
            "conventional_meta",
            lambda self, packet: original(self, packet) + 1,
        )
        cell = _cell("dynamic")
        report = execute_job(cell.job(), trace=_trace())
        oracles = {v.oracle for v in analytic.check_report(cell, report)}
        assert "analytic.metadata_bytes" in oracles

    def test_dropped_acks_caught_by_ledger_oracle(self, monkeypatch):
        monkeypatch.setattr(
            SecureTransport, "_send_ack", lambda self, *a, **kw: None
        )
        cell = _cell("private")
        report = execute_job(cell.job(), trace=_trace())
        oracles = {v.oracle for v in analytic.check_report(cell, report)}
        assert "analytic.ack_ledger" in oracles

    def test_leaked_pool_entries_caught_by_conservation_oracle(self, monkeypatch):
        import repro.core.dynamic_allocator as da

        original = da.largest_remainder

        def minting(total, weights):
            shares = original(total, weights)
            if shares:
                shares[0] += 1  # the leak: one entry from nowhere
            return shares

        monkeypatch.setattr(da, "largest_remainder", minting)
        # the internal validation would catch the leak first; the seeded
        # bug includes silencing it, which is exactly what the external
        # conservation oracle exists to survive
        monkeypatch.setattr(da.AllocationPlan, "validate", lambda self, pool: None)
        cell = _cell("dynamic")
        report = execute_job(cell.job(), trace=_trace())
        oracles = {v.oracle for v in analytic.check_report(cell, report)}
        assert "analytic.pool_conservation" in oracles

    def test_inflated_batch_meta_caught_by_differential_and_metamorphic(
        self, monkeypatch
    ):
        original = MetadataAccountant.batched_block_meta

        def inflated(self, opens_batch, closes_batch):
            return original(self, opens_batch, closes_batch) + 64

        monkeypatch.setattr(MetadataAccountant, "batched_block_meta", inflated)
        trace = _trace()
        cells = {s: _cell(s) for s in ("dynamic", "batching")}
        reports = {s: execute_job(cells[s].job(), trace=trace) for s in cells}
        diff_oracles = {v.oracle for v in differential.check_group(cells, reports)}
        assert "differential.metadata_dominance" in diff_oracles
        meta_oracles = {
            v.oracle for v in metamorphic.check_batch_size_one(cells["dynamic"], trace)
        }
        assert "metamorphic.batch_size_one" in meta_oracles

    def test_dormant_section_leak_caught_by_metamorphic(self, monkeypatch):
        # Seeded bug: a dormant adversary section (all rates zero) arms the
        # injector anyway — the report then carries an attack_report and is
        # no longer byte-identical to the plain cell.
        monkeypatch.setattr(
            AdversaryConfig,
            "enabled",
            property(lambda self: self.replay_window == 13),
        )
        cell = _cell("private")
        trace = _trace()
        plain = execute_job(cell.job(), trace=trace)
        found = metamorphic.check_dormant(cell, trace, plain)
        assert "metamorphic.dormant_config" in {v.oracle for v in found}


# ---------------------------------------------------------------------------
# Shrinker: minimal repro, replayable artifact
# ---------------------------------------------------------------------------
class TestShrinker:
    def test_seeded_bug_shrinks_to_at_most_two_cells(self, monkeypatch, tmp_path):
        original = MetadataAccountant.conventional_meta
        monkeypatch.setattr(
            MetadataAccountant,
            "conventional_meta",
            lambda self, packet: original(self, packet) + 1,
        )
        cell = _cell("dynamic")
        report = execute_job(cell.job(), trace=_trace())
        violations = [
            v for v in analytic.check_report(cell, report)
            if v.oracle == "analytic.metadata_bytes"
        ]
        assert violations
        artifact = shrink(violations[0])
        assert len(artifact.cells) <= 2
        # the shrinker found a cheaper failing configuration and logged it
        assert any("kept" in step for step in artifact.shrink_log)
        shrunk = artifact.cells[0]
        assert shrunk.n_gpus <= cell.n_gpus and shrunk.scale <= cell.scale
        # the artifact replays: the bug still fires on the minimized cells
        assert evaluate_cells(artifact.violation.oracle, artifact.cells)
        # ...and round-trips through disk byte-exactly
        path = artifact.save(tmp_path / "repro.json")
        loaded = ReproArtifact.load(path)
        assert loaded.to_dict() == artifact.to_dict()

    def test_clean_build_does_not_reproduce_a_stale_artifact(self):
        violation = Violation(
            oracle="analytic.metadata_bytes",
            law="meta byte law",
            cells=[_cell("dynamic", scale=0.05)],
            message="stale",
        )
        assert evaluate_cells(violation.oracle, violation.cells) == []

    def test_fleet_level_violations_are_reported_unshrunk(self):
        violation = Violation(
            oracle="differential.geomean_chain",
            law="fleet ordering",
            cells=[],
            message="synthetic",
        )
        artifact = shrink(violation)
        assert artifact.cells == []
        assert any("fleet-level" in step for step in artifact.shrink_log)

    def test_group_violations_drop_to_the_failing_pair(self, monkeypatch):
        original = MetadataAccountant.batched_block_meta
        monkeypatch.setattr(
            MetadataAccountant,
            "batched_block_meta",
            lambda self, o, c: original(self, o, c) + 64,
        )
        trace = _trace()
        cells = {s: _cell(s) for s in ("unsecure", "ideal", "dynamic", "batching")}
        reports = {s: execute_job(cells[s].job(), trace=trace) for s in cells}
        violations = [
            v for v in differential.check_group(cells, reports)
            if v.oracle == "differential.metadata_dominance"
        ]
        assert violations
        artifact = shrink(violations[0])
        assert len(artifact.cells) <= 2
        assert {c.scheme for c in artifact.cells} <= {"dynamic", "batching"}


# ---------------------------------------------------------------------------
# Cell/violation/artifact plumbing
# ---------------------------------------------------------------------------
class TestArtifacts:
    def test_cellref_round_trips(self):
        cell = CellRef("fir", "batching", n_gpus=2, seed=3, scale=0.25,
                       variant="dormant_fault")
        assert CellRef.from_dict(cell.to_dict()) == cell

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            CellRef("fir", "batching", variant="haunted")

    def test_dormant_variants_keep_rates_zero(self):
        for variant in ("dormant_fault", "dormant_adversary"):
            cfg = CellRef("fir", "private", variant=variant).config()
            assert not cfg.fault.enabled
            assert not cfg.adversary.enabled

    def test_artifact_schema_mismatch_rejected(self, tmp_path):
        violation = Violation(
            oracle="analytic.metadata_bytes", law="x", cells=[_cell("ideal")],
            message="m",
        )
        artifact = ReproArtifact(violation=violation, cells=violation.cells)
        path = artifact.save(tmp_path / "a.json")
        import json

        data = json.loads(path.read_text())
        data["schema"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            ReproArtifact.load(path)
