"""Cache, TLB, and HBM model tests."""

import pytest

from repro.gpu.cache import SetAssociativeCache
from repro.gpu.hbm import HbmModel
from repro.gpu.tlb import Tlb, TlbHierarchy


class TestCache:
    def _small(self):
        # 4 lines of 64 B, 2-way => 2 sets
        return SetAssociativeCache("t", size_bytes=256, assoc=2)

    def test_miss_then_hit_after_fill(self):
        c = self._small()
        assert not c.lookup(0)
        c.fill(0)
        assert c.lookup(0)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_lru_eviction_within_set(self):
        c = self._small()
        # set 0 holds block addresses 0, 128, 256... (2 sets x 64 B lines)
        c.fill(0)
        c.fill(128)
        c.lookup(0)  # 0 is now MRU
        c.fill(256)  # evicts 128
        assert c.contains(0)
        assert not c.contains(128)
        assert c.contains(256)
        assert c.stats.evictions == 1

    def test_fill_returns_victim_address(self):
        c = self._small()
        c.fill(0)
        c.fill(128)
        victim = c.fill(256)
        assert victim == 0 or victim == 128

    def test_sets_are_independent(self):
        c = self._small()
        c.fill(0)  # set 0
        c.fill(64)  # set 1
        c.fill(128)  # set 0
        c.fill(192)  # set 1
        assert c.occupancy == 4
        assert c.stats.evictions == 0

    def test_invalidate_and_page_invalidate(self):
        c = SetAssociativeCache("t", size_bytes=64 * 64, assoc=4)
        for addr in range(0, 4096, 64):
            c.fill(addr)
        dropped = c.invalidate_page(0, 4096)
        assert dropped == 64
        assert c.occupancy == 0
        assert not c.invalidate(0)  # already gone

    def test_table3_geometries_accepted(self):
        SetAssociativeCache("l1", 16 * 1024, 4)
        SetAssociativeCache("l2", 2 * 1024 * 1024, 16)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("t", size_bytes=100, assoc=3)
        with pytest.raises(ValueError):
            SetAssociativeCache("t", size_bytes=0, assoc=1)

    def test_contains_does_not_touch_lru(self):
        c = self._small()
        c.fill(0)
        c.fill(128)
        c.contains(0)  # must NOT refresh 0
        c.fill(256)
        assert not c.contains(0)  # 0 was LRU and evicted

    def test_hit_rate(self):
        c = self._small()
        c.fill(0)
        c.lookup(0)
        c.lookup(64)
        assert c.stats.hit_rate == pytest.approx(0.5)


class TestTlb:
    def test_lru_capacity(self):
        t = Tlb("t", n_entries=2)
        t.fill(1)
        t.fill(2)
        t.lookup(1)
        t.fill(3)  # evicts 2
        assert 1 in t and 3 in t and 2 not in t

    def test_hierarchy_promotion(self):
        h = TlbHierarchy("g", l1_entries=1, l2_entries=4)
        delay, walk = h.translate(0)  # cold: both miss
        assert walk and delay == h.l1_latency + h.l2_latency
        delay, walk = h.translate(0)  # L1 hit now
        assert not walk and delay == h.l1_latency
        h.translate(4096)  # displaces page 0 from 1-entry L1
        delay, walk = h.translate(0)  # L2 hit
        assert not walk and delay == h.l1_latency + h.l2_latency
        assert h.iommu_walks == 2

    def test_shootdown_forces_rewalk(self):
        h = TlbHierarchy("g")
        h.translate(0)
        h.shootdown(0)
        _, walk = h.translate(0)
        assert walk

    def test_flush(self):
        t = Tlb("t", 4)
        t.fill(9)
        t.flush()
        assert 9 not in t

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Tlb("t", 0)


class TestHbm:
    def test_latency_bound_single_access(self):
        hbm = HbmModel("h", access_latency=160, bytes_per_cycle=512)
        assert hbm.access(now=0, size_bytes=64) == 1 + 160

    def test_bandwidth_serialization_for_bulk(self):
        hbm = HbmModel("h", access_latency=10, bytes_per_cycle=512)
        done1 = hbm.access(0, 4096)  # 8 cycles occupancy
        done2 = hbm.access(0, 4096)
        assert done1 == 8 + 10
        assert done2 == 16 + 10

    def test_counters(self):
        hbm = HbmModel("h")
        hbm.access(0, 64)
        hbm.access(0, 64)
        assert hbm.accesses == 2
        assert hbm.total_bytes == 128

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            HbmModel("h", access_latency=-1)
        hbm = HbmModel("h")
        with pytest.raises(ValueError):
            hbm.access(0, 0)
