"""AES-GCM validated against the NIST GCM specification test cases."""

import pytest

from repro.crypto.gcm import AESGCM, ghash


def test_gcm_test_case_1_empty():
    # McGrew-Viega GCM spec, test case 1: empty plaintext, empty AAD.
    key = bytes(16)
    iv = bytes(12)
    gcm = AESGCM(key)
    ciphertext, tag = gcm.encrypt(iv, b"")
    assert ciphertext == b""
    assert tag == bytes.fromhex("58e2fccefa7e3061367f1d57a4e7455a")


def test_gcm_test_case_2_single_block():
    key = bytes(16)
    iv = bytes(12)
    plaintext = bytes(16)
    gcm = AESGCM(key)
    ciphertext, tag = gcm.encrypt(iv, plaintext)
    assert ciphertext == bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
    assert tag == bytes.fromhex("ab6e47d42cec13bdf53a67b21257bddf")


def test_gcm_test_case_3_four_blocks():
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255"
    )
    gcm = AESGCM(key)
    ciphertext, tag = gcm.encrypt(iv, plaintext)
    assert ciphertext == bytes.fromhex(
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985"
    )
    assert tag == bytes.fromhex("4d5c2af327cd64a62cf35abd2ba6fab4")


def test_gcm_test_case_4_with_aad():
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39"
    )
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    gcm = AESGCM(key)
    ciphertext, tag = gcm.encrypt(iv, plaintext, aad)
    assert ciphertext == bytes.fromhex(
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091"
    )
    assert tag == bytes.fromhex("5bc94fbc3221a5db94fae95ae7121a47")


def test_gcm_round_trip_and_forgery_detection():
    gcm = AESGCM(b"0123456789abcdef")
    iv = b"unique-iv-01"
    plaintext = b"secret cacheline payload, 64 bytes long, moved between GPUs..!!"
    aad = b"hdr"
    ciphertext, tag = gcm.encrypt(iv, plaintext, aad)
    assert gcm.decrypt(iv, ciphertext, tag, aad) == plaintext
    tampered = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
    with pytest.raises(ValueError):
        gcm.decrypt(iv, tampered, tag, aad)
    with pytest.raises(ValueError):
        gcm.decrypt(iv, ciphertext, tag, b"other-aad")


def test_gcm_non_96bit_iv_path():
    gcm = AESGCM(bytes(16))
    iv = bytes(range(16))  # 128-bit IV exercises the GHASH-IV path
    ciphertext, tag = gcm.encrypt(iv, b"hello multi-GPU world")
    assert gcm.decrypt(iv, ciphertext, tag) == b"hello multi-GPU world"


def test_ghash_zero_inputs_is_zero():
    assert ghash(bytes(16), b"", b"") == bytes(16)


def test_ciphertext_differs_across_ivs():
    gcm = AESGCM(bytes(16))
    c1, _ = gcm.encrypt(b"aaaaaaaaaaaa", b"same plaintext!!")
    c2, _ = gcm.encrypt(b"bbbbbbbbbbbb", b"same plaintext!!")
    assert c1 != c2
