"""Property tests for the collective-communication trace generators.

Three families of invariants (no simulation, pure trace inspection):

* **conservation** — ring schedules move exactly the volume the algorithm
  promises: a reduce-scatter + all-gather pair moves ``2(N-1)/N`` of the
  message per GPU, all of it remote;
* **peer structure** — each collective talks to exactly the peers its
  topology names (fixed ring neighbour, tree children, every peer, grid
  neighbours, only the root);
* **reproducibility** — generators are deterministic in (n_gpus, seed,
  scale) and valid across GPU counts, including the degenerate 1-GPU case.

Plus registry-facing checks: the ``collective`` class resolves by name and
abbreviation without disturbing the 17-entry Table IV set.
"""

import pytest

from repro.memory.address_space import page_of
from repro.workloads import (
    all_collectives,
    all_workloads,
    get_workload,
    training_step,
    workloads_in_class,
)
from repro.workloads.base import AccessKind
from repro.workloads.collectives import DEFAULT_CHUNK_BLOCKS, CollectiveBuilder

COLLECTIVE_NAMES = [spec.name for spec in all_collectives()]


def remote_reads(trace, gpu):
    """Blocks GPU ``gpu`` reads from pages another node owns."""
    count = 0
    for lane in trace.gpu_traces[gpu].lanes:
        for access in lane:
            if (access.kind is AccessKind.READ
                    and trace.initial_owners[page_of(access.address)] != gpu):
                count += 1
    return count


def remote_owners(trace, gpu):
    """Initial owners of the pages ``gpu`` touches remotely."""
    owners = set()
    for lane in trace.gpu_traces[gpu].lanes:
        for access in lane:
            owner = trace.initial_owners[page_of(access.address)]
            if owner != gpu:
                owners.add(owner)
    return owners


def flat_accesses(trace, gpu):
    return [a for lane in trace.gpu_traces[gpu].lanes for a in lane]


class TestConservation:
    """Ring schedules move exactly the algorithmically required volume."""

    @pytest.mark.parametrize("n_gpus", [2, 4, 8])
    def test_reduce_scatter_all_gather_moves_2_nm1_over_n(self, n_gpus):
        message = n_gpus * 3 * DEFAULT_CHUNK_BLOCKS
        b = CollectiveBuilder("t", n_gpus)
        shards = b.alloc_shards("x", message)
        b.reduce_scatter_ring(shards)
        b.all_gather_ring(shards)
        trace = b.build()
        expected = 2 * (n_gpus - 1) * message // n_gpus
        for g in range(1, n_gpus + 1):
            assert remote_reads(trace, g) == expected

    def test_reduce_scatter_alone_moves_half_of_the_pair(self):
        n_gpus, message = 4, 4 * 2 * DEFAULT_CHUNK_BLOCKS
        b = CollectiveBuilder("t", n_gpus)
        shards = b.alloc_shards("x", message)
        b.reduce_scatter_ring(shards)
        trace = b.build()
        for g in range(1, n_gpus + 1):
            assert remote_reads(trace, g) == (n_gpus - 1) * message // n_gpus

    def test_all_gather_direct_moves_full_peer_shards(self):
        n_gpus, shard = 4, 2 * DEFAULT_CHUNK_BLOCKS
        b = CollectiveBuilder("t", n_gpus)
        shards = b.alloc_shards("x", shard)
        b.all_gather_direct(shards)
        trace = b.build()
        for g in range(1, n_gpus + 1):
            assert remote_reads(trace, g) == (n_gpus - 1) * shard

    def test_tree_moves_full_message_per_edge(self):
        n_gpus, message = 4, 2 * DEFAULT_CHUNK_BLOCKS
        b = CollectiveBuilder("t", n_gpus)
        shards = b.alloc_shards("x", message)
        b.tree_reduce(shards)
        trace = b.build()
        # N-1 tree edges, each carrying the full message to the parent.
        # (Pure leaves issue no accesses in a bare reduce, so iterate over
        # the GPUs the built trace actually contains.)
        total = sum(remote_reads(trace, g) for g in trace.gpu_traces)
        assert total == (n_gpus - 1) * message

    def test_transfers_are_dense_chunks(self):
        """Remote reads arrive as gap-0 bursts — the batching-friendly shape.

        Only the first block of a chunk may carry a gap (the accumulated
        barrier/reduction cycles); the other 15 of every 16-block chunk
        must be back-to-back.
        """
        b = CollectiveBuilder("t", 4)
        shards = b.alloc_shards("x", 4 * DEFAULT_CHUNK_BLOCKS)
        b.reduce_scatter_ring(shards)
        trace = b.build()
        for g in range(1, 5):
            gaps = [
                a.gap for a in flat_accesses(trace, g)
                if (a.kind is AccessKind.READ
                    and trace.initial_owners[page_of(a.address)] != g)
            ]
            assert gaps
            dense = sum(1 for gap in gaps if gap == 0)
            assert dense >= len(gaps) * (DEFAULT_CHUNK_BLOCKS - 1) // DEFAULT_CHUNK_BLOCKS


class TestPeerStructure:
    def test_ring_talks_only_to_left_neighbour(self):
        trace = get_workload("allreduce_ring").generate(4, seed=1, scale=0.25)
        # rank r pulls from rank r-1: GPU 3 (rank 2) only from GPU 2.
        assert remote_owners(trace, 3) == {2}
        assert remote_owners(trace, 1) == {4}  # rank 0 wraps to rank N-1

    def test_allgather_rotates_over_every_peer(self):
        trace = get_workload("allgather").generate(4, seed=1, scale=0.25)
        for g in range(1, 5):
            assert remote_owners(trace, g) == {1, 2, 3, 4} - {g}

    def test_allgather_destination_drifts_per_step(self):
        """The hot recv peer must change over the trace, not interleave."""
        trace = get_workload("allgather").generate(4, seed=1, scale=0.25)
        owners = [
            trace.initial_owners[page_of(a.address)]
            for a in flat_accesses(trace, 1)
            if trace.initial_owners[page_of(a.address)] != 1
        ]
        # Drop repeats: the sequence visits peers in contiguous runs.
        transitions = [o for i, o in enumerate(owners) if i == 0 or owners[i - 1] != o]
        assert len(transitions) >= 6  # several distinct single-peer phases

    def test_broadcast_non_roots_read_only_the_root(self):
        trace = get_workload("broadcast").generate(4, seed=1, scale=0.25)
        root = 1
        assert remote_owners(trace, root) == set()
        for g in range(2, 5):
            assert remote_owners(trace, g) == {root}

    def test_tree_root_pulls_only_from_children(self):
        trace = get_workload("allreduce_tree").generate(4, seed=1, scale=0.25)
        # Binary heap on ranks 0..3: root (GPU 1) has children ranks 1, 2.
        assert remote_owners(trace, 1) == {2, 3}

    def test_halo_talks_only_to_grid_neighbours(self):
        trace = get_workload("halo2d").generate(4, seed=1, scale=0.25)
        b = CollectiveBuilder("probe", 4)
        for g in range(1, 5):
            allowed = set(b.grid_neighbors(g).values())
            assert remote_owners(trace, g) <= allowed
            assert remote_owners(trace, g)  # every tile has >= 1 neighbour


class TestReproducibility:
    @pytest.mark.parametrize("name", COLLECTIVE_NAMES)
    def test_same_parameters_same_trace(self, name):
        spec = get_workload(name)
        a = spec.generate(4, seed=3, scale=0.25)
        b = spec.generate(4, seed=3, scale=0.25)
        for g in a.gpu_traces:
            assert flat_accesses(a, g) == flat_accesses(b, g)
        assert a.initial_owners == b.initial_owners
        assert a.pinned_pages == b.pinned_pages

    @pytest.mark.parametrize("name", COLLECTIVE_NAMES)
    @pytest.mark.parametrize("n_gpus", [1, 2, 4, 8])
    def test_valid_across_gpu_counts(self, name, n_gpus):
        trace = get_workload(name).generate(n_gpus, seed=1, scale=0.25)
        assert set(trace.gpu_traces) == set(range(1, n_gpus + 1))
        for g in trace.gpu_traces:
            assert trace.gpu_traces[g].n_accesses > 0  # warmup keeps 1-GPU alive

    @pytest.mark.parametrize("name", COLLECTIVE_NAMES)
    def test_scale_grows_the_trace(self, name):
        spec = get_workload(name)
        small = spec.generate(4, seed=1, scale=0.25)
        large = spec.generate(4, seed=1, scale=1.0)
        assert large.total_accesses > small.total_accesses

    def test_training_step_composite(self):
        trace = training_step(4, seed=1, scale=0.25)
        assert trace.name == "training_step"
        # Gradient buffers are pinned; the collective can't be solved by
        # page migration.
        assert trace.pinned_pages
        # The ring synchronization gives every GPU remote traffic to its
        # left neighbour; host ingest adds owner-0 reads for GPUs 2..4.
        assert remote_owners(trace, 3) >= {0, 2}


class TestRegistry:
    def test_collectives_resolve_by_name_and_abbr(self):
        for spec in all_collectives():
            assert get_workload(spec.name) is spec
            assert get_workload(spec.abbr) is spec

    def test_collective_class_membership(self):
        names = {spec.name for spec in workloads_in_class("collective")}
        assert names == set(COLLECTIVE_NAMES)
        assert len(COLLECTIVE_NAMES) == 6

    def test_table_iv_is_untouched(self):
        table_iv = all_workloads()
        assert len(table_iv) == 17
        assert not {s.name for s in table_iv} & set(COLLECTIVE_NAMES)

    def test_collectives_use_the_nccl_suite(self):
        for spec in all_collectives():
            assert spec.suite == "NCCL"
            assert spec.rpki_class == "collective"
