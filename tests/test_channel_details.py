"""Detailed secure-transport behaviour tests."""

import pytest

from repro.configs import MetadataConfig, default_config
from repro.interconnect.packet import Packet, PacketKind
from repro.interconnect.topology import Topology
from repro.secure.channel import SecureTransport, build_transport
from repro.sim.engine import Simulator

from tests.test_transport import data_packet, make_fabric


class TestCryptoFifo:
    def test_head_of_line_blocking_serializes_stalls(self):
        """With one pad, a burst's misses must queue behind each other."""
        sim, _, transport, inboxes = make_fabric("shared")
        for i in range(8):
            transport.send(data_packet(txn=i), now=0)
        sim.run()
        times = sorted(t for _, t in inboxes[2])
        # send- and recv-side stalls overlap pairwise, so the burst drains
        # two messages per engine latency — still serialized, never at once
        assert times[-1] - times[0] >= (8 / 2 - 1) * 40 * 0.9

    def test_independent_pairs_do_not_block_each_other(self):
        sim, _, transport, inboxes = make_fabric("shared", n_gpus=3)
        # a deep stalled burst on pair 1->2 and one message on pair 3->2
        for i in range(6):
            transport.send(data_packet(src=1, dst=2, txn=i), now=0)
        transport.send(data_packet(src=3, dst=2, txn=99), now=0)
        sim.run()
        arrivals = {p.txn_id: t for p, t in inboxes[2]}
        # the fresh pair pays its own desync only, never 1->2's queue
        assert arrivals[99] < max(arrivals.values())
        assert arrivals[99] <= arrivals[0] + 45


class TestProtectRequests:
    def test_requests_secured_when_extension_enabled(self):
        cfg = default_config(2, scheme="private", protect_requests=True)
        sim = Simulator()
        topo = Topology(2)
        transport = SecureTransport(sim, topo, cfg)
        got = []
        for node in topo.nodes():
            transport.register(node, lambda p, t, n=node: got.append((n, p, t)))
        req = Packet(kind=PacketKind.READ_REQ, src=1, dst=2, size_bytes=16)
        transport.send(req, now=0)
        sim.run()
        [(_, packet, _)] = got
        assert packet.meta_bytes == 17  # full CTR+MAC+ID on the request

    def test_requests_plain_by_default(self):
        sim, topo, transport, inboxes = make_fabric("private")
        req = Packet(kind=PacketKind.READ_REQ, src=1, dst=2, size_bytes=16)
        transport.send(req, now=0)
        sim.run()
        [(packet, _)] = inboxes[2]
        assert packet.meta_bytes == 0
        assert topo.meta_bytes == 0


class TestCompressedCounters:
    def test_compressed_counters_shrink_metadata(self):
        md = MetadataConfig(compressed_counters=True)
        assert md.wire_ctr_bytes == 2
        assert md.per_message_meta_bytes == 2 + 8 + 1
        assert md.batched_block_meta_bytes == 3

    def test_full_counters_by_default(self):
        md = MetadataConfig()
        assert md.wire_ctr_bytes == 8


class TestBatchArrivalTracking:
    def test_out_of_order_batch_completion(self):
        """The ACK fires only once all blocks of a batch arrived."""
        sim, _, transport, inboxes = make_fabric(
            "private", batching=True, batch_size=3, batch_timeout=100000
        )
        for i in range(3):
            transport.send(data_packet(txn=i), now=0)
        sim.run()
        assert transport.acks_sent == 1
        assert len(inboxes[2]) == 3
        assert not transport._batch_arrivals  # tracker fully drained

    def test_two_interleaved_destinations_batch_separately(self):
        sim, _, transport, inboxes = make_fabric(
            "private", n_gpus=3, batching=True, batch_size=2, batch_timeout=100000
        )
        transport.send(data_packet(src=1, dst=2, txn=1), now=0)
        transport.send(data_packet(src=1, dst=3, txn=2), now=0)
        transport.send(data_packet(src=1, dst=2, txn=3), now=0)
        transport.send(data_packet(src=1, dst=3, txn=4), now=0)
        sim.run()
        assert transport.acks_sent == 2  # one per destination batch


class TestEngineAccounting:
    def test_pads_and_macs_counted(self):
        sim, _, transport, _ = make_fabric("private")
        transport.send(data_packet(), now=0)
        sim.run()
        assert transport.engines[1].pads_generated >= 1  # send side
        assert transport.engines[2].pads_generated >= 1  # recv side
        assert transport.engines[1].macs_computed == 1
