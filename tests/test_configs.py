"""Configuration dataclass tests."""

import pytest

from repro.configs import (
    MetadataConfig,
    SecurityConfig,
    SystemConfig,
    default_config,
    scheme_config,
)


class TestMetadataConfig:
    def test_per_message_meta_matches_paper(self):
        md = MetadataConfig()
        # MsgCTR 8 B + MsgMAC 8 B + senderID 1 B
        assert md.per_message_meta_bytes == 17

    def test_batched_block_meta_drops_the_mac(self):
        md = MetadataConfig()
        assert md.batched_block_meta_bytes == 9  # CTR + senderID only


class TestSecurityConfig:
    def test_total_otp_entries_match_paper(self):
        sec = SecurityConfig(otp_multiplier=4)
        # 4-GPU system: each GPU has 4 peers -> 32 entries (§III-A)
        assert sec.total_otp_entries(4) == 32
        # 16-GPU system: 16 peers -> 128 entries (§V-D)
        assert sec.total_otp_entries(16) == 128

    def test_table3_defaults(self):
        sec = SecurityConfig()
        assert sec.aes_gcm_latency == 40
        assert sec.alpha == 0.9
        assert sec.beta == 0.5
        assert sec.interval == 1000
        assert sec.batch_size == 16


class TestSystemConfig:
    def test_node_accounting(self):
        cfg = SystemConfig(n_gpus=4)
        assert cfg.n_nodes == 5  # 4 GPUs + CPU
        assert cfg.n_peers == 4

    def test_with_security_returns_new_config(self):
        cfg = SystemConfig()
        other = cfg.with_security(scheme="private")
        assert cfg.security.scheme == "unsecure"
        assert other.security.scheme == "private"

    def test_table3_link_rates(self):
        cfg = SystemConfig()
        assert cfg.link.pcie_bytes_per_cycle == 32.0  # 32 GB/s at 1 GHz
        assert cfg.link.nvlink_bytes_per_cycle == 50.0  # 50 GB/s

    def test_table3_gpu_hierarchy(self):
        gpu = SystemConfig().gpu
        assert gpu.l1_size == 16 * 1024 and gpu.l1_assoc == 4
        assert gpu.l2_size == 2 * 1024 * 1024 and gpu.l2_assoc == 16
        assert gpu.hbm_bytes_per_cycle == 512.0  # HBM 512 GB/s


class TestFactories:
    def test_scheme_config_batching_alias(self):
        cfg = scheme_config("batching")
        assert cfg.security.scheme == "dynamic"
        assert cfg.security.batching

    def test_scheme_config_passthrough(self):
        cfg = scheme_config("cached", n_gpus=8, otp_multiplier=2)
        assert cfg.n_gpus == 8
        assert cfg.security.scheme == "cached"
        assert cfg.security.otp_multiplier == 2

    def test_default_config_overrides(self):
        cfg = default_config(4, scheme="private", aes_gcm_latency=10)
        assert cfg.security.aes_gcm_latency == 10

    def test_configs_are_frozen(self):
        cfg = default_config()
        with pytest.raises(Exception):
            cfg.n_gpus = 8
