"""Interconnect substrate tests: packets, links, topology, arbitration."""

import pytest

from repro.interconnect.arbiter import RoundRobinArbiter
from repro.interconnect.link import Channel, Link
from repro.interconnect.packet import Packet, PacketKind
from repro.interconnect.topology import CPU_NODE, Topology


def mk_packet(src=1, dst=2, size=80, meta=0, kind=PacketKind.DATA_RESP):
    return Packet(kind=kind, src=src, dst=dst, size_bytes=size, meta_bytes=meta)


class TestPacket:
    def test_base_bytes_excludes_metadata(self):
        p = mk_packet(size=97, meta=17)
        assert p.base_bytes == 80

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            mk_packet(size=0)
        with pytest.raises(ValueError):
            mk_packet(size=10, meta=11)
        with pytest.raises(ValueError):
            mk_packet(src=3, dst=3)

    def test_carries_data_classification(self):
        assert PacketKind.DATA_RESP.carries_data
        assert PacketKind.WRITE_REQ.carries_data
        assert PacketKind.MIGRATION_DATA.carries_data
        assert not PacketKind.READ_REQ.carries_data
        assert not PacketKind.SEC_ACK.carries_data

    def test_packet_ids_unique(self):
        assert mk_packet().pid != mk_packet().pid


class TestChannel:
    def test_serialization_time(self):
        ch = Channel("c", bytes_per_cycle=32.0, latency=100)
        assert ch.serialization_cycles(64) == 2
        assert ch.serialization_cycles(65) == 3
        assert ch.serialization_cycles(1) == 1

    def test_send_arrival_includes_latency(self):
        ch = Channel("c", bytes_per_cycle=64.0, latency=10)
        arrival = ch.send(mk_packet(size=64), now=100)
        assert arrival == 100 + 1 + 10

    def test_back_to_back_packets_queue(self):
        ch = Channel("c", bytes_per_cycle=1.0, latency=0)
        a1 = ch.send(mk_packet(size=10), now=0)
        a2 = ch.send(mk_packet(size=10), now=0)
        assert a1 == 10
        assert a2 == 20
        assert ch.queue_cycles == 10

    def test_idle_gap_does_not_queue(self):
        ch = Channel("c", bytes_per_cycle=1.0, latency=0)
        ch.send(mk_packet(size=5), now=0)
        arrival = ch.send(mk_packet(size=5), now=100)
        assert arrival == 105
        assert ch.queue_cycles == 0

    def test_byte_accounting_splits_metadata(self):
        ch = Channel("c", bytes_per_cycle=8.0, latency=0)
        ch.send(mk_packet(size=97, meta=17), now=0)
        assert ch.total_bytes == 97
        assert ch.meta_bytes == 17
        assert ch.base_bytes == 80
        assert ch.packets == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Channel("c", bytes_per_cycle=0, latency=0)
        with pytest.raises(ValueError):
            Channel("c", bytes_per_cycle=1, latency=-1)


class TestLink:
    def test_directions_are_independent(self):
        link = Link(1, 2, bytes_per_cycle=1.0, latency=0)
        a1 = link.send(mk_packet(src=1, dst=2, size=10), now=0)
        a2 = link.send(mk_packet(src=2, dst=1, size=10), now=0)
        assert a1 == 10 and a2 == 10  # full duplex: no interference

    def test_rejects_foreign_traffic(self):
        link = Link(1, 2, bytes_per_cycle=1.0, latency=0)
        with pytest.raises(ValueError):
            link.send(mk_packet(src=1, dst=3), now=0)

    def test_rejects_self_link(self):
        with pytest.raises(ValueError):
            Link(1, 1, 1.0, 0)

    def test_aggregate_bytes(self):
        link = Link(1, 2, bytes_per_cycle=1.0, latency=0)
        link.send(mk_packet(src=1, dst=2, size=30, meta=10), now=0)
        link.send(mk_packet(src=2, dst=1, size=20, meta=5), now=0)
        assert link.total_bytes == 50
        assert link.meta_bytes == 15
        assert link.base_bytes == 35


class TestTopology:
    def test_node_numbering(self):
        topo = Topology(n_gpus=4)
        assert topo.nodes() == [0, 1, 2, 3, 4]
        assert topo.gpu_nodes() == [1, 2, 3, 4]
        assert CPU_NODE == 0

    def test_channel_count_ports_plus_bus(self):
        topo = Topology(n_gpus=4)
        # 2 PCIe bus directions + 4 GPU egress + 4 GPU ingress ports
        assert len(topo.channels()) == 10

    def test_link_rates_match_table3(self):
        topo = Topology(n_gpus=2)
        pcie = topo.channel(CPU_NODE, 1)
        nvlink = topo.channel(1, 2)
        assert pcie.bytes_per_cycle == 32.0
        assert nvlink.bytes_per_cycle == 50.0

    def test_pcie_is_a_shared_bus(self):
        topo = Topology(n_gpus=3)
        # all CPU->GPU flows serialize on the same downstream bus channel
        assert topo.channel(CPU_NODE, 1) is topo.channel(CPU_NODE, 2)
        # directions are independent
        assert topo.channel(CPU_NODE, 1) is not topo.channel(1, CPU_NODE)

    def test_gpu_path_crosses_egress_then_ingress(self):
        topo = Topology(n_gpus=3)
        path = topo.path(1, 3)
        assert len(path) == 2
        assert path[0] is topo.channel(1, 2)  # source egress port is shared
        assert path[1] is topo.path(2, 3)[1]  # destination ingress shared

    def test_route_missing_pair_raises(self):
        topo = Topology(n_gpus=2)
        with pytest.raises(ValueError):
            topo.path(1, 9)
        with pytest.raises(ValueError):
            topo.path(1, 1)

    def test_peers_of(self):
        topo = Topology(n_gpus=3)
        assert topo.peers_of(2) == [0, 1, 3]

    def test_fabric_traffic_totals(self):
        topo = Topology(n_gpus=2)
        topo.send(mk_packet(src=1, dst=2, size=80, meta=17), now=0)
        topo.send(mk_packet(src=0, dst=1, size=16), now=0)
        assert topo.total_bytes == 96
        assert topo.meta_bytes == 17
        assert topo.base_bytes == 79

    def test_requires_a_gpu(self):
        with pytest.raises(ValueError):
            Topology(n_gpus=0)


class TestRoundRobinArbiter:
    def test_rotates_grants(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.grant(["a", "b", "c"]) == "a"
        assert arb.grant(["a", "b", "c"]) == "b"
        assert arb.grant(["a", "b", "c"]) == "c"
        assert arb.grant(["a", "b", "c"]) == "a"

    def test_skips_non_requesting(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.grant(["c"]) == "c"
        assert arb.grant(["a", "c"]) == "a"

    def test_empty_requests(self):
        arb = RoundRobinArbiter(["a"])
        assert arb.grant([]) is None

    def test_grant_all_limited_by_slots(self):
        arb = RoundRobinArbiter(["a", "b", "c", "d"])
        assert arb.grant_all(["a", "b", "c", "d"], slots=2) == ["a", "b"]
        assert arb.grant_all(["a", "b", "c", "d"], slots=3) == ["c", "d", "a"]

    def test_duplicate_participants_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(["a", "a"])
        arb = RoundRobinArbiter(["a"])
        with pytest.raises(ValueError):
            arb.add("a")
