"""Tests for the distributed sweep fleet: wire auth, protocol, failover.

The load-bearing contracts (``docs/FLEET.md``):

* a sweep served by the fleet is **byte-identical** (canonical JSON) to
  the same cells run directly through ``SweepRunner`` — through real TCP
  sockets, multiple workers, and a worker death mid-sweep;
* every frame is **HMAC-authenticated and replay-protected**: a wrong
  key is a structured ``auth_failed``, a replayed or reordered frame
  hangs up the connection, a frame never validates across sessions;
* **leases bound worker silence**: a dead worker's remaining cells are
  reassigned (zero lost, zero duplicated — at-most-once acceptance),
  while a *slow* worker that keeps heartbeating is never reaped;
* failures are **structured and bounded**: a cell that keeps dying
  exhausts its retry budget and fails the sweep with
  ``retries_exhausted``, never a hang.

Coordinator tests drive everything inside ``asyncio.run`` over real
loopback sockets; the blocking ``FleetClient`` runs in an executor.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.configs import scheme_config
from repro.runner import SweepJob, SweepRunner
from repro.runner.trace_store import TraceStore, trace_key
from repro.service.protocol import canonical_report_json
from repro.workloads import get_workload
from repro.workloads.synthetic import synthetic_spec

from repro.fleet import FleetClient, FleetCoordinator, FleetError, FleetWorker
from repro.fleet import protocol as fproto
from repro.fleet.client import FleetUnavailable, parse_addr
from repro.fleet.wire import (
    DIR_FROM_COORDINATOR,
    DIR_TO_COORDINATOR,
    FleetAuthError,
    FrameCodec,
    FrameError,
    MAX_FRAME_BYTES,
    load_auth_key,
    make_nonce,
)

GPUS = 2
SCALE = 0.05
KEY = b"unit-test-fleet-key"


def _jobs(schemes=("unsecure", "private", "batching"), seeds=(1,)):
    return [
        SweepJob(
            spec=get_workload("fir"),
            config=scheme_config(scheme, n_gpus=GPUS),
            seed=seed,
            scale=SCALE,
        )
        for seed in seeds
        for scheme in schemes
    ]


# ---------------------------------------------------------------------------
# Wire: MAC, counters, sessions
# ---------------------------------------------------------------------------
class TestFrameCodec:
    def _pair(self):
        """Two codecs bound to the same session, a <-> b."""
        a, b = FrameCodec(KEY), FrameCodec(KEY)
        session = make_nonce() + make_nonce()
        a.bind(session, DIR_TO_COORDINATOR, DIR_FROM_COORDINATOR)
        b.bind(session, DIR_FROM_COORDINATOR, DIR_TO_COORDINATOR)
        return a, b

    def test_seal_open_round_trip(self):
        a, b = self._pair()
        body = {"op": "heartbeat", "load": 3}
        assert b.open(a.seal(body)) == body
        assert b.open(a.seal({"op": "x"})) == {"op": "x"}

    def test_replayed_frame_rejected(self):
        a, b = self._pair()
        line = a.seal({"op": "heartbeat"})
        b.open(line)
        with pytest.raises(FleetAuthError, match="replayed or reordered"):
            b.open(line)

    def test_reordered_frame_rejected(self):
        a, b = self._pair()
        first, second = a.seal({"op": "one"}), a.seal({"op": "two"})
        b.open(second)
        with pytest.raises(FleetAuthError, match="replayed or reordered"):
            b.open(first)

    def test_wrong_key_rejected(self):
        a, _ = self._pair()
        intruder = FrameCodec(b"some-other-key-entirely")
        intruder.bind(a.session, DIR_FROM_COORDINATOR, DIR_TO_COORDINATOR)
        with pytest.raises(FleetAuthError, match="MAC verification failed"):
            intruder.open(a.seal({"op": "heartbeat"}))

    def test_tampered_body_rejected(self):
        a, b = self._pair()
        line = a.seal({"op": "result", "cell": 1})
        tampered = line.replace(b'"cell":1', b'"cell":2')
        assert tampered != line
        with pytest.raises(FleetAuthError):
            b.open(tampered)

    def test_cross_session_splice_rejected(self):
        a, _ = self._pair()
        line = a.seal({"op": "heartbeat"})
        _, other = self._pair()  # different session nonces
        with pytest.raises(FleetAuthError):
            other.open(line)

    def test_direction_confusion_rejected(self):
        # A frame a peer sent cannot be reflected back at it.
        a, _ = self._pair()
        line = a.seal({"op": "heartbeat"})
        with pytest.raises(FleetAuthError):
            a.open(line)

    def test_hello_round_trip_and_counter_pinned_to_zero(self):
        connector = FrameCodec(KEY)
        listener = FrameCodec(KEY)
        hello = fproto.hello_body("worker", "w", make_nonce())
        assert listener.open_hello(connector.seal_hello(hello)) == hello
        # A session frame re-presented as a hello fails the counter check.
        a, _ = self._pair()
        with pytest.raises(FleetAuthError, match="counter 0"):
            listener.open_hello(a.seal({"op": "hello"}))

    def test_welcome_binds_session_and_verifies(self):
        my_nonce, their_nonce = make_nonce(), make_nonce()
        listener = FrameCodec(KEY)
        listener.bind(my_nonce + their_nonce, DIR_FROM_COORDINATOR, DIR_TO_COORDINATOR)
        line = listener.seal(fproto.welcome_body(their_nonce))
        connector = FrameCodec(KEY)
        body = connector.open_welcome(line, my_nonce, DIR_TO_COORDINATOR, DIR_FROM_COORDINATOR)
        assert body["op"] == "welcome"
        assert connector.session == my_nonce + their_nonce
        # ...and the session now carries ordinary traffic both ways.
        connector_line = connector.seal({"op": "heartbeat"})
        assert listener.open(connector_line) == {"op": "heartbeat"}

    def test_welcome_under_wrong_key_rejected(self):
        my_nonce, their_nonce = make_nonce(), make_nonce()
        mallory = FrameCodec(b"the-wrong-key-here")
        mallory.bind(my_nonce + their_nonce, DIR_FROM_COORDINATOR, DIR_TO_COORDINATOR)
        line = mallory.seal(fproto.welcome_body(their_nonce))
        connector = FrameCodec(KEY)
        with pytest.raises(FleetAuthError):
            connector.open_welcome(line, my_nonce, DIR_TO_COORDINATOR, DIR_FROM_COORDINATOR)

    def test_rejection_frame_round_trip(self):
        line = FrameCodec.seal_rejection("auth_failed", "bad hello")
        body = FrameCodec.is_rejection(line)
        assert body is not None
        assert body["error"] == {"code": "auth_failed", "message": "bad hello"}
        # Ordinary frames are not mistaken for rejections.
        a, _ = self._pair()
        assert FrameCodec.is_rejection(a.seal({"op": "heartbeat"})) is None
        assert FrameCodec.is_rejection(b"not json at all\n") is None

    def test_garbage_is_frame_error(self):
        _, b = self._pair()
        for line in (b"{}\n", b"[1,2]\n", b'{"b":1,"mac":"x","n":0}\n', b"nope\n"):
            with pytest.raises(FrameError):
                b.open(line)


class TestAuthKey:
    def test_key_file_wins_and_is_stripped(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_KEY", "environment-key")
        key_file = tmp_path / "fleet.key"
        key_file.write_bytes(b"  file-key-bytes\n")
        assert load_auth_key(key_file) == b"file-key-bytes"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_KEY", "environment-key")
        assert load_auth_key() == b"environment-key"

    def test_missing_key_refused(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_KEY", raising=False)
        with pytest.raises(FleetAuthError, match="no fleet auth key"):
            load_auth_key()

    def test_short_key_refused(self, tmp_path):
        key_file = tmp_path / "fleet.key"
        key_file.write_bytes(b"tiny")
        with pytest.raises(FleetAuthError, match="at least"):
            load_auth_key(key_file)

    def test_unreadable_file_refused(self, tmp_path):
        with pytest.raises(FleetAuthError, match="cannot read"):
            load_auth_key(tmp_path / "nope.key")


# ---------------------------------------------------------------------------
# Protocol: cells across the wire
# ---------------------------------------------------------------------------
class TestCellWireForm:
    def test_job_round_trip(self):
        job = _jobs(schemes=("private",), seeds=(7,))[0]
        rebuilt = fproto.job_from_wire(fproto.job_to_wire(job))
        assert rebuilt.spec.name == job.spec.name
        assert rebuilt.config == job.config
        assert (rebuilt.seed, rebuilt.scale, rebuilt.n_lanes) == (7, SCALE, job.n_lanes)

    def test_wire_trace_key_matches_store(self):
        job = _jobs()[0]
        cell = fproto.job_to_wire(job)
        assert fproto.wire_trace_key(cell) == trace_key(
            job.spec.name, job.config.n_gpus, job.seed, job.scale, job.n_lanes
        )

    def test_non_registry_spec_refused(self):
        job = SweepJob(
            spec=synthetic_spec("bespoke", remote_fraction=0.5),
            config=scheme_config("unsecure", n_gpus=GPUS),
            seed=1,
            scale=SCALE,
        )
        with pytest.raises(fproto.FleetProtocolError, match="not a registry spec"):
            fproto.job_to_wire(job)

    def test_unknown_workload_is_key_error(self):
        cell = fproto.job_to_wire(_jobs()[0])
        cell["workload"] = "no-such-workload"
        with pytest.raises(KeyError):
            fproto.job_from_wire(cell)

    def test_malformed_cells_refused(self):
        good = fproto.job_to_wire(_jobs()[0])
        for mutate in (
            lambda c: c.pop("config"),
            lambda c: c.update(seed="one"),
            lambda c: c.update(scale=0),
            lambda c: c.update(n_lanes=0),
        ):
            cell = {k: v for k, v in good.items()}
            mutate(cell)
            with pytest.raises(fproto.FleetProtocolError):
                fproto.job_from_wire(cell)
        with pytest.raises(fproto.FleetProtocolError):
            fproto.job_from_wire("not a dict")

    def test_parse_addr(self):
        assert parse_addr("10.0.0.7:7341") == ("10.0.0.7", 7341)
        assert parse_addr(":7341") == ("127.0.0.1", 7341)
        for bad in ("nope", "host:", "host:port", ""):
            with pytest.raises(ValueError):
                parse_addr(bad)


# ---------------------------------------------------------------------------
# End-to-end over real sockets
# ---------------------------------------------------------------------------
def _sweep_via_fleet(client_call):
    """Run the blocking FleetClient call off the event loop thread."""
    return asyncio.get_running_loop().run_in_executor(None, client_call)


async def _spawn_worker(coordinator, tmp_path, n, key=KEY, heartbeat_s=0.2) -> tuple[list, list]:
    workers = [
        FleetWorker(
            "127.0.0.1",
            coordinator.port,
            key,
            heartbeat_s=heartbeat_s,
            trace_store=TraceStore(tmp_path / "worker-traces"),
        )
        for _ in range(n)
    ]
    tasks = [asyncio.ensure_future(worker.run()) for worker in workers]
    return workers, tasks


async def _stop_all(coordinator, tasks):
    await coordinator.stop()
    for task in tasks:
        task.cancel()
    for task in tasks:
        try:
            await task
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass


class _Zombie:
    """A hand-driven worker connection for failure injection."""

    def __init__(self, port: int, key: bytes = KEY, name: str = "zombie") -> None:
        self.port = port
        self.key = key
        self.name = name
        self.codec = FrameCodec(key)
        self.reader = None
        self.writer = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port, limit=MAX_FRAME_BYTES
        )
        nonce = make_nonce()
        self.writer.write(
            self.codec.seal_hello(fproto.hello_body("worker", self.name, nonce))
        )
        await self.writer.drain()
        line = await self.reader.readline()
        assert FrameCodec.is_rejection(line) is None, "zombie was rejected at handshake"
        self.codec.open_welcome(line, nonce, DIR_TO_COORDINATOR, DIR_FROM_COORDINATOR)

    async def recv(self) -> dict:
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("coordinator hung up on the zombie")
        return self.codec.open(line)

    async def recv_assign(self) -> dict:
        while True:
            body = await self.recv()
            if body.get("op") == "assign":
                return body

    async def send(self, body: dict) -> None:
        self.writer.write(self.codec.seal(body))
        await self.writer.drain()

    async def send_raw(self, line: bytes) -> None:
        self.writer.write(line)
        await self.writer.drain()

    def drop(self) -> None:
        self.writer.close()


def _counter(coordinator, name: str) -> float:
    entry = coordinator.telemetry.snapshot().get(name)
    return entry["value"] if entry else 0


class TestFleetEndToEnd:
    def test_byte_identity_over_real_sockets(self, tmp_path):
        jobs = _jobs(seeds=(1, 2))
        direct = SweepRunner(jobs=1, cache=None).run_jobs(jobs)

        async def run():
            coordinator = FleetCoordinator(KEY, lease_timeout_s=10.0)
            await coordinator.start()
            _, tasks = await _spawn_worker(coordinator, tmp_path, 2)

            def call():
                with FleetClient(("127.0.0.1", coordinator.port), KEY) as client:
                    return client.sweep(jobs, timeout_s=120)

            try:
                reports = await _sweep_via_fleet(call)
                status = coordinator.status()
            finally:
                await _stop_all(coordinator, tasks)
            return reports, status

        reports, status = asyncio.run(run())
        assert [canonical_report_json(r) for r in reports] == [
            canonical_report_json(r) for r in direct
        ]
        # Every cell was executed exactly once across the pool.
        assert sum(w["completed"] for w in status["workers"]) == len(jobs)
        assert status["queue_depth"] == 0
        assert status["inflight_units"] == 0

    def test_dead_worker_cells_reassigned_without_loss(self, tmp_path):
        """A worker that banks one result and dies mid-unit: the remaining
        cells are reassigned after lease expiry, nothing lost or doubled."""
        jobs = _jobs(seeds=(1,))
        direct = SweepRunner(jobs=1, cache=None).run_jobs(jobs)

        async def run():
            coordinator = FleetCoordinator(KEY, lease_timeout_s=0.6, steal_after_s=None)
            await coordinator.start()
            zombie = _Zombie(coordinator.port)
            await zombie.connect()

            def call():
                with FleetClient(("127.0.0.1", coordinator.port), KEY) as client:
                    return client.sweep(jobs, timeout_s=120)

            sweep_future = _sweep_via_fleet(call)
            assignment = await zombie.recv_assign()
            cells = assignment["cells"]
            assert len(cells) == len(jobs)  # one trace key -> one unit
            # Bank a real result for the first cell, then die silently.
            first = cells[0]
            report = SweepRunner(jobs=1, cache=None).run_jobs(
                [fproto.job_from_wire(first["job"])]
            )[0]
            from repro.runner.serialize import report_to_dict

            await zombie.send(
                {
                    "op": "result",
                    "unit": assignment["unit"],
                    "epoch": assignment["epoch"],
                    "cell": first["index"],
                    "report": report_to_dict(report),
                }
            )
            await asyncio.sleep(0.1)
            zombie.drop()

            # A healthy worker arrives and inherits the remainder.
            _, tasks = await _spawn_worker(coordinator, tmp_path, 1)
            try:
                reports = await sweep_future
                snapshot = coordinator.telemetry.snapshot()
                status = coordinator.status()
            finally:
                await _stop_all(coordinator, tasks)
            return reports, snapshot, status

        reports, snapshot, status = asyncio.run(run())
        assert [canonical_report_json(r) for r in reports] == [
            canonical_report_json(r) for r in direct
        ]
        assert snapshot["fleet.reassigned"]["value"] == len(jobs) - 1
        # The healthy worker ran only the cells the zombie never finished.
        assert status["workers"][0]["completed"] == len(jobs) - 1

    def test_lease_expires_for_silent_worker_but_not_slow_one(self, tmp_path):
        """Silence past the lease timeout reaps a worker; a slow worker
        that keeps heartbeating (lease renewed) is never reaped."""

        async def run():
            coordinator = FleetCoordinator(KEY, lease_timeout_s=0.5, steal_after_s=None)
            await coordinator.start()
            silent = _Zombie(coordinator.port, name="silent")
            slow = _Zombie(coordinator.port, name="slow")
            await silent.connect()
            await slow.connect()
            assert len(coordinator._workers) == 2

            async def heartbeat_forever():
                while True:
                    await asyncio.sleep(0.1)
                    await slow.send({"op": "heartbeat"})

            beats = asyncio.ensure_future(heartbeat_forever())
            await asyncio.sleep(1.5)  # three lease timeouts of silence
            names = [w.name for w in coordinator._workers.values()]
            expired = _counter(coordinator, "fleet.lease_expired")
            beats.cancel()
            await coordinator.stop()
            return names, expired

        names, expired = asyncio.run(run())
        assert names == ["slow"]
        assert expired >= 0  # the silent zombie held no unit: reaped, no unit expiry

    def test_heartbeats_keep_grinding_worker_alive_past_lease(self, tmp_path):
        """End-to-end slow-vs-dead: cells that take longer than the lease
        timeout still complete, because heartbeats flow mid-cell."""
        jobs = _jobs(schemes=("unsecure",), seeds=(1,))
        direct = SweepRunner(jobs=1, cache=None).run_jobs(jobs)

        async def run():
            # Lease far shorter than a cell's runtime; heartbeat shorter still.
            coordinator = FleetCoordinator(KEY, lease_timeout_s=0.25, steal_after_s=None)
            await coordinator.start()
            _, tasks = await _spawn_worker(coordinator, tmp_path, 1)

            def call():
                with FleetClient(("127.0.0.1", coordinator.port), KEY) as client:
                    return client.sweep(jobs, timeout_s=120)

            try:
                reports = await _sweep_via_fleet(call)
                expired = _counter(coordinator, "fleet.lease_expired")
            finally:
                await _stop_all(coordinator, tasks)
            return reports, expired

        reports, expired = asyncio.run(run())
        assert canonical_report_json(reports[0]) == canonical_report_json(direct[0])
        assert expired == 0

    def test_replayed_worker_frame_hangs_up_connection(self, tmp_path):
        async def run():
            coordinator = FleetCoordinator(KEY, lease_timeout_s=10.0)
            await coordinator.start()
            zombie = _Zombie(coordinator.port)
            await zombie.connect()
            assert len(coordinator._workers) == 1
            line = zombie.codec.seal({"op": "heartbeat"})
            await zombie.send_raw(line)
            await asyncio.sleep(0.05)
            assert len(coordinator._workers) == 1  # first copy is fine
            await zombie.send_raw(line)  # byte-for-byte replay
            eof = await zombie.reader.readline()
            await coordinator.stop()
            return eof, len(coordinator._workers)

        eof, workers = asyncio.run(run())
        assert eof == b""  # coordinator hung up on the replayer
        assert workers == 0

    def test_wrong_key_peers_rejected_structurally(self, tmp_path):
        async def run():
            coordinator = FleetCoordinator(KEY, lease_timeout_s=10.0)
            await coordinator.start()

            def client_call():
                try:
                    with FleetClient(("127.0.0.1", coordinator.port), b"wrong-key-here") as c:
                        c.ping()
                    return None
                except FleetError as exc:
                    return exc

            client_exc = await _sweep_via_fleet(client_call)
            worker = FleetWorker("127.0.0.1", coordinator.port, b"also-wrong-key")
            try:
                await worker.run()
                worker_exc = None
            except FleetAuthError as exc:
                worker_exc = exc
            failures = _counter(coordinator, "fleet.auth_failures")
            await coordinator.stop()
            return client_exc, worker_exc, failures

        client_exc, worker_exc, failures = asyncio.run(run())
        assert client_exc is not None and client_exc.code == "auth_failed"
        assert worker_exc is not None
        assert failures == 2

    def test_sweep_validation_errors_are_structured(self, tmp_path):
        async def run():
            coordinator = FleetCoordinator(KEY, lease_timeout_s=10.0)
            await coordinator.start()

            def call():
                codes = {}
                with FleetClient(("127.0.0.1", coordinator.port), KEY) as client:
                    bad_cell = fproto.job_to_wire(_jobs()[0])
                    bad_cell["workload"] = "no-such-workload"
                    for label, body in {
                        "unknown_workload": {"op": "sweep", "id": 1, "priority": "normal",
                                             "cells": [bad_cell]},
                        "empty": {"op": "sweep", "id": 2, "priority": "normal", "cells": []},
                        "priority": {"op": "sweep", "id": 3, "priority": "urgent",
                                     "cells": [fproto.job_to_wire(_jobs()[0])]},
                    }.items():
                        response = client._request(body, timeout_s=30)
                        codes[label] = (response["ok"], response["error"]["code"])
                return codes

            codes = await _sweep_via_fleet(call)
            await coordinator.stop()
            return codes

        codes = asyncio.run(run())
        assert codes["unknown_workload"] == (False, "unknown_workload")
        assert codes["empty"] == (False, "bad_request")
        assert codes["priority"] == (False, "bad_request")

    def test_retries_exhausted_is_bounded_and_structured(self, tmp_path):
        """A unit whose holders keep dying burns its retry budget and the
        sweep fails with ``retries_exhausted`` — never a hang."""
        jobs = _jobs(schemes=("unsecure",))

        async def run():
            coordinator = FleetCoordinator(
                KEY, lease_timeout_s=0.4, steal_after_s=None, max_cell_retries=1
            )
            await coordinator.start()

            def call():
                try:
                    with FleetClient(("127.0.0.1", coordinator.port), KEY) as client:
                        client.sweep(jobs, timeout_s=120)
                    return None
                except FleetError as exc:
                    return exc

            sweep_future = _sweep_via_fleet(call)
            for _ in range(2):  # initial assignment + one permitted retry
                zombie = _Zombie(coordinator.port)
                await zombie.connect()
                await zombie.recv_assign()
                zombie.drop()
                await asyncio.sleep(0.05)
            exc = await sweep_future
            await coordinator.stop()
            return exc

        exc = asyncio.run(run())
        assert exc is not None
        assert exc.code == "retries_exhausted"

    def test_no_coordinator_is_fleet_unavailable(self, tmp_path):
        with pytest.raises(FleetUnavailable):
            with FleetClient(("127.0.0.1", 1), KEY, connect_timeout_s=2.0) as client:
                client.ping()


# ---------------------------------------------------------------------------
# SweepRunner integration
# ---------------------------------------------------------------------------
class TestSweepRunnerFleetMode:
    def test_fleet_mode_requires_addr(self):
        with pytest.raises(ValueError, match="requires fleet_addr"):
            SweepRunner(jobs=1, cache=None, mode="fleet").run_jobs(_jobs())

    def test_fleet_mode_round_trip_and_stats(self, tmp_path):
        jobs = _jobs()
        direct = SweepRunner(jobs=1, cache=None).run_jobs(jobs)

        async def run():
            coordinator = FleetCoordinator(KEY, lease_timeout_s=10.0)
            await coordinator.start()
            _, tasks = await _spawn_worker(coordinator, tmp_path, 1)

            def call():
                runner = SweepRunner(
                    jobs=1,
                    cache=None,
                    mode="fleet",
                    fleet_addr=f"127.0.0.1:{coordinator.port}",
                    fleet_key=KEY,
                )
                return runner.run_jobs(jobs), runner.stats

            try:
                return await _sweep_via_fleet(call)
            finally:
                await _stop_all(coordinator, tasks)

        reports, stats = asyncio.run(run())
        assert [canonical_report_json(r) for r in reports] == [
            canonical_report_json(r) for r in direct
        ]
        assert stats.fleet_runs == len(jobs)
        assert stats.fallbacks == 0

    def test_unreachable_fleet_falls_back_to_local(self):
        jobs = _jobs(schemes=("unsecure",))
        runner = SweepRunner(
            jobs=1, cache=None, mode="fleet", fleet_addr="127.0.0.1:1", fleet_key=KEY
        )
        reports = runner.run_jobs(jobs)
        direct = SweepRunner(jobs=1, cache=None).run_jobs(jobs)
        assert canonical_report_json(reports[0]) == canonical_report_json(direct[0])
        assert runner.stats.fallbacks == len(jobs)
        assert runner.stats.fleet_runs == 0
