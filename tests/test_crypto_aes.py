"""AES-128 validated against FIPS-197 and NIST SP 800-38A vectors."""

import pytest

from repro.crypto.aes import AES128, INV_SBOX, SBOX


def test_sbox_known_entries():
    # FIPS-197 Figure 7 spot checks.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_inv_sbox_inverts_sbox():
    for x in range(256):
        assert INV_SBOX[SBOX[x]] == x


def test_fips197_appendix_b_vector():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
    assert AES128(key).encrypt_block(plaintext) == expected


def test_fips197_appendix_c1_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    cipher = AES128(key)
    assert cipher.encrypt_block(plaintext) == expected
    assert cipher.decrypt_block(expected) == plaintext


@pytest.mark.parametrize(
    "plaintext,expected",
    [
        ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
        ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
        ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
        ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
    ],
)
def test_sp800_38a_ecb_vectors(plaintext, expected):
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    cipher = AES128(key)
    assert cipher.encrypt_block(bytes.fromhex(plaintext)) == bytes.fromhex(expected)


def test_round_trip_random_blocks():
    cipher = AES128(bytes(range(16)))
    for i in range(16):
        block = bytes((i * 17 + j * 31) % 256 for j in range(16))
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_key_length_validated():
    with pytest.raises(ValueError):
        AES128(b"short")


def test_block_length_validated():
    cipher = AES128(bytes(16))
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"tiny")
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"tiny")


class TestGenericKeySizes:
    """FIPS-197 appendix C vectors for the longer key sizes."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes192_appendix_c2(self):
        from repro.crypto.aes import AES

        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        cipher = AES(key)
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert cipher.rounds == 12
        assert cipher.encrypt_block(self.PLAINTEXT) == expected
        assert cipher.decrypt_block(expected) == self.PLAINTEXT

    def test_aes256_appendix_c3(self):
        from repro.crypto.aes import AES

        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        cipher = AES(key)
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert cipher.rounds == 14
        assert cipher.encrypt_block(self.PLAINTEXT) == expected
        assert cipher.decrypt_block(expected) == self.PLAINTEXT

    def test_invalid_key_sizes_rejected(self):
        from repro.crypto.aes import AES

        for bad in (0, 8, 15, 17, 33):
            with pytest.raises(ValueError):
                AES(bytes(bad))

    def test_aes128_subclass_compatible(self):
        from repro.crypto.aes import AES, AES128

        key = bytes(range(16))
        assert AES128(key).encrypt_block(bytes(16)) == AES(key).encrypt_block(bytes(16))
        with pytest.raises(ValueError):
            AES128(bytes(24))  # the subclass insists on 128-bit keys
