"""Sweep-execution benchmark: trace-shared serial, parallel, warm store and
warm cache, plus the event-engine microbenchmark.

Times a small representative sweep (3 workloads x 3 schemes) through each
execution path of :class:`repro.runner.SweepRunner` — cold (fresh trace
store), store-warm (traces load from ``.npz`` instead of regenerating),
forced-parallel (to quantify the pool penalty auto mode avoids), and
warm result cache — and records the runner's per-phase breakdown
(trace-gen / simulate / IPC seconds) alongside each timing.

The engine microbenchmark measures three queue drivers:

* ``legacy`` — the seed repo's ``order=True`` dataclass heap, reproduced
  verbatim below;
* ``handle`` — the current queue's cancellable path (``push``/``pop``
  with an :class:`~repro.sim.engine.Event` allocated per entry);
* ``current`` — the no-handle fast path the simulator actually runs:
  ``post``-style bare-callable entries drained by ``Simulator.run``'s
  loop (this is the number the ``events_per_sec`` trajectory tracks).

Results land in ``results/BENCH_sweep.json`` so future PRs have a perf
trajectory to compare against.

Standalone:    PYTHONPATH=src python benchmarks/bench_sweep_runtime.py
Under pytest:  PYTHONPATH=src python -m pytest benchmarks/bench_sweep_runtime.py -q

``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` shrink or pin the workloads;
``REPRO_BENCH_JOBS`` sets the parallel worker count (default 4).
"""

from __future__ import annotations

import heapq
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.configs import scheme_config
from repro.runner import ResultCache, SweepJob, SweepRunner, TraceStore, report_to_dict
from repro.runner.sweep import resolve_jobs
from repro.sim.engine import EventQueue, Simulator
from repro.workloads import get_workload

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

WORKLOADS = ("relu", "matrixmultiplication", "fir")
SCHEMES = ("unsecure", "private", "batching")


def _bench_grid(scale: float, seed: int) -> list[SweepJob]:
    return [
        SweepJob(spec=get_workload(name), config=scheme_config(scheme), seed=seed, scale=scale)
        for name in WORKLOADS
        for scheme in SCHEMES
    ]


# ---------------------------------------------------------------------------
# Engine microbenchmark: seed implementation, reproduced verbatim
# ---------------------------------------------------------------------------
@dataclass(order=True)
class _LegacyEvent:
    """The seed repo's Event: rich-comparison dataclass heap entries."""

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class _LegacyEventQueue:
    def __init__(self) -> None:
        self._heap: list[_LegacyEvent] = []
        self._seq = 0

    def push(self, time: int, callback: Callable[[], None]) -> _LegacyEvent:
        event = _LegacyEvent(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> _LegacyEvent | None:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None


def _drive_queue(queue, n_events: int, batch: int = 64) -> None:
    """Interleaved push/pop in batches — the shape of a simulation run."""
    noop = lambda: None  # noqa: E731
    pushed = 0
    t = 0
    while pushed < n_events:
        for _ in range(min(batch, n_events - pushed)):
            t += 3
            queue.push(t, noop)
            pushed += 1
        for _ in range(batch // 2):
            queue.pop()
    while queue.pop() is not None:
        pass


def _drive_simulator(n_events: int) -> None:
    """The no-handle fast path end to end: ``post`` + the real run loop.

    A self-perpetuating callback posts its successor until ``n_events``
    have fired — every event pays one bare-callable heap push and one
    run-loop dispatch, exactly what the devices' hot paths pay.
    """
    sim = Simulator()
    remaining = [n_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.post(3, tick)

    sim.post(0, tick)
    sim.run()


def engine_microbench(n_events: int = 200_000, repeats: int = 3) -> dict:
    """Best-of-N events/sec for the legacy, handle, and no-handle drivers."""

    def best(run) -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            run()
            times.append(time.perf_counter() - start)
        return min(times)

    legacy_s = best(lambda: _drive_queue(_LegacyEventQueue(), n_events))
    handle_s = best(lambda: _drive_queue(EventQueue(), n_events))
    current_s = best(lambda: _drive_simulator(n_events))
    return {
        "n_events": n_events,
        "legacy_events_per_sec": n_events / legacy_s,
        "handle_events_per_sec": n_events / handle_s,
        "current_events_per_sec": n_events / current_s,
        "throughput_ratio": legacy_s / current_s,
    }


# ---------------------------------------------------------------------------
# Sweep benchmark
# ---------------------------------------------------------------------------
def _timed_run(runner: SweepRunner, grid: list[SweepJob]):
    start = time.perf_counter()
    reports = runner.run_jobs(grid)
    elapsed = time.perf_counter() - start
    return reports, elapsed, runner.stats.as_dict()


def sweep_bench(scale: float, seed: int, jobs: int) -> dict:
    grid = _bench_grid(scale, seed)
    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        # cold: fresh trace store — includes one generation per workload,
        # then cross-scheme sharing.  This is the acceptance timing.
        serial, serial_s, serial_stats = _timed_run(
            SweepRunner(jobs=1, trace_store=TraceStore(store_dir)), grid
        )

        # store-warm: a fresh process would load every trace from .npz
        store_warm, store_warm_s, store_warm_stats = _timed_run(
            SweepRunner(jobs=1, trace_store=TraceStore(store_dir)), grid
        )

        # forced parallel: quantifies the pool penalty auto mode avoids
        parallel, parallel_s, parallel_stats = _timed_run(
            SweepRunner(jobs=jobs, mode="parallel", trace_store=TraceStore(store_dir)),
            grid,
        )
        # what auto mode would have chosen for this grid on this host
        auto_mode = SweepRunner(jobs=jobs)._resolve_mode(resolve_jobs(jobs), len(grid))

        cache = ResultCache(cache_dir)
        _timed_run(SweepRunner(jobs=1, cache=cache, trace_store=TraceStore(store_dir)), grid)
        warm_runner = SweepRunner(jobs=1, cache=cache, trace_store=TraceStore(store_dir))
        warm, warm_s, warm_stats = _timed_run(warm_runner, grid)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = all(
        report_to_dict(s) == report_to_dict(sw) == report_to_dict(p) == report_to_dict(w)
        for s, sw, p, w in zip(serial, store_warm, parallel, warm)
    )
    return {
        "grid_cells": len(grid),
        "workloads": list(WORKLOADS),
        "schemes": list(SCHEMES),
        "scale": scale,
        "seed": seed,
        "serial_s": serial_s,
        "serial_stats": serial_stats,
        "store_warm_s": store_warm_s,
        "store_warm_stats": store_warm_stats,
        "parallel_s": parallel_s,
        "parallel_jobs": jobs,
        "parallel_speedup": serial_s / parallel_s if parallel_s else 0.0,
        "parallel_stats": parallel_stats,
        "auto_mode": auto_mode,
        "warm_cache_s": warm_s,
        "warm_cache_speedup": serial_s / warm_s if warm_s else 0.0,
        "warm_cache_hits": warm_stats["cache_hits"],
        "bit_identical": identical,
    }


def main(out_path: Path | None = None) -> dict:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1"))
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
    payload = {
        "bench": "sweep_runtime",
        "cpu_count": os.cpu_count(),
        "sweep": sweep_bench(scale, seed, jobs),
        "engine": engine_microbench(),
    }
    out_path = out_path or RESULTS_DIR / "BENCH_sweep.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    sweep = payload["sweep"]
    engine = payload["engine"]
    st = sweep["serial_stats"]
    print(f"sweep of {sweep['grid_cells']} cells @ scale {sweep['scale']}:")
    print(f"  serial (cold store)  {sweep['serial_s']:.2f}s "
          f"(trace-gen {st['trace_gen_s']:.2f}s, simulate {st['simulate_s']:.2f}s, "
          f"{st['trace_reused']} traces reused)")
    print(f"  serial (warm store)  {sweep['store_warm_s']:.2f}s "
          f"({sweep['store_warm_stats']['trace_store_hits']} store hits)")
    print(f"  parallel x{sweep['parallel_jobs']} (forced) {sweep['parallel_s']:.2f}s "
          f"({sweep['parallel_speedup']:.2f}x, {payload['cpu_count']} cores visible, "
          f"auto mode would pick: {sweep['auto_mode']})")
    print(f"  warm cache           {sweep['warm_cache_s']:.2f}s "
          f"({sweep['warm_cache_speedup']:.1f}x)")
    print(f"  bit-identical        {sweep['bit_identical']}")
    print(f"engine run loop: {engine['current_events_per_sec']:,.0f} ev/s no-handle vs "
          f"{engine['handle_events_per_sec']:,.0f} ev/s handle vs "
          f"{engine['legacy_events_per_sec']:,.0f} ev/s legacy "
          f"({engine['throughput_ratio']:.2f}x over seed)")
    print(f"[written to {out_path}]")
    return payload


def test_sweep_runtime_bench(results_dir):
    payload = main(results_dir / "BENCH_sweep.json")
    sweep = payload["sweep"]
    assert sweep["bit_identical"]
    assert sweep["warm_cache_hits"] == sweep["grid_cells"]
    # warm cache must beat re-simulating by a wide margin
    assert sweep["warm_cache_speedup"] > 5
    # cross-scheme sharing: each workload generates once, the rest reuse
    assert sweep["serial_stats"]["trace_reused"] == sweep["grid_cells"] - len(
        sweep["workloads"]
    )
    # a fresh process loads traces from the store instead of regenerating
    assert sweep["store_warm_stats"]["trace_store_hits"] == len(sweep["workloads"])
    assert sweep["auto_mode"] in ("serial", "parallel")
    # the no-handle run loop must not regress to the seed implementation
    assert payload["engine"]["throughput_ratio"] > 1.0


if __name__ == "__main__":
    main()
