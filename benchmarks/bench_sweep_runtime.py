"""Sweep-execution benchmark: serial vs parallel vs warm cache, plus the
event-engine microbenchmark.

Times a small representative sweep (3 workloads x 3 schemes) through each
execution path of :class:`repro.runner.SweepRunner` and the raw push/pop
throughput of the tuple-heap :class:`~repro.sim.engine.EventQueue` against
the seed implementation (an ``order=True`` dataclass heap), then writes the
numbers to ``results/BENCH_sweep.json`` so future PRs have a perf
trajectory to compare against.

Standalone:    PYTHONPATH=src python benchmarks/bench_sweep_runtime.py
Under pytest:  PYTHONPATH=src python -m pytest benchmarks/bench_sweep_runtime.py -q

``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` shrink or pin the workloads;
``REPRO_BENCH_JOBS`` sets the parallel worker count (default 4).
"""

from __future__ import annotations

import heapq
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.configs import scheme_config
from repro.runner import ResultCache, SweepJob, SweepRunner, report_to_dict
from repro.sim.engine import EventQueue
from repro.workloads import get_workload

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

WORKLOADS = ("relu", "matrixmultiplication", "fir")
SCHEMES = ("unsecure", "private", "batching")


def _bench_grid(scale: float, seed: int) -> list[SweepJob]:
    return [
        SweepJob(spec=get_workload(name), config=scheme_config(scheme), seed=seed, scale=scale)
        for name in WORKLOADS
        for scheme in SCHEMES
    ]


# ---------------------------------------------------------------------------
# Engine microbenchmark: seed implementation, reproduced verbatim
# ---------------------------------------------------------------------------
@dataclass(order=True)
class _LegacyEvent:
    """The seed repo's Event: rich-comparison dataclass heap entries."""

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class _LegacyEventQueue:
    def __init__(self) -> None:
        self._heap: list[_LegacyEvent] = []
        self._seq = 0

    def push(self, time: int, callback: Callable[[], None]) -> _LegacyEvent:
        event = _LegacyEvent(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> _LegacyEvent | None:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None


def _drive_queue(queue, n_events: int, batch: int = 64) -> None:
    """Interleaved push/pop in batches — the shape of a simulation run."""
    noop = lambda: None  # noqa: E731
    pushed = 0
    t = 0
    while pushed < n_events:
        for _ in range(min(batch, n_events - pushed)):
            t += 3
            queue.push(t, noop)
            pushed += 1
        for _ in range(batch // 2):
            queue.pop()
    while queue.pop() is not None:
        pass


def engine_microbench(n_events: int = 200_000, repeats: int = 3) -> dict:
    """Best-of-N push/pop throughput for the legacy and current queues."""

    def best(factory) -> float:
        times = []
        for _ in range(repeats):
            queue = factory()
            start = time.perf_counter()
            _drive_queue(queue, n_events)
            times.append(time.perf_counter() - start)
        return min(times)

    legacy_s = best(_LegacyEventQueue)
    current_s = best(EventQueue)
    return {
        "n_events": n_events,
        "legacy_events_per_sec": n_events / legacy_s,
        "current_events_per_sec": n_events / current_s,
        "throughput_ratio": legacy_s / current_s,
    }


# ---------------------------------------------------------------------------
# Sweep benchmark
# ---------------------------------------------------------------------------
def sweep_bench(scale: float, seed: int, jobs: int) -> dict:
    grid = _bench_grid(scale, seed)

    start = time.perf_counter()
    serial = SweepRunner(jobs=1).run_jobs(grid)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = SweepRunner(jobs=jobs).run_jobs(grid)
    parallel_s = time.perf_counter() - start

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache = ResultCache(cache_dir)
        start = time.perf_counter()
        SweepRunner(jobs=1, cache=cache).run_jobs(grid)
        cold_s = time.perf_counter() - start

        warm_runner = SweepRunner(jobs=1, cache=cache)
        start = time.perf_counter()
        warm = warm_runner.run_jobs(grid)
        warm_s = time.perf_counter() - start
        warm_hits = warm_runner.stats.cache_hits
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = all(
        report_to_dict(s) == report_to_dict(p) == report_to_dict(w)
        for s, p, w in zip(serial, parallel, warm)
    )
    return {
        "grid_cells": len(grid),
        "workloads": list(WORKLOADS),
        "schemes": list(SCHEMES),
        "scale": scale,
        "seed": seed,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "parallel_jobs": jobs,
        "parallel_speedup": serial_s / parallel_s if parallel_s else 0.0,
        "cold_cache_s": cold_s,
        "warm_cache_s": warm_s,
        "warm_cache_speedup": serial_s / warm_s if warm_s else 0.0,
        "warm_cache_hits": warm_hits,
        "bit_identical": identical,
    }


def main(out_path: Path | None = None) -> dict:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1"))
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
    payload = {
        "bench": "sweep_runtime",
        "cpu_count": os.cpu_count(),
        "sweep": sweep_bench(scale, seed, jobs),
        "engine": engine_microbench(),
    }
    out_path = out_path or RESULTS_DIR / "BENCH_sweep.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    sweep = payload["sweep"]
    engine = payload["engine"]
    print(f"sweep of {sweep['grid_cells']} cells @ scale {sweep['scale']}:")
    print(f"  serial        {sweep['serial_s']:.2f}s")
    print(f"  parallel x{sweep['parallel_jobs']}   {sweep['parallel_s']:.2f}s "
          f"({sweep['parallel_speedup']:.2f}x, {payload['cpu_count']} cores visible)")
    print(f"  cold cache    {sweep['cold_cache_s']:.2f}s")
    print(f"  warm cache    {sweep['warm_cache_s']:.2f}s ({sweep['warm_cache_speedup']:.1f}x)")
    print(f"  bit-identical {sweep['bit_identical']}")
    print(f"engine push/pop: {engine['current_events_per_sec']:,.0f} ev/s vs "
          f"{engine['legacy_events_per_sec']:,.0f} ev/s legacy "
          f"({engine['throughput_ratio']:.2f}x)")
    print(f"[written to {out_path}]")
    return payload


def test_sweep_runtime_bench(results_dir):
    payload = main(results_dir / "BENCH_sweep.json")
    assert payload["sweep"]["bit_identical"]
    assert payload["sweep"]["warm_cache_hits"] == payload["sweep"]["grid_cells"]
    # warm cache must beat re-simulating by a wide margin
    assert payload["sweep"]["warm_cache_speedup"] > 5
    # the tuple heap must not regress to the seed implementation's speed
    assert payload["engine"]["throughput_ratio"] > 1.0


if __name__ == "__main__":
    main()
