"""Collectives sweep: schemes × NCCL-style collective workloads."""

from repro.experiments import fig_collectives


def test_collectives(benchmark, archive, runner_factory):
    # The dynamic allocator needs interval-level statistics; collective
    # traces floor at scale 0.25 (see fig_collectives.smoke).
    runner = runner_factory(4, min_scale=0.25)
    result = benchmark.pedantic(
        fig_collectives.run, args=(runner,), rounds=1, iterations=1
    )
    archive("fig_collectives", fig_collectives.format_result(result))
    # The collectives contract: the full proposal never prices a collective
    # above the conventional per-message protocol at equal storage.
    assert fig_collectives.assert_batching_wins(result) == len(result.collectives)
    # Batching's reason to exist on this traffic: chunked bursts batch into
    # one MsgMAC + one ACK, reclaiming a large share of the metadata bytes.
    private_traffic = result.geomean_traffic("private")
    batching_traffic = result.geomean_traffic("batching")
    assert batching_traffic < private_traffic - 0.10
