"""Figure 9: Private / Shared / Cached comparison (4 GPUs, OTP 4x)."""

from repro.experiments import fig09_prior_schemes as fig09


def test_fig09_prior_schemes(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(fig09.run, args=(runner,), rounds=1, iterations=1)
    archive("fig09_prior_schemes", fig09.format_result(result))
    private = result.average("private")
    shared = result.average("shared")
    cached = result.average("cached")
    # the paper's headline shape: Shared is far worse than both
    assert shared > private * 1.3
    assert shared > cached * 1.3
    # all secured schemes cost something on average
    assert private > 1.0 and cached > 1.0
