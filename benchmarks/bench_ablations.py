"""Ablation benches on the proposal's design choices (DESIGN.md §7)."""

from repro.configs import default_config
from repro.experiments import ablations


def test_ablation_batch_size(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(
        ablations.batch_size_sweep, args=(runner,), rounds=1, iterations=1
    )
    archive("ablation_batch_size", ablations.format_sweep(result))
    # the best batching size must beat not batching at all
    dynamic_only = ablations._average_slowdown(
        runner, default_config(4, scheme="dynamic")
    )
    assert min(result.averages.values()) <= dynamic_only + 0.01


def test_ablation_interval(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(
        ablations.interval_sweep, args=(runner,), rounds=1, iterations=1
    )
    archive("ablation_interval", ablations.format_sweep(result))
    values = list(result.averages.values())
    assert max(values) - min(values) < 0.5  # T is a mild knob, not a cliff


def test_ablation_ideal_bound(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(ablations.ideal_bound, args=(runner,), rounds=1, iterations=1)
    archive("ablation_ideal_bound", ablations.format_ideal_bound(result))
    ideal = result.average("ideal")
    dynamic = result.average("dynamic")
    ideal_batched = result.average("ideal_batched")
    # unbounded pads upper-bound any buffer-management scheme ...
    assert ideal <= dynamic + 0.01
    # ... and still pay the metadata floor, which batching lowers
    assert ideal_batched <= ideal + 0.01
    assert ideal > 1.0


def test_ablation_extensions(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(
        ablations.extensions_study, args=(runner,), rounds=1, iterations=1
    )
    archive("ablation_extensions", ablations.format_extensions(result))
    _, ours_traffic = result.averages["ours"]
    _, comp_traffic = result.averages["ours+compressed_ctr"]
    _, prot_traffic = result.averages["ours+protect_requests"]
    assert comp_traffic < ours_traffic < prot_traffic


def test_ablation_fabric(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(
        ablations.fabric_sweep, args=(runner,), rounds=1, iterations=1
    )
    archive("ablation_fabric", ablations.format_sweep(result))
    # shared ring segments amplify the security bandwidth tax relative to
    # dedicated point-to-point ports
    assert result.averages["ring"] > result.averages["p2p"] - 0.02


def test_ablation_migration_threshold(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(
        ablations.migration_threshold_sweep, args=(runner,), rounds=1, iterations=1
    )
    archive("ablation_migration_threshold", ablations.format_sweep(result))
    assert all(v > 0.8 for v in result.averages.values())
