"""Figures 13/14: matrix-multiplication communication timelines."""

from repro.experiments import fig13_14_timelines as fig1314


def test_fig13_14_timelines(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(fig1314.run, args=(runner,), rounds=1, iterations=1)
    archive("fig13_14_timelines", fig1314.format_result(result))
    # the run must span several monitoring intervals ...
    assert result.n_buckets >= 3
    # ... and the destination mix must drift over execution (the paper's
    # motivating observation for dynamic buffer allocation)
    assert fig1314.pattern_drift(result) > 0.02
    active = [f for f in result.send_fraction if 0.0 < f < 1.0]
    assert active, "GPU 1 must both send and receive during execution"
