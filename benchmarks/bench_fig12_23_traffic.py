"""Figures 12 and 23: interconnect traffic ratios."""

from repro.experiments import fig12_traffic


def test_fig12_23_traffic(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(fig12_traffic.run, args=(runner,), rounds=1, iterations=1)
    archive("fig12_23_traffic", fig12_traffic.format_result(result))
    private = result.average("private")
    cached = result.average("cached")
    batching = result.average("batching")
    # Fig 12 shape: security metadata inflates traffic substantially
    assert 1.15 < private < 1.6
    # Fig 23 shape: batching reclaims a large share of the metadata bytes
    assert batching < private - 0.10
    assert batching < cached - 0.10
