"""Table I + §IV-D: storage overhead accounting (analytic)."""

from repro.experiments import hw_overhead, table1_storage


def test_table1_storage(benchmark, archive):
    rows = benchmark.pedantic(table1_storage.run, rounds=1, iterations=1)
    archive("table1_storage", table1_storage.format_result(rows))
    # the paper's anchor cells must reproduce exactly
    for (n, m), (kib, otps) in table1_storage.PAPER_VALUES.items():
        row = table1_storage.storage_row(n, m)
        assert abs(row.total_kib - kib) < 0.02
        assert row.total_entries == otps


def test_hw_overhead_accounting(benchmark, archive):
    overheads = benchmark.pedantic(
        lambda: [hw_overhead.compute(4, m) for m in (1, 4, 16)], rounds=1, iterations=1
    )
    archive("hw_overhead", hw_overhead.format_result(overheads))
    base = overheads[0]
    assert base.monitor_counter_bits == 512  # 4 peers x 2 dirs x 64 b
    assert abs(base.msgmac_storage_kib_per_gpu - 2.0) < 1e-9  # 2 KB per GPU
