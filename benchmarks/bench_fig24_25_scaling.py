"""Figures 24/25: 8- and 16-GPU scaling of Private / Cached / Ours."""

from repro.experiments import fig24_25_scaling as scaling


def test_fig24_scaling_8gpus(benchmark, archive, runner_factory):
    runner = runner_factory(8, min_scale=0.5)
    result = benchmark.pedantic(
        scaling.run, args=(8,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    archive("fig24_scaling_8gpus", scaling.format_result(result))
    assert result.average("ours") < result.average("private")
    assert result.average("ours") < result.average("cached")


def test_fig25_scaling_16gpus(benchmark, archive, runner_factory):
    runner = runner_factory(16, min_scale=0.5)
    result = benchmark.pedantic(
        scaling.run, args=(16,), kwargs={"runner": runner}, rounds=1, iterations=1
    )
    archive("fig25_scaling_16gpus", scaling.format_result(result))
    assert result.average("ours") < result.average("private")
    assert result.average("ours") < result.average("cached")
