"""Figure 11: +SecureCommu vs +Traffic cumulative overheads."""

from repro.experiments import fig11_overhead_breakdown as fig11


def test_fig11_overhead_breakdown(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(fig11.run, args=(runner,), rounds=1, iterations=1)
    archive("fig11_overhead_breakdown", fig11.format_result(result))
    latency_only = result.average("secure_commu")
    with_traffic = result.average("traffic")
    # metadata bandwidth adds overhead on top of the crypto latencies
    assert with_traffic > latency_only
    assert latency_only > 1.0
