"""Figure 10: OTP hit/partial/miss distribution of the prior schemes."""

from repro.experiments import fig10_otp_distribution as fig10


def test_fig10_otp_distribution(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(
        fig10.run,
        args=(runner,),
        kwargs={"schemes": ("private", "shared", "cached")},
        rounds=1,
        iterations=1,
    )
    archive("fig10_otp_distribution", fig10.format_result(result))
    private = result.distributions["private"]
    shared = result.distributions["shared"]
    cached = result.distributions["cached"]
    # Shared hides far less of the send-direction latency than Private
    assert shared["send"].hidden < private["send"].hidden
    # Cached's flexible entry allocation hides at least as much as Private
    assert cached["send"].hidden >= private["send"].hidden - 0.05
    for scheme in result.schemes:
        for direction in ("send", "recv"):
            d = result.distributions[scheme][direction]
            assert abs(d.hit + d.partial + d.miss - 1.0) < 1e-6
