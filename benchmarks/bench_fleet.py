"""Fleet scaling benchmark: one sweep through 1/2/4-worker pools.

Times the same sweep (one workload x three schemes x eight seeds ->
eight trace-key work units) three ways:

* **direct** — a local ``SweepRunner(jobs=1)``, the baseline every
  fleet configuration is checked byte-identical against;
* **fleet xN** — a real ``repro-sim fleet coordinator`` subprocess plus
  N ``serve-worker`` subprocesses (N = 1, 2, 4), driven through the
  blocking :class:`~repro.fleet.client.FleetClient`.

Each pool size gets a fresh trace directory so no configuration rides
an earlier one's warm store; the 1-worker wall time therefore brackets
the full distribution overhead (handshake, framing, MACs, merge) and
the 2/4-worker times show what real process-level parallelism buys.

Results land in ``results/BENCH_fleet.json`` so future PRs have a
scaling trajectory to compare against; the CI ``fleet-smoke`` job
uploads it as an artifact.

Standalone:    PYTHONPATH=src python benchmarks/bench_fleet.py
Under pytest:  PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -q

``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` shrink or pin the traces.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.configs import scheme_config
from repro.fleet.client import FleetClient
from repro.runner import SweepJob, SweepRunner
from repro.service.protocol import canonical_report_json
from repro.workloads import get_workload

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = ROOT / "results"

BENCH_KEY = b"fleet-bench-shared-secret"
GPUS = 2
WORKER_COUNTS = (1, 2, 4)
SCHEMES = ("unsecure", "private", "batching")
SEEDS = (1, 2, 3, 4, 5, 6, 7, 8)


def _grid(scale: float, base_seed: int) -> list[SweepJob]:
    return [
        SweepJob(
            spec=get_workload("fir"),
            config=scheme_config(scheme, n_gpus=GPUS),
            seed=base_seed + offset,
            scale=scale,
        )
        for scheme in SCHEMES
        for offset in range(len(SEEDS))
    ]


def _wait_for_port(port_file: Path, deadline_s: float = 30.0) -> int:
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.1)
    raise AssertionError(f"coordinator never wrote its port to {port_file}")


def _child_env(trace_dir: Path) -> dict[str, str]:
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    env["REPRO_TRACE_DIR"] = str(trace_dir)
    env["REPRO_NO_CACHE"] = "1"
    return env


def _fleet_run(grid: list[SweepJob], n_workers: int, workdir: Path) -> tuple[list, float]:
    """Spawn coordinator + N workers, time one sweep, tear down cleanly."""
    key_file = workdir / "fleet.key"
    key_file.write_bytes(BENCH_KEY)
    port_file = workdir / "port"
    env = _child_env(workdir / "traces")
    children: list[subprocess.Popen] = []

    def spawn(*argv: str) -> subprocess.Popen:
        child = subprocess.Popen([sys.executable, "-m", "repro", *argv], env=env)
        children.append(child)
        return child

    try:
        spawn(
            "fleet", "coordinator",
            "--host", "127.0.0.1", "--port", "0",
            "--auth-key-file", str(key_file),
            "--port-file", str(port_file),
        )
        addr = f"127.0.0.1:{_wait_for_port(port_file)}"
        for n in range(n_workers):
            spawn(
                "fleet", "serve-worker",
                "--addr", addr,
                "--auth-key-file", str(key_file),
                "--name", f"bench-worker-{n}",
            )
        with FleetClient(addr, BENCH_KEY, name="bench-client") as client:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(client.status()["workers"]) == n_workers:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError(f"{n_workers} workers never registered")
            start = time.perf_counter()
            reports = client.sweep(grid, timeout_s=600)
            elapsed = time.perf_counter() - start
        # SIGTERM the coordinator; it drains and tells the workers to
        # shut down, so every process must exit 0 on its own.
        children[0].send_signal(signal.SIGTERM)
        for child in children:
            assert child.wait(timeout=30) == 0, "fleet process did not exit cleanly"
        children.clear()
        return reports, elapsed
    finally:
        for child in children:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)


def fleet_bench(scale: float, seed: int) -> dict:
    grid = _grid(scale, seed)

    start = time.perf_counter()
    direct = SweepRunner(jobs=1, cache=None).run_jobs(grid)
    direct_s = time.perf_counter() - start
    expected = [canonical_report_json(report) for report in direct]

    scaling = []
    for n_workers in WORKER_COUNTS:
        workdir = Path(tempfile.mkdtemp(prefix=f"repro-bench-fleet{n_workers}-"))
        try:
            reports, elapsed = _fleet_run(grid, n_workers, workdir)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        scaling.append({
            "workers": n_workers,
            "wall_s": elapsed,
            "speedup_vs_direct": direct_s / elapsed if elapsed else 0.0,
            "byte_identical": [canonical_report_json(r) for r in reports] == expected,
        })

    one_worker_s = scaling[0]["wall_s"]
    for entry in scaling:
        entry["speedup_vs_one_worker"] = (
            one_worker_s / entry["wall_s"] if entry["wall_s"] else 0.0
        )
    return {
        "grid_cells": len(grid),
        "work_units": len(SEEDS),
        "schemes": list(SCHEMES),
        "gpus": GPUS,
        "scale": scale,
        "seed": seed,
        "direct_s": direct_s,
        "scaling": scaling,
    }


def main(out_path: Path | None = None) -> dict:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "1"))
    payload = {
        "bench": "fleet",
        "cpu_count": os.cpu_count(),
        "fleet": fleet_bench(scale, seed),
    }
    out_path = out_path or RESULTS_DIR / "BENCH_fleet.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    bench = payload["fleet"]
    print(f"fleet sweep of {bench['grid_cells']} cells "
          f"({bench['work_units']} units) @ scale {bench['scale']}:")
    print(f"  direct (jobs=1)      {bench['direct_s']:.2f}s")
    for entry in bench["scaling"]:
        print(f"  fleet x{entry['workers']}             {entry['wall_s']:.2f}s "
              f"({entry['speedup_vs_one_worker']:.2f}x vs 1 worker, "
              f"{entry['speedup_vs_direct']:.2f}x vs direct, "
              f"byte-identical {entry['byte_identical']})")
    print(f"[written to {out_path}]")
    return payload


def test_fleet_scaling_bench(results_dir):
    payload = main(results_dir / "BENCH_fleet.json")
    bench = payload["fleet"]
    assert [entry["workers"] for entry in bench["scaling"]] == list(WORKER_COUNTS)
    # Correctness is the hard assertion: every pool size must merge
    # byte-identical to the direct runner.  Wall-clock ratios are
    # recorded for the trajectory but not asserted — CI runners have
    # too few cores to make scaling a stable gate.
    assert all(entry["byte_identical"] for entry in bench["scaling"])
    assert all(entry["wall_s"] > 0 for entry in bench["scaling"])


if __name__ == "__main__":
    main()
