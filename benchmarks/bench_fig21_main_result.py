"""Figure 21: the headline 4-GPU comparison."""

from repro.experiments import fig21_main_result as fig21


def test_fig21_main_result(benchmark, archive, runner_factory):
    # full-size traces: Dynamic's interval adaptation needs the statistics
    runner = runner_factory(4, min_scale=1.0)
    result = benchmark.pedantic(fig21.run, args=(runner,), rounds=1, iterations=1)
    archive("fig21_main_result", fig21.format_result(result))
    p4 = result.average("private_4x")
    p16 = result.average("private_16x")
    cached = result.average("cached_4x")
    dynamic = result.average("dynamic_4x")
    batching = result.average("batching_4x")
    # headline shapes of the paper's evaluation:
    assert batching < dynamic  # metadata batching adds on top of Dynamic
    assert dynamic < p4  # Dynamic beats Private at equal storage
    assert batching < cached + 0.02  # Ours beats/matches Cached
    assert p16 < p4  # more buffers do help
    # Known deviation (EXPERIMENTS.md): the paper's Batching < Private-16x
    # does not reproduce — this substrate underprices metadata bandwidth,
    # leaving Private-16x cheaper than in the paper.
