"""Table IV: workload RPKI classification."""

from repro.configs import scheme_config
from repro.experiments.common import format_table
from repro.workloads import classify_rpki


def test_table4_rpki_classification(benchmark, archive, runner_factory):
    runner = runner_factory(4)

    def measure():
        rows = []
        for spec in runner.workloads:
            report = runner.run(spec, scheme_config("unsecure", n_gpus=4))
            rows.append((spec, report.rpki, classify_rpki(report.rpki)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        "Table IV: measured RPKI per workload (4 GPUs, unsecure)",
        ["workload", "abbr", "suite", "declared", "measured RPKI", "measured class"],
        [
            [s.name, s.abbr, s.suite, s.rpki_class, f"{rpki:.1f}", cls]
            for s, rpki, cls in rows
        ],
    )
    archive("table4_rpki", table)

    by_class = {"high": [], "medium": [], "low": []}
    for spec, rpki, _ in rows:
        by_class[spec.rpki_class].append(rpki)
    # the ordering of the paper's classes must hold in aggregate
    avg = {k: sum(v) / len(v) for k, v in by_class.items()}
    assert avg["high"] > avg["medium"] > avg["low"]
