"""Figures 15/16: data-block burst accumulation histograms."""

from repro.experiments import fig15_16_burstiness as fig1516


def test_fig15_16_burstiness(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(fig1516.run, args=(runner,), rounds=1, iterations=1)
    archive(
        "fig15_16_burstiness",
        fig1516.format_result(result, 16) + "\n\n" + fig1516.format_result(result, 32),
    )
    frac16 = result.fraction_within_160(16)
    frac32 = result.fraction_within_160(32)
    # the paper's observation: communication is bursty — a large share of
    # 16-block groups accumulates within 160 cycles, and 32-block groups
    # take longer than 16-block groups
    assert frac16 > 0.35
    assert frac32 <= frac16
