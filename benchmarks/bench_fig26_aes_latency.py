"""Figure 26: AES-GCM latency sensitivity."""

from repro.experiments import fig26_aes_latency as fig26


def test_fig26_aes_latency(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(fig26.run, args=(runner,), rounds=1, iterations=1)
    archive("fig26_aes_latency", fig26.format_result(result))
    for scheme in fig26.SCHEME_KEYS:
        fast = result.averages[(scheme, 10)]
        slow = result.averages[(scheme, 40)]
        # shrinking the engine latency helps, but only modestly — the
        # bandwidth cost of the metadata persists (the paper's point)
        assert fast <= slow + 0.01
        assert slow - fast < 0.15
    # Ours stays ahead of Private at every latency point
    for lat in result.latencies:
        assert result.averages[("ours", lat)] < result.averages[("private", lat)]
