"""Shared fixtures for the per-figure benchmark targets.

Every benchmark regenerates one paper table/figure: it runs the experiment
harness once (``benchmark.pedantic`` with a single round — the measurement
of interest is the simulated system, not Python's jitter), prints the
paper-style table, and archives it under ``results/``.

``REPRO_BENCH_SCALE`` shrinks the workload traces for quicker runs
(default 0.4); ``REPRO_BENCH_SEED`` pins the workload seed.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def archive(results_dir):
    """Write a figure's text table to results/ and echo it."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _archive


@pytest.fixture()
def runner_factory():
    from repro.experiments.common import ExperimentRunner

    def _make(n_gpus: int = 4, min_scale: float = 0.0) -> ExperimentRunner:
        """Build a runner at the session bench scale.

        ``min_scale`` floors the trace scale for experiments whose claims
        need interval-level statistics (the Dynamic allocator adapts per
        T=1000-cycle interval; traces below ~0.7 scale give it too few
        samples to beat the noise gate).
        """
        scale = max(bench_scale(), min_scale)
        return ExperimentRunner(n_gpus=n_gpus, seed=bench_seed(), scale=scale)

    return _make
