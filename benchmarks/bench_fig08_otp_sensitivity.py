"""Figure 8: Private slowdown vs OTP buffer entries (4 GPUs)."""

from repro.experiments import fig08_otp_sensitivity as fig08


def test_fig08_otp_sensitivity(benchmark, archive, runner_factory):
    runner = runner_factory(4)
    result = benchmark.pedantic(fig08.run, args=(runner,), rounds=1, iterations=1)
    archive("fig08_otp_sensitivity", fig08.format_result(result))
    # shape: more OTP entries monotonically (allowing small noise) reduce
    # the average overhead, with a steep drop from 1x
    averages = [result.average(m) for m in result.multipliers]
    assert averages[0] == max(averages)
    assert averages[-1] <= averages[0] - 0.02
    assert all(avg >= 0.99 for avg in averages)
