"""End-to-end validation: every paper claim must reproduce."""

from repro.validation import check_paper_claims, format_verdicts


def test_paper_claims_reproduce(benchmark, archive, runner_factory):
    # full-size traces: several claims compare configurations only a few
    # percent apart, which small traces blur (see EXPERIMENTS.md)
    runner = runner_factory(4, min_scale=1.0)
    verdicts = benchmark.pedantic(check_paper_claims, args=(runner,), rounds=1, iterations=1)
    archive("claims_validation", format_verdicts(verdicts))
    failed = [v for v in verdicts if not v.passed]
    assert not failed, "\n".join(f"{v.claim.claim_id}: {v.detail}" for v in failed)
