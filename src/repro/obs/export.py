"""Metrics export, import, diff, and schema validation.

Two interchangeable on-disk formats carry a metrics snapshot (the dict
produced by :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, as stored
on ``SimulationReport.metrics``):

* **JSONL** — one ``{"name": ..., "type": ..., ...}`` object per line,
  sorted by metric name, ``sort_keys`` within each line.  Streamable and
  greppable; what ``repro-sim run --metrics`` writes and the CI smoke job
  validates.
* **JSON** — a single ``{"schema": ..., "meta": ..., "metrics": ...}``
  document for consumers that want the whole table at once.

Both renderings are byte-deterministic functions of the snapshot dict, so
a cache-hit replay of a sweep cell exports the identical file a live run
would have — the determinism contract the sweep tests pin down.

:func:`validate_metrics` is the drift lint: every name must parse, sit in
a known namespace, and carry a payload whose shape matches its declared
type.  ``repro-sim metrics check`` (the CI entry point) fails on the first
file with any violation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import KNOWN_NAMESPACES, METRIC_TYPES, _NAME_RE

#: Bump when the export layout changes.
EXPORT_SCHEMA = 1


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------
def metrics_to_jsonl(metrics: dict[str, dict]) -> str:
    """Render a snapshot as deterministic JSON-lines text."""
    lines = [
        json.dumps({"name": name, **metrics[name]}, sort_keys=True)
        for name in sorted(metrics)
    ]
    return "".join(line + "\n" for line in lines)


def write_metrics_jsonl(metrics: dict[str, dict], path: str | Path) -> int:
    """Write the JSONL rendering; returns the metric count."""
    Path(path).write_text(metrics_to_jsonl(metrics))
    return len(metrics)


def write_metrics_json(
    metrics: dict[str, dict], path: str | Path, meta: dict | None = None
) -> int:
    """Write the single-document JSON rendering; returns the metric count."""
    document = {
        "schema": EXPORT_SCHEMA,
        "meta": meta or {},
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }
    Path(path).write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
    return len(metrics)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------
def read_metrics(path: str | Path) -> dict[str, dict]:
    """Load either export format back into a snapshot dict.

    A document starting with ``{`` and parsing as one object is the JSON
    format; anything else is treated as JSONL.
    """
    path = Path(path)
    text = path.read_text()
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "metrics" in document:
        if document.get("schema") != EXPORT_SCHEMA:
            raise ValueError(f"{path}: unsupported metrics schema {document.get('schema')!r}")
        return dict(document["metrics"])
    metrics: dict[str, dict] = {}
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
            name = entry.pop("name")
        except (json.JSONDecodeError, KeyError, TypeError, AttributeError) as exc:
            raise ValueError(f"{path}:{line_no}: malformed metrics line") from exc
        metrics[name] = entry
    return metrics


# ---------------------------------------------------------------------------
# Validation (the namespace-drift lint)
# ---------------------------------------------------------------------------
def _payload_errors(name: str, payload: dict) -> list[str]:
    kind = payload.get("type")
    if kind not in METRIC_TYPES:
        return [f"{name}: unknown metric type {kind!r}"]
    errors = []
    if kind in ("counter", "gauge"):
        if not isinstance(payload.get("value"), (int, float)) or isinstance(
            payload.get("value"), bool
        ):
            errors.append(f"{name}: {kind} value must be a number")
    elif kind == "histogram":
        edges, counts = payload.get("edges"), payload.get("counts")
        if not isinstance(edges, list) or not isinstance(counts, list):
            errors.append(f"{name}: histogram needs list edges and counts")
        elif len(counts) != len(edges) + 1:
            errors.append(f"{name}: histogram needs len(edges)+1 counts")
        elif payload.get("total") != sum(counts):
            errors.append(f"{name}: histogram total does not equal the count sum")
    elif kind == "ratio":
        counts = payload.get("counts")
        if not isinstance(counts, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
            for k, v in counts.items()
        ):
            errors.append(f"{name}: ratio counts must map category -> int")
    elif kind == "series":
        interval = payload.get("interval")
        channels = payload.get("channels")
        if not isinstance(interval, int) or interval <= 0:
            errors.append(f"{name}: series interval must be a positive int")
        if not isinstance(channels, dict) or not all(
            isinstance(buckets, dict) for buckets in channels.values()
        ):
            errors.append(f"{name}: series channels must map name -> bucket dict")
    return errors


def validate_metrics(metrics: dict[str, dict]) -> list[str]:
    """Return every schema/namespace violation (empty list = clean)."""
    errors: list[str] = []
    for name, payload in metrics.items():
        if not isinstance(name, str) or not _NAME_RE.match(name):
            errors.append(f"{name!r}: malformed metric name")
            continue
        namespace = name.split(".", 1)[0]
        if namespace not in KNOWN_NAMESPACES:
            errors.append(f"{name}: unknown namespace {namespace!r}")
            continue
        if not isinstance(payload, dict):
            errors.append(f"{name}: payload must be an object")
            continue
        errors.extend(_payload_errors(name, payload))
    return errors


def validate_metrics_file(path: str | Path) -> list[str]:
    """Read and validate one export; parse failures are returned, not raised."""
    try:
        metrics = read_metrics(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    return validate_metrics(metrics)


# ---------------------------------------------------------------------------
# Diff
# ---------------------------------------------------------------------------
def diff_metrics(a: dict[str, dict], b: dict[str, dict]) -> list[str]:
    """Human-readable differences between two snapshots (empty = identical)."""
    differences: list[str] = []
    for name in sorted(set(a) | set(b)):
        if name not in a:
            differences.append(f"+ {name}: only in second")
        elif name not in b:
            differences.append(f"- {name}: only in first")
        elif a[name] != b[name]:
            differences.append(f"~ {name}: {_summarize(a[name])} -> {_summarize(b[name])}")
    return differences


def _summarize(payload: dict) -> str:
    kind = payload.get("type")
    if kind in ("counter", "gauge"):
        return str(payload.get("value"))
    if kind == "histogram":
        return f"hist(total={payload.get('total')}, counts={payload.get('counts')})"
    if kind == "ratio":
        return f"ratio({payload.get('counts')})"
    if kind == "series":
        channels = payload.get("channels") or {}
        return f"series({len(channels)} channels)"
    return repr(payload)


__all__ = [
    "EXPORT_SCHEMA",
    "diff_metrics",
    "metrics_to_jsonl",
    "read_metrics",
    "validate_metrics",
    "validate_metrics_file",
    "write_metrics_json",
    "write_metrics_jsonl",
]
