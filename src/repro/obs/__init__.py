"""Unified observability layer: metrics registry, run telemetry, exports.

See ``docs/OBSERVABILITY.md`` for the metric namespace table, the export
formats, and the determinism contract (serial / parallel / cache-hit
replays of a sweep cell export byte-identical metrics files).
"""

from repro.obs.export import (
    EXPORT_SCHEMA,
    diff_metrics,
    metrics_to_jsonl,
    read_metrics,
    validate_metrics,
    validate_metrics_file,
    write_metrics_json,
    write_metrics_jsonl,
)
from repro.obs.metrics import (
    KNOWN_NAMESPACES,
    METRIC_TYPES,
    MetricsRegistry,
    encode_metric,
    validate_name,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "EXPORT_SCHEMA",
    "KNOWN_NAMESPACES",
    "METRIC_TYPES",
    "MetricsRegistry",
    "Telemetry",
    "diff_metrics",
    "encode_metric",
    "metrics_to_jsonl",
    "read_metrics",
    "validate_metrics",
    "validate_metrics_file",
    "validate_name",
    "write_metrics_json",
    "write_metrics_jsonl",
]
