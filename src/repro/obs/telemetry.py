"""Run-scoped telemetry: one metrics registry plus profiling hooks.

A :class:`Telemetry` object travels with one simulation run —
:class:`~repro.system.MultiGpuSystem` creates one (or accepts one from the
caller, as :func:`repro.runner.jobs.execute_job` does) and threads it
through the transport so every layer records into the same namespace.  At
report time the system snapshots the registry onto
``SimulationReport.metrics``, which is what the result cache and the
process-pool boundary round-trip.

Two kinds of measurement live here and they are deliberately separated:

* **metrics** — deterministic quantities (counters, gauges, histograms,
  ratio stats, interval series).  These are a pure function of the job
  description, so serial, parallel, and cache-hit replays of the same cell
  export byte-identical metrics files.
* **profile** — wall-clock phase timings from :meth:`Telemetry.phase`.
  Wall-clock is inherently non-deterministic, so it never enters the
  metrics snapshot or the cache; read it via :meth:`profile_snapshot`
  in the process that did the work.

The profiling hook is a context manager around a pair of
``perf_counter`` calls — overhead is tens of nanoseconds per phase entry,
negligible against the milliseconds-to-minutes phases it brackets (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

from repro.obs.metrics import MetricsRegistry
from repro.sim.stats import Counter, Gauge, Histogram, IntervalSeries, RatioStat


class Telemetry:
    """Metrics registry + wall-clock phase profile for one run."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        # phase name -> [entry count, cumulative seconds]
        self._phases: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Metric accessors (delegate to the registry)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str, edges: list[int | float]) -> Histogram:
        return self.metrics.histogram(name, edges)

    def series(self, name: str, interval: int) -> IntervalSeries:
        return self.metrics.series(name, interval)

    def ratio(self, name: str) -> RatioStat:
        return self.metrics.ratio(name)

    def register(self, name: str, stat: object) -> None:
        self.metrics.register(name, stat)

    # ------------------------------------------------------------------
    # Profiling hooks
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Accumulate wall-clock time for ``name`` around the enclosed block."""
        start = perf_counter()
        try:
            yield self
        finally:
            entry = self._phases.setdefault(name, [0, 0.0])
            entry[0] += 1
            entry[1] += perf_counter() - start

    def phase_seconds(self, name: str) -> float:
        """Cumulative wall-clock seconds recorded for ``name`` (0.0 if never)."""
        entry = self._phases.get(name)
        return entry[1] if entry else 0.0

    def profile_snapshot(self) -> dict:
        """Wall-clock phase table — NOT part of the deterministic metrics."""
        return {
            "phases": {
                name: {"calls": self._phases[name][0], "seconds": self._phases[name][1]}
                for name in sorted(self._phases)
            }
        }

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """The deterministic metrics table (see :meth:`MetricsRegistry.snapshot`)."""
        return self.metrics.snapshot()


__all__ = ["Telemetry"]
