"""Process-wide metrics facade over the :mod:`repro.sim.stats` primitives.

The paper's claims are measurement claims — OTP hit ratios, metadata bytes
per link, burst-accumulation distributions — and before this module every
component kept its counters in a private :class:`~repro.sim.stats.
StatsRegistry` island.  :class:`MetricsRegistry` is the shared namespace
those primitives register into: every metric has a dotted name whose first
segment is a known namespace (``otp.send``, ``meta.bytes``,
``fault.retransmit``, …), so exports can be validated against drift and
figure scripts read one flat table instead of reaching into component
internals.

The registry stores the *same* primitive objects the components update —
:class:`~repro.sim.stats.Counter`, :class:`~repro.sim.stats.Gauge`,
:class:`~repro.sim.stats.Histogram`, :class:`~repro.sim.stats.
IntervalSeries`, :class:`~repro.sim.stats.RatioStat` — and
:meth:`MetricsRegistry.snapshot` renders them to a deterministic JSON-safe
dict (sorted names, typed payloads) that round-trips losslessly through
the result cache and the process-pool boundary.
"""

from __future__ import annotations

import re

from repro.sim.stats import Counter, Gauge, Histogram, IntervalSeries, RatioStat

#: Every legal first segment of a metric name.  ``repro-sim metrics check``
#: fails on anything else, which keeps the namespace from drifting as new
#: components grow counters.
KNOWN_NAMESPACES = frozenset(
    {
        "run",      # whole-run outcomes: cycles, events, remote requests
        "traffic",  # bytes on the fabric (total / base)
        "meta",     # security-metadata bytes
        "msg",      # message counts on the transport
        "ack",      # replay-protection ACK traffic
        "batch",    # metadata-batching activity
        "otp",      # pad hit/partial/miss decompositions
        "alloc",    # dynamic-allocator adjustment activity
        "burst",    # data-block burst-accumulation histograms
        "fault",    # injected faults and recovery events
        "adv",      # adversarial attacks, detections, and quarantines
        "engine",   # event-engine push/pop/cancel profile
        "cache",    # sweep-runner cache activity
        "trace",    # trace-store reuse (runner-side; never in a report)
        "service",  # simulation-service scheduler (server-side; never in a report)
        "fleet",    # fleet coordinator/worker activity (control-plane; never in a report)
        "profile",  # reserved for wall-clock phase profiling
    }
)

#: Dotted lowercase names: ``namespace.part`` or deeper (``otp.send.hit``).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Snapshot payload types, keyed by primitive class.
METRIC_TYPES = ("counter", "gauge", "histogram", "ratio", "series")


def validate_name(name: str) -> None:
    """Raise ``ValueError`` unless ``name`` is a well-formed known metric name."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be dotted lowercase (namespace.metric)"
        )
    namespace = name.split(".", 1)[0]
    if namespace not in KNOWN_NAMESPACES:
        raise ValueError(
            f"metric {name!r} uses unknown namespace {namespace!r}; "
            f"known: {', '.join(sorted(KNOWN_NAMESPACES))}"
        )


def encode_metric(stat: object) -> dict:
    """Render one primitive to its typed JSON-safe snapshot payload."""
    if isinstance(stat, Counter):
        return {"type": "counter", "value": stat.value}
    if isinstance(stat, Gauge):
        return {"type": "gauge", "value": stat.value}
    if isinstance(stat, Histogram):
        return {
            "type": "histogram",
            "edges": list(stat.edges),
            "counts": list(stat.counts),
            "total": stat.total,
            "sum": stat._sum,
        }
    if isinstance(stat, RatioStat):
        return {"type": "ratio", "counts": {k: stat.counts[k] for k in sorted(stat.counts)}}
    if isinstance(stat, IntervalSeries):
        return {
            "type": "series",
            "interval": stat.interval,
            "channels": {
                chan: {str(bucket): stat._channels[chan][bucket] for bucket in sorted(stat._channels[chan])}
                for chan in sorted(stat._channels)
            },
        }
    raise TypeError(f"unsupported metric primitive {type(stat).__name__}")


class MetricsRegistry:
    """A flat, validated namespace of metric primitives.

    ``counter``/``gauge``/``histogram``/``series``/``ratio`` are
    get-or-create: the first call under a name builds the primitive, later
    calls return the same object, and a call under a name already holding a
    *different* primitive type raises.  :meth:`register` adopts an existing
    component-owned primitive (e.g. the transport's burst histograms) so
    one object serves both the component and the export.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: list[int | float]) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, edges))

    def series(self, name: str, interval: int) -> IntervalSeries:
        return self._get_or_create(name, IntervalSeries, lambda: IntervalSeries(name, interval))

    def ratio(self, name: str) -> RatioStat:
        return self._get_or_create(name, RatioStat, lambda: RatioStat(name))

    def _get_or_create(self, name: str, cls: type, factory):
        stat = self._metrics.get(name)
        if stat is None:
            validate_name(name)
            stat = factory()
            self._metrics[name] = stat
        elif not isinstance(stat, cls):
            raise TypeError(
                f"metric {name!r} is a {type(stat).__name__}, not a {cls.__name__}"
            )
        return stat

    # ------------------------------------------------------------------
    # Adoption and introspection
    # ------------------------------------------------------------------
    def register(self, name: str, stat: object) -> None:
        """Adopt an existing primitive under ``name``.

        Re-registering the same object is a no-op; a different object under
        an occupied name raises (two components must not silently share a
        metric they both believe they own).
        """
        existing = self._metrics.get(name)
        if existing is stat:
            return
        if existing is not None:
            raise ValueError(f"metric {name!r} is already registered")
        validate_name(name)
        encode_metric(stat)  # raises TypeError on unsupported primitives
        self._metrics[name] = stat

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Deterministic JSON-safe rendering of every metric, sorted by name."""
        return {name: encode_metric(self._metrics[name]) for name in sorted(self._metrics)}


__all__ = [
    "KNOWN_NAMESPACES",
    "METRIC_TYPES",
    "MetricsRegistry",
    "encode_metric",
    "validate_name",
]
