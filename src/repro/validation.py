"""Machine-checkable validation of the paper's claims.

Each :class:`Claim` binds a quotable statement from the paper to a
predicate over simulation results.  :func:`check_paper_claims` evaluates
the whole list on a shared :class:`~repro.experiments.common.ExperimentRunner`
and returns structured verdicts — the executable core of EXPERIMENTS.md.

Claims are *shape* claims (orderings, directions, rough factors), not
absolute-number claims: the substrate is a different simulator than the
paper's (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.configs import default_config, scheme_config
from repro.experiments.common import ExperimentRunner, geometric_mean


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the paper."""

    claim_id: str
    source: str  # paper section/figure
    statement: str
    check: Callable[[dict], bool]
    detail: Callable[[dict], str]


@dataclass(frozen=True)
class Verdict:
    claim: Claim
    passed: bool
    detail: str


def _measurements(runner: ExperimentRunner) -> dict:
    """Run the configurations the claims inspect and aggregate averages."""
    n = runner.n_gpus
    configs = {
        "private_4x": scheme_config("private", n_gpus=n, otp_multiplier=4),
        "private_16x": scheme_config("private", n_gpus=n, otp_multiplier=16),
        "shared": scheme_config("shared", n_gpus=n),
        "cached": scheme_config("cached", n_gpus=n),
        "dynamic": scheme_config("dynamic", n_gpus=n),
        "batching": default_config(n, scheme="dynamic", batching=True),
        "secure_commu": default_config(n, scheme="private", count_metadata=False),
    }
    sweep = runner.sweep(configs)
    out: dict = {"n_workloads": len(sweep)}
    for key in configs:
        out[f"slowdown:{key}"] = geometric_mean([wl.slowdown(key) for wl in sweep])
        out[f"traffic:{key}"] = geometric_mean([wl.traffic_ratio(key) for wl in sweep])
    # burstiness from the unsecure baselines
    within160 = []
    for wl in sweep:
        fracs = wl.baseline.burst16_fractions
        if fracs and sum(fracs) > 0:
            within160.append(fracs[0] + fracs[1])
    out["burst16_within_160"] = sum(within160) / len(within160) if within160 else 0.0
    # OTP hiding for private
    out["private_send_hidden"] = geometric_mean(
        [max(wl.by_config["private_4x"].otp_send.hidden, 1e-6) for wl in sweep]
    )
    # full-hit fractions (Fig 22's emphasized metric), arithmetic mean since
    # zero hits are legitimate for idle directions
    for key in ("private_4x", "batching"):
        hits = [wl.by_config[key].otp_send.hit for wl in sweep]
        out[f"send_hit:{key}"] = sum(hits) / len(hits)
    return out


def paper_claims() -> list[Claim]:
    return [
        Claim(
            "shared-worst",
            "Fig. 9",
            "Shared degrades performance far more than Private and Cached "
            "(paper: 166.3% vs 19.5%/16.3%)",
            lambda m: m["slowdown:shared"] > m["slowdown:private_4x"] * 1.3
            and m["slowdown:shared"] > m["slowdown:cached"] * 1.3,
            lambda m: f"shared {m['slowdown:shared']:.3f} vs private "
            f"{m['slowdown:private_4x']:.3f}, cached {m['slowdown:cached']:.3f}",
        ),
        Claim(
            "metadata-traffic",
            "Fig. 12",
            "Security metadata adds substantial interconnect traffic "
            "(paper: +36.5% on average)",
            lambda m: 1.15 < m["traffic:private_4x"] < 1.6,
            lambda m: f"traffic amplification {m['traffic:private_4x']:.3f}",
        ),
        Claim(
            "traffic-slowdown-split",
            "Fig. 11",
            "Metadata bandwidth adds overhead beyond authenticated "
            "encryption alone (paper: 8.2% -> 19.5%)",
            lambda m: m["slowdown:private_4x"] > m["slowdown:secure_commu"],
            lambda m: f"+SecureCommu {m['slowdown:secure_commu']:.3f} -> "
            f"+Traffic {m['slowdown:private_4x']:.3f}",
        ),
        Claim(
            "bursty-communication",
            "Fig. 15",
            "16-block groups mostly accumulate within 160 cycles "
            "(paper: 69.2% on average)",
            lambda m: m["burst16_within_160"] > 0.4,
            lambda m: f"within 160 cycles: {m['burst16_within_160']:.1%}",
        ),
        Claim(
            "dynamic-beats-private",
            "Fig. 21",
            "Dynamic OTP allocation outperforms Private at equal storage "
            "(paper: 14.7% vs 19.5% overhead)",
            lambda m: m["slowdown:dynamic"] < m["slowdown:private_4x"],
            lambda m: f"dynamic {m['slowdown:dynamic']:.3f} vs private "
            f"{m['slowdown:private_4x']:.3f}",
        ),
        Claim(
            "batching-beats-dynamic",
            "Fig. 21",
            "Metadata batching further improves on Dynamic "
            "(paper: 7.9% vs 14.7% overhead)",
            lambda m: m["slowdown:batching"] < m["slowdown:dynamic"],
            lambda m: f"batching {m['slowdown:batching']:.3f} vs dynamic "
            f"{m['slowdown:dynamic']:.3f}",
        ),
        Claim(
            "more-buffers-help",
            "Fig. 8 / Fig. 21",
            "Scaling the OTP buffers from 4x to 16x reduces Private's "
            "degradation (paper: 19.5% -> 14.0%); the paper's stronger "
            "claim that Ours still beats Private-16x does NOT reproduce "
            "here (documented deviation: metadata bandwidth is underpriced "
            "by this substrate)",
            lambda m: m["slowdown:private_16x"] < m["slowdown:private_4x"],
            lambda m: f"private16x {m['slowdown:private_16x']:.3f} vs private4x "
            f"{m['slowdown:private_4x']:.3f} (batching {m['slowdown:batching']:.3f})",
        ),
        Claim(
            "batching-cuts-traffic",
            "Fig. 23",
            "Batching removes a large share of the secured traffic "
            "(paper: -20.2% vs Private)",
            lambda m: m["traffic:batching"] < m["traffic:private_4x"] - 0.08,
            lambda m: f"batching traffic {m['traffic:batching']:.3f} vs private "
            f"{m['traffic:private_4x']:.3f}",
        ),
        Claim(
            "ours-raises-full-hits",
            "Fig. 22",
            "Ours increases the fully-hidden (OTP_Hit) fraction over Private "
            "by reallocating buffers to the hot pairs (paper: +31.9 pp send)",
            lambda m: m["send_hit:batching"] > m["send_hit:private_4x"] + 0.02,
            lambda m: f"ours send OTP_Hit {m['send_hit:batching']:.1%} vs private "
            f"{m['send_hit:private_4x']:.1%}",
        ),
        Claim(
            "private-hides-partially",
            "Fig. 10",
            "Private pre-generation hides a meaningful share of AES latency",
            lambda m: m["private_send_hidden"] > 0.3,
            lambda m: f"send-side hidden fraction {m['private_send_hidden']:.1%}",
        ),
    ]


def check_paper_claims(runner: ExperimentRunner | None = None) -> list[Verdict]:
    """Evaluate every claim; returns verdicts in declaration order."""
    runner = runner or ExperimentRunner()
    measurements = _measurements(runner)
    verdicts = []
    for claim in paper_claims():
        try:
            passed = bool(claim.check(measurements))
            detail = claim.detail(measurements)
        except Exception as exc:  # a broken metric is a failed claim
            passed, detail = False, f"evaluation error: {exc}"
        verdicts.append(Verdict(claim=claim, passed=passed, detail=detail))
    return verdicts


def format_verdicts(verdicts: list[Verdict]) -> str:
    lines = ["Paper-claim validation", "======================"]
    for v in verdicts:
        mark = "PASS" if v.passed else "FAIL"
        lines.append(f"[{mark}] {v.claim.claim_id} ({v.claim.source}): {v.detail}")
    passed = sum(v.passed for v in verdicts)
    lines.append(f"-- {passed}/{len(verdicts)} claims reproduced")
    return "\n".join(lines)


__all__ = ["Claim", "Verdict", "paper_claims", "check_paper_claims", "format_verdicts"]
