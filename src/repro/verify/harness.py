"""The conformance harness: matrices, fan-out, oracle dispatch, shrinking.

``repro-sim verify`` runs one of two matrices through every oracle family:

* ``--quick`` — three representative workloads (regular, irregular, and a
  ring collective) across all seven schemes at a small scale, plus a small
  metamorphic set.  Minutes; this is the CI smoke gate.
* ``--full`` — the whole Table IV suite plus every collective across all
  schemes at the paper's sweep scale, metamorphic checks over the quick
  workloads, dormant-config variants, and a second-seed stability pass.

The plain-cell matrix fans out through :class:`~repro.runner.SweepRunner`
(trace sharing, caching, worker processes all apply); metamorphic
perturbations run through :func:`~repro.runner.jobs.execute_job` directly,
because the sweep cache would collapse a perturbed cell back onto its
plain key.  Every violation is then handed to the shrinker and written as
a replayable JSON artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.workloads import all_collectives, all_workloads

from repro.verify import analytic, differential, metamorphic
from repro.verify.shrinker import UNSHRINKABLE, shrink
from repro.verify.violations import CellRef, Violation

#: every scheme, baseline first (mirrors the CLI's SCHEMES tuple)
ALL_SCHEMES = ("unsecure", "ideal", "private", "shared", "cached", "dynamic", "batching")

#: quick-matrix workloads: one regular kernel, one irregular, one collective
QUICK_WORKLOADS = ("fir", "matrixtranspose", "allreduce_ring")
QUICK_SCALE = 0.25
FULL_SCALE = 0.5

#: workloads carrying the metamorphic set (relabel / dormant / batch_size=1)
METAMORPHIC_WORKLOADS = QUICK_WORKLOADS

#: second seed for the --full stability pass
STABILITY_SEED_OFFSET = 1

DEFAULT_ARTIFACT_DIR = Path("results") / "verify"


@dataclass
class VerifyResult:
    """Outcome of one harness run."""

    mode: str
    cells: int = 0
    checks: int = 0
    violations: list[Violation] = field(default_factory=list)
    artifacts: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def matrix_cells(mode: str, *, n_gpus: int, seed: int, scale: float | None = None) -> list[CellRef]:
    """The plain-cell matrix for one mode."""
    if mode == "quick":
        names = list(QUICK_WORKLOADS)
        scale = QUICK_SCALE if scale is None else scale
    elif mode == "full":
        names = [s.name for s in all_workloads()] + [s.name for s in all_collectives()]
        scale = FULL_SCALE if scale is None else scale
    else:
        raise ValueError(f"unknown verify mode {mode!r}")
    return [
        CellRef(workload=w, scheme=s, n_gpus=n_gpus, seed=seed, scale=scale)
        for w in names
        for s in ALL_SCHEMES
    ]


def _run_matrix(runner, cells: list[CellRef]):
    reports = runner.run_jobs([cell.job() for cell in cells])
    return dict(zip(cells, reports))


def _group(results: dict[CellRef, object]):
    """Group a matrix by (workload, gpus, seed, scale) into scheme dicts."""
    groups: dict[tuple, tuple[dict, dict]] = {}
    for cell, report in results.items():
        key = (cell.workload, cell.n_gpus, cell.seed, cell.scale, cell.variant)
        cells_by, reports_by = groups.setdefault(key, ({}, {}))
        cells_by[cell.scheme] = cell
        reports_by[cell.scheme] = report
    return groups


def _geomeans(groups) -> dict[str, float]:
    """Fleet geomean slowdown per chain scheme over complete groups."""
    logs: dict[str, list[float]] = {s: [] for s in differential.GEOMEAN_CHAIN}
    for _cells, reports in groups:
        base = reports.get("unsecure")
        if base is None or any(s not in reports for s in differential.GEOMEAN_CHAIN):
            continue
        for s in differential.GEOMEAN_CHAIN:
            logs[s].append(math.log(reports[s].slowdown_vs(base)))
    return {
        s: math.exp(sum(v) / len(v)) for s, v in logs.items() if v
    }


def run_verify(
    mode: str = "quick",
    *,
    n_gpus: int = 4,
    seed: int = 1,
    runner=None,
    do_shrink: bool = True,
    artifact_dir: str | Path = DEFAULT_ARTIFACT_DIR,
    log=print,
) -> VerifyResult:
    """Run the harness end to end; returns the violations and artifacts."""
    if runner is None:
        from repro.runner import SweepRunner

        runner = SweepRunner()
    result = VerifyResult(mode=mode)

    cells = matrix_cells(mode, n_gpus=n_gpus, seed=seed)
    log(f"verify[{mode}]: running {len(cells)} plain cells")
    results = _run_matrix(runner, cells)
    result.cells = len(results)
    trace_store = runner.trace_store

    # -- analytic ----------------------------------------------------------
    for cell, report in results.items():
        result.violations += analytic.check_report(cell, report)
        result.checks += 1
    for cell in cells:
        if cell.scheme != "unsecure" or cell.workload not in analytic.RING_WORKLOADS:
            continue
        job = cell.job()
        trace, _ = trace_store.get_or_generate(
            job.spec, cell.n_gpus, cell.seed, cell.scale, job.n_lanes
        )
        result.violations += analytic.check_collective_trace(cell, trace)
        result.checks += 1

    # -- differential ------------------------------------------------------
    groups = _group(results)
    for cells_by, reports_by in groups.values():
        result.violations += differential.check_group(cells_by, reports_by)
        result.checks += 1
    result.violations += differential.check_geomean_chain(list(groups.values()))
    result.checks += 1

    # -- metamorphic -------------------------------------------------------
    meta_schemes = (
        ("ideal", "private", "dynamic", "batching")
        if mode == "quick"
        else ALL_SCHEMES
    )
    meta_cells = [
        c for c in cells
        if c.workload in METAMORPHIC_WORKLOADS and c.scheme in meta_schemes
    ]
    log(f"verify[{mode}]: metamorphic perturbations on {len(meta_cells)} cells")
    for cell in meta_cells:
        job = cell.job()
        trace, _ = trace_store.get_or_generate(
            job.spec, cell.n_gpus, cell.seed, cell.scale, job.n_lanes
        )
        result.violations += metamorphic.check_relabel(cell, trace, results[cell])
        result.checks += 1
        if cell.scheme == "dynamic":
            result.violations += metamorphic.check_batch_size_one(cell, trace)
            result.checks += 1
        if cell.scheme in ("dynamic", "batching") or mode == "full":
            result.violations += metamorphic.check_dormant(cell, trace, results[cell])
            result.checks += 1

    # -- seed stability (full mode only: one extra quick-size matrix) ------
    if mode == "full":
        seed2 = seed + STABILITY_SEED_OFFSET
        stability_cells = {
            s: matrix_cells("quick", n_gpus=n_gpus, seed=s) for s in (seed, seed2)
        }
        log(f"verify[{mode}]: seed-stability pass at seeds {seed} and {seed2}")
        geomeans = {}
        for s, cset in stability_cells.items():
            sres = _run_matrix(runner, cset)
            geomeans[s] = _geomeans(list(_group(sres).values()))
        result.violations += metamorphic.check_seed_stability(geomeans)
        result.checks += 1

    # -- shrink + artifacts ------------------------------------------------
    if result.violations and do_shrink:
        artifact_dir = Path(artifact_dir)
        for i, violation in enumerate(result.violations):
            log(f"shrinking violation {i + 1}/{len(result.violations)}: {violation.oracle}")
            artifact = shrink(violation, trace_store=trace_store)
            path = artifact.save(artifact_dir / f"violation-{i:03d}.json")
            result.artifacts.append(path)

    return result


def format_result(result: VerifyResult) -> str:
    lines = [
        f"verify[{result.mode}]: {result.cells} cells, "
        f"{result.checks} checks, {len(result.violations)} violation(s)"
    ]
    for violation in result.violations:
        lines.append("")
        lines.append(violation.describe())
        if violation.oracle in UNSHRINKABLE:
            lines.append("  (fleet-level law: artifact reported unshrunk)")
    for path in result.artifacts:
        lines.append(f"repro artifact: {path}")
    if result.ok:
        lines.append("all conformance laws hold")
    return "\n".join(lines)


__all__ = [
    "ALL_SCHEMES",
    "QUICK_WORKLOADS",
    "VerifyResult",
    "matrix_cells",
    "run_verify",
    "format_result",
]
