"""Conformance-harness value types: cells, violations, repro artifacts.

A :class:`CellRef` names one sweep cell — ``(workload, scheme, n_gpus,
seed, scale, variant)`` — in a JSON-round-trippable form, so a failing
configuration can be written to disk and replayed byte-identically later
(``repro-sim verify --replay``).  A :class:`Violation` records one broken
law: which oracle flagged it, the law it checked, the cells involved, and
the observed/expected values.  A :class:`ReproArtifact` is the minimized,
replayable JSON the shrinker emits on failure.

The laws themselves live in :mod:`repro.verify.analytic`,
:mod:`repro.verify.differential`, and :mod:`repro.verify.metamorphic`;
see ``docs/VERIFICATION.md`` for the full catalogue with paper formula
references.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.configs import SystemConfig, scheme_config
from repro.runner import SweepJob
from repro.workloads import get_workload

ARTIFACT_SCHEMA = 1

#: cell variants: a dormant section carries non-rate field overrides that
#: must not change a single byte of the result (metamorphic oracle D)
VARIANTS = ("plain", "dormant_fault", "dormant_adversary")


@dataclass(frozen=True)
class CellRef:
    """One sweep cell, addressable and JSON-serializable."""

    workload: str
    scheme: str
    n_gpus: int = 4
    seed: int = 1
    scale: float = 0.5
    variant: str = "plain"

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(f"unknown cell variant {self.variant!r}")

    def config(self) -> SystemConfig:
        """The cell's full configuration tree."""
        cfg = scheme_config(self.scheme, n_gpus=self.n_gpus)
        if self.variant == "dormant_fault":
            # Non-rate overrides only: all injection rates stay zero, so
            # the section is dormant and must be behaviorally invisible.
            cfg = cfg.with_fault(ack_timeout=cfg.fault.ack_timeout + 37, max_retries=9)
        elif self.variant == "dormant_adversary":
            cfg = cfg.with_adversary(replay_window=13)
        return cfg

    def job(self) -> SweepJob:
        return SweepJob(
            spec=get_workload(self.workload),
            config=self.config(),
            seed=self.seed,
            scale=self.scale,
        )

    def describe(self) -> str:
        tag = "" if self.variant == "plain" else f"+{self.variant}"
        return (
            f"{self.workload}/{self.scheme}{tag}"
            f"/{self.n_gpus}gpus/seed{self.seed}/scale{self.scale}"
        )

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "n_gpus": self.n_gpus,
            "seed": self.seed,
            "scale": self.scale,
            "variant": self.variant,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellRef":
        return cls(
            workload=data["workload"],
            scheme=data["scheme"],
            n_gpus=int(data["n_gpus"]),
            seed=int(data["seed"]),
            scale=float(data["scale"]),
            variant=data.get("variant", "plain"),
        )


@dataclass
class Violation:
    """One broken law, with enough context to shrink and replay it."""

    oracle: str  # "family.check", e.g. "analytic.metadata_bytes"
    law: str  # the one-line law statement that failed
    cells: list[CellRef]
    message: str
    observed: object = None
    expected: object = None
    #: oracle-specific replay context (e.g. the relabeling permutation)
    data: dict = field(default_factory=dict)

    @property
    def family(self) -> str:
        return self.oracle.split(".", 1)[0]

    def describe(self) -> str:
        lines = [f"[{self.oracle}] {self.law}", f"  {self.message}"]
        if self.observed is not None or self.expected is not None:
            lines.append(f"  observed={self.observed!r} expected={self.expected!r}")
        for cell in self.cells:
            lines.append(f"  cell: {cell.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "law": self.law,
            "cells": [c.to_dict() for c in self.cells],
            "message": self.message,
            "observed": self.observed,
            "expected": self.expected,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(
            oracle=data["oracle"],
            law=data["law"],
            cells=[CellRef.from_dict(c) for c in data["cells"]],
            message=data["message"],
            observed=data.get("observed"),
            expected=data.get("expected"),
            data=data.get("data", {}),
        )


@dataclass
class ReproArtifact:
    """The shrinker's output: a minimal failing repro, replayable by path."""

    violation: Violation
    #: the minimized failing cell set (<= the violation's original cells)
    cells: list[CellRef]
    #: scale ladder / cell-set reduction steps the shrinker took
    shrink_log: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema": ARTIFACT_SCHEMA,
            "violation": self.violation.to_dict(),
            "cells": [c.to_dict() for c in self.cells],
            "shrink_log": self.shrink_log,
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReproArtifact":
        data = json.loads(Path(path).read_text())
        if data.get("schema") != ARTIFACT_SCHEMA:
            raise ValueError(f"artifact schema {data.get('schema')} != {ARTIFACT_SCHEMA}")
        return cls(
            violation=Violation.from_dict(data["violation"]),
            cells=[CellRef.from_dict(c) for c in data["cells"]],
            shrink_log=data.get("shrink_log", []),
        )


def metric_value(report, name: str, default: int | float | None = 0):
    """Read one counter/gauge value from a report's metrics snapshot."""
    entry = report.metrics.get(name)
    if entry is None:
        return default
    return entry.get("value", default)


def ratio_total(report, name: str) -> int:
    """Total event count behind one ratio metric (e.g. ``otp.send``)."""
    entry = report.metrics.get(name)
    if entry is None:
        return 0
    return sum(entry.get("counts", {}).values())


__all__ = [
    "ARTIFACT_SCHEMA",
    "VARIANTS",
    "CellRef",
    "Violation",
    "ReproArtifact",
    "metric_value",
    "ratio_total",
]
