"""Differential oracles: the same trace run through every scheme.

All schemes execute one shared compiled trace (the TraceStore guarantees
byte-identical inputs), so the *delivered work* must agree across schemes
even though timing differs:

* **payload equality** — on migration-free cells every scheme performs the
  same remote requests and moves the same base payload bytes.  Migration
  feedback (owner moves depend on scheme timing) legitimately breaks this,
  so the check scopes itself to groups where no scheme migrated.
* **per-cell slowdown sandwich** — security never speeds a run up
  (``unsecure <= ideal``), and ideal pad management lower-bounds every
  scheme that pays the same conventional per-message metadata:
  ``ideal <= {private, shared, cached, dynamic}``.  Batching is *not* in
  that set: it shrinks the wire metadata itself (17 B -> ~9.5 B per
  message), so it can legitimately finish a few cycles ahead of ideal on
  bandwidth-bound cells; its per-cell floor is only ``unsecure``.  Like
  payload equality, the whole sandwich is scoped to migration-free
  groups: once page migration engages, each scheme's timing perturbs the
  migration schedule and the schemes are no longer executing the same
  work — a faster "slower scheme" is then a different schedule, not a
  conformance bug (observed on pagerank/mvt/kmeans at sweep scale).
* **metadata dominance** — batching exists to shrink metadata: per cell,
  batched metadata bytes never exceed the conventional per-message bytes
  of the dynamic scheme it rides on (Fig. 19's 17 B -> ~9.5 B claim).
* **fleet ordering** (Table IV / Fig. 21) — over the whole matrix the
  geometric-mean slowdowns must order ``ideal <= batching <= private <=
  shared``.  Individual cells may invert (batching trades verify latency
  for bandwidth and loses on latency-bound kernels); the paper's claim is
  the fleet-level ordering, so that is what the oracle pins.
"""

from __future__ import annotations

import math

from repro.verify.violations import CellRef, Violation

#: schemes that must dominate ideal per cell: every scheme paying the full
#: conventional per-message metadata.  Batching pays *less* wire metadata
#: than ideal does, so ideal is not its floor — unsecure is.
CONVENTIONAL_META_SCHEMES = ("private", "shared", "cached", "dynamic")

#: fleet-level geomean ordering claimed by Table IV / Fig. 21
GEOMEAN_CHAIN = ("ideal", "batching", "private", "shared")

#: slack for cycle comparisons: discrete-event scheduling jitter can land
#: a scheme a few tens of cycles under its bound (metadata packets perturb
#: link interleavings — observed 16 cycles on aes at scale 0.5 and 17 on
#: matrixtranspose at scale 0.1, both migration-free).  The jitter is
#: roughly constant in absolute cycles while runs shrink with scale, so
#: the bound takes the larger of an absolute floor and a relative band;
#: real regressions (extra metadata on links) are hundreds of cycles even
#: at the smallest scales.
CYCLE_SLACK = 32
RELATIVE_SLACK = 0.005


def _group_cells(cells_by_scheme: dict[str, CellRef]) -> list[CellRef]:
    return [cells_by_scheme[s] for s in sorted(cells_by_scheme)]


def _migration_free(reports: dict[str, object]) -> bool:
    return all(r.migrations == 0 for r in reports.values())


def check_payload_equality(
    cells: dict[str, CellRef], reports: dict[str, object]
) -> list[Violation]:
    """Same trace, same delivered payload — scheme must not change the work."""
    if not _migration_free(reports):
        return []
    out: list[Violation] = []
    for field in ("remote_requests", "base_traffic_bytes"):
        values = {s: getattr(r, field) for s, r in reports.items()}
        if len(set(values.values())) > 1:
            out.append(Violation(
                oracle="differential.payload_equality",
                law=f"migration-free cells: {field} identical across schemes",
                cells=_group_cells(cells),
                message=f"schemes disagree on delivered {field}",
                observed=values,
            ))
    return out


def check_slowdown_sandwich(
    cells: dict[str, CellRef], reports: dict[str, object]
) -> list[Violation]:
    """unsecure <= ideal <= conventional-metadata schemes; private <= shared.

    Only meaningful when no scheme migrated: timing comparisons require
    every scheme to have executed the same schedule.
    """
    if not _migration_free(reports):
        return []
    out: list[Violation] = []
    cycles = {s: r.execution_cycles for s, r in reports.items()}

    def require(lo: str, hi: str, law: str) -> None:
        if lo not in cycles or hi not in cycles:
            return
        slack = max(CYCLE_SLACK, int(cycles[hi] * RELATIVE_SLACK))
        if cycles[lo] > cycles[hi] + slack:
            out.append(Violation(
                oracle="differential.slowdown_sandwich",
                law=law,
                cells=[cells[lo], cells[hi]],
                message=f"{lo} ran slower than {hi} on the same trace",
                observed={lo: cycles[lo], hi: cycles[hi]},
            ))

    for managed in CONVENTIONAL_META_SCHEMES:
        require(
            "ideal", managed,
            "ideal lower-bounds every conventional-metadata scheme",
        )
    require("unsecure", "ideal", "security metadata never speeds a run up")
    require("unsecure", "batching", "security metadata never speeds a run up")
    require(
        "private", "shared",
        "dedicated buffers dominate a contended shared buffer",
    )
    return out


def check_metadata_dominance(
    cells: dict[str, CellRef], reports: dict[str, object]
) -> list[Violation]:
    """Batching strictly reduces metadata bytes vs. conventional dynamic."""
    if "batching" not in reports or "dynamic" not in reports:
        return []
    if not _migration_free(reports):
        return []  # different migration schedules => different message mixes
    batched = reports["batching"].meta_traffic_bytes
    conventional = reports["dynamic"].meta_traffic_bytes
    if batched > conventional:
        return [Violation(
            oracle="differential.metadata_dominance",
            law="batched metadata bytes <= conventional per-message bytes "
                "(Fig. 19: 17 B/msg -> ~9.5 B/msg)",
            cells=[cells["dynamic"], cells["batching"]],
            message="metadata batching inflated the metadata bytes it exists to shrink",
            observed={"batching": batched, "dynamic": conventional},
        )]
    return []


def check_geomean_chain(
    groups: list[tuple[dict[str, CellRef], dict[str, object]]]
) -> list[Violation]:
    """Fleet-level geomean slowdown ordering: ideal <= batching <= private <= shared.

    ``groups`` holds per-cell ``(cells, reports)`` pairs; each group needs an
    ``unsecure`` baseline plus the chain schemes.
    """
    logs: dict[str, list[float]] = {s: [] for s in GEOMEAN_CHAIN}
    used = 0
    for _cells, reports in groups:
        base = reports.get("unsecure")
        if base is None or any(s not in reports for s in GEOMEAN_CHAIN):
            continue
        used += 1
        for s in GEOMEAN_CHAIN:
            logs[s].append(math.log(reports[s].slowdown_vs(base)))
    if used < 2:
        return []  # one cell is a per-cell claim, not a fleet claim
    geo = {s: math.exp(sum(v) / len(v)) for s, v in logs.items()}
    out: list[Violation] = []
    for lo, hi in zip(GEOMEAN_CHAIN, GEOMEAN_CHAIN[1:]):
        if geo[lo] > geo[hi] * (1 + 1e-12):
            out.append(Violation(
                oracle="differential.geomean_chain",
                law="fleet geomean slowdowns order ideal <= batching <= private <= shared",
                cells=[],  # fleet-level: not attributable to one cell
                message=(
                    f"geomean({lo})={geo[lo]:.4f} exceeds geomean({hi})={geo[hi]:.4f} "
                    f"over {used} cells"
                ),
                observed={s: round(g, 6) for s, g in geo.items()},
                data={"n_cells": used},
            ))
    return out


def check_group(
    cells: dict[str, CellRef], reports: dict[str, object]
) -> list[Violation]:
    """All per-group differential oracles (geomean chain runs separately)."""
    out: list[Violation] = []
    out += check_payload_equality(cells, reports)
    out += check_slowdown_sandwich(cells, reports)
    out += check_metadata_dominance(cells, reports)
    return out


__all__ = [
    "CONVENTIONAL_META_SCHEMES",
    "GEOMEAN_CHAIN",
    "check_group",
    "check_payload_equality",
    "check_slowdown_sandwich",
    "check_metadata_dominance",
    "check_geomean_chain",
]
