"""Metamorphic oracles: known input transformations, predictable outputs.

Each check perturbs a cell in a way whose effect on the result is known in
closed form, runs the perturbed cell (always through
:func:`~repro.runner.jobs.execute_job` directly — the sweep cache would
collapse the perturbation back onto the original key), and compares:

* **GPU relabeling** — permuting GPU identities permutes the roles but not
  the physics.  The static schemes (unsecure, ideal, private, shared) are
  fully timing-equivariant: the relabeled report equals the original with
  its per-GPU map permuted.  The adaptive schemes (dynamic, batching,
  cached) are *not*: their allocators break exact EWMA ties by peer index,
  so a relabeling can flip a tie and shift pad placement — timing then
  legitimately diverges, but the delivered payload must not.  The oracle
  therefore checks full equality for the static schemes and payload
  symmetry for all of them (see docs/VERIFICATION.md, "Relabeling scope").
* **batch_size=1** — a batch of one is conventional messaging wearing the
  batched wire format: every block opens and full-closes its own batch, so
  message counts and ACK counts match the dynamic scheme exactly and the
  metadata bytes differ by precisely one ``batch_len`` byte per block
  (9 + 1 + 8 = 18 B vs 17 B conventional).
* **dormant sections** — a fault/adversary config whose every injection
  rate is zero must be behaviorally invisible: the serialized report is
  byte-identical to the plain cell's.
* **seed stability** — the fleet-level scheme ordering (the paper's actual
  claim) must not depend on the trace seed: the rank order of geomean
  slowdowns is identical across seeds.  Schemes whose geomeans sit within
  :data:`STABILITY_TOLERANCE` of each other are a statistical tie — at
  smoke-matrix fleet sizes batching and private land within ~2% of each
  other and legitimately swap with the seed — so the oracle ranks *tie
  classes*, not raw floats: only a reordering across a gap wider than the
  tolerance is a violation.
"""

from __future__ import annotations

import json
import math

from repro.runner import execute_job, report_to_dict
from repro.workloads.compiled import CompiledGpuTrace, CompiledTrace

from repro.verify.violations import CellRef, Violation, metric_value

#: schemes whose timing is fully equivariant under GPU relabeling
FULL_EQUIVARIANT = frozenset({"unsecure", "ideal", "private", "shared"})

#: payload fields every scheme must keep invariant under relabeling
PAYLOAD_FIELDS = ("base_traffic_bytes", "remote_requests", "migrations")


def rotation_sigma(n_gpus: int) -> dict[int, int]:
    """The canonical test permutation: rotate GPU ids 1..N by one."""
    return {g: g % n_gpus + 1 for g in range(1, n_gpus + 1)}


def relabel_trace(trace: CompiledTrace, sigma: dict[int, int]) -> CompiledTrace:
    """Apply a GPU permutation to a compiled trace.

    GPU ``sigma[g]`` replays ``g``'s lanes and inherits ``g``'s pages; the
    host (node 0) and pinned pages are fixed points.  Addresses stay
    untouched — remoteness is a relation between accessor and owner, and
    both sides move together.
    """
    gpu_traces: dict[int, CompiledGpuTrace] = {
        sigma[g]: t for g, t in trace.gpu_traces.items()
    }
    owners = {
        page: sigma.get(owner, owner) for page, owner in trace.initial_owners.items()
    }
    return CompiledTrace(
        name=trace.name,
        gpu_traces=gpu_traces,
        pinned_pages=trace.pinned_pages,
        initial_owners=owners,
    )


def _canonical(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


def check_relabel(cell: CellRef, trace: CompiledTrace, plain_report) -> list[Violation]:
    """Run the rotated trace and compare at the scheme's equivariance level."""
    sigma = rotation_sigma(cell.n_gpus)
    rotated = execute_job(cell.job(), trace=relabel_trace(trace, sigma))
    out: list[Violation] = []

    payload = {
        f: (getattr(plain_report, f), getattr(rotated, f)) for f in PAYLOAD_FIELDS
    }
    broken = {f: pair for f, pair in payload.items() if pair[0] != pair[1]}
    if broken:
        out.append(Violation(
            oracle="metamorphic.relabel_payload",
            law="GPU relabeling preserves delivered payload for every scheme",
            cells=[cell],
            message="rotating GPU identities changed the delivered work",
            observed={f: {"plain": a, "rotated": b} for f, (a, b) in broken.items()},
            data={"sigma": {str(k): v for k, v in sigma.items()}},
        ))
        return out  # timing comparison is meaningless on different payloads

    if cell.scheme in FULL_EQUIVARIANT:
        expect_finish = {
            sigma.get(node, node): cycle
            for node, cycle in plain_report.per_gpu_finish.items()
        }
        mismatches = {}
        if rotated.execution_cycles != plain_report.execution_cycles:
            mismatches["execution_cycles"] = {
                "plain": plain_report.execution_cycles,
                "rotated": rotated.execution_cycles,
            }
        if rotated.traffic_bytes != plain_report.traffic_bytes:
            mismatches["traffic_bytes"] = {
                "plain": plain_report.traffic_bytes,
                "rotated": rotated.traffic_bytes,
            }
        if rotated.per_gpu_finish != expect_finish:
            mismatches["per_gpu_finish"] = {
                "expected": expect_finish,
                "rotated": rotated.per_gpu_finish,
            }
        if mismatches:
            out.append(Violation(
                oracle="metamorphic.relabel_timing",
                law="static schemes are fully timing-equivariant under relabeling",
                cells=[cell],
                message=f"{cell.scheme} timing is not symmetric under GPU rotation",
                observed=mismatches,
                data={"sigma": {str(k): v for k, v in sigma.items()}},
            ))
    return out


def check_batch_size_one(cell: CellRef, trace: CompiledTrace) -> list[Violation]:
    """batch_size=1 == conventional messaging + one length byte per block."""
    if cell.scheme != "dynamic":
        return []
    dynamic = execute_job(cell.job(), trace=trace)
    bs1_cell = CellRef(
        workload=cell.workload, scheme="batching", n_gpus=cell.n_gpus,
        seed=cell.seed, scale=cell.scale,
    )
    bs1_job = bs1_cell.job()
    bs1_job = type(bs1_job)(
        spec=bs1_job.spec,
        config=bs1_job.config.with_security(batch_size=1),
        seed=bs1_job.seed,
        scale=bs1_job.scale,
        n_lanes=bs1_job.n_lanes,
    )
    bs1 = execute_job(bs1_job, trace=trace)
    if dynamic.migrations != 0 or bs1.migrations != 0:
        return []  # timing-coupled migration schedules decouple the mixes
    out: list[Violation] = []
    conv = metric_value(dynamic, "meta.conventional_msgs")
    blk = metric_value(bs1, "meta.batched_blocks")
    if conv != blk or dynamic.acks_sent != bs1.acks_sent:
        out.append(Violation(
            oracle="metamorphic.batch_size_one",
            law="batch_size=1 sends one block-batch (and one ACK) per "
                "conventional message",
            cells=[cell, bs1_cell],
            message="singleton batching changed the message/ACK counts",
            observed={
                "conventional_msgs": conv, "batched_blocks": blk,
                "acks": {"dynamic": dynamic.acks_sent, "batch_size_1": bs1.acks_sent},
            },
        ))
        return out
    len_bytes = cell.config().security.metadata.batch_len_bytes
    expected = dynamic.meta_traffic_bytes + blk * len_bytes
    if bs1.meta_traffic_bytes != expected:
        out.append(Violation(
            oracle="metamorphic.batch_size_one",
            law="batch_size=1 metadata == conventional metadata "
                "+ batch_len_bytes per block",
            cells=[cell, bs1_cell],
            message="singleton-batch metadata bytes deviate from the 17 B -> 18 B law",
            observed=bs1.meta_traffic_bytes,
            expected=expected,
        ))
    return out


def check_dormant(cell: CellRef, trace: CompiledTrace, plain_report) -> list[Violation]:
    """Zero-rate fault/adversary sections must be behaviorally invisible."""
    if cell.variant != "plain":
        return []
    plain_canon = _canonical(plain_report)
    out: list[Violation] = []
    for variant in ("dormant_fault", "dormant_adversary"):
        dormant_cell = CellRef(
            workload=cell.workload, scheme=cell.scheme, n_gpus=cell.n_gpus,
            seed=cell.seed, scale=cell.scale, variant=variant,
        )
        dormant = execute_job(dormant_cell.job(), trace=trace)
        if _canonical(dormant) != plain_canon:
            diff_fields = [
                f for f in (
                    "execution_cycles", "traffic_bytes", "meta_traffic_bytes",
                    "remote_requests", "migrations", "acks_sent",
                )
                if getattr(dormant, f) != getattr(plain_report, f)
            ]
            out.append(Violation(
                oracle="metamorphic.dormant_config",
                law="zero-rate fault/adversary sections are byte-invisible",
                cells=[cell, dormant_cell],
                message=f"a dormant {variant.split('_')[1]} section changed the run",
                observed={"differing_fields": diff_fields or ["(serialization only)"]},
            ))
    return out


#: schemes whose geomean slowdowns differ by less than this (in log space,
#: ~5% relative) are one tie class for ranking purposes
STABILITY_TOLERANCE = 0.05


def _tie_classes(geo: dict[str, float]) -> tuple[tuple[str, ...], ...]:
    """Rank schemes by geomean, merging near-ties into sorted classes."""
    ordered = sorted(geo, key=lambda s: (geo[s], s))
    classes: list[list[str]] = []
    for scheme in ordered:
        if classes and math.log(geo[scheme]) - math.log(geo[classes[-1][0]]) < STABILITY_TOLERANCE:
            classes[-1].append(scheme)
        else:
            classes.append([scheme])
    return tuple(tuple(sorted(c)) for c in classes)


def check_seed_stability(
    geomeans_by_seed: dict[int, dict[str, float]]
) -> list[Violation]:
    """The fleet-level scheme ranking must be identical across seeds."""
    if len(geomeans_by_seed) < 2:
        return []
    rankings = {
        seed: _tie_classes(geo) for seed, geo in sorted(geomeans_by_seed.items())
    }
    if len(set(rankings.values())) == 1:
        return []
    return [Violation(
        oracle="metamorphic.seed_stability",
        law="geomean scheme ordering is invariant across trace seeds",
        cells=[],
        message="changing the trace seed reordered the fleet-level scheme ranking",
        observed={
            str(seed): [list(c) for c in rank] for seed, rank in rankings.items()
        },
        data={
            "geomeans": {
                str(seed): {s: round(g, 6) for s, g in geo.items()}
                for seed, geo in geomeans_by_seed.items()
            }
        },
    )]


__all__ = [
    "FULL_EQUIVARIANT",
    "PAYLOAD_FIELDS",
    "STABILITY_TOLERANCE",
    "rotation_sigma",
    "relabel_trace",
    "check_relabel",
    "check_batch_size_one",
    "check_dormant",
    "check_seed_stability",
]
