"""Analytic oracles: every report must satisfy closed-form laws.

Each check takes one cell and its :class:`~repro.system.SimulationReport`
and returns the violations it found (empty list = conformant).  The laws,
with their paper anchors (see ``docs/VERIFICATION.md`` for derivations):

* **traffic accounting** — ``traffic = base + metadata`` byte-exactly,
  and the metrics snapshot cross-sums to the report fields.
* **metadata byte law** (§IV-C, Fig. 19) — conventional security metadata
  is ``per_message_meta_bytes`` per secured message plus ``ack_bytes`` per
  ACK; the batched protocol is ``batched_block_meta_bytes`` per block, one
  length byte per opened batch, one MsgMAC per full close, one standalone
  MAC packet per timeout close, one ACK per batch.
* **OTP accounting** (§IV-B) — every secured message consumes exactly one
  send pad and one receive pad: the scheme's send/recv outcome totals both
  equal the secured-message count.
* **pool conservation** (Formulas 1–4) — after any number of interval
  repartitions the per-node pool totals still sum to the provisioned
  ``(n_nodes) x total_otp_entries``; allocation never mints or leaks pads.
* **replay-guard ledger** (§II-C) — fault-free runs retire every retained
  counter exactly once: zero violations, zero drops, zero outstanding.
* **collective conservation** — ring collectives move exactly the volume
  the algorithm promises (e.g. ``2(N-1)·M/N`` remote reads per GPU for
  ring all-reduce), checked directly on the compiled trace.
"""

from __future__ import annotations

from repro.verify.violations import CellRef, Violation, metric_value, ratio_total

#: schemes whose provisioned pool the conservation law pins exactly
_EXACT_POOL_SCHEMES = frozenset({"private", "dynamic", "batching"})


def _v(
    oracle: str,
    law: str,
    cell: CellRef,
    message: str,
    observed=None,
    expected=None,
) -> Violation:
    return Violation(
        oracle=oracle, law=law, cells=[cell], message=message,
        observed=observed, expected=expected,
    )


def check_traffic_accounting(cell: CellRef, report) -> list[Violation]:
    """traffic_bytes == base + metadata, and metrics mirror the report."""
    out: list[Violation] = []
    if report.traffic_bytes != report.base_traffic_bytes + report.meta_traffic_bytes:
        out.append(_v(
            "analytic.traffic_accounting",
            "traffic_bytes == base_traffic_bytes + meta_traffic_bytes",
            cell,
            "wire byte accounting does not decompose",
            observed=report.traffic_bytes,
            expected=report.base_traffic_bytes + report.meta_traffic_bytes,
        ))
    crosses = {
        "run.cycles": report.execution_cycles,
        "run.remote_requests": report.remote_requests,
        "run.migrations": report.migrations,
        "traffic.bytes": report.traffic_bytes,
        "traffic.base_bytes": report.base_traffic_bytes,
        "meta.bytes": report.meta_traffic_bytes,
        "ack.sent": report.acks_sent,
        "batch.macs_sent": report.batch_macs_sent,
    }
    for name, want in crosses.items():
        if cell.scheme == "unsecure" and name in ("ack.sent", "batch.macs_sent"):
            continue
        got = metric_value(report, name, default=None)
        if got != want:
            out.append(_v(
                "analytic.metrics_cross_sum",
                f"metrics[{name}] == report field",
                cell,
                f"metric {name} disagrees with the report",
                observed=got,
                expected=want,
            ))
    return out


def check_metadata_bytes(cell: CellRef, report) -> list[Violation]:
    """Closed-form metadata byte law (§IV-C).

    Applies to clean cells (no retransmissions — a retransmitted wire copy
    re-bills its metadata without re-counting a message) with metadata
    bandwidth accounting on.
    """
    if cell.scheme == "unsecure":
        if report.meta_traffic_bytes != 0:
            return [_v(
                "analytic.metadata_bytes", "unsecure carries zero metadata",
                cell, "unsecure run reports metadata bytes",
                observed=report.meta_traffic_bytes, expected=0,
            )]
        return []
    cfg = cell.config()
    if not cfg.security.count_metadata or report.fault_stats is not None:
        return []
    md = cfg.security.metadata
    conv = metric_value(report, "meta.conventional_msgs")
    blk = metric_value(report, "meta.batched_blocks")
    opened = metric_value(report, "batch.opened")
    closed_full = metric_value(report, "batch.closed_full")
    standalone = md.msg_mac_bytes + md.sender_id_bytes + 1
    expected = (
        conv * md.per_message_meta_bytes
        + blk * md.batched_block_meta_bytes
        + opened * md.batch_len_bytes
        + closed_full * md.msg_mac_bytes
        + report.batch_macs_sent * standalone
        + report.acks_sent * md.ack_bytes
    )
    if report.meta_traffic_bytes != expected:
        return [_v(
            "analytic.metadata_bytes",
            "meta_bytes == conv·17 + blocks·9 + opens·1 + full_closes·8 "
            "+ timeout_macs·10 + acks·16 (Fig. 19 sizes)",
            cell,
            "metadata wire bytes deviate from the per-message formulas",
            observed=report.meta_traffic_bytes,
            expected=expected,
        )]
    return []


def check_otp_accounting(cell: CellRef, report) -> list[Violation]:
    """One send pad and one receive pad per secured message, exactly."""
    if cell.scheme == "unsecure":
        return []
    if report.fault_stats is not None or report.attack_report is not None:
        return []  # retransmits legitimately consume extra pads
    out: list[Violation] = []
    secured = metric_value(report, "meta.conventional_msgs") + metric_value(
        report, "meta.batched_blocks"
    )
    for direction in ("otp.send", "otp.recv"):
        total = ratio_total(report, direction)
        if total != secured:
            out.append(_v(
                "analytic.otp_accounting",
                "pad acquisitions per direction == secured messages",
                cell,
                f"{direction} outcome total diverges from the secured-message count",
                observed=total,
                expected=secured,
            ))
    return out


def check_pool_conservation(cell: CellRef, report) -> list[Violation]:
    """Formulas 1–4 integerization never mints or leaks pool entries."""
    if cell.scheme == "unsecure":
        return []
    cfg = cell.config()
    n_nodes = cell.n_gpus + 1  # GPUs + host, full peer graph
    provisioned = n_nodes * cfg.security.total_otp_entries(cell.n_gpus)
    pool = metric_value(report, "otp.pool_entries", default=None)
    if pool is None:
        return [_v(
            "analytic.pool_conservation", "otp.pool_entries gauge present",
            cell, "secure run is missing the pool gauge",
        )]
    if cell.scheme == "ideal":
        expected: tuple[int, int] = (0, 0)
    elif cell.scheme in _EXACT_POOL_SCHEMES:
        expected = (provisioned, provisioned)
    else:  # shared/cached provision differently but never exceed the budget
        expected = (1, provisioned)
    if not (expected[0] <= pool <= expected[1]):
        return [_v(
            "analytic.pool_conservation",
            "send_total + recv_total == provisioned pool at every interval",
            cell,
            "end-of-run pool total escaped the provisioned budget",
            observed=pool,
            expected=expected[0] if expected[0] == expected[1] else list(expected),
        )]
    return []


def check_ack_ledger(cell: CellRef, report) -> list[Violation]:
    """Fault-free runs retire every retained counter exactly once."""
    if cell.scheme == "unsecure":
        return []
    if report.fault_stats is not None or report.attack_report is not None:
        return []
    cfg = cell.config()
    if cfg.security.protect_requests:
        return []  # secured control messages are not ACKed; the law changes
    out: list[Violation] = []
    secured = metric_value(report, "meta.conventional_msgs") + metric_value(
        report, "meta.batched_blocks"
    )
    for name, want in (
        ("ack.guard_violations", 0),
        ("ack.guard_dropped", 0),
        ("ack.guard_outstanding", 0),
        ("ack.guard_acked", secured),
    ):
        got = metric_value(report, name, default=None)
        if got != want:
            out.append(_v(
                "analytic.ack_ledger",
                "clean runs: guard acks == secured msgs; no violations, "
                "drops, or stranded entries",
                cell,
                f"replay-guard ledger field {name} off",
                observed=got,
                expected=want,
            ))
    return out


def check_report(cell: CellRef, report) -> list[Violation]:
    """All per-report analytic oracles."""
    out: list[Violation] = []
    out += check_traffic_accounting(cell, report)
    out += check_metadata_bytes(cell, report)
    out += check_otp_accounting(cell, report)
    out += check_pool_conservation(cell, report)
    out += check_ack_ledger(cell, report)
    return out


# ---------------------------------------------------------------------------
# Collective conservation (trace-level)
# ---------------------------------------------------------------------------
#: per-GPU remote-read law for the symmetric ring collectives, as rounds
#: formulas mirroring docs/WORKLOADS.md: name -> (rounds(scale), factor)
#: where expected = rounds · factor(N, owned_blocks_per_gpu)
_RING_LAWS = {
    "allreduce_ring": (
        lambda scale: max(3, int(6 * scale)),
        lambda n, owned: 2 * (n - 1) * owned // n,
        "2(N-1)·M/N per GPU per round (reduce-scatter + all-gather ring)",
    ),
    "reducescatter": (
        lambda scale: max(5, int(10 * scale)),
        lambda n, owned: (n - 1) * owned // n,
        "(N-1)·M/N per GPU per round (ring reduce-scatter)",
    ),
    "allgather": (
        lambda scale: max(4, int(8 * scale)),
        lambda n, owned: (n - 1) * owned,
        "(N-1)·shard per GPU per round (direct all-gather)",
    ),
}


#: workloads the trace-level collective law covers
RING_WORKLOADS = frozenset(_RING_LAWS)


def check_collective_trace(cell: CellRef, trace) -> list[Violation]:
    """Ring-collective conservation, checked on the compiled trace.

    ``M`` (the message size in blocks) is recovered from the trace itself:
    each GPU owns exactly its shard buffer.  The check is skipped when the
    shard does not fill whole pages (M then is not recoverable from the
    ownership map).
    """
    law = _RING_LAWS.get(cell.workload)
    if law is None:
        return []
    rounds_of, expected_of, law_text = law
    from repro.memory.address_space import BLOCK_BYTES, PAGE_BYTES, page_of

    blocks_per_page = PAGE_BYTES // BLOCK_BYTES
    owned_pages: dict[int, int] = {}
    for _page, owner in trace.initial_owners.items():
        if owner != 0:
            owned_pages[owner] = owned_pages.get(owner, 0) + 1
    if len(set(owned_pages.values())) != 1:
        return []  # asymmetric ownership: M not recoverable
    owned_blocks = next(iter(owned_pages.values())) * blocks_per_page

    remote_reads: dict[int, int] = {}
    for gpu, gpu_trace in trace.gpu_traces.items():
        count = 0
        for lane in gpu_trace.lanes:
            for addr, write in zip(lane.addrs, lane.writes):
                if not write and trace.initial_owners[page_of(addr)] != gpu:
                    count += 1
        remote_reads[gpu] = count

    out: list[Violation] = []
    expected = rounds_of(cell.scale) * expected_of(cell.n_gpus, owned_blocks)
    for gpu, count in sorted(remote_reads.items()):
        if count != expected:
            out.append(Violation(
                oracle="analytic.collective_conservation",
                law=law_text,
                cells=[cell],
                message=f"GPU {gpu} remote-read volume breaks the ring schedule",
                observed=count,
                expected=expected,
            ))
            break  # one per cell is enough; the trace is shared anyway
    return out


__all__ = [
    "RING_WORKLOADS",
    "check_report",
    "check_traffic_accounting",
    "check_metadata_bytes",
    "check_otp_accounting",
    "check_pool_conservation",
    "check_ack_ledger",
    "check_collective_trace",
]
