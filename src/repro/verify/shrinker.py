"""Failing-cell shrinker: bisect a violation down to a minimal repro.

Given one :class:`~repro.verify.violations.Violation`, the shrinker tries
progressively cheaper configurations that still reproduce it, in order:

1. **cell-set reduction** — a group violation naming many cells is re-run
   on subsets until no cell can be dropped (differential laws need at most
   a pair; analytic and metamorphic laws need one cell);
2. **GPU reduction** — try the smallest GPU counts first (2, then 3);
3. **scale ladder** — try the smallest workload scales first
   (0.05, 0.1, 0.25).

Every accepted step re-runs the *original oracle* on the candidate cells
(:func:`evaluate_cells`), so the minimized artifact provably still fails
the same law, and every step — accepted or rejected — lands in the
artifact's ``shrink_log``.  Fleet-level violations (geomean chain, seed
stability) aggregate over the whole matrix and are reported unshrunk.
"""

from __future__ import annotations

import dataclasses

from repro.runner import execute_job

from repro.verify import analytic, differential, metamorphic
from repro.verify.violations import CellRef, ReproArtifact, Violation

#: tried smallest-first; the original scale terminates the ladder
SCALE_LADDER = (0.05, 0.1, 0.25)

#: tried smallest-first; the original count terminates the ladder
GPU_LADDER = (2, 3)

#: fleet-level oracles aggregate the whole matrix; no single small cell
#: set can reproduce them, so they ship unshrunk
UNSHRINKABLE = ("differential.geomean_chain", "metamorphic.seed_stability")


def _run_cell(cell: CellRef, trace_store=None):
    job = cell.job()
    trace = None
    if trace_store is not None:
        trace, _source = trace_store.get_or_generate(
            job.spec, job.config.n_gpus, job.seed, job.scale, job.n_lanes
        )
    return execute_job(job, trace=trace), trace


def evaluate_cells(
    oracle: str, cells: list[CellRef], trace_store=None
) -> list[Violation]:
    """Re-run exactly the oracle that produced ``oracle`` on ``cells``.

    Returns the violations of that oracle found on the candidate cell set
    (empty list = the candidate does not reproduce the failure).
    """
    if oracle.startswith("analytic."):
        out: list[Violation] = []
        for cell in cells:
            report, trace = _run_cell(cell, trace_store)
            found = analytic.check_report(cell, report)
            if trace is not None:
                found += analytic.check_collective_trace(cell, trace)
            out += found
        return [v for v in out if v.oracle == oracle]

    if oracle.startswith("differential."):
        groups: dict[tuple, dict[str, CellRef]] = {}
        for cell in cells:
            key = (cell.workload, cell.n_gpus, cell.seed, cell.scale, cell.variant)
            groups.setdefault(key, {})[cell.scheme] = cell
        out = []
        for by_scheme in groups.values():
            reports = {
                scheme: _run_cell(cell, trace_store)[0]
                for scheme, cell in by_scheme.items()
            }
            out += differential.check_group(by_scheme, reports)
        return [v for v in out if v.oracle == oracle]

    if oracle.startswith("metamorphic."):
        out = []
        for cell in cells:
            if cell.variant != "plain":
                continue  # dormant companions re-run inside check_dormant
            report, trace = _run_cell(cell, trace_store)
            if trace is None:  # metamorphic reruns need the concrete trace
                job = cell.job()
                trace = job.spec.generate(
                    n_gpus=cell.n_gpus, seed=cell.seed, scale=cell.scale,
                    n_lanes=job.n_lanes,
                )
            if oracle.startswith("metamorphic.relabel"):
                out += metamorphic.check_relabel(cell, trace, report)
            elif oracle == "metamorphic.batch_size_one":
                out += metamorphic.check_batch_size_one(cell, trace)
            elif oracle == "metamorphic.dormant_config":
                out += metamorphic.check_dormant(cell, trace, report)
        return [v for v in out if v.oracle == oracle]

    return []


def _with(cell: CellRef, **overrides) -> CellRef:
    return dataclasses.replace(cell, **overrides)


def shrink(violation: Violation, trace_store=None) -> ReproArtifact:
    """Minimize a violation to the cheapest cell set that still fails."""
    log: list[str] = []
    if violation.oracle in UNSHRINKABLE or not violation.cells:
        log.append(f"{violation.oracle} is fleet-level: reported unshrunk")
        return ReproArtifact(violation=violation, cells=list(violation.cells), shrink_log=log)

    best = violation
    cells = list(violation.cells)

    def attempt(candidate: list[CellRef], step: str) -> bool:
        nonlocal best, cells
        found = evaluate_cells(violation.oracle, candidate, trace_store)
        if found:
            best = found[0]
            cells = candidate
            log.append(f"{step}: still fails -> kept")
            return True
        log.append(f"{step}: passes -> rejected")
        return False

    # 1. drop cells one at a time (greedy ddmin is enough at these sizes)
    if len(cells) > 1:
        i = 0
        while i < len(cells) and len(cells) > 1:
            candidate = cells[:i] + cells[i + 1 :]
            if attempt(candidate, f"drop cell {cells[i].describe()}"):
                continue  # same index now points at the next cell
            i += 1

    # 2. fewer GPUs, smallest first
    for n in GPU_LADDER:
        if n >= min(c.n_gpus for c in cells):
            break
        if attempt([_with(c, n_gpus=n) for c in cells], f"reduce to {n} GPUs"):
            break

    # 3. smaller scale, smallest first
    for scale in SCALE_LADDER:
        if scale >= min(c.scale for c in cells):
            break
        if attempt([_with(c, scale=scale) for c in cells], f"reduce to scale {scale}"):
            break

    return ReproArtifact(violation=best, cells=cells, shrink_log=log)


__all__ = ["SCALE_LADDER", "GPU_LADDER", "UNSHRINKABLE", "evaluate_cells", "shrink"]
