"""Differential conformance harness (``repro-sim verify``).

Four oracle families check every simulation result against laws that must
hold by construction:

* :mod:`repro.verify.analytic` — closed-form laws per report: traffic/
  metadata byte accounting, OTP pad and pool conservation, replay-guard
  ledger balance, ring-collective volume conservation.
* :mod:`repro.verify.differential` — the same compiled trace through
  every scheme: payload equality, slowdown sandwiches, metadata
  dominance, and the fleet-level geomean ordering of Table IV.
* :mod:`repro.verify.metamorphic` — perturbations with known effect: GPU
  relabeling, ``batch_size=1`` vs. conventional, dormant fault/adversary
  sections, cross-seed ranking stability.
* :mod:`repro.verify.shrinker` — bisects any violation to a minimal
  failing cell set and emits a replayable JSON artifact
  (``repro-sim verify --replay``).

See ``docs/VERIFICATION.md`` for the law catalogue with paper references.
"""

from repro.verify.harness import (
    ALL_SCHEMES,
    QUICK_WORKLOADS,
    VerifyResult,
    format_result,
    matrix_cells,
    run_verify,
)
from repro.verify.shrinker import evaluate_cells, shrink
from repro.verify.violations import (
    ARTIFACT_SCHEMA,
    CellRef,
    ReproArtifact,
    Violation,
)

__all__ = [
    "ALL_SCHEMES",
    "ARTIFACT_SCHEMA",
    "QUICK_WORKLOADS",
    "CellRef",
    "ReproArtifact",
    "VerifyResult",
    "Violation",
    "evaluate_cells",
    "format_result",
    "matrix_cells",
    "run_verify",
    "shrink",
]
