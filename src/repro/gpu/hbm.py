"""Stacked HBM model: fixed access latency plus bandwidth serialization.

Table III gives 512 GB/s per GPU stack.  At the 1 GHz shader clock that is
512 B/cycle, so a 64 B block occupies the stack for a fraction of a cycle;
HBM is effectively latency-bound for this study and only saturates under
heavy migration storms.  The model keeps a busy-until horizon anyway so
bulk 4 KB migrations see realistic pipelining.

Per the threat model (§II-B), HBM sits inside the trusted boundary, so no
encryption cost applies to local accesses — only the interconnects pay.
"""

from __future__ import annotations

from math import ceil

from repro.sim.stats import StatsRegistry


class HbmModel:
    """A GPU's local 3D-stacked memory."""

    def __init__(
        self,
        name: str,
        access_latency: int = 160,
        bytes_per_cycle: float = 512.0,
    ) -> None:
        if access_latency < 0 or bytes_per_cycle <= 0:
            raise ValueError("invalid HBM parameters")
        self.name = name
        self.access_latency = access_latency
        self.bytes_per_cycle = bytes_per_cycle
        self._busy_until = 0
        self.stats = StatsRegistry(name)
        self._reads = self.stats.counter("reads")
        self._bytes = self.stats.counter("bytes")

    def access(self, now: int, size_bytes: int) -> int:
        """Serve ``size_bytes`` starting at ``now``; returns completion cycle."""
        if size_bytes <= 0:
            raise ValueError("access size must be positive")
        start = max(now, self._busy_until)
        occupancy = max(1, ceil(size_bytes / self.bytes_per_cycle))
        self._busy_until = start + occupancy
        self._reads.add()
        self._bytes.add(size_bytes)
        return start + occupancy + self.access_latency

    @property
    def total_bytes(self) -> int:
        return self._bytes.value

    @property
    def accesses(self) -> int:
        return self._reads.value


__all__ = ["HbmModel"]
