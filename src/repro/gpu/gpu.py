"""Trace-driven GPU device model.

The device replays compute-unit lane streams through its TLB and cache
hierarchy.  Accesses that miss the caches are served from local HBM or, for
pages owned by another processor, become interconnect transactions routed
through the configured transport (which may be an unsecure fabric or a
secure channel layer).  An access-counter migration policy can instead pull
the whole page over (§II-A/V-A).

Progress throttling — the property that makes added communication latency
and bandwidth show up as end-to-end slowdown — comes from two windows:
a per-lane outstanding cap (wavefront dependencies) and a GPU-wide
outstanding-request window (MSHR capacity).

Hot-path notes: the pump replays :class:`~repro.workloads.compiled.
CompiledLane` integer arrays directly — no per-access objects — with lane
readiness inlined (the :class:`~repro.gpu.compute_unit.LaneState` enum is
for tests and diagnostics, not the issue loop), and every one-shot
completion callback goes through the engine's no-handle ``post``/
``post_at`` path.  Only the wakeup timer, which is routinely cancelled and
rescheduled, takes an :class:`~repro.sim.engine.Event` handle.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.configs import GpuConfig, MigrationConfig
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.compute_unit import ComputeUnitLane
from repro.interconnect.arbiter import RoundRobinArbiter
from repro.gpu.hbm import HbmModel
from repro.gpu.tlb import TlbHierarchy
from repro.interconnect.packet import Packet, PacketKind
from repro.memory.address_space import (
    BLOCK_BYTES,
    BLOCKS_PER_PAGE,
    PAGE_BYTES,
    block_of,
    page_of,
)
from repro.memory.directory import BlockDirectory
from repro.memory.migration import AccessCounterMigrationPolicy, MigrationDecision
from repro.memory.page_table import PageTable
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.transport import MessageTransport
from repro.workloads.base import GpuTrace
from repro.workloads.compiled import CompiledGpuTrace, CompiledLane

_txn_ids = itertools.count(1)


class GpuDevice:
    """One GPU node: lanes, caches, HBM, and remote-transaction logic."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        cfg: GpuConfig,
        transport: MessageTransport,
        page_table: PageTable,
        migration_policy: AccessCounterMigrationPolicy,
        migration_cfg: MigrationConfig,
        on_migration_commit: Callable[[int, int, int], None] | None = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.cfg = cfg
        self.transport = transport
        self.page_table = page_table
        self.migration_policy = migration_policy
        self.migration_cfg = migration_cfg
        self.on_migration_commit = on_migration_commit or (lambda page, old, new: None)

        self.hbm = HbmModel(f"gpu{node_id}.hbm", cfg.hbm_latency, cfg.hbm_bytes_per_cycle)
        self.tlbs = TlbHierarchy(f"gpu{node_id}", cfg.l1_tlb_entries, cfg.l2_tlb_entries)
        self.l2 = SetAssociativeCache(f"gpu{node_id}.l2", cfg.l2_size, cfg.l2_assoc)
        self.l1s: list[SetAssociativeCache] = []
        self.lanes: list[ComputeUnitLane] = []
        self.directory = BlockDirectory()

        self.outstanding = 0  # GPU-wide remote window occupancy
        self._pending: dict[int, tuple] = {}  # txn id -> (kind, payload)
        self._migrating: dict[int, dict] = {}  # page -> in-flight migration state
        self._wakeup = None
        self.finish_cycle: int | None = None
        self.instructions = 0

        self.stats = StatsRegistry(f"gpu{node_id}")
        self._remote_reads = self.stats.counter("remote_reads")
        self._remote_writes = self.stats.counter("remote_writes")
        self._local_accesses = self.stats.counter("local_accesses")
        self._cache_hits = self.stats.counter("cache_hits")
        self._migrations_started = self.stats.counter("migrations_started")
        self._served_requests = self.stats.counter("served_requests")

        transport.register(node_id, self._on_message)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def load_trace(self, trace: GpuTrace | CompiledGpuTrace) -> None:
        """Install the workload's lane streams for this GPU.

        Accepts both trace forms; the authoring form is compiled lane by
        lane inside :class:`ComputeUnitLane`.
        """
        if self.lanes:
            raise RuntimeError(f"gpu{self.node_id} already has a trace loaded")
        self.instructions = trace.instructions
        for lane_id, lane_trace in enumerate(trace.lanes):
            self.lanes.append(
                ComputeUnitLane(lane_id, lane_trace, self.cfg.lane_outstanding)
            )
            self.l1s.append(
                SetAssociativeCache(
                    f"gpu{self.node_id}.l1.{lane_id}", self.cfg.l1_size, self.cfg.l1_assoc
                )
            )
        self._arbiter = RoundRobinArbiter(range(len(self.lanes)))

    def start(self) -> None:
        self.sim.post(0, self._pump)

    # ------------------------------------------------------------------
    # Issue pump
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        now = self.sim.now
        lanes = self.lanes
        max_out = self.cfg.max_outstanding
        grant = self._arbiter.grant
        while self.outstanding < max_out:
            # inline LaneState.READY: not exhausted, under its outstanding
            # cap, and its gap has elapsed
            ready = [
                l.lane_id
                for l in lanes
                if l.index < l.n and l.outstanding < l.max_outstanding and now >= l.ready_at
            ]
            if not ready:
                break
            # wavefront schedulers grant issue slots fairly; without
            # rotation, low-numbered lanes would monopolize the window
            winner = grant(ready)
            self._handle_access(lanes[winner], now)
        self._schedule_wakeup(now)
        if self.finish_cycle is None:
            self._check_finished(now)

    def _schedule_wakeup(self, now: int) -> None:
        next_time: int | None = None
        for l in self.lanes:
            # inline LaneState.WAITING: not exhausted, under its cap, gap
            # still running
            if l.index < l.n and l.outstanding < l.max_outstanding and now < l.ready_at:
                if next_time is None or l.ready_at < next_time:
                    next_time = l.ready_at
        if next_time is None:
            return
        # an existing wakeup only counts if it is still in the future
        wakeup = self._wakeup
        if wakeup is not None and not wakeup.cancelled and wakeup.time > now:
            if wakeup.time <= next_time:
                return
            wakeup.cancel()
        self._wakeup = self.sim.schedule_at(next_time, self._pump)

    def _check_finished(self, now: int) -> None:
        lanes = self.lanes
        if not lanes:
            return
        for l in lanes:
            if l.index < l.n or l.outstanding:
                return
        self.finish_cycle = now

    # ------------------------------------------------------------------
    # Access classification
    # ------------------------------------------------------------------
    def _handle_access(self, lane: ComputeUnitLane, now: int) -> None:
        i = lane.index
        addr = lane.addrs[i]
        write = lane.writes[i]
        _, needs_walk = self.tlbs.translate(addr)
        if needs_walk:
            # The IOMMU walk round-trip stalls this access; the lane slot is
            # held so dependent work backs up behind the walk.
            lane.issue(now, consumes_slot=True)
            self.sim.post(
                self.cfg.iommu_walk_cycles,
                lambda l=lane, a=addr, w=write: self._access_memory(l, a, w, True),
            )
            return
        lane.issue(now, consumes_slot=False)
        self._access_memory(lane, addr, write, False)

    def _access_memory(
        self, lane: ComputeUnitLane, addr: int, write: int, slot_held: bool
    ) -> None:
        """Cache lookup and routing.  ``slot_held`` = lane slot already taken."""
        if not write:
            if self.l1s[lane.lane_id].lookup(addr):
                self._cache_hits.add()
                self._finish_access(lane, slot_held)
                return
            if self.l2.lookup(addr):
                self._cache_hits.add()
                self.l1s[lane.lane_id].fill(addr)
                self._finish_access(lane, slot_held)
                return

        page = addr // PAGE_BYTES
        owner = self.page_table.owner(page)
        if owner == self.node_id:
            self._local_access(lane, addr, write, slot_held)
        else:
            self._remote_access(lane, addr, write, owner, slot_held)

    def _finish_access(self, lane: ComputeUnitLane, slot_held: bool) -> None:
        if slot_held:
            lane.complete()
            self._pump()

    def _hold_slot(self, lane: ComputeUnitLane, slot_held: bool) -> None:
        """Ensure the lane slot is occupied for an in-flight access."""
        if not slot_held:
            lane.outstanding += 1

    # ------------------------------------------------------------------
    # Local path
    # ------------------------------------------------------------------
    def _local_access(
        self, lane: ComputeUnitLane, addr: int, write: int, slot_held: bool
    ) -> None:
        self._local_accesses.add()
        done = self.hbm.access(self.sim.now, BLOCK_BYTES)
        if write:
            # Local writes retire without stalling the lane.
            self._finish_access(lane, slot_held)
            return
        self._hold_slot(lane, slot_held)
        self.sim.post_at(done, lambda l=lane, a=addr: self._local_read_done(l, a))

    def _local_read_done(self, lane: ComputeUnitLane, addr: int) -> None:
        self.l2.fill(addr)
        self.l1s[lane.lane_id].fill(addr)
        lane.complete()
        self._pump()

    # ------------------------------------------------------------------
    # Remote path
    # ------------------------------------------------------------------
    def _remote_access(
        self, lane: ComputeUnitLane, addr: int, write: int, owner: int, slot_held: bool
    ) -> None:
        page = addr // PAGE_BYTES
        decision = self.migration_policy.on_remote_access(page, self.node_id)
        if decision is MigrationDecision.MIGRATE and page not in self._migrating:
            self._start_migration(page, owner)

        self._hold_slot(lane, slot_held)
        if write:
            self._remote_write(lane, addr, owner)
        else:
            self._remote_read(lane, addr, owner)

    def _remote_read(self, lane: ComputeUnitLane, addr: int, owner: int) -> None:
        block = block_of(addr)
        must_issue = self.directory.request(
            self.node_id, block, lambda _t, l=lane, a=addr: self._remote_read_done(l, a)
        )
        if not must_issue:
            return  # merged into an in-flight fetch
        self._remote_reads.add()
        self.outstanding += 1
        txn = next(_txn_ids)
        self._pending[txn] = ("read", block)
        packet = Packet(
            kind=PacketKind.READ_REQ,
            src=self.node_id,
            dst=owner,
            size_bytes=self.cfg_request_bytes(),
            txn_id=txn,
            address=addr,
        )
        self.transport.send(packet, self.sim.now)

    def _remote_read_done(self, lane: ComputeUnitLane, addr: int) -> None:
        self.l1s[lane.lane_id].fill(addr)
        lane.complete()
        self._pump()

    def _remote_write(self, lane: ComputeUnitLane, addr: int, owner: int) -> None:
        self._remote_writes.add()
        self.outstanding += 1
        txn = next(_txn_ids)
        self._pending[txn] = ("write", lane)
        packet = Packet(
            kind=PacketKind.WRITE_REQ,
            src=self.node_id,
            dst=owner,
            size_bytes=self.cfg_request_bytes() + BLOCK_BYTES,
            txn_id=txn,
            address=addr,
        )
        self.transport.send(packet, self.sim.now)

    def cfg_request_bytes(self) -> int:
        return 16  # request header; security metadata is added by the transport

    # ------------------------------------------------------------------
    # Page migration (requester side)
    # ------------------------------------------------------------------
    def _start_migration(self, page: int, owner: int) -> None:
        self._migrations_started.add()
        self._migrating[page] = {"received": 0, "owner": owner}
        txn = next(_txn_ids)
        self._pending[txn] = ("migration_req", page)
        packet = Packet(
            kind=PacketKind.MIGRATION_REQ,
            src=self.node_id,
            dst=owner,
            size_bytes=self.cfg_request_bytes(),
            txn_id=txn,
            address=page * PAGE_BYTES,
        )
        self.transport.send(packet, self.sim.now)

    def _migration_block_arrived(self, page: int) -> None:
        state = self._migrating.get(page)
        if state is None:
            return
        state["received"] += 1
        if state["received"] >= BLOCKS_PER_PAGE:
            commit_delay = (
                self.migration_cfg.driver_cycles + self.migration_cfg.shootdown_cycles
            )
            self.sim.post(commit_delay, lambda p=page: self._commit_migration(p))

    def _commit_migration(self, page: int) -> None:
        state = self._migrating.pop(page, None)
        if state is None:
            return
        old_owner = self.migration_policy.commit_migration(page, self.node_id)
        self.on_migration_commit(page, old_owner, self.node_id)

    def invalidate_page(self, page: int) -> None:
        """Migration shootdown against this device's TLBs and caches."""
        self.tlbs.shootdown(page)
        base = page * PAGE_BYTES
        self.l2.invalidate_page(base, PAGE_BYTES)
        for l1 in self.l1s:
            l1.invalidate_page(base, PAGE_BYTES)

    # ------------------------------------------------------------------
    # Message handling (both requester and server roles)
    # ------------------------------------------------------------------
    def _on_message(self, packet: Packet, now: int) -> None:
        kind = packet.kind
        if kind is PacketKind.READ_REQ:
            self._serve_read(packet)
        elif kind is PacketKind.WRITE_REQ:
            self._serve_write(packet)
        elif kind is PacketKind.MIGRATION_REQ:
            self._serve_migration(packet)
        elif kind is PacketKind.DATA_RESP:
            self._complete_read(packet, now)
        elif kind is PacketKind.WRITE_ACK:
            self._complete_write(packet)
        elif kind is PacketKind.MIGRATION_DATA:
            self._migration_block_arrived(page_of(packet.address))
        else:
            raise ValueError(f"gpu{self.node_id}: unexpected packet kind {kind}")

    def _serve_read(self, packet: Packet) -> None:
        self._served_requests.add()
        done = self.hbm.access(self.sim.now, BLOCK_BYTES)
        response = Packet(
            kind=PacketKind.DATA_RESP,
            src=self.node_id,
            dst=packet.src,
            size_bytes=16 + BLOCK_BYTES,
            txn_id=packet.txn_id,
            address=packet.address,
        )
        self.sim.post_at(done, lambda p=response: self.transport.send(p, self.sim.now))

    def _serve_write(self, packet: Packet) -> None:
        self._served_requests.add()
        done = self.hbm.access(self.sim.now, BLOCK_BYTES)
        ack = Packet(
            kind=PacketKind.WRITE_ACK,
            src=self.node_id,
            dst=packet.src,
            size_bytes=16,
            txn_id=packet.txn_id,
            address=packet.address,
        )
        self.sim.post_at(done, lambda p=ack: self.transport.send(p, self.sim.now))

    def _serve_migration(self, packet: Packet) -> None:
        """Stream the whole page to the requester as 64 block packets."""
        self._served_requests.add()
        page_base = page_of(packet.address) * PAGE_BYTES
        done = self.hbm.access(self.sim.now, PAGE_BYTES)

        def stream(requester=packet.src, base=page_base):
            for i in range(BLOCKS_PER_PAGE):
                block_packet = Packet(
                    kind=PacketKind.MIGRATION_DATA,
                    src=self.node_id,
                    dst=requester,
                    size_bytes=16 + BLOCK_BYTES,
                    address=base + i * BLOCK_BYTES,
                )
                self.transport.send(block_packet, self.sim.now)

        self.sim.post_at(done, stream)

    def _complete_read(self, packet: Packet, now: int) -> None:
        ctx = self._pending.pop(packet.txn_id, None)
        if ctx is None or ctx[0] != "read":
            raise ValueError(f"gpu{self.node_id}: stray DATA_RESP txn {packet.txn_id}")
        self.outstanding -= 1
        self.l2.fill(packet.address)
        self.directory.complete(self.node_id, ctx[1], now)
        self._pump()

    def _complete_write(self, packet: Packet) -> None:
        ctx = self._pending.pop(packet.txn_id, None)
        if ctx is None or ctx[0] != "write":
            raise ValueError(f"gpu{self.node_id}: stray WRITE_ACK txn {packet.txn_id}")
        self.outstanding -= 1
        ctx[1].complete()
        self._pump()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def remote_requests(self) -> int:
        return int(self._remote_reads.value + self._remote_writes.value)

    def rpki(self) -> float:
        """Remote requests per kilo-instruction (Table IV's metric)."""
        if not self.instructions:
            return 0.0
        return self.remote_requests / (self.instructions / 1000.0)


__all__ = ["GpuDevice"]
