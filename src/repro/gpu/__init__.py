"""GPU and host-CPU device models.

Each GPU is trace-driven: compute-unit lanes replay generated memory-access
streams through L1/L2 TLBs and caches; misses to remote pages become secure
interconnect transactions.  The model keeps the knobs the paper's results
hinge on — bounded outstanding requests, bursty multi-lane issue, cache
filtering, page migration — and abstracts instruction execution into
inter-access gap cycles.
"""

from repro.gpu.cache import CacheStats, SetAssociativeCache
from repro.gpu.tlb import Tlb, TlbHierarchy
from repro.gpu.hbm import HbmModel
from repro.gpu.compute_unit import ComputeUnitLane, LaneState
from repro.gpu.gpu import GpuDevice
from repro.gpu.cpu import HostCpu, Iommu

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "Tlb",
    "TlbHierarchy",
    "HbmModel",
    "ComputeUnitLane",
    "LaneState",
    "GpuDevice",
    "HostCpu",
    "Iommu",
]
