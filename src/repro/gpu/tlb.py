"""Per-GPU TLB hierarchy with IOMMU fallback.

Table III's organization: each CU has a private L1 TLB, a shared L2 TLB per
GPU, and misses walk to the CPU-side IOMMU (over PCIe).  The model is
fully-associative LRU on page numbers and returns the extra translation
cycles an access pays; shootdowns on migration invalidate entries.
"""

from __future__ import annotations

from repro.memory.address_space import page_of


class Tlb:
    """Fully-associative LRU TLB over page numbers."""

    def __init__(self, name: str, n_entries: int) -> None:
        if n_entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self.name = name
        self.n_entries = n_entries
        self._entries: dict[int, int] = {}
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, page: int) -> bool:
        self._stamp += 1
        if page in self._entries:
            self._entries[page] = self._stamp
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, page: int) -> None:
        self._stamp += 1
        if page not in self._entries and len(self._entries) >= self.n_entries:
            victim = min(self._entries, key=self._entries.get)
            del self._entries[victim]
        self._entries[page] = self._stamp

    def invalidate(self, page: int) -> bool:
        return self._entries.pop(page, None) is not None

    def flush(self) -> None:
        self._entries.clear()

    def __contains__(self, page: int) -> bool:
        return page in self._entries


class TlbHierarchy:
    """L1 + L2 TLB with cycle costs; the IOMMU walk cost is charged by the caller.

    ``translate`` returns the translation delay in cycles and whether an
    IOMMU walk is required (the walk's interconnect round trip is modeled by
    the caller since it crosses the PCIe link).
    """

    def __init__(
        self,
        name: str,
        l1_entries: int = 64,
        l2_entries: int = 1024,
        l1_latency: int = 1,
        l2_latency: int = 10,
    ) -> None:
        self.l1 = Tlb(f"{name}.l1tlb", l1_entries)
        self.l2 = Tlb(f"{name}.l2tlb", l2_entries)
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.iommu_walks = 0

    def translate(self, address: int) -> tuple[int, bool]:
        """Return ``(delay_cycles, needs_iommu_walk)`` for ``address``."""
        page = page_of(address)
        if self.l1.lookup(page):
            return self.l1_latency, False
        if self.l2.lookup(page):
            self.l1.fill(page)
            return self.l1_latency + self.l2_latency, False
        self.iommu_walks += 1
        self.l2.fill(page)
        self.l1.fill(page)
        return self.l1_latency + self.l2_latency, True

    def shootdown(self, page: int) -> None:
        """Invalidate one page's translation (migration shootdown)."""
        self.l1.invalidate(page)
        self.l2.invalidate(page)


__all__ = ["Tlb", "TlbHierarchy"]
