"""Host CPU node: memory server and IOMMU.

In the evaluated workloads the CPU stages input data (unified memory
first-touch on the host) and serves GPU requests: block reads/writes and
page-migration pulls.  Its DRAM sits outside the trusted boundary but is
protected by the CPU TEE's memory protection (PENGLAI-style, §IV-A), whose
cost is orthogonal to the interconnect protection this study measures — so
DRAM here is a latency/bandwidth server with no crypto charge of its own.

The IOMMU provides address translation for GPU-side TLB misses; its walk
latency is charged on the GPU (see ``GpuConfig.iommu_walk_cycles``).
"""

from __future__ import annotations

from math import ceil

from repro.interconnect.packet import Packet, PacketKind
from repro.memory.address_space import BLOCK_BYTES, BLOCKS_PER_PAGE, PAGE_BYTES, page_of
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.transport import MessageTransport


class Iommu:
    """CPU-side translation agent for GPU TLB misses."""

    def __init__(self, walk_latency: int = 200) -> None:
        self.walk_latency = walk_latency
        self.walks = 0

    def walk(self) -> int:
        """Perform one page walk; returns its latency in cycles."""
        self.walks += 1
        return self.walk_latency


class HostCpu:
    """The host processor (node 0)."""

    def __init__(
        self,
        sim: Simulator,
        transport: MessageTransport,
        node_id: int = 0,
        dram_latency: int = 220,
        dram_bytes_per_cycle: float = 64.0,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.transport = transport
        self.iommu = Iommu()
        self.dram_latency = dram_latency
        self.dram_bytes_per_cycle = dram_bytes_per_cycle
        self._busy_until = 0
        self.stats = StatsRegistry(f"cpu{node_id}")
        self._served = self.stats.counter("served_requests")
        transport.register(node_id, self._on_message)

    def _dram_access(self, size_bytes: int) -> int:
        start = max(self.sim.now, self._busy_until)
        occupancy = max(1, ceil(size_bytes / self.dram_bytes_per_cycle))
        self._busy_until = start + occupancy
        return start + occupancy + self.dram_latency

    # ------------------------------------------------------------------
    # Serving GPU requests
    # ------------------------------------------------------------------
    def _on_message(self, packet: Packet, now: int) -> None:
        kind = packet.kind
        if kind is PacketKind.READ_REQ:
            self._served.add()
            done = self._dram_access(BLOCK_BYTES)
            response = Packet(
                kind=PacketKind.DATA_RESP,
                src=self.node_id,
                dst=packet.src,
                size_bytes=16 + BLOCK_BYTES,
                txn_id=packet.txn_id,
                address=packet.address,
            )
            self.sim.post_at(done, lambda p=response: self.transport.send(p, self.sim.now))
        elif kind is PacketKind.WRITE_REQ:
            self._served.add()
            done = self._dram_access(BLOCK_BYTES)
            ack = Packet(
                kind=PacketKind.WRITE_ACK,
                src=self.node_id,
                dst=packet.src,
                size_bytes=16,
                txn_id=packet.txn_id,
                address=packet.address,
            )
            self.sim.post_at(done, lambda p=ack: self.transport.send(p, self.sim.now))
        elif kind is PacketKind.MIGRATION_REQ:
            self._served.add()
            done = self._dram_access(PAGE_BYTES)
            base = page_of(packet.address) * PAGE_BYTES

            def stream(requester=packet.src, page_base=base):
                for i in range(BLOCKS_PER_PAGE):
                    self.transport.send(
                        Packet(
                            kind=PacketKind.MIGRATION_DATA,
                            src=self.node_id,
                            dst=requester,
                            size_bytes=16 + BLOCK_BYTES,
                            address=page_base + i * BLOCK_BYTES,
                        ),
                        self.sim.now,
                    )

            self.sim.post_at(done, stream)
        else:
            raise ValueError(f"cpu: unexpected packet kind {kind}")

    def invalidate_page(self, page: int) -> None:
        """Migration shootdown — the CPU model keeps no GPU-visible caches."""

    @property
    def served_requests(self) -> int:
        return int(self._served.value)


__all__ = ["HostCpu", "Iommu"]
