"""Compute-unit lane: the unit of trace replay inside a GPU.

A lane models a group of compute units executing one stream of the kernel.
It advances through its access list; each access becomes eligible ``gap``
cycles after the previous one was issued.  Latency hiding is modeled by the
lane *not* blocking on individual loads — instead a per-lane cap on
outstanding remote requests (wavefront-dependency pressure) plus the GPU's
global window bound how far it can run ahead.
"""

from __future__ import annotations

from enum import Enum

from repro.workloads.base import Access, LaneTrace


class LaneState(Enum):
    READY = "ready"  # next access eligible now
    WAITING = "waiting"  # gap not yet elapsed
    BLOCKED = "blocked"  # at its outstanding-request cap
    DONE = "done"  # trace exhausted


class ComputeUnitLane:
    """Replay state for one lane trace."""

    def __init__(self, lane_id: int, trace: LaneTrace, max_outstanding: int = 4) -> None:
        if max_outstanding < 1:
            raise ValueError("lane needs at least one outstanding slot")
        self.lane_id = lane_id
        self.trace = trace
        self.max_outstanding = max_outstanding
        self.index = 0
        self.ready_at = trace[0].gap if trace else 0
        self.outstanding = 0
        self.issued = 0

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.index >= len(self.trace)

    @property
    def drained(self) -> bool:
        """Trace exhausted and every issued request completed."""
        return self.finished and self.outstanding == 0

    def state(self, now: int) -> LaneState:
        if self.finished:
            return LaneState.DONE
        if self.outstanding >= self.max_outstanding:
            return LaneState.BLOCKED
        if now < self.ready_at:
            return LaneState.WAITING
        return LaneState.READY

    def peek(self) -> Access:
        if self.finished:
            raise IndexError(f"lane {self.lane_id} is exhausted")
        return self.trace[self.index]

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def issue(self, now: int, consumes_slot: bool) -> Access:
        """Issue the next access at cycle ``now``.

        ``consumes_slot`` is True for accesses that stay outstanding
        (remote misses); cache hits and local accesses complete immediately
        from the lane's point of view.
        """
        if self.state(now) is not LaneState.READY:
            raise RuntimeError(f"lane {self.lane_id} not ready at {now}")
        access = self.trace[self.index]
        self.index += 1
        self.issued += 1
        if consumes_slot:
            self.outstanding += 1
        if not self.finished:
            self.ready_at = now + self.trace[self.index].gap
        return access

    def complete(self) -> None:
        """A previously issued outstanding access finished."""
        if self.outstanding <= 0:
            raise RuntimeError(f"lane {self.lane_id} has nothing outstanding")
        self.outstanding -= 1


__all__ = ["ComputeUnitLane", "LaneState"]
