"""Compute-unit lane: the unit of trace replay inside a GPU.

A lane models a group of compute units executing one stream of the kernel.
It advances through its access stream; each access becomes eligible ``gap``
cycles after the previous one was issued.  Latency hiding is modeled by the
lane *not* blocking on individual loads — instead a per-lane cap on
outstanding remote requests (wavefront-dependency pressure) plus the GPU's
global window bound how far it can run ahead.

The replay state is flat: three parallel integer tuples (``gaps``,
``addrs``, ``writes`` — the :class:`~repro.workloads.compiled.CompiledLane`
layout) and an index.  The device pump reads the arrays directly; no
per-access object ever exists on the replay path.  A legacy
``list[Access]`` trace is accepted and compiled on the way in, so unit
tests and ad-hoc callers can still hand the lane authoring-form traces.
"""

from __future__ import annotations

from enum import Enum

from repro.workloads.base import Access, AccessKind, LaneTrace
from repro.workloads.compiled import CompiledLane


class LaneState(Enum):
    READY = "ready"  # next access eligible now
    WAITING = "waiting"  # gap not yet elapsed
    BLOCKED = "blocked"  # at its outstanding-request cap
    DONE = "done"  # trace exhausted


class ComputeUnitLane:
    """Replay state for one lane's access stream."""

    __slots__ = (
        "lane_id",
        "gaps",
        "addrs",
        "writes",
        "n",
        "max_outstanding",
        "index",
        "ready_at",
        "outstanding",
        "issued",
    )

    def __init__(
        self,
        lane_id: int,
        trace: LaneTrace | CompiledLane,
        max_outstanding: int = 4,
    ) -> None:
        if max_outstanding < 1:
            raise ValueError("lane needs at least one outstanding slot")
        if not isinstance(trace, CompiledLane):
            trace = CompiledLane(
                tuple(a.gap for a in trace),
                tuple(a.address for a in trace),
                tuple(1 if a.is_write else 0 for a in trace),
            )
        self.lane_id = lane_id
        self.gaps = trace.gaps
        self.addrs = trace.addrs
        self.writes = trace.writes
        self.n = len(trace.gaps)
        self.max_outstanding = max_outstanding
        self.index = 0
        self.ready_at = trace.gaps[0] if self.n else 0
        self.outstanding = 0
        self.issued = 0

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.index >= self.n

    @property
    def drained(self) -> bool:
        """Trace exhausted and every issued request completed."""
        return self.index >= self.n and self.outstanding == 0

    def state(self, now: int) -> LaneState:
        if self.index >= self.n:
            return LaneState.DONE
        if self.outstanding >= self.max_outstanding:
            return LaneState.BLOCKED
        if now < self.ready_at:
            return LaneState.WAITING
        return LaneState.READY

    def peek(self) -> Access:
        """The next access in authoring form (diagnostics/tests only —
        the hot path reads the arrays directly)."""
        if self.index >= self.n:
            raise IndexError(f"lane {self.lane_id} is exhausted")
        i = self.index
        return Access(
            gap=self.gaps[i],
            address=self.addrs[i],
            kind=AccessKind.WRITE if self.writes[i] else AccessKind.READ,
        )

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def issue(self, now: int, consumes_slot: bool) -> None:
        """Issue the next access at cycle ``now``.

        ``consumes_slot`` is True for accesses that stay outstanding
        (remote misses); cache hits and local accesses complete immediately
        from the lane's point of view.
        """
        if self.state(now) is not LaneState.READY:
            raise RuntimeError(f"lane {self.lane_id} not ready at {now}")
        index = self.index + 1
        self.index = index
        self.issued += 1
        if consumes_slot:
            self.outstanding += 1
        if index < self.n:
            self.ready_at = now + self.gaps[index]

    def complete(self) -> None:
        """A previously issued outstanding access finished."""
        if self.outstanding <= 0:
            raise RuntimeError(f"lane {self.lane_id} has nothing outstanding")
        self.outstanding -= 1


__all__ = ["ComputeUnitLane", "LaneState"]
