"""Set-associative cache model with LRU replacement.

Used for the L1 vector cache (16 KB, 4-way) and the shared L2 (2 MB,
16-way) of Table III.  The model tracks hits/misses and filters which
accesses reach memory or the interconnect; data contents are not stored
(the simulator is timing-directed), only tags.

LRU is implemented per set with an access stamp, which is O(associativity)
per touch — small constants for 4/16-way sets and fast enough in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.address_space import BLOCK_BYTES


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Tag-only set-associative LRU cache over 64 B blocks."""

    def __init__(self, name: str, size_bytes: int, assoc: int, line_bytes: int = BLOCK_BYTES) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines < assoc or n_lines % assoc:
            raise ValueError(
                f"{name}: {size_bytes} B / {line_bytes} B lines not divisible into {assoc}-way sets"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = n_lines // assoc
        # each set: dict tag -> last-use stamp
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._stamp = 0
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        block = address // self.line_bytes
        return block % self.n_sets, block // self.n_sets

    def lookup(self, address: int) -> bool:
        """Touch ``address``; True on hit.  Misses do NOT allocate."""
        set_idx, tag = self._locate(address)
        cache_set = self._sets[set_idx]
        self._stamp += 1
        if tag in cache_set:
            cache_set[tag] = self._stamp
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, address: int) -> int | None:
        """Allocate the line for ``address``; returns the evicted address."""
        set_idx, tag = self._locate(address)
        cache_set = self._sets[set_idx]
        self._stamp += 1
        if tag in cache_set:
            cache_set[tag] = self._stamp
            return None
        victim_addr = None
        if len(cache_set) >= self.assoc:
            victim_tag = min(cache_set, key=cache_set.get)
            del cache_set[victim_tag]
            self.stats.evictions += 1
            victim_addr = (victim_tag * self.n_sets + set_idx) * self.line_bytes
        cache_set[tag] = self._stamp
        return victim_addr

    def contains(self, address: int) -> bool:
        """Non-statistical presence probe (does not update LRU)."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def invalidate(self, address: int) -> bool:
        set_idx, tag = self._locate(address)
        cache_set = self._sets[set_idx]
        if tag in cache_set:
            del cache_set[tag]
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_page(self, page_base: int, page_bytes: int) -> int:
        """Invalidate every line of a page (used on migration)."""
        dropped = 0
        for addr in range(page_base, page_base + page_bytes, self.line_bytes):
            if self.invalidate(addr):
                dropped += 1
        return dropped

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


__all__ = ["CacheStats", "SetAssociativeCache"]
