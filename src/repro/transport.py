"""Transport abstraction between device models and the (secure) fabric.

Devices (GPUs, the host CPU) produce and consume :class:`~repro.interconnect.packet.Packet`
messages but are agnostic to *how* they cross the machine: the unsecure
baseline sends them straight over the topology, while secure configurations
route them through per-pair secure channels that add pad-wait latency,
metadata bytes, ACK traffic, and (optionally) batching.

``send`` is fire-and-forget with a delivery callback; the transport invokes
``deliver`` on the destination device when the message (including all
security processing) lands.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.interconnect.packet import Packet

DeliveryHandler = Callable[[Packet, int], None]


class MessageTransport(Protocol):
    """What a device needs from the fabric."""

    def send(self, packet: Packet, now: int) -> None:
        """Inject ``packet`` at cycle ``now``; delivery is asynchronous."""

    def register(self, node: int, handler: DeliveryHandler) -> None:
        """Register the destination-side delivery handler for ``node``."""


__all__ = ["MessageTransport", "DeliveryHandler"]
