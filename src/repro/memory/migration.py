"""Access-counter-based page migration policy.

Models the NVIDIA Volta-style policy the paper adopts (§V-A): a page is
served by direct block access until one remote accessor has touched it
``threshold`` times, at which point the driver migrates the page to that
accessor.  Migration moves the whole 4 KB page (64 block-sized transfers on
the wire) and charges a fixed driver + TLB-shootdown cost, which is why
migration only pays off for high-locality pages (§II-A).

Pages can be pinned (e.g. CPU-resident input staged for streaming reads)
to model `cudaMemAdvise`-style hints from the locality API.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.memory.page_table import PageTable


class MigrationDecision(Enum):
    DIRECT_ACCESS = "direct_access"  # serve the single block remotely
    MIGRATE = "migrate"  # move the page to the accessor


@dataclass(frozen=True)
class MigrationCost:
    """Cycle costs charged when a migration is performed."""

    driver_cycles: int = 2000  # driver processing / unmap / remap
    shootdown_cycles: int = 800  # TLB shootdown across sharers


class AccessCounterMigrationPolicy:
    """Decide direct access vs migration from per-(page, accessor) counters."""

    def __init__(
        self,
        page_table: PageTable,
        threshold: int = 8,
        cost: MigrationCost | None = None,
        max_migrations_per_page: int = 3,
    ) -> None:
        if threshold < 1:
            raise ValueError("migration threshold must be >= 1")
        if max_migrations_per_page < 1:
            raise ValueError("max_migrations_per_page must be >= 1")
        self.page_table = page_table
        self.threshold = threshold
        self.cost = cost or MigrationCost()
        # Anti-thrash hysteresis: after this many migrations a page is
        # pinned where it is, as real UM drivers do for ping-ponging pages.
        self.max_migrations_per_page = max_migrations_per_page
        self._migration_counts: dict[int, int] = {}
        self._pinned: set[int] = set()

    def pin(self, page: int) -> None:
        """Exclude ``page`` from migration (locality-API hint)."""
        self._pinned.add(page)

    def pin_array_pages(self, first_page: int, n_pages: int) -> None:
        for page in range(first_page, first_page + n_pages):
            self.pin(page)

    def is_pinned(self, page: int) -> bool:
        return page in self._pinned

    def on_remote_access(self, page: int, accessor: int) -> MigrationDecision:
        """Record one remote access and decide how to serve it.

        The access that crosses the threshold is still served remotely (the
        migration happens alongside), matching counter-based prefetch-style
        migration rather than fault-based migration.
        """
        count = self.page_table.record_access(page, accessor)
        if page in self._pinned:
            return MigrationDecision.DIRECT_ACCESS
        if count >= self.threshold:
            return MigrationDecision.MIGRATE
        return MigrationDecision.DIRECT_ACCESS

    def commit_migration(self, page: int, new_owner: int) -> int:
        """Apply the ownership change; returns the previous owner."""
        count = self._migration_counts.get(page, 0) + 1
        self._migration_counts[page] = count
        if count >= self.max_migrations_per_page:
            self.pin(page)  # thrashing page: stop bouncing it around
        return self.page_table.migrate(page, new_owner)

    @property
    def total_cost_cycles(self) -> int:
        return self.cost.driver_cycles + self.cost.shootdown_cycles


__all__ = ["AccessCounterMigrationPolicy", "MigrationDecision", "MigrationCost"]
