"""Unified-memory substrate.

The paper's target system exposes a single address space to the CPU and all
GPUs (§II-B); a page lives in exactly one processor's memory at a time and
remote accesses either fetch single 64 B blocks (direct block access) or
migrate the whole 4 KB page, chosen by an access-counter policy like the one
in NVIDIA Volta GPUs (§V-A).
"""

from repro.memory.address_space import (
    AddressSpace,
    ArrayHandle,
    BLOCK_BYTES,
    PAGE_BYTES,
    BLOCKS_PER_PAGE,
    Placement,
    block_of,
    page_of,
)
from repro.memory.page_table import PageTable
from repro.memory.migration import AccessCounterMigrationPolicy, MigrationDecision
from repro.memory.directory import BlockDirectory

__all__ = [
    "AddressSpace",
    "ArrayHandle",
    "BLOCK_BYTES",
    "PAGE_BYTES",
    "BLOCKS_PER_PAGE",
    "Placement",
    "block_of",
    "page_of",
    "PageTable",
    "AccessCounterMigrationPolicy",
    "MigrationDecision",
    "BlockDirectory",
]
