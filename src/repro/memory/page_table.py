"""Page table tracking the current owner of every unified-memory page.

In the paper's TEE setting the security monitor validates all page-table
updates (§IV-A); here the table is the simulator's ground truth for where a
block access must be served, and it is updated atomically when a migration
commits.  Per-(page, accessor) access counters feed the migration policy.
"""

from __future__ import annotations

from repro.sim.stats import StatsRegistry


class PageTable:
    """Ownership map plus remote-access counters."""

    def __init__(self, initial_owners: dict[int, int]) -> None:
        self._owner = dict(initial_owners)
        # page -> accessor -> count; nested so a migration clears in O(1)
        self._access_counts: dict[int, dict[int, int]] = {}
        self.stats = StatsRegistry("page_table")
        self._migrations = self.stats.counter("migrations")

    def owner(self, page: int) -> int:
        try:
            return self._owner[page]
        except KeyError:
            raise KeyError(f"page {page} is not mapped") from None

    def is_local(self, page: int, node: int) -> bool:
        return self.owner(page) == node

    def record_access(self, page: int, accessor: int) -> int:
        """Count a remote access by ``accessor``; returns the new count."""
        per_page = self._access_counts.setdefault(page, {})
        count = per_page.get(accessor, 0) + 1
        per_page[accessor] = count
        return count

    def access_count(self, page: int, accessor: int) -> int:
        return self._access_counts.get(page, {}).get(accessor, 0)

    def migrate(self, page: int, new_owner: int) -> int:
        """Re-own ``page``; clears its counters.  Returns the old owner."""
        old = self.owner(page)
        if old == new_owner:
            raise ValueError(f"page {page} already owned by node {new_owner}")
        self._owner[page] = new_owner
        self._migrations.add()
        self._access_counts.pop(page, None)
        return old

    @property
    def migrations(self) -> int:
        return self._migrations.value

    def pages_owned_by(self, node: int) -> list[int]:
        return [p for p, o in self._owner.items() if o == node]

    def __len__(self) -> int:
        return len(self._owner)


__all__ = ["PageTable"]
