"""Block directory: outstanding remote block fetches with request merging.

When several compute-unit lanes of one GPU miss on the same remote 64 B
block while a fetch is already in flight, the hardware merges them into the
existing MSHR entry instead of issuing duplicate interconnect requests.
This directory provides that merging, which matters for traffic fidelity:
without it, bursty lanes would multiply remote traffic that real GPUs
coalesce.
"""

from __future__ import annotations

from typing import Callable


class BlockDirectory:
    """Tracks in-flight block fetches per requesting node."""

    def __init__(self) -> None:
        # (node, block) -> list of completion callbacks
        self._pending: dict[tuple[int, int], list[Callable[[int], None]]] = {}
        self.merged = 0
        self.issued = 0

    def request(
        self, node: int, block: int, on_complete: Callable[[int], None]
    ) -> bool:
        """Register interest in ``block``.

        Returns True if the caller must issue a new fetch, False if it was
        merged into an in-flight one.  ``on_complete(finish_cycle)`` fires
        when the data arrives either way.
        """
        key = (node, block)
        waiters = self._pending.get(key)
        if waiters is not None:
            waiters.append(on_complete)
            self.merged += 1
            return False
        self._pending[key] = [on_complete]
        self.issued += 1
        return True

    def complete(self, node: int, block: int, finish_cycle: int) -> int:
        """Fire all waiters for ``block``; returns how many were woken."""
        waiters = self._pending.pop((node, block), None)
        if waiters is None:
            raise KeyError(f"no pending fetch for node {node} block {block}")
        for callback in waiters:
            callback(finish_cycle)
        return len(waiters)

    def in_flight(self, node: int, block: int) -> bool:
        return (node, block) in self._pending

    def pending_count(self, node: int | None = None) -> int:
        if node is None:
            return len(self._pending)
        return sum(1 for key in self._pending if key[0] == node)


__all__ = ["BlockDirectory"]
