"""Single unified address space shared by the CPU and all GPUs.

Workload generators allocate named arrays here; each allocation chooses a
*placement* that decides which processor's memory initially owns each page.
Placements mirror how real multi-GPU allocators distribute unified memory:

* ``OWNER``       — all pages on one node (e.g. input staged in CPU DRAM)
* ``INTERLEAVED`` — pages round-robined across GPUs (default for big arrays)
* ``BLOCKED``     — contiguous page ranges per GPU (owner-computes tiling)

Addresses are plain integers; 64 B blocks and 4 KB pages match Table III's
cacheline-granularity sharing and page-migration unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

BLOCK_BYTES = 64
PAGE_BYTES = 4096
BLOCKS_PER_PAGE = PAGE_BYTES // BLOCK_BYTES


def page_of(address: int) -> int:
    return address // PAGE_BYTES


def block_of(address: int) -> int:
    return address // BLOCK_BYTES


class Placement(Enum):
    OWNER = "owner"
    INTERLEAVED = "interleaved"
    BLOCKED = "blocked"


@dataclass(frozen=True)
class ArrayHandle:
    """A named allocation in the unified address space."""

    name: str
    base: int
    size_bytes: int
    placement: Placement
    owner: int | None  # only for Placement.OWNER

    @property
    def n_pages(self) -> int:
        return (self.size_bytes + PAGE_BYTES - 1) // PAGE_BYTES

    @property
    def n_blocks(self) -> int:
        return (self.size_bytes + BLOCK_BYTES - 1) // BLOCK_BYTES

    def addr(self, byte_offset: int) -> int:
        """Absolute address of a byte offset into the array."""
        if byte_offset < 0 or byte_offset >= self.size_bytes:
            raise IndexError(f"offset {byte_offset} outside array {self.name}")
        return self.base + byte_offset

    def block_addr(self, block_index: int) -> int:
        """Absolute address of the i-th 64 B block of the array."""
        return self.addr(block_index * BLOCK_BYTES)


class AddressSpace:
    """Allocates page-aligned arrays and assigns initial page owners."""

    def __init__(self, gpu_nodes: list[int], cpu_node: int = 0) -> None:
        if not gpu_nodes:
            raise ValueError("need at least one GPU node")
        self.gpu_nodes = list(gpu_nodes)
        self.cpu_node = cpu_node
        self._next_base = PAGE_BYTES  # keep address 0 unused
        self._arrays: dict[str, ArrayHandle] = {}
        self._page_owner: dict[int, int] = {}

    def alloc(
        self,
        name: str,
        size_bytes: int,
        placement: Placement = Placement.INTERLEAVED,
        owner: int | None = None,
    ) -> ArrayHandle:
        if name in self._arrays:
            raise ValueError(f"array {name!r} already allocated")
        if size_bytes <= 0:
            raise ValueError("array size must be positive")
        if placement is Placement.OWNER and owner is None:
            raise ValueError("OWNER placement requires an owner node")
        handle = ArrayHandle(name, self._next_base, size_bytes, placement, owner)
        n_pages = handle.n_pages
        self._next_base += n_pages * PAGE_BYTES
        first_page = page_of(handle.base)
        for i in range(n_pages):
            self._page_owner[first_page + i] = self._owner_for(placement, owner, i, n_pages)
        self._arrays[name] = handle
        return handle

    def _owner_for(self, placement: Placement, owner: int | None, index: int, n_pages: int) -> int:
        if placement is Placement.OWNER:
            assert owner is not None
            return owner
        if placement is Placement.INTERLEAVED:
            return self.gpu_nodes[index % len(self.gpu_nodes)]
        # BLOCKED: contiguous, evenly split ranges
        per_gpu = max(1, (n_pages + len(self.gpu_nodes) - 1) // len(self.gpu_nodes))
        return self.gpu_nodes[min(index // per_gpu, len(self.gpu_nodes) - 1)]

    def array(self, name: str) -> ArrayHandle:
        return self._arrays[name]

    def arrays(self) -> dict[str, ArrayHandle]:
        return dict(self._arrays)

    def initial_owner(self, page: int) -> int:
        try:
            return self._page_owner[page]
        except KeyError:
            raise KeyError(f"page {page} was never allocated") from None

    def initial_owners(self) -> dict[int, int]:
        return dict(self._page_owner)

    @property
    def allocated_bytes(self) -> int:
        return sum(a.n_pages * PAGE_BYTES for a in self._arrays.values())


__all__ = [
    "AddressSpace",
    "ArrayHandle",
    "BLOCK_BYTES",
    "PAGE_BYTES",
    "BLOCKS_PER_PAGE",
    "Placement",
    "block_of",
    "page_of",
]
