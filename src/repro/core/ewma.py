"""Exponentially weighted moving average (EWMA).

The monitoring phase of the Dynamic mechanism smooths per-interval request
ratios with EWMAs (Formula 1/3): ``v' = (1 - rate) * v + rate * sample``.
A larger rate weights the current interval more (the paper uses α=0.9 for
the direction split and β=0.5 for the per-destination split).
"""

from __future__ import annotations


class Ewma:
    """A single EWMA-tracked value."""

    def __init__(self, rate: float, initial: float = 0.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"EWMA rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.value = float(initial)
        self.samples = 0

    def update(self, sample: float) -> float:
        """Fold one interval's sample in; returns the new value."""
        self.value = (1.0 - self.rate) * self.value + self.rate * sample
        self.samples += 1
        return self.value

    def reset(self, value: float = 0.0) -> None:
        self.value = float(value)
        self.samples = 0

    def __repr__(self) -> str:
        return f"Ewma(rate={self.rate}, value={self.value:.4f})"


__all__ = ["Ewma"]
