"""Dynamic OTP buffer allocation (§IV-B, Formulas 1–4).

Every interval ``T`` the allocator:

1. computes the send-direction weight
   ``S_{i+1} = (1-α) S_i + α · SReq_i / (SReq_i + RReq_i)``   (Formula 1)
2. splits the pool: ``SPad = Total · S``, ``RPad = Total − SPad``  (Formula 2)
3. per peer ``m``, smooths the within-direction share
   ``S^m_{i+1} = (1-β) S^m_i + β · SReq^m_i / SReq_i`` (and the receive
   analogue)                                                  (Formula 3)
4. assigns ``SPad^m = SPad · S^m`` / ``RPad^m = RPad · R^m``  (Formula 4)

The paper's formulas produce real numbers; hardware allocates whole buffer
entries, so this implementation integerizes each direction's assignment
with the largest-remainder method, which preserves the pool total exactly
(a property the tests assert).

Intervals with zero traffic leave the EWMAs untouched — there is no ratio
to fold in — matching a hardware implementation that only updates counters
it observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ewma import Ewma


def largest_remainder(total: int, weights: list[float]) -> list[int]:
    """Apportion ``total`` integer units proportionally to ``weights``.

    Falls back to an even split when all weights are zero.  The result
    always sums to ``total`` and every share is non-negative.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights:
        return []
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    weight_sum = sum(weights)
    if weight_sum <= 0.0:
        weights = [1.0] * len(weights)
        weight_sum = float(len(weights))
    exact = [total * w / weight_sum for w in weights]
    floors = [int(e) for e in exact]
    shortfall = total - sum(floors)
    # Tie-break order is part of the function's contract: largest remainder
    # first, then largest weight, then *ascending index* — spelled out as an
    # explicit ascending sort so exact ties are deterministic and invariant
    # under appending peers (the relabeling oracle in ``repro.verify`` runs
    # permuted-peer sweeps against this).  A ``reverse=True`` composite sort
    # would leave the index order implicit in sort stability.
    remainders = sorted(
        range(len(weights)), key=lambda i: (floors[i] - exact[i], -weights[i], i)
    )
    for i in remainders[:shortfall]:
        floors[i] += 1
    return floors


@dataclass
class AllocationPlan:
    """One interval's integer pad assignment."""

    send_total: int
    recv_total: int
    send_per_peer: dict[int, int] = field(default_factory=dict)
    recv_per_peer: dict[int, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.send_total + self.recv_total

    def validate(self, pool: int) -> None:
        if self.send_total + self.recv_total != pool:
            raise AssertionError("plan does not cover the pool")
        if sum(self.send_per_peer.values()) != self.send_total:
            raise AssertionError("send shares do not sum to the send total")
        if sum(self.recv_per_peer.values()) != self.recv_total:
            raise AssertionError("recv shares do not sum to the recv total")


class DynamicOtpAllocator:
    """Per-processor monitoring state and interval-based reallocation."""

    def __init__(
        self,
        peers: list[int],
        total_pool: int,
        alpha: float = 0.9,
        beta: float = 0.5,
        interval: int = 1000,
        min_per_stream: int = 1,
        min_samples: int = 32,
    ) -> None:
        if total_pool < 0:
            raise ValueError("pool size must be non-negative")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not peers:
            raise ValueError("allocator needs at least one peer")
        if min_per_stream < 0:
            raise ValueError("min_per_stream must be non-negative")
        self.peers = list(peers)
        self.total_pool = total_pool
        self.interval = interval
        # Every (direction, peer) stream keeps at least this many entries
        # so a misprediction costs partial hiding, not a full desync; only
        # the pool beyond the floors is redistributed.  Disabled when the
        # pool is too small to afford it (OTP 1x collapses to Private).
        if total_pool >= 2 * len(peers) * min_per_stream:
            self.min_per_stream = min_per_stream
        else:
            self.min_per_stream = 0
        # An interval must observe at least this many requests before its
        # ratios are folded into the EWMAs: sparse intervals carry noise,
        # not signal, and repartitioning on noise discards warmed pads.
        self.min_samples = min_samples
        # Initial state mirrors Private: even split across directions/peers.
        self.send_weight = Ewma(alpha, initial=0.5)
        share = 1.0 / len(peers)
        self.send_peer_weight = {p: Ewma(beta, initial=share) for p in peers}
        self.recv_peer_weight = {p: Ewma(beta, initial=share) for p in peers}
        # Current-interval counters (the monitoring phase).
        self._send_counts = {p: 0 for p in peers}
        self._recv_counts = {p: 0 for p in peers}
        self.interval_start = 0
        self.adjustments = 0
        #: fully idle intervals skipped by :meth:`maybe_adjust`'s single
        #: fold (surfaced as the ``alloc.idle_intervals`` metric)
        self.idle_intervals = 0

    # ------------------------------------------------------------------
    # Monitoring phase
    # ------------------------------------------------------------------
    def record_send(self, peer: int) -> None:
        self._send_counts[peer] += 1

    def record_recv(self, peer: int) -> None:
        self._recv_counts[peer] += 1

    @property
    def interval_send_total(self) -> int:
        return sum(self._send_counts.values())

    @property
    def interval_recv_total(self) -> int:
        return sum(self._recv_counts.values())

    # ------------------------------------------------------------------
    # Adjustment phase
    # ------------------------------------------------------------------
    def due(self, now: int) -> bool:
        return now >= self.interval_start + self.interval

    def maybe_adjust(self, now: int) -> AllocationPlan | None:
        """Run the adjustment phase if at least one interval has elapsed.

        When the sim skipped idle cycles and *several* intervals elapsed at
        once, the pending counters are folded exactly **once** — this is
        deliberate, not a shortcut.  Monitoring is tick-driven: every
        ``record_send``/``record_recv`` is preceded by a tick at the same
        cycle, so any counts pending at a boundary crossing were all
        observed inside the first elapsed interval; every later elapsed
        interval saw zero traffic, and zero-traffic intervals leave the
        EWMAs untouched by design (module docstring) — iterating the decay
        per empty interval would reproduce byte-identical weights at N×
        the cost.  The fold therefore runs one :meth:`adjust`, tallies the
        ``elapsed - 1`` skipped intervals in :attr:`idle_intervals` (the
        ``alloc.idle_intervals`` metric), and jumps the interval origin to
        the boundary containing ``now``.  Regression-tested with a
        >2-interval gap in ``tests/test_core_contribution.py``.
        """
        if not self.due(now):
            return None
        elapsed = (now - self.interval_start) // self.interval
        plan = self.adjust()
        self.idle_intervals += elapsed - 1
        self.interval_start += elapsed * self.interval
        return plan

    def adjust(self) -> AllocationPlan:
        """Formulas 1–4 over the just-finished interval's counters."""
        sreq = self.interval_send_total
        rreq = self.interval_recv_total

        if sreq + rreq >= self.min_samples:
            self.send_weight.update(sreq / (sreq + rreq))  # Formula 1
        if sreq >= self.min_samples:
            for peer, count in self._send_counts.items():
                self.send_peer_weight[peer].update(count / sreq)  # Formula 3
        if rreq >= self.min_samples:
            for peer, count in self._recv_counts.items():
                self.recv_peer_weight[peer].update(count / rreq)

        floor = self.min_per_stream * len(self.peers)  # per direction
        send_extra, recv_extra = largest_remainder(
            self.total_pool - 2 * floor,
            [self.send_weight.value, 1.0 - self.send_weight.value],
        )  # Formula 2, integerized above the floors
        send_total = floor + send_extra
        recv_total = floor + recv_extra
        send_shares = [
            self.min_per_stream + s
            for s in largest_remainder(
                send_extra, [self.send_peer_weight[p].value for p in self.peers]
            )
        ]  # Formula 4
        recv_shares = [
            self.min_per_stream + s
            for s in largest_remainder(
                recv_extra, [self.recv_peer_weight[p].value for p in self.peers]
            )
        ]

        plan = AllocationPlan(
            send_total=send_total,
            recv_total=recv_total,
            send_per_peer=dict(zip(self.peers, send_shares)),
            recv_per_peer=dict(zip(self.peers, recv_shares)),
        )
        plan.validate(self.total_pool)
        for counts in (self._send_counts, self._recv_counts):
            for peer in counts:
                counts[peer] = 0
        self.adjustments += 1
        return plan

    def even_plan(self) -> AllocationPlan:
        """The launch-time allocation: even split, like Private."""
        send_total, recv_total = largest_remainder(self.total_pool, [1.0, 1.0])
        send_shares = largest_remainder(send_total, [1.0] * len(self.peers))
        recv_shares = largest_remainder(recv_total, [1.0] * len(self.peers))
        plan = AllocationPlan(
            send_total=send_total,
            recv_total=recv_total,
            send_per_peer=dict(zip(self.peers, send_shares)),
            recv_per_peer=dict(zip(self.peers, recv_shares)),
        )
        plan.validate(self.total_pool)
        return plan


__all__ = ["DynamicOtpAllocator", "AllocationPlan", "largest_remainder"]
