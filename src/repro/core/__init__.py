"""The paper's primary contribution.

Two mechanisms reduce the cost of secure multi-GPU communication:

* :class:`DynamicOtpAllocator` (§IV-B) — per interval ``T``, repartition a
  processor's fixed pool of OTP buffer entries across (direction × peer)
  pad streams using EWMA-smoothed request counts (Formulas 1–4).
* :class:`BatchingController` (§IV-C) — amortize security metadata over
  batches of data blocks: one batched MsgMAC and one ACK per ``n`` blocks,
  with receiver-side MsgMAC storage and lazy integrity verification.
"""

from repro.core.ewma import Ewma
from repro.core.dynamic_allocator import AllocationPlan, DynamicOtpAllocator
from repro.core.batching import BatchingController, BlockGrant, MsgMacStorage

__all__ = [
    "Ewma",
    "AllocationPlan",
    "DynamicOtpAllocator",
    "BatchingController",
    "BlockGrant",
    "MsgMacStorage",
]
