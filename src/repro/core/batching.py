"""Security-metadata batching (§IV-C, Figs 19/20).

Conventionally every 64 B data transfer carries MsgCTR + MsgMAC + sender ID
and triggers its own ACK.  The batching controller instead groups up to
``batch_size`` data blocks per directed pair:

* every block still carries MsgCTR + sender ID (decryption must not wait —
  lazy integrity verification keeps data usable immediately);
* the first block of a batch carries a 1 B length field;
* one batched MsgMAC authenticates the whole group.  It rides on the block
  that closes the batch, or in a small standalone packet when a timeout
  closes a partial batch;
* the receiver returns a single ACK per batch for replay protection.

The receiver accumulates per-block MsgMACs in :class:`MsgMacStorage` until
the batch completes (tolerating out-of-order arrival); §IV-D sizes this
storage at ``max(16, 64) × peers × 8 B`` per processor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.configs import MetadataConfig


@dataclass(frozen=True)
class BlockGrant:
    """Metadata decision for one data block entering a batch."""

    meta_bytes: int  # security metadata attached to this block
    opens_batch: bool
    closes_batch: bool
    batch_id: int
    batch_size: int  # blocks in the batch so far (valid when closing)


class _PairBatch:
    __slots__ = ("batch_id", "count", "opened_at")

    def __init__(self, batch_id: int, now: int) -> None:
        self.batch_id = batch_id
        self.count = 0
        self.opened_at = now


class BatchingController:
    """Sender-side batch former for one processor.

    The owner (the secure channel layer) calls :meth:`add_block` for every
    outgoing data block and :meth:`timeout_close` when a batch's timer
    fires; the controller only decides metadata sizes and batch boundaries,
    never touches the clock itself.
    """

    def __init__(self, metadata: MetadataConfig, batch_size: int = 16, timeout: int = 160) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if timeout < 1:
            raise ValueError("batch timeout must be >= 1")
        self.metadata = metadata
        self.batch_size = batch_size
        self.timeout = timeout
        self._open: dict[int, _PairBatch] = {}  # peer -> open batch
        self._next_batch_id = 0
        self.batches_opened = 0
        self.batches_closed_full = 0
        self.batches_closed_timeout = 0
        #: timers that fired for an already-closed batch and were ignored —
        #: the size-close vs. timeout-close race resolves as a counted no-op
        self.stale_timeouts = 0

    def add_block(self, peer: int, now: int) -> BlockGrant:
        """Account one outgoing data block to ``peer``."""
        md = self.metadata
        batch = self._open.get(peer)
        opens = batch is None
        if opens:
            batch = _PairBatch(self._next_batch_id, now)
            self._next_batch_id += 1
            self._open[peer] = batch
            self.batches_opened += 1
        batch.count += 1
        meta = md.batched_block_meta_bytes
        if opens:
            meta += md.batch_len_bytes
        closes = batch.count >= self.batch_size
        if closes:
            meta += md.msg_mac_bytes  # the batched MsgMAC rides along
            del self._open[peer]
            self.batches_closed_full += 1
        return BlockGrant(
            meta_bytes=meta,
            opens_batch=opens,
            closes_batch=closes,
            batch_id=batch.batch_id,
            batch_size=batch.count,
        )

    def timeout_close(self, peer: int, batch_id: int) -> int | None:
        """Close a batch whose timer fired.

        Returns the size in blocks of the closed batch, or None when the
        timer is stale (the batch already closed by filling up).  Batch ids
        are never reused within a controller, so a stale timer can only
        ever observe ``batch_id != batch.batch_id`` (or no open batch) and
        must change nothing: no MAC packet, no close counter, no bytes.
        The caller relies on the None return to skip the standalone-MAC
        send entirely; :attr:`stale_timeouts` counts the no-ops so the
        race stays observable.
        """
        batch = self._open.get(peer)
        if batch is None or batch.batch_id != batch_id:
            self.stale_timeouts += 1
            return None
        del self._open[peer]
        self.batches_closed_timeout += 1
        return batch.count

    def open_batch(self, peer: int) -> tuple[int, int] | None:
        """(batch_id, count) of the currently open batch toward ``peer``."""
        batch = self._open.get(peer)
        if batch is None:
            return None
        return batch.batch_id, batch.count

    def standalone_mac_bytes(self) -> int:
        """Wire size of a timeout-close batched-MAC packet."""
        return self.metadata.msg_mac_bytes + self.metadata.sender_id_bytes + 1

    # Conventional (non-batched) sizing, for comparison paths.
    def conventional_meta_bytes(self) -> int:
        return self.metadata.per_message_meta_bytes


class MsgMacStorage:
    """Receiver-side per-pair MsgMAC accumulation (Fig. 20).

    Stores the per-block MACs of in-flight batches so out-of-order blocks
    can be verified once the batched MsgMAC arrives.  Tracks the high-water
    mark to validate the paper's 2 KB-per-GPU provisioning claim (§IV-D).
    """

    def __init__(self, capacity_per_pair: int = 64) -> None:
        if capacity_per_pair < 1:
            raise ValueError("capacity must be positive")
        self.capacity_per_pair = capacity_per_pair
        self._stored: dict[int, int] = {}  # sender -> MACs currently held
        self.max_occupancy = 0
        self.overflows = 0

    def store(self, sender: int) -> None:
        count = self._stored.get(sender, 0) + 1
        if count > self.capacity_per_pair:
            # An overflow would force eager verification in hardware; the
            # model counts it so provisioning claims are checkable.
            self.overflows += 1
        self._stored[sender] = count
        self.max_occupancy = max(self.max_occupancy, count)

    def release_batch(self, sender: int, n_blocks: int) -> None:
        count = self._stored.get(sender, 0)
        if n_blocks > count:
            raise ValueError(
                f"releasing {n_blocks} MACs but only {count} stored for sender {sender}"
            )
        self._stored[sender] = count - n_blocks

    def occupancy(self, sender: int) -> int:
        return self._stored.get(sender, 0)


__all__ = ["BatchingController", "BlockGrant", "MsgMacStorage"]
