"""CI entry: end-to-end fleet smoke against real coordinator/worker processes.

Starts ``repro-sim fleet coordinator`` and two ``repro-sim fleet
serve-worker`` child processes, submits a sweep through
:class:`~repro.fleet.client.FleetClient`, SIGKILLs one worker while the
sweep is in flight, and asserts the contract the fleet exists to keep:

* the sweep still completes — the dead worker's remaining cells are
  reassigned under the lease machinery, with zero lost and zero
  duplicated cells;
* every report is byte-identical (canonical JSON) to the same cell run
  directly through :class:`~repro.runner.sweep.SweepRunner` — worker
  death, reassignment, and multi-worker interleaving leave no trace in
  the results;
* ``status`` shows the surviving worker; a client with the wrong key is
  rejected with a structured ``auth_failed``;
* SIGTERM stops the coordinator cleanly (exit 0) and the surviving
  worker exits 0 on the shutdown frame.

Run by the ``fleet-smoke`` CI job under a wall-clock guard::

    PYTHONPATH=src timeout 600 python -c \
        "from repro.fleet.smoke import smoke; smoke()"
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.configs import scheme_config
from repro.runner import SweepJob, SweepRunner
from repro.service.protocol import canonical_report_json
from repro.workloads import get_workload

from repro.fleet.client import FleetClient, FleetError
from repro.fleet.wire import MIN_KEY_BYTES

#: The sweep: three schemes x eight seeds -> 24 cells in eight work units
#: (cells sharing a seed share a trace key), enough in-flight grist that
#: killing a worker once results start landing reliably strands a
#: partially-finished unit for the lease machinery to reassign.
MATRIX = [
    (workload, scheme, seed)
    for workload in ("fir",)
    for scheme in ("unsecure", "private", "batching")
    for seed in (1, 2, 3, 4, 5, 6, 7, 8)
]

SMOKE_KEY = b"fleet-smoke-shared-secret"
assert len(SMOKE_KEY) >= MIN_KEY_BYTES


def _jobs(gpus: int, scale: float) -> list[SweepJob]:
    return [
        SweepJob(
            spec=get_workload(workload),
            config=scheme_config(scheme, n_gpus=gpus),
            seed=seed,
            scale=scale,
        )
        for workload, scheme, seed in MATRIX
    ]


def _wait_for_port(port_file: Path, deadline_s: float = 30.0) -> int:
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.1)
    raise AssertionError(f"coordinator never wrote its port to {port_file}")


def smoke(gpus: int = 2, scale: float = 0.5) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
    key_file = workdir / "fleet.key"
    key_file.write_bytes(SMOKE_KEY)
    port_file = workdir / "port"
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env["REPRO_TRACE_DIR"] = str(workdir / "traces")

    children: list[subprocess.Popen] = []

    def spawn(*argv: str) -> subprocess.Popen:
        child = subprocess.Popen([sys.executable, "-m", "repro", *argv], env=env)
        children.append(child)
        return child

    coordinator = spawn(
        "fleet", "coordinator",
        "--host", "127.0.0.1", "--port", "0",
        "--auth-key-file", str(key_file),
        "--port-file", str(port_file),
        "--lease-timeout", "3", "--steal-after", "2",
    )
    try:
        port = _wait_for_port(port_file)
        addr = f"127.0.0.1:{port}"
        workers = [
            spawn(
                "fleet", "serve-worker",
                "--addr", addr,
                "--auth-key-file", str(key_file),
                "--name", f"smoke-worker-{i}",
                "--heartbeat", "0.5",
            )
            for i in range(2)
        ]

        # Wrong key -> structured auth_failed, coordinator unharmed.
        try:
            with FleetClient(addr, b"not-the-fleet-key") as impostor:
                impostor.ping()
            raise AssertionError("a client with the wrong key was accepted")
        except FleetError as exc:
            assert exc.code == "auth_failed", f"expected auth_failed, got {exc.code}"

        import threading

        # SIGKILL one worker while the sweep is in flight.  The blocking
        # sweep call can't do it, so an assassin thread watches the
        # coordinator's metrics over its own connection and pulls the
        # trigger as soon as results start landing — at that point the
        # victim is mid-unit and its remaining cells must be reassigned.
        killed = threading.Event()
        stop = threading.Event()

        def assassinate() -> None:
            with FleetClient(addr, SMOKE_KEY, name="smoke-assassin") as spy:
                while not stop.is_set():
                    metrics = spy.status()["metrics"]
                    if metrics.get("fleet.completed", {}).get("value", 0) >= 1:
                        workers[0].kill()
                        killed.set()
                        return
                    time.sleep(0.05)

        with FleetClient(addr, SMOKE_KEY, name="smoke-client") as client:
            # Wait until both workers have registered.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if len(client.status()["workers"]) == 2:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("workers never registered with the coordinator")

            assassin = threading.Thread(target=assassinate, daemon=True)
            assassin.start()
            try:
                reports = client.sweep(_jobs(gpus, scale), timeout_s=300)
            finally:
                stop.set()
            assassin.join(timeout=10)
            status = client.status()

        assert killed.is_set(), "sweep finished before the assassin saw any results"
        assert workers[0].wait(timeout=10) != 0, "SIGKILLed worker exited 0?"
        survivors = status["workers"]
        assert len(survivors) == 1, f"expected 1 surviving worker, got {survivors}"
        reassigned = status["metrics"].get("fleet.reassigned", {}).get("value", 0)
        assert reassigned >= 1, f"expected reassignment after the kill, metrics: {status['metrics']}"

        # Byte-identity against the direct runner: worker death and
        # reassignment must leave no trace in the merged results.
        direct = SweepRunner(jobs=1, cache=None).run_jobs(_jobs(gpus, scale))
        served = [canonical_report_json(report) for report in reports]
        expected = [canonical_report_json(report) for report in direct]
        assert served == expected, "fleet reports differ from direct runner"

        # Clean shutdown: coordinator drains on SIGTERM, surviving worker
        # exits 0 on the shutdown frame.
        coordinator.send_signal(signal.SIGTERM)
        assert coordinator.wait(timeout=30) == 0, "coordinator did not exit cleanly"
        assert workers[1].wait(timeout=30) == 0, "surviving worker did not exit cleanly"
        children.clear()
        print(
            f"fleet smoke OK: {len(MATRIX)} cells byte-identical through a "
            "worker SIGKILL, clean shutdown"
        )
    finally:
        for child in children:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)


if __name__ == "__main__":
    smoke()
