"""Blocking fleet client: submit whole sweeps, read back ordered results.

This is the piece :class:`~repro.runner.sweep.SweepRunner` holds when it
runs in ``mode="fleet"`` and what ``repro-sim status --fleet`` talks
through.  It speaks the same authenticated frames as the workers (one
:class:`~repro.fleet.wire.FrameCodec` per connection, ``client`` role in
the hello) over a plain blocking socket — no event loop on the client
side, because a sweep submission is strictly request/response.

:meth:`FleetClient.sweep` renders every cell with its full config tree
(:func:`~repro.fleet.protocol.job_to_wire`), sends one ``sweep`` frame,
and blocks until the coordinator's single ``sweep_result`` arrives.
Results come back indexed by input position and are decoded through
:func:`~repro.runner.serialize.report_from_dict` — the same
serialization path the process pool and the result cache use, which is
what makes a fleet sweep byte-identical to a local one.

Failure taxonomy:

* :class:`FleetUnavailable` — could not connect, or the coordinator hung
  up without answering.  The sweep runner treats this as "no fleet" and
  falls back to local execution.
* :class:`FleetError` (with a ``code`` from
  :data:`~repro.fleet.protocol.FLEET_ERROR_CODES`) — the coordinator
  answered with a structured error: authentication rejected, malformed
  sweep, retries exhausted, shutting down.
"""

from __future__ import annotations

import socket
from typing import Any, Sequence

from repro.runner.jobs import SweepJob
from repro.runner.serialize import report_from_dict
from repro.service.queues import DEFAULT_PRIORITY

from repro.fleet import protocol
from repro.fleet.wire import (
    DIR_FROM_COORDINATOR,
    DIR_TO_COORDINATOR,
    FrameCodec,
    FrameError,
    MAX_FRAME_BYTES,
    make_nonce,
)

#: Handshake / control-op timeout (sweeps wait as long as they need).
DEFAULT_CONNECT_TIMEOUT_S = 10.0


class FleetError(RuntimeError):
    """A structured error from the coordinator (or the client plumbing)."""

    def __init__(self, message: str, *, code: str = "internal") -> None:
        super().__init__(message)
        self.code = code


class FleetUnavailable(FleetError):
    """No coordinator at the address (refused, reset, or silent EOF)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="internal")


def parse_addr(addr: str) -> tuple[str, int]:
    """``host:port`` (or ``:port`` for localhost) -> ``(host, port)``."""
    host, sep, port_text = addr.rpartition(":")
    if not sep or not port_text.isdigit():
        raise ValueError(f"fleet address {addr!r} must look like host:port")
    return (host or "127.0.0.1", int(port_text))


class FleetClient:
    """One authenticated client connection to a fleet coordinator.

    Lazily connects on first use; usable as a context manager.  Not
    thread-safe — one sweep conversation at a time per client, which is
    also what the coordinator's per-connection ordering assumes.
    """

    def __init__(
        self,
        addr: str | tuple[str, int],
        key: bytes,
        *,
        name: str = "fleet-client",
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    ) -> None:
        self.host, self.port = parse_addr(addr) if isinstance(addr, str) else addr
        self.key = key
        self.name = name
        self.connect_timeout_s = connect_timeout_s
        self._sock: socket.socket | None = None
        self._file = None
        self._codec: FrameCodec | None = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise FleetUnavailable(
                f"no fleet coordinator at {self.host}:{self.port} ({exc})"
            ) from exc
        file = sock.makefile("rb")
        codec = FrameCodec(self.key)
        try:
            nonce = make_nonce()
            sock.sendall(codec.seal_hello(protocol.hello_body("client", self.name, nonce)))
            line = file.readline(MAX_FRAME_BYTES)
            if not line:
                raise FleetUnavailable("coordinator closed during handshake")
            rejection = FrameCodec.is_rejection(line)
            if rejection is not None:
                error = rejection.get("error", {})
                raise FleetError(
                    f"fleet authentication failed: {error.get('message', 'rejected')}",
                    code="auth_failed",
                )
            codec.open_welcome(line, nonce, DIR_TO_COORDINATOR, DIR_FROM_COORDINATOR)
        except (OSError, FrameError) as exc:
            file.close()
            sock.close()
            if isinstance(exc, FrameError):
                raise FleetError(f"fleet handshake failed: {exc}", code="auth_failed") from exc
            raise FleetUnavailable(f"fleet handshake failed: {exc}") from exc
        except FleetError:
            file.close()
            sock.close()
            raise
        self._sock = sock
        self._file = file
        self._codec = codec

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._codec = None

    def __enter__(self) -> "FleetClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request/response plumbing
    # ------------------------------------------------------------------
    def _request(self, body: dict, *, timeout_s: float | None) -> dict:
        self.connect()
        self._sock.settimeout(timeout_s)
        try:
            self._sock.sendall(self._codec.seal(body))
            line = self._file.readline(MAX_FRAME_BYTES)
        except socket.timeout as exc:
            self.close()  # the codec's counters are now unsynchronized
            raise FleetError(f"fleet request timed out after {timeout_s}s") from exc
        except OSError as exc:
            self.close()
            raise FleetUnavailable(f"fleet connection lost: {exc}") from exc
        if not line:
            self.close()
            raise FleetUnavailable("fleet coordinator hung up")
        try:
            return self._codec.open(line)
        except FrameError as exc:
            self.close()
            raise FleetError(f"fleet response failed verification: {exc}", code="auth_failed") from exc

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self, *, timeout_s: float | None = 10.0) -> dict[str, Any]:
        return self._request({"op": "ping"}, timeout_s=timeout_s)

    def status(self, *, timeout_s: float | None = 10.0) -> dict[str, Any]:
        """The coordinator's live snapshot (workers, queue, ``fleet.*``)."""
        return self._request({"op": "status"}, timeout_s=timeout_s)

    def sweep(
        self,
        jobs: Sequence[SweepJob],
        *,
        priority: str = DEFAULT_PRIORITY,
        timeout_s: float | None = None,
    ) -> list:
        """Run ``jobs`` on the fleet; reports come back in input order.

        Raises :class:`FleetError` with the coordinator's structured code
        on failure — never a partial result list.
        """
        self._next_id += 1
        request_id = self._next_id
        body = self._request(
            {
                "op": "sweep",
                "id": request_id,
                "priority": priority,
                "cells": [protocol.job_to_wire(job) for job in jobs],
            },
            timeout_s=timeout_s,
        )
        if body.get("op") != "sweep_result" or body.get("id") != request_id:
            self.close()
            raise FleetError(f"unexpected fleet response {body.get('op')!r}")
        if not body.get("ok"):
            error = body.get("error") or {}
            raise FleetError(
                error.get("message", "fleet sweep failed"),
                code=error.get("code", "internal"),
            )
        results = body.get("results")
        if not isinstance(results, list) or len(results) != len(jobs):
            self.close()
            raise FleetError(
                f"fleet returned {len(results) if isinstance(results, list) else '?'} "
                f"results for {len(jobs)} cells"
            )
        return [report_from_dict(result) for result in results]


__all__ = [
    "DEFAULT_CONNECT_TIMEOUT_S",
    "FleetClient",
    "FleetError",
    "FleetUnavailable",
    "parse_addr",
]
