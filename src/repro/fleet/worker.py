"""The fleet worker: one host's cores, leased to the coordinator.

``repro-sim fleet serve-worker`` dials the coordinator, proves knowledge
of the fleet key in its first frame, and then serves assignments until
released: each **assign** frame carries a work unit — cells sharing one
trace key — which the worker executes strictly in the order sent through
the exact :func:`~repro.runner.jobs.execute_job` path a local sweep
uses.  The shared :class:`~repro.runner.trace_store.TraceStore` means
the unit's trace is generated (or loaded) once and every sibling cell
reuses it.

Cells simulate in a thread-pool executor, so the event loop keeps
breathing: **heartbeats** flow on schedule even while a cell grinds,
which is precisely what lets the coordinator tell a *slow* worker (alive,
heartbeating, lease renewed) from a *dead* one (silent past the lease
timeout).  Per-cell results stream back as they finish — a worker that
dies mid-unit has already banked everything it completed, and only the
remainder is reassigned.

A **release** frame (the unit finished elsewhere, or its sweep failed)
takes effect at the next cell boundary; a **shutdown** frame ends the
session.  Transient connection loss triggers bounded reconnection with
backoff; an authentication rejection does not (a wrong key never heals
by retrying).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import socket
import time
from functools import partial
from typing import Any

from repro.runner.jobs import execute_job
from repro.runner.serialize import report_to_dict
from repro.runner.trace_store import TraceStore, default_trace_store

from repro.fleet import protocol
from repro.fleet.wire import (
    DIR_FROM_COORDINATOR,
    DIR_TO_COORDINATOR,
    FleetAuthError,
    FrameCodec,
    FrameError,
    MAX_FRAME_BYTES,
    make_nonce,
)

#: Default heartbeat cadence; keep several beats inside one lease timeout.
DEFAULT_HEARTBEAT_S = 2.0

#: Reconnect backoff schedule after transient connection loss.
DEFAULT_RECONNECT_DELAYS = (0.5, 1.0, 2.0, 4.0)


class _Assignment:
    """One leased work unit as the worker sees it."""

    __slots__ = ("unit_id", "epoch", "cells", "released")

    def __init__(self, unit_id: str, epoch: int, cells: list[dict]) -> None:
        self.unit_id = unit_id
        self.epoch = epoch
        self.cells = cells
        self.released = False


class FleetWorker:
    """One authenticated worker session against a coordinator.

    :meth:`run` performs the handshake and serves until shutdown, release
    of the connection, or connection loss (raised as ``ConnectionError``
    so the caller can decide whether to reconnect).
    """

    def __init__(
        self,
        host: str,
        port: int,
        key: bytes,
        *,
        name: str | None = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        trace_store: TraceStore | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.key = key
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.heartbeat_s = heartbeat_s
        self.trace_store = trace_store if trace_store is not None else default_trace_store()
        self.cells_done = 0
        self.units_done = 0
        self.shutdown_seen = False
        self._codec: FrameCodec | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._send_lock = asyncio.Lock()
        self._assignments: dict[str, _Assignment] = {}
        self._unit_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Session
    # ------------------------------------------------------------------
    async def run(self) -> None:
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_FRAME_BYTES
        )
        codec = FrameCodec(self.key)
        self._codec = codec
        self._writer = writer
        try:
            nonce = make_nonce()
            writer.write(codec.seal_hello(protocol.hello_body("worker", self.name, nonce)))
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("coordinator closed during handshake")
            rejection = FrameCodec.is_rejection(line)
            if rejection is not None:
                error = rejection.get("error", {})
                raise FleetAuthError(
                    f"coordinator rejected handshake: {error.get('message', 'auth failed')}"
                )
            codec.open_welcome(line, nonce, DIR_TO_COORDINATOR, DIR_FROM_COORDINATOR)
            heartbeat = asyncio.ensure_future(self._heartbeat_loop())
            try:
                await self._serve(reader)
            finally:
                heartbeat.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await heartbeat
                for task in list(self._unit_tasks):
                    task.cancel()
                for task in list(self._unit_tasks):
                    with contextlib.suppress(asyncio.CancelledError, Exception):
                        await task
        finally:
            self._writer = None
            with contextlib.suppress(Exception):
                writer.close()

    async def _serve(self, reader: asyncio.StreamReader) -> None:
        while True:
            line = await reader.readline()
            if not line:
                if self.shutdown_seen:
                    return
                raise ConnectionError("coordinator connection lost")
            body = self._codec.open(line)  # FleetAuthError propagates: bail out
            op = body.get("op")
            if op == "assign":
                self._start_unit(body)
            elif op == "release":
                assignment = self._assignments.get(body.get("unit", ""))
                if assignment is not None:
                    assignment.released = True
            elif op == "shutdown":
                self.shutdown_seen = True
                return
            # unknown coordinator ops are ignored (forward compatibility)

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_s)
            try:
                await self._send({"op": "heartbeat"})
            except (ConnectionError, OSError):
                return

    async def _send(self, body: dict) -> None:
        writer = self._writer
        if writer is None:
            raise ConnectionError("worker session is closed")
        # Counter assignment and the write must be atomic, or interleaved
        # sends would hit the wire out of counter order and the coordinator
        # would (correctly) reject them as reordered.
        async with self._send_lock:
            writer.write(self._codec.seal(body))
            await writer.drain()

    # ------------------------------------------------------------------
    # Unit execution
    # ------------------------------------------------------------------
    def _start_unit(self, body: dict) -> None:
        cells = body.get("cells")
        unit_id = body.get("unit")
        if not isinstance(cells, list) or not isinstance(unit_id, str):
            return
        assignment = _Assignment(unit_id, body.get("epoch", 0), cells)
        self._assignments[unit_id] = assignment
        task = asyncio.ensure_future(self._run_unit(assignment))
        task.set_name(f"fleet-unit-{unit_id}")
        self._unit_tasks.add(task)
        task.add_done_callback(self._unit_tasks.discard)

    async def _run_unit(self, assignment: _Assignment) -> None:
        loop = asyncio.get_running_loop()
        try:
            for entry in assignment.cells:
                if assignment.released:
                    break
                index, cell = entry["index"], entry["job"]
                try:
                    job = protocol.job_from_wire(cell)
                    report = await loop.run_in_executor(
                        None, partial(execute_job, job, trace_store=self.trace_store)
                    )
                except (ConnectionError, asyncio.CancelledError):
                    raise
                except Exception as exc:  # deterministic cell failure
                    await self._send(
                        {
                            "op": "unit_failed",
                            "unit": assignment.unit_id,
                            "epoch": assignment.epoch,
                            "cell": index,
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                    )
                    return
                if assignment.released:
                    break
                await self._send(
                    {
                        "op": "result",
                        "unit": assignment.unit_id,
                        "epoch": assignment.epoch,
                        "cell": index,
                        "report": report_to_dict(report),
                    }
                )
                self.cells_done += 1
            if not assignment.released:
                await self._send(
                    {"op": "unit_done", "unit": assignment.unit_id, "epoch": assignment.epoch}
                )
                self.units_done += 1
        except (ConnectionError, OSError):
            return  # the serve loop notices and handles reconnection
        finally:
            self._assignments.pop(assignment.unit_id, None)


async def _run_worker_async(
    key: bytes,
    host: str,
    port: int,
    *,
    name: str | None,
    heartbeat_s: float,
    reconnect_delays: tuple[float, ...],
    trace_store: TraceStore | None = None,
) -> int:
    delays = list(reconnect_delays)
    attempt = 0
    store = trace_store if trace_store is not None else default_trace_store()
    while True:
        worker = FleetWorker(
            host, port, key, name=name, heartbeat_s=heartbeat_s, trace_store=store
        )
        started = time.monotonic()
        try:
            print(
                f"repro-sim fleet worker {worker.name}: connecting to {host}:{port}",
                flush=True,
            )
            await worker.run()
        except FleetAuthError as exc:
            print(f"repro-sim fleet worker: {exc}", flush=True)
            return 1
        except FrameError as exc:
            print(f"repro-sim fleet worker: protocol error: {exc}", flush=True)
            return 1
        except (ConnectionError, OSError) as exc:
            if time.monotonic() - started > 2 * max(delays, default=1.0):
                attempt = 0  # a session that lasted a while resets the backoff
            if attempt >= len(delays):
                print(f"repro-sim fleet worker: giving up: {exc}", flush=True)
                return 1
            delay = delays[attempt]
            attempt += 1
            print(
                f"repro-sim fleet worker: connection lost ({exc}); "
                f"retrying in {delay:.1f}s",
                flush=True,
            )
            await asyncio.sleep(delay)
            continue
        print(
            f"repro-sim fleet worker {worker.name}: done "
            f"({worker.cells_done} cells, {worker.units_done} units)",
            flush=True,
        )
        return 0


def run_worker(
    key: bytes,
    host: str,
    port: int,
    *,
    name: str | None = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    reconnect_delays: tuple[float, ...] = DEFAULT_RECONNECT_DELAYS,
    trace_store: TraceStore | None = None,
) -> int:
    """Blocking CLI entry: serve the coordinator until shutdown."""
    try:
        return asyncio.run(
            _run_worker_async(
                key,
                host,
                port,
                name=name,
                heartbeat_s=heartbeat_s,
                reconnect_delays=reconnect_delays,
                trace_store=trace_store,
            )
        )
    except KeyboardInterrupt:
        return 0


__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_RECONNECT_DELAYS",
    "FleetWorker",
    "run_worker",
]
