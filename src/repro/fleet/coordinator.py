"""The fleet coordinator: lease-based sharding over a pool of TCP workers.

One asyncio process owns the whole control plane.  Clients submit sweeps
(every cell with its full config tree); the coordinator shards each sweep
into **work units** — cells sharing a
:func:`~repro.runner.trace_store.trace_key`, so a worker compiles or
loads each trace exactly once per unit — queues the units through the
same strict-priority / round-robin-within-class policy the simulation
service uses (:class:`~repro.service.queues.PriorityRoundRobin`), and
assigns them to idle workers under leases.

The failure model (full state machine in ``docs/FLEET.md``):

* a worker's **lease** over its unit is renewed by every authenticated
  frame it sends (heartbeats flow even while a cell simulates, so a slow
  worker is not a dead worker);
* a worker whose lease expires — or whose connection drops — has the
  *remaining* cells of its unit requeued at ``epoch + 1``; cells it
  already streamed back are kept, so nothing re-executes needlessly;
* acceptance is **at-most-once per cell**: the first result for a cell
  wins, later copies (a stale epoch racing a reassignment, a stolen
  straggler finishing twice) are discarded and counted, so the merged
  sweep has zero lost and zero duplicated cells;
* each cell tolerates a bounded number of reassignments
  (``max_cell_retries``); past that the whole sweep fails with a
  structured ``retries_exhausted`` error rather than looping forever;
* when the queue runs dry and a worker idles, the coordinator **steals
  the tail**: the remaining cells of the longest-held in-flight unit are
  duplicate-assigned at a fresh epoch, and first-wins acceptance keeps
  the merge exact.

Determinism: a cell's report is a pure function of its description, and
the coordinator merges results by input index — so a fleet sweep renders
byte-identically (canonical JSON) to a direct single-host
:class:`~repro.runner.sweep.SweepRunner` run no matter how many workers
ran it, which worker ran what, or how many leases expired on the way.

Everything observable lands in the ``fleet.*`` telemetry namespace
(``docs/OBSERVABILITY.md``), served live to ``repro-sim status --fleet``.
"""

from __future__ import annotations

import asyncio
import contextlib
import re
import time
from typing import Any

from repro.obs import Telemetry
from repro.service.queues import DEFAULT_PRIORITY, PRIORITIES, PriorityRoundRobin

from repro.fleet import protocol
from repro.fleet.wire import (
    DIR_FROM_COORDINATOR,
    DIR_TO_COORDINATOR,
    FleetAuthError,
    FrameCodec,
    FrameError,
    MAX_FRAME_BYTES,
    make_nonce,
)

#: Default lease: a worker silent for this long is presumed dead.
DEFAULT_LEASE_TIMEOUT_S = 15.0

#: Default straggler threshold: an in-flight unit older than this may be
#: duplicate-assigned to an idle worker (None disables stealing).
DEFAULT_STEAL_AFTER_S = 10.0

#: Reassignments one cell tolerates before its sweep fails.
DEFAULT_MAX_CELL_RETRIES = 3

_METRIC_SAFE = re.compile(r"[^a-z0-9_]+")


def _metric_label(worker_id: str) -> str:
    """Coordinator-issued worker ids are metric-safe by construction, but
    sanitize anyway so a future id scheme cannot poison the namespace."""
    label = _METRIC_SAFE.sub("_", worker_id.lower()).strip("_")
    return label if label and label[0].isalpha() else f"w_{label or 'x'}"


class _WorkUnit:
    """A lease-sized shard: one batch's cells sharing one trace key."""

    __slots__ = ("unit_id", "batch", "trace_key", "pending", "attempts", "epoch", "holders", "assigned_at")

    def __init__(self, unit_id: str, batch: "_Batch", trace_key: str, cells: dict[int, dict]) -> None:
        self.unit_id = unit_id
        self.batch = batch
        self.trace_key = trace_key
        self.pending = cells  # input index -> wire cell, not yet accepted
        self.attempts = {index: 0 for index in cells}
        self.epoch = 0
        self.holders: dict[int, str] = {}  # epoch -> worker id
        self.assigned_at: float | None = None


class _Batch:
    """One client sweep: its cells, its accumulating results, its fate."""

    __slots__ = ("batch_id", "request_id", "connection", "priority", "n_cells", "results", "units", "failed")

    def __init__(self, batch_id: str, request_id: Any, connection: "_Connection", priority: str, n_cells: int) -> None:
        self.batch_id = batch_id
        self.request_id = request_id
        self.connection = connection
        self.priority = priority
        self.n_cells = n_cells
        self.results: dict[int, dict] = {}
        self.units: list[_WorkUnit] = []
        self.failed: dict | None = None

    @property
    def done(self) -> bool:
        return self.failed is not None or len(self.results) == self.n_cells


class _Connection:
    """One authenticated peer (worker or client) and its send plumbing."""

    __slots__ = ("peer_id", "name", "role", "reader", "writer", "codec", "send_lock", "last_seen", "unit", "completed", "closed")

    def __init__(self, peer_id: str, name: str, role: str, reader, writer, codec: FrameCodec) -> None:
        self.peer_id = peer_id
        self.name = name
        self.role = role
        self.reader = reader
        self.writer = writer
        self.codec = codec
        self.send_lock = asyncio.Lock()
        self.last_seen = time.monotonic()
        self.unit: _WorkUnit | None = None  # workers hold at most one unit
        self.completed = 0  # cells this worker delivered
        self.closed = False


class FleetCoordinator:
    """Authenticated TCP control plane for a worker pool.

    ``key``              the fleet's shared HMAC secret (bytes)
    ``host``/``port``    bind address (port 0 picks a free port; read
                         :attr:`port` after :meth:`start`)
    ``lease_timeout_s``  silence threshold before a worker is declared dead
    ``steal_after_s``    straggler age before its tail is duplicate-assigned
                         (None disables work stealing)
    ``max_cell_retries`` reassignments a cell survives before its sweep fails
    """

    def __init__(
        self,
        key: bytes,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        steal_after_s: float | None = DEFAULT_STEAL_AFTER_S,
        max_cell_retries: int = DEFAULT_MAX_CELL_RETRIES,
    ) -> None:
        self.key = key
        self.host = host
        self.port = port
        self.lease_timeout_s = lease_timeout_s
        self.steal_after_s = steal_after_s
        self.max_cell_retries = max_cell_retries
        self.telemetry = Telemetry()
        self._server: asyncio.AbstractServer | None = None
        self._workers: dict[str, _Connection] = {}
        self._clients: dict[str, _Connection] = {}
        self._queue = PriorityRoundRobin()  # pending _WorkUnits
        self._units: dict[str, _WorkUnit] = {}  # in-flight (assigned) units
        self._dispatch_wake = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._next_peer = 0
        self._next_unit = 0
        self._next_batch = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._accept, host=self.host, port=self.port, limit=MAX_FRAME_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._spawn(self._dispatch_loop(), name="fleet-dispatch")
        self._spawn(self._lease_loop(), name="fleet-leases")

    async def stop(self) -> None:
        """Shut down: fail queued sweeps, wave workers off, close sockets."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
        for connection in list(self._workers.values()):
            with contextlib.suppress(Exception):
                await self._send(connection, {"op": "shutdown"})
        for batch in {unit.batch for unit in list(self._units.values())} | {
            unit.batch for unit in list(self._queue)
        }:
            await self._fail_batch(
                batch, protocol.fleet_error("shutting_down", "coordinator stopping")
            )
        for connection in list(self._workers.values()) + list(self._clients.values()):
            self._hang_up(connection)
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None

    def _spawn(self, coro, name: str) -> None:
        task = asyncio.ensure_future(coro)
        task.set_name(name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        codec = FrameCodec(self.key)
        try:
            line = await reader.readline()
            self.telemetry.counter("fleet.bytes_rx").add(len(line))
            hello = protocol.validate_hello(codec.open_hello(line))
        except (FrameError, ValueError) as exc:
            # Structured, unauthenticated rejection: the peer may not hold
            # the key, so there is nothing we could MAC that it can check.
            self.telemetry.counter("fleet.auth_failures").add(1)
            with contextlib.suppress(Exception):
                rejection = FrameCodec.seal_rejection("auth_failed", str(exc))
                writer.write(rejection)
                await writer.drain()
                self.telemetry.counter("fleet.bytes_tx").add(len(rejection))
            writer.close()
            return
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        self._next_peer += 1
        peer_id = f"w{self._next_peer}" if hello["role"] == "worker" else f"c{self._next_peer}"
        nonce = make_nonce()
        codec.bind(hello["nonce"] + nonce, DIR_FROM_COORDINATOR, DIR_TO_COORDINATOR)
        connection = _Connection(peer_id, hello["name"], hello["role"], reader, writer, codec)
        try:
            await self._send(connection, protocol.welcome_body(nonce))
        except ConnectionError:
            writer.close()
            return
        if connection.role == "worker":
            self._workers[peer_id] = connection
            self.telemetry.gauge("fleet.workers").set(len(self._workers))
            self._dispatch_wake.set()
            try:
                await self._worker_loop(connection)
            finally:
                await self._worker_died(connection, reason="disconnect")
        else:
            self._clients[peer_id] = connection
            try:
                await self._client_loop(connection)
            finally:
                self._clients.pop(peer_id, None)
                self._hang_up(connection)
                await self._cancel_client_batches(connection)

    async def _send(self, connection: _Connection, body: dict) -> None:
        async with connection.send_lock:
            line = connection.codec.seal(body)
            connection.writer.write(line)
            await connection.writer.drain()
        self.telemetry.counter("fleet.bytes_tx").add(len(line))

    async def _read(self, connection: _Connection) -> dict | None:
        """One authenticated frame, or None on EOF/teardown."""
        try:
            line = await connection.reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not line:
            return None
        self.telemetry.counter("fleet.bytes_rx").add(len(line))
        body = connection.codec.open(line)  # FleetAuthError propagates: hang up
        connection.last_seen = time.monotonic()
        return body

    def _hang_up(self, connection: _Connection) -> None:
        connection.closed = True
        with contextlib.suppress(Exception):
            connection.writer.close()

    # ------------------------------------------------------------------
    # Worker conversation
    # ------------------------------------------------------------------
    async def _worker_loop(self, connection: _Connection) -> None:
        while not connection.closed:
            try:
                body = await self._read(connection)
            except FrameError:
                return  # tampered/replayed frame: the lease machinery reaps
            if body is None:
                return
            op = body.get("op")
            if op == "heartbeat":
                continue  # _read already refreshed the lease
            if op == "result":
                self._accept_result(connection, body)
            elif op == "unit_done":
                await self._unit_done(connection, body)
            elif op == "unit_failed":
                await self._unit_failed(connection, body)
            # unknown worker ops are ignored (forward compatibility)

    def _accept_result(self, connection: _Connection, body: dict) -> None:
        unit = self._units.get(body.get("unit", ""))
        index = body.get("cell")
        if unit is None or not isinstance(index, int):
            self.telemetry.counter("fleet.duplicates_discarded").add(1)
            return
        if index not in unit.pending:
            # Already accepted from another epoch (reassignment or steal
            # racing the original holder): at-most-once, first wins.
            self.telemetry.counter("fleet.duplicates_discarded").add(1)
            return
        del unit.pending[index]
        unit.batch.results[index] = body.get("report")
        connection.completed += 1
        self.telemetry.counter("fleet.completed").add(1)
        self.telemetry.gauge(f"fleet.worker.{_metric_label(connection.peer_id)}.completed").set(
            connection.completed
        )
        if unit.batch.done:
            self._spawn(self._finish_batch(unit.batch), name=f"fleet-finish-{unit.batch.batch_id}")

    async def _unit_done(self, connection: _Connection, body: dict) -> None:
        unit = self._units.get(body.get("unit", ""))
        if unit is not None and not unit.pending:
            # Fully accepted: retire the unit and release any other holder
            # (a steal copy still grinding through already-answered cells).
            self._units.pop(unit.unit_id, None)
            for epoch, holder_id in list(unit.holders.items()):
                holder = self._workers.get(holder_id)
                if holder is not None and holder is not connection:
                    with contextlib.suppress(ConnectionError):
                        await self._send(holder, {"op": "release", "unit": unit.unit_id, "epoch": epoch})
                    if holder.unit is unit:
                        holder.unit = None
                if holder is not None and holder.unit is unit:
                    holder.unit = None
            unit.holders.clear()
        if connection.unit is not None and body.get("unit") == connection.unit.unit_id:
            connection.unit = None
        self._gauge_inflight(connection)
        self._dispatch_wake.set()

    async def _unit_failed(self, connection: _Connection, body: dict) -> None:
        """A cell raised on the worker: treat like a lease loss for the unit,
        but attribute the attempt so bounded retries still bound it."""
        unit = self._units.get(body.get("unit", ""))
        if connection.unit is unit:
            connection.unit = None
        self._gauge_inflight(connection)
        if unit is None:
            return
        for epoch, holder in list(unit.holders.items()):
            if holder == connection.peer_id:
                del unit.holders[epoch]
        if not unit.holders:
            self._units.pop(unit.unit_id, None)
            await self._requeue(unit, reason="execution_failed", detail=body.get("message", ""))
        self._dispatch_wake.set()

    async def _worker_died(self, connection: _Connection, *, reason: str) -> None:
        if self._workers.pop(connection.peer_id, None) is None:
            return  # already reaped (lease expiry racing EOF)
        self._hang_up(connection)
        self.telemetry.gauge("fleet.workers").set(len(self._workers))
        label = _metric_label(connection.peer_id)
        self.telemetry.gauge(f"fleet.worker.{label}.inflight").set(0)
        unit = connection.unit
        connection.unit = None
        if unit is not None:
            dead_epochs = [e for e, holder in unit.holders.items() if holder == connection.peer_id]
            for epoch in dead_epochs:
                del unit.holders[epoch]
            if not unit.holders and unit.pending and unit.unit_id in self._units:
                self._units.pop(unit.unit_id, None)
                await self._requeue(unit, reason=reason, detail=f"worker {connection.name} lost")
        self._dispatch_wake.set()

    async def _requeue(self, unit: _WorkUnit, *, reason: str, detail: str) -> None:
        """Give a unit's remaining cells another epoch, or fail its sweep."""
        if unit.batch.failed is not None or not unit.pending:
            return
        exhausted = [i for i in unit.pending if unit.attempts[i] + 1 > self.max_cell_retries]
        if exhausted:
            code = "execution_failed" if reason == "execution_failed" else "retries_exhausted"
            await self._fail_batch(
                unit.batch,
                protocol.fleet_error(
                    code,
                    f"cell {min(exhausted)} failed {self.max_cell_retries + 1} "
                    f"assignments (last: {detail})",
                ),
            )
            return
        for index in unit.pending:
            unit.attempts[index] += 1
        unit.epoch += 1
        unit.assigned_at = None
        self.telemetry.counter("fleet.reassigned").add(len(unit.pending))
        if reason == "lease_expired":
            self.telemetry.counter("fleet.lease_expired").add(1)
        self._queue.push(unit, client=unit.batch.connection.peer_id, priority=unit.batch.priority)
        self.telemetry.gauge("fleet.queue.depth").set(len(self._queue))

    # ------------------------------------------------------------------
    # Client conversation
    # ------------------------------------------------------------------
    async def _client_loop(self, connection: _Connection) -> None:
        while not connection.closed:
            try:
                body = await self._read(connection)
            except FrameError:
                return
            if body is None:
                return
            op = body.get("op")
            if op == "ping":
                await self._send(connection, {"op": "pong", "workers": len(self._workers)})
            elif op == "status":
                await self._send(connection, {"op": "status_result", **self.status()})
            elif op == "sweep":
                await self._admit_sweep(connection, body)
            else:
                await self._send(
                    connection,
                    {"op": "sweep_result", "ok": False, "id": body.get("id"),
                     "error": protocol.fleet_error("bad_request", f"unknown op {op!r}")},
                )

    async def _admit_sweep(self, connection: _Connection, body: dict) -> None:
        request_id = body.get("id")
        if self._stopping:
            await self._send(
                connection,
                {"op": "sweep_result", "ok": False, "id": request_id,
                 "error": protocol.fleet_error("shutting_down", "coordinator stopping")},
            )
            return
        cells = body.get("cells")
        priority = body.get("priority", DEFAULT_PRIORITY)
        error: dict | None = None
        if not isinstance(cells, list) or not cells:
            error = protocol.fleet_error("bad_request", "sweep requires a non-empty cell list")
        elif priority not in PRIORITIES:
            error = protocol.fleet_error("bad_request", f"unknown priority {priority!r}")
        else:
            for cell in cells:
                try:
                    protocol.job_from_wire(cell)  # full validation before sharding
                except KeyError:
                    error = protocol.fleet_error(
                        "unknown_workload", f"unknown workload {cell.get('workload')!r}"
                    )
                    break
                except FrameError as exc:
                    error = protocol.fleet_error("bad_request", str(exc))
                    break
        if error is not None:
            await self._send(
                connection, {"op": "sweep_result", "ok": False, "id": request_id, "error": error}
            )
            return
        self._next_batch += 1
        batch = _Batch(f"b{self._next_batch:06d}", request_id, connection, priority, len(cells))
        self.telemetry.counter("fleet.sweeps").add(1)
        self.telemetry.counter("fleet.cells").add(len(cells))
        groups: dict[str, dict[int, dict]] = {}
        for index, cell in enumerate(cells):
            groups.setdefault(protocol.wire_trace_key(cell), {})[index] = cell
        for trace_key, members in groups.items():
            self._next_unit += 1
            unit = _WorkUnit(f"u{self._next_unit:06d}", batch, trace_key, members)
            batch.units.append(unit)
            self._queue.push(unit, client=connection.peer_id, priority=priority)
        self.telemetry.gauge("fleet.queue.depth").set(len(self._queue))
        self._dispatch_wake.set()

    async def _finish_batch(self, batch: _Batch) -> None:
        if batch.failed is not None:
            return
        results = [batch.results[index] for index in range(batch.n_cells)]
        with contextlib.suppress(ConnectionError):
            await self._send(
                batch.connection,
                {"op": "sweep_result", "ok": True, "id": batch.request_id, "results": results},
            )

    async def _cancel_client_batches(self, connection: _Connection) -> None:
        """A departed client's sweeps stop consuming workers immediately."""
        outstanding = {unit.batch for unit in list(self._units.values())} | {
            unit.batch for unit in list(self._queue)
        }
        for batch in outstanding:
            if batch.connection is connection and not batch.done:
                await self._fail_batch(
                    batch, protocol.fleet_error("internal", "client disconnected mid-sweep")
                )

    async def _fail_batch(self, batch: _Batch, error: dict) -> None:
        if batch.failed is not None:
            return
        batch.failed = error
        for unit in batch.units:
            if self._queue.remove(unit):
                self.telemetry.gauge("fleet.queue.depth").set(len(self._queue))
            if self._units.pop(unit.unit_id, None) is not None:
                for epoch, holder_id in list(unit.holders.items()):
                    holder = self._workers.get(holder_id)
                    if holder is not None:
                        with contextlib.suppress(ConnectionError):
                            await self._send(
                                holder, {"op": "release", "unit": unit.unit_id, "epoch": epoch}
                            )
                        if holder.unit is unit:
                            holder.unit = None
                            self._gauge_inflight(holder)
                unit.holders.clear()
        with contextlib.suppress(ConnectionError):
            await self._send(
                batch.connection,
                {"op": "sweep_result", "ok": False, "id": batch.request_id, "error": error},
            )
        self._dispatch_wake.set()

    # ------------------------------------------------------------------
    # Dispatch and leases
    # ------------------------------------------------------------------
    def _idle_workers(self) -> list[_Connection]:
        return [w for w in self._workers.values() if w.unit is None and not w.closed]

    def _gauge_inflight(self, connection: _Connection) -> None:
        label = _metric_label(connection.peer_id)
        inflight = len(connection.unit.pending) if connection.unit is not None else 0
        self.telemetry.gauge(f"fleet.worker.{label}.inflight").set(inflight)

    async def _dispatch_loop(self) -> None:
        while True:
            await self._dispatch_wake.wait()
            self._dispatch_wake.clear()
            for worker in self._idle_workers():
                unit = self._queue.pop()
                if unit is None:
                    unit = self._steal_candidate()
                    if unit is None:
                        break
                    unit = self._fork_steal(unit)
                else:
                    self.telemetry.gauge("fleet.queue.depth").set(len(self._queue))
                await self._assign(worker, unit)

    def _steal_candidate(self) -> _WorkUnit | None:
        """The oldest single-holder in-flight unit past the straggler age."""
        if self.steal_after_s is None:
            return None
        now = time.monotonic()
        candidates = [
            unit
            for unit in self._units.values()
            if unit.pending
            and len(unit.holders) == 1
            and unit.assigned_at is not None
            and now - unit.assigned_at >= self.steal_after_s
            and unit.batch.failed is None
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda unit: unit.assigned_at)

    def _fork_steal(self, unit: _WorkUnit) -> _WorkUnit:
        unit.epoch += 1
        self.telemetry.counter("fleet.stolen").add(len(unit.pending))
        return unit

    async def _assign(self, worker: _Connection, unit: _WorkUnit) -> None:
        cells = [{"index": index, "job": cell} for index, cell in sorted(unit.pending.items())]
        if not cells:  # fully accepted while queued (steal copy won the race)
            return
        unit.holders[unit.epoch] = worker.peer_id
        unit.assigned_at = time.monotonic()
        worker.unit = unit
        self._units[unit.unit_id] = unit
        self.telemetry.counter("fleet.dispatched").add(len(cells))
        self._gauge_inflight(worker)
        try:
            await self._send(
                worker,
                {"op": "assign", "unit": unit.unit_id, "epoch": unit.epoch,
                 "trace_key": unit.trace_key, "cells": cells},
            )
        except (ConnectionError, OSError):
            await self._worker_died(worker, reason="disconnect")

    async def _lease_loop(self) -> None:
        tick = max(0.05, self.lease_timeout_s / 4)
        while True:
            await asyncio.sleep(tick)
            now = time.monotonic()
            for worker in list(self._workers.values()):
                if now - worker.last_seen > self.lease_timeout_s:
                    await self._worker_died(worker, reason="lease_expired")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """JSON-safe fleet snapshot (the ``status --fleet`` payload)."""
        now = time.monotonic()
        return {
            "workers": [
                {
                    "id": w.peer_id,
                    "name": w.name,
                    "completed": w.completed,
                    "inflight": len(w.unit.pending) if w.unit is not None else 0,
                    "idle_s": round(now - w.last_seen, 3),
                }
                for w in self._workers.values()
            ],
            "queue_depth": len(self._queue),
            "inflight_units": len(self._units),
            "metrics": self.telemetry.snapshot(),
        }


async def _run_coordinator_async(coordinator: FleetCoordinator, port_file: str | None) -> int:
    import os
    import signal

    await coordinator.start()
    print(
        f"repro-sim fleet coordinator: listening on {coordinator.host}:{coordinator.port} "
        f"(pid {os.getpid()})",
        flush=True,
    )
    if port_file:
        from repro.runner.atomic import atomic_write_text

        atomic_write_text(port_file, f"{coordinator.port}\n")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
    try:
        await stop.wait()
        print("repro-sim fleet coordinator: stopping...", flush=True)
        await coordinator.stop()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    return 0


def run_coordinator(
    key: bytes,
    host: str,
    port: int,
    *,
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
    steal_after_s: float | None = DEFAULT_STEAL_AFTER_S,
    max_cell_retries: int = DEFAULT_MAX_CELL_RETRIES,
    port_file: str | None = None,
) -> int:
    """Blocking CLI entry: serve until SIGTERM/SIGINT, then stop cleanly."""
    coordinator = FleetCoordinator(
        key,
        host,
        port,
        lease_timeout_s=lease_timeout_s,
        steal_after_s=steal_after_s,
        max_cell_retries=max_cell_retries,
    )
    try:
        return asyncio.run(_run_coordinator_async(coordinator, port_file))
    except KeyboardInterrupt:
        return 0


__all__ = [
    "DEFAULT_LEASE_TIMEOUT_S",
    "DEFAULT_MAX_CELL_RETRIES",
    "DEFAULT_STEAL_AFTER_S",
    "FleetCoordinator",
    "run_coordinator",
]
