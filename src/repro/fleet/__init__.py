"""Distributed sweep fleet: one deterministic sweep engine over N hosts.

The single-host :class:`~repro.runner.sweep.SweepRunner` tops out at one
machine's cores; the fleet turns a pool of machines into the same engine
without giving up a byte of determinism.  Three roles, one authenticated
TCP wire:

* the **coordinator** (``repro-sim fleet coordinator``) shards a sweep's
  cells into lease-based work units grouped by trace key, assigns them to
  workers, reassigns the remains of dead or partitioned workers, steals
  straggler tails, and merges results back into input order;
* **workers** (``repro-sim fleet serve-worker``) connect out to the
  coordinator, execute cells through the exact
  :func:`~repro.runner.jobs.execute_job` path a local sweep uses (one
  trace compile per trace key per worker via the process-local
  :class:`~repro.runner.trace_store.TraceStore`), and stream per-cell
  results back under heartbeat-renewed leases;
* **clients** submit whole sweeps: :class:`~repro.runner.sweep.SweepRunner`
  grows a ``mode="fleet"`` backend, so ``repro-sim experiment --fleet`` /
  ``verify --fleet`` and the simulation service all fan out transparently.

Every frame on the wire is HMAC-SHA256-authenticated and replay-protected
(session nonces + strictly increasing per-direction counters — the same
security posture as the paper's own transport).  The full contract —
wire protocol, lease/heartbeat state machine, at-most-once acceptance,
byte-identical determinism — is documented in ``docs/FLEET.md``.
"""

from repro.fleet.client import FleetClient, FleetError, FleetUnavailable, parse_addr
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.wire import FleetAuthError, FrameError, load_auth_key
from repro.fleet.worker import FleetWorker, run_worker

__all__ = [
    "FleetAuthError",
    "FleetClient",
    "FleetCoordinator",
    "FleetError",
    "FleetUnavailable",
    "FleetWorker",
    "FrameError",
    "load_auth_key",
    "parse_addr",
    "run_worker",
]
