"""Authenticated, replay-protected NDJSON framing for the fleet wire.

The fleet crosses real network boundaries, so unlike the local Unix
socket service every frame is authenticated.  The construction mirrors
the security posture of the paper's own transport — MAC everything,
never accept a counter twice:

* **frames** are one canonical-JSON line each (sorted keys, compact
  separators — the :mod:`repro.service.protocol` conventions):
  ``{"b": <body>, "mac": <hex>, "n": <counter>}``;
* the **MAC** is HMAC-SHA256 under the fleet's shared secret over the
  canonical JSON of ``{"body", "ctr", "dir", "session"}`` — binding each
  frame to its position (counter), direction, and session;
* the **session id** is the concatenation of both sides' random hello
  nonces, so no frame from one connection can ever validate on another
  (cross-session replay), and the per-direction strictly-increasing
  counter rejects replays *within* a session;
* the **handshake** is two frames: the connector's ``hello`` (counter 0,
  empty session — its MAC proves knowledge of the key before any state
  is allocated) and the listener's ``welcome`` (already session-bound).
  A hello that fails verification is answered with a structured,
  unauthenticated ``auth_failed`` frame and the connection is closed.

The shared secret comes from ``--auth-key-file`` (the file's bytes,
surrounding whitespace stripped) or the ``REPRO_FLEET_KEY`` environment
variable; see :func:`load_auth_key`.

This module is transport-agnostic — it seals and opens byte lines.  The
coordinator/worker sides feed it asyncio stream lines; the blocking
client feeds it raw socket reads.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import secrets
from pathlib import Path
from typing import Any

#: Bump on incompatible fleet wire changes; both sides echo it in hello.
FLEET_PROTOCOL = 1

#: Hard per-frame ceiling.  A sweep submission carries every cell's full
#: config tree and a sweep result carries every report, so frames are
#: allowed to be large — but a peer must still be able to bound memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The shared secret must not be trivially short.
MIN_KEY_BYTES = 8

#: Direction labels folded into every MAC.
DIR_HELLO = "hello"
DIR_TO_COORDINATOR = "c2s"
DIR_FROM_COORDINATOR = "s2c"

#: Hello/auth-failure nonce length (hex-encoded on the wire).
NONCE_BYTES = 16


class FrameError(ValueError):
    """A frame that does not conform to the wire schema."""


class FleetAuthError(FrameError):
    """Authentication failure: bad key, tampered frame, or replay."""


def load_auth_key(key_file: str | Path | None = None) -> bytes:
    """Resolve the fleet's shared secret.

    Precedence: an explicit ``key_file`` (its bytes, stripped of
    surrounding whitespace so trailing newlines don't change the key),
    else the ``REPRO_FLEET_KEY`` environment variable.  Raises
    :class:`FleetAuthError` when neither is present or the key is too
    short — an unauthenticated fleet is never silently accepted.
    """
    if key_file is not None:
        try:
            key = Path(key_file).read_bytes().strip()
        except OSError as exc:
            raise FleetAuthError(f"cannot read auth key file {key_file}: {exc}") from exc
    else:
        key = os.environ.get("REPRO_FLEET_KEY", "").encode("utf-8")
        if not key:
            raise FleetAuthError(
                "no fleet auth key: pass --auth-key-file or set REPRO_FLEET_KEY"
            )
    if len(key) < MIN_KEY_BYTES:
        raise FleetAuthError(f"fleet auth key must be at least {MIN_KEY_BYTES} bytes")
    return key


def make_nonce() -> str:
    """A fresh random session nonce (hex)."""
    return secrets.token_hex(NONCE_BYTES)


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def compute_mac(key: bytes, session: str, direction: str, counter: int, body: dict) -> str:
    material = _canonical(
        {"body": body, "ctr": counter, "dir": direction, "session": session}
    )
    return hmac.new(key, material, hashlib.sha256).hexdigest()


class FrameCodec:
    """Seals outgoing and opens incoming frames for one connection side.

    Construct with the shared key, then :meth:`bind` the session and
    direction labels once the handshake nonces are known.  ``seal``
    assigns strictly increasing counters to outgoing frames; ``open``
    verifies the MAC in constant time and rejects any counter that does
    not advance (replay, reorder, or cross-session splice).
    """

    def __init__(self, key: bytes) -> None:
        self._key = key
        self._session: str | None = None
        self._send_dir = ""
        self._recv_dir = ""
        self._send_ctr = 0
        self._recv_ctr = 0
        self.bytes_sealed = 0
        self.bytes_opened = 0

    def bind(self, session: str, send_dir: str, recv_dir: str) -> None:
        self._session = session
        self._send_dir = send_dir
        self._recv_dir = recv_dir

    @property
    def session(self) -> str | None:
        return self._session

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def _frame(self, body: dict, session: str, direction: str, counter: int) -> bytes:
        mac = compute_mac(self._key, session, direction, counter, body)
        line = _canonical({"b": body, "mac": mac, "n": counter}) + b"\n"
        if len(line) > MAX_FRAME_BYTES:
            raise FrameError(f"frame of {len(line)} bytes exceeds MAX_FRAME_BYTES")
        self.bytes_sealed += len(line)
        return line

    def seal(self, body: dict) -> bytes:
        """One session-bound outgoing frame; counters start at 1."""
        if self._session is None:
            raise FrameError("codec is not session-bound yet (handshake incomplete)")
        self._send_ctr += 1
        return self._frame(body, self._session, self._send_dir, self._send_ctr)

    def seal_hello(self, body: dict) -> bytes:
        """The connector's first frame: counter 0, empty session."""
        return self._frame(body, "", DIR_HELLO, 0)

    def _parse(self, line: bytes) -> tuple[dict, str, int]:
        if len(line) > MAX_FRAME_BYTES:
            raise FrameError(f"frame of {len(line)} bytes exceeds MAX_FRAME_BYTES")
        self.bytes_opened += len(line)
        try:
            frame = json.loads(line)
        except (ValueError, UnicodeDecodeError) as exc:
            raise FrameError(f"frame is not valid JSON: {exc}") from exc
        if (
            not isinstance(frame, dict)
            or not isinstance(frame.get("b"), dict)
            or not isinstance(frame.get("mac"), str)
            or not isinstance(frame.get("n"), int)
            or isinstance(frame.get("n"), bool)
        ):
            raise FrameError("frame must be {b: object, mac: str, n: int}")
        return frame["b"], frame["mac"], frame["n"]

    def _verify(self, body: dict, mac: str, session: str, direction: str, counter: int) -> None:
        expected = compute_mac(self._key, session, direction, counter, body)
        if not hmac.compare_digest(expected, mac):
            raise FleetAuthError("frame MAC verification failed (wrong key or tampering)")

    def open(self, line: bytes) -> dict:
        """Verify and return one session-bound incoming frame's body."""
        if self._session is None:
            raise FrameError("codec is not session-bound yet (handshake incomplete)")
        body, mac, counter = self._parse(line)
        self._verify(body, mac, self._session, self._recv_dir, counter)
        if counter <= self._recv_ctr:
            raise FleetAuthError(
                f"replayed or reordered frame: counter {counter} <= {self._recv_ctr}"
            )
        self._recv_ctr = counter
        return body

    def open_hello(self, line: bytes) -> dict:
        """Verify a connector's hello frame (listener side)."""
        body, mac, counter = self._parse(line)
        if counter != 0:
            raise FleetAuthError(f"hello frame must carry counter 0, got {counter}")
        self._verify(body, mac, "", DIR_HELLO, counter)
        return body

    def open_welcome(self, line: bytes, my_nonce: str, send_dir: str, recv_dir: str) -> dict:
        """Verify the listener's welcome and bind the session (connector side).

        The listener's nonce travels *inside* the MAC'd welcome body, so
        the connector extracts it, binds ``my_nonce + their_nonce``, and
        only then verifies — a welcome sealed under the wrong key (or a
        spliced one from another session) fails exactly like any other
        tampered frame.
        """
        body, mac, counter = self._parse(line)
        nonce = body.get("nonce") if isinstance(body, dict) else None
        if not isinstance(nonce, str) or not nonce:
            raise FrameError("welcome frame must carry the listener's nonce")
        self.bind(my_nonce + nonce, send_dir, recv_dir)
        self._verify(body, mac, self._session, self._recv_dir, counter)
        if counter <= self._recv_ctr:
            raise FleetAuthError(
                f"replayed or reordered welcome: counter {counter} <= {self._recv_ctr}"
            )
        self._recv_ctr = counter
        return body

    # ------------------------------------------------------------------
    # Unauthenticated rejection frame
    # ------------------------------------------------------------------
    @staticmethod
    def seal_rejection(code: str, message: str) -> bytes:
        """An unauthenticated structured rejection (the peer has no valid
        key, so there is nothing to MAC with that it could verify)."""
        body = {"op": "auth_failed", "error": {"code": code, "message": message}}
        return _canonical({"b": body, "mac": "", "n": 0}) + b"\n"

    @staticmethod
    def is_rejection(line: bytes) -> dict | None:
        """Return the rejection body if ``line`` is an auth_failed frame."""
        try:
            frame = json.loads(line)
        except (ValueError, UnicodeDecodeError):
            return None
        body = frame.get("b") if isinstance(frame, dict) else None
        if isinstance(body, dict) and body.get("op") == "auth_failed":
            return body
        return None


__all__ = [
    "DIR_FROM_COORDINATOR",
    "DIR_HELLO",
    "DIR_TO_COORDINATOR",
    "FLEET_PROTOCOL",
    "FleetAuthError",
    "FrameCodec",
    "FrameError",
    "MAX_FRAME_BYTES",
    "MIN_KEY_BYTES",
    "compute_mac",
    "load_auth_key",
    "make_nonce",
]
