"""Fleet message schema over the authenticated frames of :mod:`.wire`.

Frame bodies are plain JSON objects with an ``op`` field.  Three
conversations share the wire:

* **worker <-> coordinator** — ``hello``/``welcome`` handshake, then the
  coordinator pushes ``assign`` (one work unit: a lease over cells that
  share a trace key) and ``release``/``shutdown``; the worker streams
  ``heartbeat``, per-cell ``result``, ``unit_done``, and ``unit_failed``;
* **client <-> coordinator** — handshake, then ``sweep`` (the full cell
  list with complete config trees) answered by one ``sweep_result``,
  plus ``status`` and ``ping`` for the CLI's ``status --fleet`` view.

A cell crosses the wire as ``{"workload", "config", "seed", "scale",
"n_lanes"}`` with the *entire* :class:`~repro.configs.SystemConfig` tree
(:func:`~repro.configs.config_to_dict`), so fleet sweeps are not limited
to the named scheme presets — fault rates, adversary mixes, and fabric
overrides ship exactly.  Only registry workloads are dispatchable (the
same restriction as the process pool, for the same reason: a closure has
no content identity to rebuild from).
"""

from __future__ import annotations

from typing import Any

from repro.configs import config_from_dict, config_to_dict
from repro.runner.jobs import SweepJob, is_registry_spec
from repro.runner.trace_store import trace_key
from repro.workloads import get_workload

from repro.fleet.wire import FLEET_PROTOCOL, FrameError

#: Roles a connector may declare in its hello.
ROLES = ("worker", "client")

#: Structured error codes a coordinator response may carry.
#:
#: ``auth_failed``        handshake MAC verification failed (sent unauthenticated)
#: ``bad_request``        malformed frame body or undispatchable cell
#: ``unknown_workload``   a sweep cell names a workload the registry lacks
#: ``retries_exhausted``  a cell was reassigned more than the retry bound
#: ``execution_failed``   a worker reported a deterministic cell failure
#: ``shutting_down``      coordinator is stopping; resubmit elsewhere
#: ``internal``           unexpected coordinator-side error (bug — report it)
FLEET_ERROR_CODES = (
    "auth_failed",
    "bad_request",
    "unknown_workload",
    "retries_exhausted",
    "execution_failed",
    "shutting_down",
    "internal",
)


class FleetProtocolError(FrameError):
    """A frame body that does not conform to the fleet schema."""


def fleet_error(code: str, message: str) -> dict[str, str]:
    if code not in FLEET_ERROR_CODES:
        raise ValueError(f"unknown fleet error code {code!r}")
    return {"code": code, "message": message}


# ----------------------------------------------------------------------
# Cell <-> wire
# ----------------------------------------------------------------------
def job_to_wire(job: SweepJob) -> dict[str, Any]:
    """Render one sweep cell for the wire; registry workloads only."""
    if not is_registry_spec(job.spec):
        raise FleetProtocolError(
            f"workload {job.spec.name!r} is not a registry spec; "
            "non-registry cells cannot be dispatched to the fleet"
        )
    return {
        "workload": job.spec.name,
        "config": config_to_dict(job.config),
        "seed": job.seed,
        "scale": job.scale,
        "n_lanes": job.n_lanes,
    }


def job_from_wire(cell: dict[str, Any]) -> SweepJob:
    """Rebuild the :class:`SweepJob` a wire cell describes.

    Raises :class:`KeyError` for an unknown workload and
    :class:`FleetProtocolError` for a malformed cell — the coordinator
    maps those to ``unknown_workload`` / ``bad_request`` before any
    worker sees the cell.
    """
    if not isinstance(cell, dict):
        raise FleetProtocolError("cell must be a JSON object")
    for field in ("workload", "config", "seed", "scale", "n_lanes"):
        if field not in cell:
            raise FleetProtocolError(f"cell is missing required field {field!r}")
    spec = get_workload(cell["workload"])
    try:
        config = config_from_dict(cell["config"])
    except (TypeError, ValueError) as exc:
        raise FleetProtocolError(f"cell config does not parse: {exc}") from exc
    seed, scale, n_lanes = cell["seed"], cell["scale"], cell["n_lanes"]
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise FleetProtocolError("cell 'seed' must be an integer")
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise FleetProtocolError("cell 'scale' must be a positive number")
    if not isinstance(n_lanes, int) or isinstance(n_lanes, bool) or n_lanes < 1:
        raise FleetProtocolError("cell 'n_lanes' must be a positive integer")
    return SweepJob(spec=spec, config=config, seed=seed, scale=float(scale), n_lanes=n_lanes)


def wire_trace_key(cell: dict[str, Any]) -> str:
    """The trace-sharing group of a wire cell (no spec rebuild needed)."""
    return trace_key(
        cell["workload"],
        cell["config"]["n_gpus"],
        cell["seed"],
        cell["scale"],
        cell["n_lanes"],
    )


# ----------------------------------------------------------------------
# Handshake bodies
# ----------------------------------------------------------------------
def hello_body(role: str, name: str, nonce: str) -> dict[str, Any]:
    if role not in ROLES:
        raise FleetProtocolError(f"unknown role {role!r}")
    return {
        "op": "hello",
        "role": role,
        "name": name,
        "nonce": nonce,
        "protocol": FLEET_PROTOCOL,
    }


def validate_hello(body: dict[str, Any]) -> dict[str, Any]:
    """Check a hello body; raises :class:`FleetProtocolError`."""
    if body.get("op") != "hello":
        raise FleetProtocolError("first frame must be a hello")
    role = body.get("role")
    if role not in ROLES:
        raise FleetProtocolError(f"unknown role {role!r}; choose from {', '.join(ROLES)}")
    nonce = body.get("nonce")
    if not isinstance(nonce, str) or not nonce:
        raise FleetProtocolError("hello must carry a non-empty string nonce")
    if body.get("protocol") != FLEET_PROTOCOL:
        raise FleetProtocolError(
            f"protocol mismatch: peer speaks {body.get('protocol')!r}, "
            f"this side speaks {FLEET_PROTOCOL}"
        )
    name = body.get("name")
    if not isinstance(name, str) or not name:
        raise FleetProtocolError("hello must carry a non-empty string name")
    return body


def welcome_body(nonce: str) -> dict[str, Any]:
    return {"op": "welcome", "nonce": nonce, "protocol": FLEET_PROTOCOL}


__all__ = [
    "FLEET_ERROR_CODES",
    "FleetProtocolError",
    "ROLES",
    "fleet_error",
    "hello_body",
    "job_from_wire",
    "job_to_wire",
    "validate_hello",
    "welcome_body",
    "wire_trace_key",
]
