"""Command-line interface: ``repro-sim`` / ``python -m repro``.

Subcommands:

* ``run``         — simulate one workload under one scheme
* ``compare``     — one workload across all schemes, normalized table
* ``experiment``  — regenerate a paper table/figure by name
* ``metrics``     — dump/diff/tail/check metrics exports (``docs/OBSERVABILITY.md``)
* ``verify``      — differential conformance harness (``docs/VERIFICATION.md``)
* ``serve``       — long-lived simulation service (``docs/SERVICE.md``)
* ``submit``      — submit one cell to a running service
* ``status``      — queue/job state and live metrics of a running service
* ``cancel``      — cancel a submitted job
* ``fleet``       — distributed sweep fleet: coordinator and workers (``docs/FLEET.md``)
* ``list``        — list workloads and experiments
"""

from __future__ import annotations

import argparse
import sys

from repro.configs import scheme_config
from repro.workloads import all_workloads, get_workload

SCHEMES = ("unsecure", "private", "shared", "cached", "dynamic", "batching", "ideal")

#: Where ``serve`` binds and the client subcommands connect by default.
DEFAULT_SOCKET = "results/repro-sim.sock"

EXPERIMENTS = {
    "table1": ("repro.experiments.table1_storage", {}),
    "collectives": ("repro.experiments.fig_collectives", {"needs_runner": True}),
    "fig8": ("repro.experiments.fig08_otp_sensitivity", {"needs_runner": True}),
    "fig9": ("repro.experiments.fig09_prior_schemes", {"needs_runner": True}),
    "fig10": ("repro.experiments.fig10_otp_distribution", {"needs_runner": True}),
    "fig11": ("repro.experiments.fig11_overhead_breakdown", {"needs_runner": True}),
    "fig12": ("repro.experiments.fig12_traffic", {"needs_runner": True}),
    "fig13": ("repro.experiments.fig13_14_timelines", {"needs_runner": True}),
    "fig15": ("repro.experiments.fig15_16_burstiness", {"needs_runner": True}),
    "fig21": ("repro.experiments.fig21_main_result", {"needs_runner": True}),
    "fig26": ("repro.experiments.fig26_aes_latency", {"needs_runner": True}),
    "fault": ("repro.experiments.fig_fault_sweep", {"needs_runner": True}),
    "adversary": ("repro.experiments.fig_adversary", {"needs_runner": True}),
}


def _add_runner_args(sub_parser: argparse.ArgumentParser) -> None:
    """Execution flags shared by every simulating subcommand."""
    group = sub_parser.add_argument_group("execution")
    group.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for independent cells (default: $REPRO_JOBS or 1)",
    )
    group.add_argument(
        "--cache-dir", default=None,
        help="persistent result-cache directory (default: results/.cache)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache for this invocation",
    )
    group.add_argument(
        "--fleet", metavar="ADDR", default=None,
        help="distribute the sweep over a fleet coordinator at host:port (docs/FLEET.md)",
    )
    group.add_argument(
        "--auth-key-file", metavar="PATH", default=None,
        help="fleet shared-secret file (default: the REPRO_FLEET_KEY environment variable)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Secure multi-GPU communication simulator (HPCA 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload under one scheme")
    run_p.add_argument("workload", help="workload name or Table IV abbreviation")
    run_p.add_argument("--scheme", choices=SCHEMES, default="batching")
    run_p.add_argument("--gpus", type=int, default=4)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the run's metrics snapshot as JSONL to PATH",
    )
    _add_runner_args(run_p)

    cmp_p = sub.add_parser("compare", help="one workload across all schemes")
    cmp_p.add_argument("workload")
    cmp_p.add_argument("--gpus", type=int, default=4)
    cmp_p.add_argument("--seed", type=int, default=1)
    cmp_p.add_argument("--scale", type=float, default=1.0)
    _add_runner_args(cmp_p)

    exp_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=[*sorted(EXPERIMENTS), "all"])
    exp_p.add_argument("--gpus", type=int, default=4)
    exp_p.add_argument("--seed", type=int, default=1)
    exp_p.add_argument("--scale", type=float, default=0.5)
    exp_p.add_argument("--out", default="results/full", help="output dir for 'all'")
    _add_runner_args(exp_p)

    val_p = sub.add_parser("validate", help="check the paper's claims against this build")
    val_p.add_argument("--gpus", type=int, default=4)
    val_p.add_argument("--seed", type=int, default=1)
    val_p.add_argument("--scale", type=float, default=1.0)
    _add_runner_args(val_p)

    met_p = sub.add_parser("metrics", help="inspect and validate metrics exports")
    met_sub = met_p.add_subparsers(dest="metrics_command", required=True)
    dump_p = met_sub.add_parser("dump", help="pretty-print a metrics export")
    dump_p.add_argument("file")
    diff_p = met_sub.add_parser("diff", help="compare two exports (exit 1 on differences)")
    diff_p.add_argument("a")
    diff_p.add_argument("b")
    tail_p = met_sub.add_parser("tail", help="show the last N metrics of an export")
    tail_p.add_argument("file")
    tail_p.add_argument("-n", type=int, default=10, dest="count")
    check_p = met_sub.add_parser(
        "check", help="validate names/namespaces/payloads (exit 1 on violations)"
    )
    check_p.add_argument("file")

    ver_p = sub.add_parser(
        "verify", help="run the differential conformance harness"
    )
    depth = ver_p.add_mutually_exclusive_group()
    depth.add_argument(
        "--quick", dest="mode", action="store_const", const="quick",
        help="smoke matrix: 3 workloads x all schemes at small scale (default)",
    )
    depth.add_argument(
        "--full", dest="mode", action="store_const", const="full",
        help="full matrix: Table IV + collectives, dormant variants, seed stability",
    )
    ver_p.set_defaults(mode="quick")
    ver_p.add_argument("--gpus", type=int, default=4)
    ver_p.add_argument("--seed", type=int, default=1)
    ver_p.add_argument(
        "--artifact-dir", default=None,
        help="where minimized repro artifacts land (default: results/verify)",
    )
    ver_p.add_argument(
        "--no-shrink", action="store_true",
        help="report violations without minimizing them",
    )
    ver_p.add_argument(
        "--replay", metavar="ARTIFACT", default=None,
        help="re-run a saved repro artifact instead of the matrix",
    )
    _add_runner_args(ver_p)

    serve_p = sub.add_parser(
        "serve", help="run the long-lived simulation service (docs/SERVICE.md)"
    )
    serve_p.add_argument(
        "--socket", default=DEFAULT_SOCKET,
        help=f"unix socket to bind (default: {DEFAULT_SOCKET})",
    )
    serve_p.add_argument(
        "--queue-limit", type=int, default=64,
        help="max queued executions before submissions are rejected (default: 64)",
    )
    serve_p.add_argument(
        "--mode", choices=("auto", "serial", "parallel"), default="auto",
        help="sweep execution mode for each batch (default: auto)",
    )
    _add_runner_args(serve_p)

    sub_p = sub.add_parser("submit", help="submit one cell to a running service")
    sub_p.add_argument("workload", help="workload name or Table IV abbreviation")
    sub_p.add_argument("--scheme", choices=SCHEMES, default="batching")
    sub_p.add_argument("--gpus", type=int, default=4)
    sub_p.add_argument("--seed", type=int, default=1)
    sub_p.add_argument("--scale", type=float, default=1.0)
    sub_p.add_argument("--socket", default=DEFAULT_SOCKET)
    sub_p.add_argument("--client", default="cli", help="client name for fair scheduling")
    sub_p.add_argument(
        "--priority", choices=("high", "normal", "low"), default="normal",
        help="admission class: strict priority across classes, "
             "round-robin across clients within one (default: normal)",
    )
    sub_p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="fail with a structured deadline_exceeded error after SECONDS",
    )
    sub_p.add_argument(
        "--no-wait", action="store_true",
        help="return the job id immediately instead of waiting for the report",
    )
    sub_p.add_argument(
        "--json", action="store_true",
        help="print the full report as canonical JSON instead of a summary",
    )

    st_p = sub.add_parser("status", help="inspect a running service or one job")
    st_p.add_argument("job_id", nargs="?", default=None, help="job id to look up")
    st_p.add_argument("--socket", default=DEFAULT_SOCKET)
    st_p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the live service.* metrics snapshot as JSONL to PATH",
    )
    st_p.add_argument(
        "--fleet", metavar="ADDR", default=None,
        help="inspect a fleet coordinator at host:port instead of the local service",
    )
    st_p.add_argument(
        "--auth-key-file", metavar="PATH", default=None,
        help="fleet shared-secret file (default: the REPRO_FLEET_KEY environment variable)",
    )

    can_p = sub.add_parser("cancel", help="cancel a submitted job")
    can_p.add_argument("job_id")
    can_p.add_argument("--socket", default=DEFAULT_SOCKET)

    fleet_p = sub.add_parser(
        "fleet", help="distributed sweep fleet: coordinator and workers (docs/FLEET.md)"
    )
    fleet_sub = fleet_p.add_subparsers(dest="fleet_command", required=True)
    coord_p = fleet_sub.add_parser(
        "coordinator", help="run the fleet coordinator (authenticated TCP control plane)"
    )
    coord_p.add_argument("--host", default="127.0.0.1", help="bind address")
    coord_p.add_argument(
        "--port", type=int, default=7341,
        help="bind port; 0 picks a free port (default: 7341)",
    )
    coord_p.add_argument(
        "--auth-key-file", metavar="PATH", default=None,
        help="fleet shared-secret file (default: the REPRO_FLEET_KEY environment variable)",
    )
    coord_p.add_argument(
        "--lease-timeout", type=float, default=15.0, metavar="SECONDS",
        help="declare a worker dead after SECONDS of silence and reassign "
             "its remaining cells (default: 15)",
    )
    coord_p.add_argument(
        "--steal-after", type=float, default=10.0, metavar="SECONDS",
        help="duplicate-assign a straggler's remaining cells to an idle "
             "worker after SECONDS; 0 disables stealing (default: 10)",
    )
    coord_p.add_argument(
        "--max-cell-retries", type=int, default=3,
        help="reassignments one cell tolerates before its sweep fails (default: 3)",
    )
    coord_p.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound port to PATH once listening (use with --port 0)",
    )
    worker_p = fleet_sub.add_parser(
        "serve-worker", help="run one fleet worker against a coordinator"
    )
    worker_p.add_argument(
        "--addr", default="127.0.0.1:7341", metavar="HOST:PORT",
        help="coordinator address (default: 127.0.0.1:7341)",
    )
    worker_p.add_argument(
        "--auth-key-file", metavar="PATH", default=None,
        help="fleet shared-secret file (default: the REPRO_FLEET_KEY environment variable)",
    )
    worker_p.add_argument(
        "--name", default=None,
        help="worker display name (default: hostname-pid)",
    )
    worker_p.add_argument(
        "--heartbeat", type=float, default=2.0, metavar="SECONDS",
        help="lease-renewal heartbeat cadence (default: 2)",
    )

    sub.add_parser("list", help="list workloads and experiments")
    return parser


def _fleet_key(args) -> bytes | None:
    """Resolve the fleet secret when ``--fleet`` was given; exits on a
    missing or unusable key (distribution must fail loudly, not locally)."""
    if getattr(args, "fleet", None) is None:
        return None
    from repro.fleet.wire import FleetAuthError, load_auth_key

    try:
        return load_auth_key(args.auth_key_file)
    except FleetAuthError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)


def _sweeper(args):
    from repro.runner import SweepRunner, default_cache

    use_cache = False if args.no_cache else None
    fleet_addr = getattr(args, "fleet", None)
    return SweepRunner(
        jobs=args.jobs,
        cache=default_cache(args.cache_dir, use_cache),
        mode="fleet" if fleet_addr else "auto",
        fleet_addr=fleet_addr,
        fleet_key=_fleet_key(args),
    )


def _runner_kwargs(args) -> dict:
    return {
        "jobs": args.jobs,
        "cache_dir": args.cache_dir,
        "use_cache": False if args.no_cache else None,
        "fleet_addr": getattr(args, "fleet", None),
        "fleet_key": _fleet_key(args),
    }


def _cmd_run(args) -> int:
    from repro.runner import SweepJob

    spec = get_workload(args.workload)
    job = SweepJob(
        spec=spec,
        config=scheme_config(args.scheme, n_gpus=args.gpus),
        seed=args.seed,
        scale=args.scale,
    )
    report = _sweeper(args).run_jobs([job])[0]
    if args.metrics:
        from repro.obs import write_metrics_jsonl

        count = write_metrics_jsonl(report.metrics, args.metrics)
        print(f"wrote {count} metrics to {args.metrics}")
    print(f"workload           {spec.name} ({spec.suite}, {spec.rpki_class} RPKI)")
    print(f"scheme             {report.scheme}")
    print(f"execution cycles   {report.execution_cycles}")
    print(f"remote requests    {report.remote_requests}")
    print(f"RPKI               {report.rpki:.1f}")
    print(f"page migrations    {report.migrations}")
    print(f"traffic bytes      {report.traffic_bytes} ({report.meta_traffic_bytes} metadata)")
    if report.scheme != "unsecure":
        print(f"OTP send hit/partial/miss  {report.otp_send.hit:.1%} / "
              f"{report.otp_send.partial:.1%} / {report.otp_send.miss:.1%}")
        print(f"OTP recv hit/partial/miss  {report.otp_recv.hit:.1%} / "
              f"{report.otp_recv.partial:.1%} / {report.otp_recv.miss:.1%}")
    return 0


def _cmd_compare(args) -> int:
    from repro.runner import SweepJob

    spec = get_workload(args.workload)
    jobs = [
        SweepJob(
            spec=spec,
            config=scheme_config(scheme, n_gpus=args.gpus),
            seed=args.seed,
            scale=args.scale,
        )
        for scheme in SCHEMES
    ]
    reports = _sweeper(args).run_jobs(jobs)  # all schemes fan out together
    baseline = reports[0]
    print(f"{spec.name} on {args.gpus} GPUs (normalized to unsecure, "
          f"{baseline.execution_cycles} cycles)")
    print(f"{'scheme':10s} {'slowdown':>9s} {'traffic':>9s} {'send hit':>9s} {'recv hit':>9s}")
    for scheme, report in zip(SCHEMES[1:], reports[1:]):
        print(
            f"{scheme:10s} {report.slowdown_vs(baseline):9.3f} "
            f"{report.traffic_ratio_vs(baseline):9.3f} "
            f"{report.otp_send.hit:9.1%} {report.otp_recv.hit:9.1%}"
        )
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    if args.name == "all":
        from repro.experiments.report import generate_all

        sections = generate_all(
            args.out, scale=args.scale, seed=args.seed, **_runner_kwargs(args)
        )
        print(f"\nwrote {len(sections)} experiment tables to {args.out}/")
        return 0

    module_name, opts = EXPERIMENTS[args.name]
    module = importlib.import_module(module_name)
    if opts.get("needs_runner"):
        from repro.experiments.common import ExperimentRunner

        runner = ExperimentRunner(
            n_gpus=args.gpus, seed=args.seed, scale=args.scale, **_runner_kwargs(args)
        )
        result = module.run(runner)
    else:
        result = module.run()
    text = module.format_result(result)
    print(text)
    # Archive the table next to the benchmark outputs so a CLI regeneration
    # leaves the same artifact a `pytest benchmarks/` run would.
    from pathlib import Path

    out = Path("results") / f"{args.name}.txt"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + "\n")
    print(f"\n[written to {out}]")
    return 0


def _cmd_validate(args) -> int:
    from repro.experiments.common import ExperimentRunner
    from repro.validation import check_paper_claims, format_verdicts

    runner = ExperimentRunner(
        n_gpus=args.gpus, seed=args.seed, scale=args.scale, **_runner_kwargs(args)
    )
    verdicts = check_paper_claims(runner)
    print(format_verdicts(verdicts))
    return 0 if all(v.passed for v in verdicts) else 1


def _cmd_verify(args) -> int:
    from repro.verify import ReproArtifact, evaluate_cells, format_result, run_verify

    runner = _sweeper(args)

    if args.replay:
        from repro.runner import default_trace_store

        artifact = ReproArtifact.load(args.replay)
        print(f"replaying {args.replay}: {artifact.violation.oracle} "
              f"on {len(artifact.cells)} cell(s)")
        found = evaluate_cells(
            artifact.violation.oracle, artifact.cells,
            trace_store=runner.trace_store or default_trace_store(),
        )
        if found:
            print(found[0].describe())
            print("violation still reproduces")
            return 1
        print("violation no longer reproduces on this build")
        return 0

    result = run_verify(
        args.mode,
        n_gpus=args.gpus,
        seed=args.seed,
        runner=runner,
        do_shrink=not args.no_shrink,
        artifact_dir=args.artifact_dir or "results/verify",
    )
    print(format_result(result))
    return 0 if result.ok else 1


def _cmd_metrics(args) -> int:
    import json

    from repro.obs import diff_metrics, metrics_to_jsonl, read_metrics, validate_metrics_file

    if args.metrics_command == "dump":
        metrics = read_metrics(args.file)
        for name in sorted(metrics):
            print(json.dumps({"name": name, **metrics[name]}, sort_keys=True))
        return 0
    if args.metrics_command == "diff":
        differences = diff_metrics(read_metrics(args.a), read_metrics(args.b))
        for line in differences:
            print(line)
        if not differences:
            print("identical")
        return 1 if differences else 0
    if args.metrics_command == "tail":
        lines = metrics_to_jsonl(read_metrics(args.file)).splitlines()
        for line in lines[-max(args.count, 0):]:
            print(line)
        return 0
    if args.metrics_command == "check":
        errors = validate_metrics_file(args.file)
        for error in errors:
            print(error, file=sys.stderr)
        if errors:
            print(f"{args.file}: {len(errors)} violation(s)", file=sys.stderr)
        else:
            print(f"{args.file}: OK")
        return 1 if errors else 0
    raise AssertionError(f"unhandled metrics command {args.metrics_command}")


def _print_service_error(response: dict) -> int:
    """Render a structured service error; returns the exit code."""
    error = response.get("error", {})
    line = f"error [{error.get('code', 'unknown')}]: {error.get('message', response)}"
    if "retry_after_s" in error:
        line += f" (retry after {error['retry_after_s']}s)"
    print(line, file=sys.stderr)
    return 1


def _cmd_serve(args) -> int:
    from repro.runner import default_cache
    from repro.service.server import run_server

    cache = default_cache(args.cache_dir, False if args.no_cache else None)
    return run_server(
        args.socket,
        jobs=args.jobs,
        max_queue=args.queue_limit,
        cache=cache,
        mode=args.mode,
        fleet_addr=args.fleet,
        fleet_key=_fleet_key(args),
    )


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceUnavailable
    from repro.service.protocol import canonical_report_json

    try:
        with ServiceClient(args.socket) as client:
            response = client.submit(
                args.workload,
                scheme=args.scheme,
                gpus=args.gpus,
                seed=args.seed,
                scale=args.scale,
                client=args.client,
                wait=not args.no_wait,
                priority=args.priority,
                deadline_s=args.deadline,
            )
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not response.get("ok"):
        return _print_service_error(response)
    if args.no_wait:
        print(f"{response['job_id']} {response['state']} (source={response['source']})")
        return 0
    if args.json:
        print(canonical_report_json(response["report"]))
        return 0
    from repro.runner import report_from_dict

    report = report_from_dict(response["report"])
    print(f"job                {response['job_id']} (source={response['source']})")
    print(f"workload           {report.workload}")
    print(f"scheme             {report.scheme}")
    print(f"execution cycles   {report.execution_cycles}")
    print(f"traffic bytes      {report.traffic_bytes} ({report.meta_traffic_bytes} metadata)")
    if report.scheme != "unsecure":
        print(f"OTP send hit/partial/miss  {report.otp_send.hit:.1%} / "
              f"{report.otp_send.partial:.1%} / {report.otp_send.miss:.1%}")
    return 0


def _cmd_fleet_status(args) -> int:
    """Render a fleet coordinator's live snapshot (``status --fleet``)."""
    from repro.fleet.client import FleetClient, FleetError
    from repro.fleet.wire import FleetAuthError, load_auth_key

    try:
        key = load_auth_key(args.auth_key_file)
        with FleetClient(args.fleet, key, name="status-cli") as client:
            snapshot = client.status()
    except (FleetAuthError, FleetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    workers = snapshot.get("workers", [])
    print(f"fleet coordinator  {args.fleet}")
    print(f"workers            {len(workers)}")
    print(f"queue depth        {snapshot.get('queue_depth', 0)} "
          f"({snapshot.get('inflight_units', 0)} units in flight)")
    for worker in workers:
        print(f"  {worker['id']:6s} {worker['name']:24s} "
              f"inflight={worker['inflight']:<4d} completed={worker['completed']:<6d} "
              f"idle={worker['idle_s']:.1f}s")
    metrics = snapshot.get("metrics", {})
    for name in sorted(metrics):
        if name.startswith("fleet.") and "." not in name[len("fleet."):]:
            print(f"  {name:24s} {metrics[name].get('value')}")
    if args.metrics:
        from repro.obs import write_metrics_jsonl

        count = write_metrics_jsonl(metrics, args.metrics)
        print(f"wrote {count} metrics to {args.metrics}")
    return 0


def _cmd_status(args) -> int:
    from repro.service.client import ServiceClient, ServiceUnavailable

    if args.fleet:
        return _cmd_fleet_status(args)
    try:
        with ServiceClient(args.socket) as client:
            if args.metrics:
                response = client.metrics()
                if not response.get("ok"):
                    return _print_service_error(response)
                from repro.obs import write_metrics_jsonl

                count = write_metrics_jsonl(response["metrics"], args.metrics)
                print(f"wrote {count} metrics to {args.metrics}")
                return 0
            response = client.status(args.job_id)
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not response.get("ok"):
        return _print_service_error(response)
    if args.job_id is not None:
        job = response["job"]
        print(f"{job['job_id']} {job['state']} (client={job['client']}, "
              f"source={job['source']}) {job['cell']}")
        return 0
    print(f"queue depth        {response['queue_depth']} / {response['max_queue']}"
          f"{'  (draining)' if response['draining'] else ''}")
    for state in sorted(response["states"]):
        print(f"  {state:10s} {response['states'][state]}")
    for job in response["jobs"]:
        print(f"  {job['job_id']} {job['state']:8s} {job['client']:12s} {job['cell']}")
    return 0


def _cmd_cancel(args) -> int:
    from repro.service.client import ServiceClient, ServiceUnavailable

    try:
        with ServiceClient(args.socket) as client:
            response = client.cancel(args.job_id)
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not response.get("ok"):
        return _print_service_error(response)
    print(f"{response['job_id']} {response['state']}")
    return 0


def _cmd_fleet(args) -> int:
    from repro.fleet.wire import FleetAuthError, load_auth_key

    try:
        key = load_auth_key(args.auth_key_file)
    except FleetAuthError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.fleet_command == "coordinator":
        from repro.fleet.coordinator import run_coordinator

        return run_coordinator(
            key,
            args.host,
            args.port,
            lease_timeout_s=args.lease_timeout,
            steal_after_s=args.steal_after if args.steal_after > 0 else None,
            max_cell_retries=args.max_cell_retries,
            port_file=args.port_file,
        )
    assert args.fleet_command == "serve-worker", f"unhandled {args.fleet_command}"
    from repro.fleet.client import parse_addr
    from repro.fleet.worker import run_worker

    host, port = parse_addr(args.addr)
    return run_worker(key, host, port, name=args.name, heartbeat_s=args.heartbeat)


def _cmd_list() -> int:
    from repro.workloads import all_collectives

    print("Workloads (Table IV):")
    for spec in all_workloads():
        print(f"  {spec.abbr:7s} {spec.name:22s} {spec.suite:12s} {spec.rpki_class} RPKI")
    print("\nCollectives (docs/WORKLOADS.md):")
    for spec in all_collectives():
        print(f"  {spec.abbr:7s} {spec.name:22s} {spec.suite:12s} {spec.rpki_class}")
    print("\nExperiments:", ", ".join(sorted(EXPERIMENTS)))
    print("Schemes:", ", ".join(SCHEMES))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "list":
        return _cmd_list()
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
