"""Persistent on-disk result cache for simulation sweeps.

One JSON file per simulated cell under the cache root (default
``results/.cache/``), named by the cell's content hash.  Because the key
already encodes the full configuration and the code-version salt, lookups
are a pure existence check and invalidation is automatic: a changed config
or version hashes to a different file.

Writes are atomic (unique tmp file in the cache directory + ``os.replace``
— see :mod:`repro.runner.atomic`) so any number of concurrent writers —
pool workers, parallel sweeps on a shared filesystem, fleet workers on
other hosts — can store the same key at once: every writer produces a
complete file, the last rename wins, and the winner's content is identical
to every loser's because a key's report is a pure function of the key.  A
killed run can never leave a half-written entry that a later run would
trust; unreadable or mismatched entries are treated as misses and
overwritten.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.system import SimulationReport

from repro.runner.atomic import atomic_write_text, sweep_stale_tmp
from repro.runner.serialize import report_from_dict, report_to_dict

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / ".cache"


class ResultCache:
    """Content-addressed store of :class:`SimulationReport` JSON blobs."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._swept_tmp = False

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> SimulationReport | None:
        """Return the cached report for ``key``, or None on any miss."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            report = report_from_dict(data["report"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, corrupt, or written by an incompatible schema: a miss.
            self.misses += 1
            return None
        self.hits += 1
        return report

    def store(self, key: str, report: SimulationReport, describe: dict[str, Any] | None = None) -> None:
        """Atomically persist ``report`` under ``key``.

        ``describe`` is an optional human-readable echo of the key material
        (workload/seed/scheme), stored purely to make cache files greppable.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if not self._swept_tmp:
            # First write of this process: reap tmp orphans a killed writer
            # left behind (bounded, tolerant of concurrent sweepers).
            self._swept_tmp = True
            sweep_stale_tmp(self.root)
        payload = {"key": key, "describe": describe or {}, "report": report_to_dict(report)}
        atomic_write_text(self.path_for(key), json.dumps(payload))
        self.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"ResultCache({self.root}, hits={self.hits}, misses={self.misses}, stores={self.stores})"


def default_cache(
    cache_dir: str | Path | None = None, use_cache: bool | None = None
) -> ResultCache | None:
    """Build the cache an entry point should use.

    Resolution order: an explicit ``use_cache`` wins; otherwise the
    ``REPRO_NO_CACHE`` environment variable disables caching (what CI
    sets); otherwise caching is on.  ``cache_dir`` (or ``REPRO_CACHE_DIR``)
    overrides the default ``results/.cache`` root.
    """
    if use_cache is None:
        use_cache = not os.environ.get("REPRO_NO_CACHE")
    if not use_cache:
        return None
    root = cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return ResultCache(root)


__all__ = ["ResultCache", "default_cache", "DEFAULT_CACHE_DIR"]
