"""Crash- and concurrency-safe file writes shared by the persistent stores.

The result cache, the trace store, and the fleet's report spool are all
written by many uncoordinated writers at once: pool workers, separate CLI
invocations on a shared filesystem, fleet workers on other hosts mounting
the same results volume.  Every one of them follows the same discipline —
write a uniquely-named temp file *in the destination directory*, then
``os.replace`` it over the final name:

* readers never observe a half-written file (rename is atomic on POSIX
  and on NTFS; the temp file lives in the same directory, so the rename
  can never degrade to a cross-device copy);
* duplicate concurrent puts of the same key are benign — both writers
  produce complete files and the last rename wins, which is harmless
  because a key's content is a pure function of the key;
* a writer killed mid-write leaves only a ``.tmp-*`` orphan, never a
  corrupt entry; :func:`sweep_stale_tmp` reaps those opportunistically.

``tests/test_cache_concurrency.py`` hammers both stores from many
processes to pin this contract down.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

#: Temp files carry this prefix so readers (and the reaper) can spot them.
TMP_PREFIX = ".tmp-"

#: Orphaned temp files younger than this are presumed to belong to a live
#: writer and are left alone.
STALE_TMP_SECONDS = 3600.0


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically create/overwrite ``path`` with ``data``.

    Safe against concurrent writers of the same path (last complete write
    wins) and against the writer dying at any point (the destination is
    either the old content or the new content, never a torn mix).
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=TMP_PREFIX, suffix=path.suffix
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Text-mode convenience over :func:`atomic_write_bytes` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))


def sweep_stale_tmp(root: str | Path, older_than_s: float = STALE_TMP_SECONDS) -> int:
    """Reap ``.tmp-*`` orphans under ``root`` older than ``older_than_s``.

    Returns how many were removed.  Every step tolerates a concurrent
    sweeper (or the orphan's writer finishing after all): a vanished file
    is simply skipped.  Called opportunistically by the stores on their
    first write of a process — never on the hot path.
    """
    root = Path(root)
    removed = 0
    try:
        entries = list(root.glob(f"{TMP_PREFIX}*"))
    except OSError:
        return 0
    cutoff = time.time() - older_than_s
    for entry in entries:
        try:
            if entry.stat().st_mtime < cutoff:
                entry.unlink()
                removed += 1
        except OSError:
            continue  # raced with its writer or another sweeper
    return removed


__all__ = ["TMP_PREFIX", "STALE_TMP_SECONDS", "atomic_write_bytes", "atomic_write_text", "sweep_stale_tmp"]
