"""Sweep job definition and content-hash cache keys.

A :class:`SweepJob` is one independent simulation cell: a workload at a
seed/scale under one :class:`~repro.configs.SystemConfig`.  Jobs are frozen
and hashable, so identical cells requested twice in one sweep (every figure
re-requests the unsecure baseline) deduplicate structurally.

The persistent cache key is a SHA-256 over a canonical JSON rendering of
everything that determines the result: workload name, seed, scale, lane
count, the *entire* configuration tree, and a code-version salt.  Changing
any swept field — or bumping the package version — changes the hash, so
stale entries simply stop being found rather than needing eviction logic.
Only registry workloads get persistent keys: a custom
:class:`~repro.workloads.registry.WorkloadSpec` (e.g. a synthetic spec
closed over arbitrary knobs) has no stable content identity, so it runs
with the in-memory memo only.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass

import repro
from repro.configs import SystemConfig
from repro.obs import Telemetry
from repro.system import MultiGpuSystem, SimulationReport
from repro.workloads import get_workload
from repro.workloads.registry import WorkloadSpec

#: Bump when the key layout (not the simulated behavior) changes.
KEY_SCHEMA = 1


@dataclass(frozen=True)
class SweepJob:
    """One independent (workload, config, seed) simulation."""

    spec: WorkloadSpec
    config: SystemConfig
    seed: int
    scale: float
    n_lanes: int = 8

    def describe(self) -> str:
        scheme = self.config.security.scheme
        if self.config.security.batching:
            scheme = "batching"
        return f"{self.spec.name}/{scheme}/{self.config.n_gpus}gpus/seed{self.seed}/scale{self.scale}"


def is_registry_spec(spec: WorkloadSpec) -> bool:
    """True when ``spec`` is exactly the Table IV registry entry of its name."""
    try:
        return get_workload(spec.name) is spec
    except KeyError:
        return False


def cache_salt() -> str:
    """Code-version salt folded into every cache key.

    ``REPRO_CACHE_SALT`` lets a developer segregate (or force-invalidate)
    cache entries without touching the package version.
    """
    extra = os.environ.get("REPRO_CACHE_SALT", "")
    return f"{repro.__version__}+{extra}" if extra else repro.__version__


def job_key(job: SweepJob) -> str | None:
    """Content hash for the persistent cache, or None when not cacheable."""
    if not is_registry_spec(job.spec):
        return None
    config_material = asdict(job.config)
    # The fault section only enters the key when it can affect the result
    # (any non-zero rate): an all-zero FaultConfig simulates identically to
    # a config that predates fault injection, and must hash identically so
    # existing cache entries keep matching.
    fault = config_material.pop("fault", None)
    if fault is not None and any(
        fault.get(rate, 0.0)
        for rate in ("drop_rate", "corrupt_rate", "duplicate_rate", "delay_rate")
    ):
        config_material["fault"] = fault
    # Same contract for the adversary section: dormant (all-zero-rate)
    # AdversaryConfigs leave the hash — and therefore every existing cache
    # entry — untouched.
    adversary = config_material.pop("adversary", None)
    if adversary is not None and any(
        adversary.get(rate, 0.0)
        for rate in (
            "flip_cipher_rate",
            "flip_mac_rate",
            "replay_rate",
            "reorder_rate",
            "truncate_rate",
            "splice_rate",
            "forge_rate",
        )
    ):
        config_material["adversary"] = adversary
    material = {
        "schema": KEY_SCHEMA,
        "salt": cache_salt(),
        "workload": job.spec.name,
        "seed": job.seed,
        "scale": job.scale,
        "n_lanes": job.n_lanes,
        "config": config_material,
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def execute_job(job: SweepJob, *, trace=None, trace_store=None) -> SimulationReport:
    """Run one cell: obtain its trace and simulate it.  Pure & deterministic.

    The trace can come from three places, in precedence order: an explicit
    ``trace`` (a :class:`~repro.workloads.compiled.CompiledTrace` the sweep
    scheduler already shares across schemes), a ``trace_store`` (a
    :class:`~repro.runner.trace_store.TraceStore` consulted by content
    key), or — the standalone default — fresh generation.  Traces are a
    pure function of ``(workload, n_gpus, seed, scale, n_lanes)``, so the
    resulting :class:`~repro.system.SimulationReport` is bit-identical no
    matter which path supplied the trace (tested in
    ``tests/test_compiled_trace.py``).

    One run-scoped :class:`~repro.obs.Telemetry` spans the whole cell.  The
    ``trace.generate`` phase is recorded **only** when this call actually
    generated the trace — a store hit or a pre-shared trace must not
    inflate the phase profile.  Only the deterministic metrics snapshot
    lands on the report; the profile stays in-process (see
    ``docs/OBSERVABILITY.md``).
    """
    telemetry = Telemetry()
    if trace is None:
        if trace_store is not None:
            trace, _source = trace_store.get_or_generate(
                job.spec,
                job.config.n_gpus,
                job.seed,
                job.scale,
                job.n_lanes,
                telemetry=telemetry,
            )
        else:
            with telemetry.phase("trace.generate"):
                trace = job.spec.generate(
                    n_gpus=job.config.n_gpus,
                    seed=job.seed,
                    scale=job.scale,
                    n_lanes=job.n_lanes,
                )
    return MultiGpuSystem(job.config, telemetry=telemetry).run(trace)


__all__ = ["SweepJob", "execute_job", "job_key", "cache_salt", "is_registry_spec", "KEY_SCHEMA"]
