"""Lossless JSON serialization of :class:`~repro.system.SimulationReport`.

The persistent result cache and the process-pool sweep workers both move
reports across a JSON boundary, so the round trip must be exact: every
metric a figure reads has to come back bit-identical.  That holds because
every field is an int, a float (JSON floats round-trip exactly through
``repr``), a string, or a container of those — the only non-trivial part is
restoring the integer keys JSON stringifies (GPU node ids, interval
buckets).
"""

from __future__ import annotations

from typing import Any

from repro.secure.adversary import AttackReport
from repro.sim.stats import FaultStats, IntervalSeries
from repro.system import OtpDistribution, SimulationReport

#: Bump when the report layout changes; stale cache entries stop matching.
#: v2: reports carry the uniform-namespace telemetry snapshot (``metrics``).
REPORT_SCHEMA = 2


def series_to_dict(series: IntervalSeries) -> dict[str, Any]:
    return {
        "name": series.name,
        "interval": series.interval,
        "channels": {
            chan: {str(bucket): amount for bucket, amount in buckets.items()}
            for chan, buckets in series._channels.items()
        },
    }


def series_from_dict(data: dict[str, Any]) -> IntervalSeries:
    series = IntervalSeries(data["name"], data["interval"])
    series._channels = {
        chan: {int(bucket): amount for bucket, amount in buckets.items()}
        for chan, buckets in data["channels"].items()
    }
    return series


def _otp_to_dict(otp: OtpDistribution) -> dict[str, float]:
    return {"hit": otp.hit, "partial": otp.partial, "miss": otp.miss}


def report_to_dict(report: SimulationReport) -> dict[str, Any]:
    out = {
        "schema": REPORT_SCHEMA,
        "workload": report.workload,
        "scheme": report.scheme,
        "n_gpus": report.n_gpus,
        "execution_cycles": report.execution_cycles,
        "traffic_bytes": report.traffic_bytes,
        "base_traffic_bytes": report.base_traffic_bytes,
        "meta_traffic_bytes": report.meta_traffic_bytes,
        "remote_requests": report.remote_requests,
        "migrations": report.migrations,
        "otp_send": _otp_to_dict(report.otp_send),
        "otp_recv": _otp_to_dict(report.otp_recv),
        "rpki": report.rpki,
        "acks_sent": report.acks_sent,
        "batch_macs_sent": report.batch_macs_sent,
        "per_gpu_finish": {str(node): cycle for node, cycle in report.per_gpu_finish.items()},
        "burst16_fractions": list(report.burst16_fractions),
        "burst32_fractions": list(report.burst32_fractions),
        "timelines": {str(node): series_to_dict(s) for node, s in report.timelines.items()},
        "events_processed": report.events_processed,
        # Already JSON-safe by construction (MetricsRegistry.snapshot), so
        # the cache and the pool boundary round-trip it bit-identically.
        "metrics": report.metrics,
    }
    # Optional keys, present only under fault injection / an active
    # adversary: clean reports stay byte-identical to the earlier layouts
    # (and to schema 1 readers).
    if report.fault_stats is not None:
        out["fault_stats"] = report.fault_stats.as_dict()
    if report.attack_report is not None:
        out["attack_report"] = report.attack_report.as_dict()
    return out


def report_from_dict(data: dict[str, Any]) -> SimulationReport:
    if data.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"unsupported report schema {data.get('schema')!r}")
    return SimulationReport(
        workload=data["workload"],
        scheme=data["scheme"],
        n_gpus=data["n_gpus"],
        execution_cycles=data["execution_cycles"],
        traffic_bytes=data["traffic_bytes"],
        base_traffic_bytes=data["base_traffic_bytes"],
        meta_traffic_bytes=data["meta_traffic_bytes"],
        remote_requests=data["remote_requests"],
        migrations=data["migrations"],
        otp_send=OtpDistribution(**data["otp_send"]),
        otp_recv=OtpDistribution(**data["otp_recv"]),
        rpki=data["rpki"],
        acks_sent=data["acks_sent"],
        batch_macs_sent=data["batch_macs_sent"],
        per_gpu_finish={int(node): cycle for node, cycle in data["per_gpu_finish"].items()},
        burst16_fractions=list(data["burst16_fractions"]),
        burst32_fractions=list(data["burst32_fractions"]),
        timelines={int(node): series_from_dict(s) for node, s in data["timelines"].items()},
        events_processed=data["events_processed"],
        fault_stats=FaultStats(**data["fault_stats"]) if "fault_stats" in data else None,
        attack_report=(
            AttackReport.from_dict(data["attack_report"]) if "attack_report" in data else None
        ),
        metrics=data["metrics"],
    )


__all__ = ["REPORT_SCHEMA", "report_to_dict", "report_from_dict", "series_to_dict", "series_from_dict"]
