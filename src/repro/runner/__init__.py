"""Parallel sweep execution and persistent result caching.

The experiment layer describes *what* to simulate — (workload, config,
seed) cells — and this package decides *how*: deduplicated, cache-backed,
fanned out over worker processes, merged back in deterministic order.

    from repro.runner import SweepJob, SweepRunner, default_cache

    runner = SweepRunner(jobs=4, cache=default_cache())
    reports = runner.run_jobs([SweepJob(spec, config, seed=1, scale=0.5)])
"""

from repro.runner.atomic import atomic_write_bytes, atomic_write_text, sweep_stale_tmp
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache, default_cache
from repro.runner.jobs import SweepJob, cache_salt, execute_job, is_registry_spec, job_key
from repro.runner.serialize import report_from_dict, report_to_dict
from repro.runner.sweep import SweepError, SweepRunner, SweepStats, available_cpus, resolve_jobs
from repro.runner.trace_store import (
    DEFAULT_TRACE_DIR,
    TraceStore,
    default_trace_store,
    job_trace_key,
    trace_key,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "sweep_stale_tmp",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "default_cache",
    "SweepJob",
    "execute_job",
    "job_key",
    "cache_salt",
    "is_registry_spec",
    "report_to_dict",
    "report_from_dict",
    "SweepError",
    "SweepRunner",
    "SweepStats",
    "available_cpus",
    "resolve_jobs",
    "DEFAULT_TRACE_DIR",
    "TraceStore",
    "default_trace_store",
    "trace_key",
    "job_trace_key",
]
