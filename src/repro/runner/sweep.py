"""Parallel sweep execution with persistent caching.

:class:`SweepRunner` takes a list of :class:`~repro.runner.jobs.SweepJob`
cells and returns their :class:`~repro.system.SimulationReport` results *in
input order*, regardless of how the work was executed:

1. structurally identical jobs are deduplicated (every figure re-requests
   the unsecure baseline per workload),
2. cells present in the persistent cache are loaded, not simulated,
3. remaining cells fan out over a ``ProcessPoolExecutor`` when ``jobs > 1``
   — the simulations are CPU-bound pure Python, so processes (not threads)
   are the only way to use more than one core,
4. anything the pool could not produce (pickling failure, worker crash,
   per-job timeout, a broken pool, an OS without working process pools)
   falls back to in-process serial execution with bounded retries.

Each cell is a pure deterministic function of its job description, so the
merge is trivially deterministic: results carry no trace of where or in
what order they ran, and serial / parallel / cached runs of the same sweep
produce bit-identical reports (tested in ``tests/test_sweep_runner.py``).

Workers receive registry workloads *by name* and rebuild the spec from the
registry on their side — that keeps the cross-process payload free of
closures (synthetic specs close over arbitrary knobs and may not pickle);
non-registry specs simply run serially in the parent.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.system import SimulationReport

from repro.runner.cache import ResultCache
from repro.runner.jobs import SweepJob, execute_job, is_registry_spec, job_key
from repro.runner.serialize import report_from_dict


class SweepError(RuntimeError):
    """A sweep cell failed on every execution attempt."""


def resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


def _worker(payload: tuple[str, Any, int, float, int]) -> dict[str, Any]:
    """Process-pool entry point: rebuild the job from the registry and run it.

    Returns the report as a JSON-safe dict — the exact serialization the
    cache uses — so the parent-side decode path is shared with cache loads.
    """
    from repro.workloads import get_workload

    name, config, seed, scale, n_lanes = payload
    job = SweepJob(spec=get_workload(name), config=config, seed=seed, scale=scale, n_lanes=n_lanes)
    from repro.runner.serialize import report_to_dict

    return report_to_dict(execute_job(job))


@dataclass
class SweepStats:
    """Where the cells of the last ``run_jobs`` call came from."""

    requested: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    parallel_runs: int = 0
    serial_runs: int = 0
    retries: int = 0
    fallbacks: int = 0  # cells the pool failed and serial execution rescued

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class SweepRunner:
    """Fans independent simulation cells out over processes, with caching.

    ``jobs``     worker processes (1 = serial; None = ``REPRO_JOBS`` or 1)
    ``cache``    optional :class:`ResultCache`; None disables persistence
    ``timeout``  per-job seconds before the parent gives up on a worker and
                 re-runs the cell serially (None = wait forever)
    ``retries``  extra serial attempts per cell after its first failure
    """

    jobs: int | None = None
    cache: ResultCache | None = None
    timeout: float | None = None
    retries: int = 1
    stats: SweepStats = field(default_factory=SweepStats)

    def run_jobs(self, sweep_jobs: Sequence[SweepJob]) -> list[SimulationReport]:
        """Execute every cell and return reports in input order."""
        n_workers = resolve_jobs(self.jobs)
        self.stats = SweepStats(requested=len(sweep_jobs))

        # Stable-order dedup: dict preserves first-seen order.
        unique: dict[SweepJob, SimulationReport | None] = {}
        for job in sweep_jobs:
            if job not in unique:
                unique[job] = None
        self.stats.deduplicated = len(sweep_jobs) - len(unique)

        keys: dict[SweepJob, str | None] = {job: job_key(job) for job in unique}
        if self.cache is not None:
            for job in unique:
                key = keys[job]
                if key is not None:
                    cached = self.cache.load(key)
                    if cached is not None:
                        unique[job] = cached
                        self.stats.cache_hits += 1

        pending = [job for job, report in unique.items() if report is None]
        if n_workers > 1 and len(pending) > 1:
            self._run_parallel(pending, unique, n_workers)

        for job in pending:
            if unique[job] is None:
                unique[job] = self._run_serial(job)

        if self.cache is not None:
            for job in pending:
                key = keys[job]
                report = unique[job]
                if key is not None and report is not None:
                    try:
                        self.cache.store(key, report, describe={"job": job.describe()})
                    except OSError:
                        break  # cache root unwritable — results still stand

        return [unique[job] for job in sweep_jobs]  # type: ignore[misc]

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        pending: list[SweepJob],
        results: dict[SweepJob, SimulationReport | None],
        n_workers: int,
    ) -> None:
        """Best-effort pool execution; whatever fails stays None for serial."""
        dispatchable = [job for job in pending if is_registry_spec(job.spec)]
        if len(dispatchable) < 2:
            return
        try:
            pool = ProcessPoolExecutor(max_workers=min(n_workers, len(dispatchable)))
        except (OSError, ValueError, NotImplementedError):
            self.stats.fallbacks += len(dispatchable)
            return
        wedged = False
        try:
            futures = []
            for job in dispatchable:
                payload = (job.spec.name, job.config, job.seed, job.scale, job.n_lanes)
                try:
                    futures.append((job, pool.submit(_worker, payload)))
                except Exception:
                    self.stats.fallbacks += 1
            for job, future in futures:
                if wedged and not future.done():
                    # A worker already blew its deadline and may be wedged
                    # in its slot.  Waiting another full timeout per
                    # remaining future would serialize the damage, so only
                    # harvest results that are already in hand.
                    self.stats.fallbacks += 1
                    continue
                try:
                    results[job] = report_from_dict(future.result(timeout=self.timeout))
                    self.stats.parallel_runs += 1
                except FutureTimeoutError:
                    wedged = True
                    self.stats.fallbacks += 1
                except Exception:
                    self.stats.fallbacks += 1
        finally:
            # Grab the process handles first: shutdown() clears _processes.
            processes = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=not wedged, cancel_futures=True)
            if wedged:
                # shutdown(wait=False) leaves a wedged worker running —
                # possibly forever, holding a core and its memory.  Kill
                # the pool's processes outright; every unharvested cell is
                # re-run serially by the caller anyway.
                for proc in processes:
                    try:
                        proc.terminate()
                    except (OSError, ValueError):
                        pass
                for proc in processes:
                    try:
                        proc.join(timeout=5.0)
                    except (OSError, ValueError, AssertionError):
                        pass

    def _run_serial(self, job: SweepJob) -> SimulationReport:
        attempts = max(1, self.retries + 1)
        last_error: Exception | None = None
        for attempt in range(attempts):
            try:
                report = execute_job(job)
                self.stats.serial_runs += 1
                return report
            except Exception as exc:  # deterministic sims rarely recover, but
                last_error = exc  # a retry costs little next to a lost sweep
                if attempt + 1 < attempts:
                    self.stats.retries += 1
        raise SweepError(
            f"sweep cell {job.describe()} failed after {attempts} attempt(s)"
        ) from last_error


__all__ = ["SweepRunner", "SweepStats", "SweepError", "resolve_jobs"]
