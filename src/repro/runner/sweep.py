"""Sweep scheduling: trace-shared, cache-backed, serial or process-parallel.

:class:`SweepRunner` takes a list of :class:`~repro.runner.jobs.SweepJob`
cells and returns their :class:`~repro.system.SimulationReport` results *in
input order*, regardless of how the work was executed:

1. structurally identical jobs are deduplicated (every figure re-requests
   the unsecure baseline per workload),
2. cells present in the persistent cache are loaded, not simulated,
3. the remaining cells are grouped by **trace key** — cells that differ
   only in their security configuration replay literally the same
   :class:`~repro.workloads.compiled.CompiledTrace`, generated (or loaded
   from the on-disk trace store) exactly once,
4. execution mode is chosen: ``"serial"`` runs groups in-process;
   ``"parallel"`` fans trace-key groups out over a
   ``ProcessPoolExecutor`` as *chunks*, so each worker round-trip carries
   several cells and amortizes its trace load across them; ``"auto"``
   (the default) picks parallel only when it can plausibly win — more than
   one worker requested, more than one CPU present, and enough pending
   cells to amortize pool startup.  The measured failure mode this guards
   against: on a single-core host (or a two-cell grid) pool spawn + IPC
   costs more than the simulations themselves,
5. anything the pool could not produce (pickling failure, worker crash,
   per-chunk timeout, a broken pool, an OS without working process pools)
   falls back to in-process serial execution with bounded retries.

Each cell is a pure deterministic function of its job description, so the
merge is trivially deterministic: results carry no trace of where or in
what order they ran, and serial / parallel / cached runs of the same sweep
produce bit-identical reports (tested in ``tests/test_sweep_runner.py`` and
``tests/test_compiled_trace.py``).

Workers receive registry workloads *by name* and rebuild both the spec and
the trace on their side — the spec from the registry, the trace from a
process-local :class:`~repro.runner.trace_store.TraceStore` (so a chunk of
N schemes loads or generates its trace once, and a long-lived worker reuses
it across chunks).  That keeps the cross-process payload free of closures
and of multi-megabyte trace arrays; non-registry specs simply run serially
in the parent.  (The alternative — generating in the parent and shipping
the compiled arrays through the pool pickles — was measured slower: the
trace bytes dominate the IPC cost, while a worker-side store load is a
single mmap-free ``.npz`` read.  See docs/PERFORMANCE.md.)

:class:`SweepStats` records how the last run was executed — chosen mode,
cell provenance, trace-reuse counts, and a parent-side wall-clock split
(``trace_gen_s`` / ``simulate_s`` / ``ipc_s``) — which is what
``benchmarks/bench_sweep_runtime.py`` snapshots into ``BENCH_sweep.json``.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Any, Sequence

from repro.obs import Telemetry
from repro.system import SimulationReport

from repro.runner.cache import ResultCache
from repro.runner.jobs import SweepJob, execute_job, is_registry_spec, job_key
from repro.runner.serialize import report_from_dict
from repro.runner.trace_store import TraceStore, default_trace_store, job_trace_key


class SweepError(RuntimeError):
    """A sweep cell failed on every execution attempt."""


#: ``mode="auto"`` only goes parallel when at least this many cells are
#: pending — below it, pool spawn + per-chunk IPC exceeds the simulation
#: time saved (measured on the BENCH grid; see docs/PERFORMANCE.md).
AUTO_PARALLEL_MIN_CELLS = 4


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores, which overstates what a
    containerized / cgroup-limited process (CI runners, the simulation
    service in a pod) is allowed to use.  The scheduler affinity mask is
    the truth where the platform exposes it; fall back to ``cpu_count``
    elsewhere (macOS, some BSDs).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    The result is capped at :func:`available_cpus` — asking for more
    workers than the affinity mask allows only oversubscribes the pool
    (every worker is CPU-bound for its whole chunk), so the cap loses
    nothing and keeps cgroup-limited runners from thrashing.
    """
    if jobs is None:
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        except ValueError:
            jobs = 1
    return max(1, min(int(jobs), available_cpus()))


#: Process-local trace stores for pool workers, keyed by disk root: one per
#: (worker process, root), created on first use, shared across every chunk
#: that worker executes against that root.
_worker_trace_stores: dict[str | None, TraceStore] = {}


def _worker(
    store_root: str | None,
    payload: tuple[tuple[str, Any, int, float, int], ...],
) -> list[dict[str, Any]]:
    """Process-pool entry point: run one chunk of cells sharing a trace key.

    The chunk's jobs are rebuilt from the registry by name; the first job
    pulls the chunk's trace out of this worker's process-local store (disk
    hit, or one generation) and every subsequent job in the chunk replays
    the same in-memory object.  ``store_root`` is the parent runner's store
    root (None for memo-only), so workers read and write the same disk
    layer as the parent instead of a default of their own.  Returns the
    reports as JSON-safe dicts — the exact serialization the cache uses —
    so the parent-side decode path is shared with cache loads.
    """
    from repro.workloads import get_workload

    from repro.runner.serialize import report_to_dict

    store = _worker_trace_stores.get(store_root)
    if store is None:
        store = _worker_trace_stores[store_root] = TraceStore(store_root)

    out: list[dict[str, Any]] = []
    for name, config, seed, scale, n_lanes in payload:
        job = SweepJob(
            spec=get_workload(name), config=config, seed=seed, scale=scale, n_lanes=n_lanes
        )
        out.append(report_to_dict(execute_job(job, trace_store=store)))
    return out


@dataclass
class SweepStats:
    """How the cells of the last ``run_jobs`` call were executed.

    The three ``*_s`` fields are a parent-side wall-clock decomposition:
    ``trace_gen_s`` is time spent generating traces in the parent (store
    hits and reuses contribute nothing), ``simulate_s`` is in-process
    simulation time, and ``ipc_s`` is time blocked on pool futures —
    worker compute plus pickling — for chunks that ran remotely.
    """

    requested: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    parallel_runs: int = 0
    serial_runs: int = 0
    retries: int = 0
    fallbacks: int = 0  # cells the pool/fleet failed and serial execution rescued
    fleet_runs: int = 0  # cells served by a fleet coordinator
    mode: str = ""  # effective mode of the last run: "serial", "parallel", or "fleet"
    trace_reused: int = 0  # cells served by an already-loaded trace (memo)
    trace_store_hits: int = 0  # cells whose trace loaded from the disk store
    trace_gen_s: float = 0.0
    simulate_s: float = 0.0
    ipc_s: float = 0.0
    #: structured per-cell failure manifest: one entry per cell that needed
    #: more than one attempt, in the shape
    #: ``{"cell", "attempts", "rescued", "backoff_s", "errors": [...]}``
    #: where each error is ``{"attempt", "type", "message"}``.
    failures: list = field(default_factory=list)

    def as_dict(self) -> dict[str, int | float | str | list]:
        out = dict(self.__dict__)
        out["failures"] = [dict(entry) for entry in self.failures]
        return out


@dataclass
class SweepRunner:
    """Runs simulation cells with trace sharing, caching, and parallelism.

    ``jobs``         worker processes (1 = serial; None = ``REPRO_JOBS`` or 1)
    ``cache``        optional :class:`ResultCache`; None disables persistence
    ``timeout``      seconds before the parent gives up on a pool chunk and
                     re-runs its cells serially (None = wait forever)
    ``retries``      extra serial attempts per cell after its first failure
    ``retry_backoff``       base sleep (seconds) before the first retry of a
                            cell; doubles per attempt up to
                            ``retry_backoff_max``.  A small deterministic
                            jitter derived from the cell description is
                            added so simultaneous sweeps retrying against a
                            shared resource (disk cache, trace store) don't
                            stampede in lockstep.  0 disables sleeping.
    ``mode``         ``"auto"`` (default) / ``"serial"`` / ``"parallel"`` /
                     ``"fleet"``; auto picks serial for small grids and
                     single-CPU hosts and never picks fleet — distributing
                     is an explicit operator decision
    ``trace_store``  :class:`TraceStore` for cross-scheme trace sharing;
                     None builds :func:`default_trace_store` on first use
    ``fleet_addr``   ``host:port`` of a fleet coordinator; required when
                     ``mode="fleet"``
    ``fleet_key``    the fleet's shared secret; None resolves
                     ``REPRO_FLEET_KEY`` on first use
    ``fleet_priority``  admission class for fleet submissions
    """

    jobs: int | None = None
    cache: ResultCache | None = None
    timeout: float | None = None
    retries: int = 1
    retry_backoff: float = 0.05
    retry_backoff_max: float = 2.0
    mode: str = "auto"
    trace_store: TraceStore | None = None
    fleet_addr: str | None = None
    fleet_key: bytes | None = None
    fleet_priority: str = "normal"
    stats: SweepStats = field(default_factory=SweepStats)
    #: runner-scoped telemetry: ``trace.reused`` / ``trace.store_hits``
    #: counters accumulate here across ``run_jobs`` calls.  Deliberately
    #: *not* the per-run telemetry that feeds ``SimulationReport.metrics``
    #: — trace reuse depends on execution history, and the report snapshot
    #: must stay a pure function of the job description.
    telemetry: Telemetry = field(default_factory=Telemetry)

    def run_jobs(self, sweep_jobs: Sequence[SweepJob]) -> list[SimulationReport]:
        """Execute every cell and return reports in input order."""
        if self.mode not in ("auto", "serial", "parallel", "fleet"):
            raise ValueError(f"unknown sweep mode {self.mode!r}")
        if self.mode == "fleet" and not self.fleet_addr:
            raise ValueError('mode="fleet" requires fleet_addr (host:port)')
        if self.trace_store is None:
            self.trace_store = default_trace_store()
        n_workers = resolve_jobs(self.jobs)
        self.stats = SweepStats(requested=len(sweep_jobs))

        # Stable-order dedup: dict preserves first-seen order.
        unique: dict[SweepJob, SimulationReport | None] = {}
        for job in sweep_jobs:
            if job not in unique:
                unique[job] = None
        self.stats.deduplicated = len(sweep_jobs) - len(unique)

        keys: dict[SweepJob, str | None] = {job: job_key(job) for job in unique}
        if self.cache is not None:
            for job in unique:
                key = keys[job]
                if key is not None:
                    cached = self.cache.load(key)
                    if cached is not None:
                        unique[job] = cached
                        self.stats.cache_hits += 1

        pending = [job for job, report in unique.items() if report is None]
        self.stats.mode = self._resolve_mode(n_workers, len(pending))
        if self.stats.mode == "parallel":
            self._run_parallel(pending, unique, n_workers)
        elif self.stats.mode == "fleet":
            self._run_fleet(pending, unique)

        for job in pending:
            if unique[job] is None:
                unique[job] = self._run_cell(job)

        if self.cache is not None:
            for job in pending:
                key = keys[job]
                report = unique[job]
                if key is not None and report is not None:
                    try:
                        self.cache.store(key, report, describe={"job": job.describe()})
                    except OSError:
                        break  # cache root unwritable — results still stand

        self.telemetry.counter("trace.reused").add(self.stats.trace_reused)
        self.telemetry.counter("trace.store_hits").add(self.stats.trace_store_hits)
        return [unique[job] for job in sweep_jobs]  # type: ignore[misc]

    def _resolve_mode(self, n_workers: int, n_pending: int) -> str:
        """Pick the effective execution mode for this run."""
        if self.mode != "auto":
            return self.mode
        if n_workers <= 1 or available_cpus() <= 1:
            return "serial"
        if n_pending < AUTO_PARALLEL_MIN_CELLS:
            return "serial"
        return "parallel"

    # ------------------------------------------------------------------
    # Trace-key grouping
    # ------------------------------------------------------------------
    @staticmethod
    def _group_by_trace(jobs: Sequence[SweepJob]) -> list[list[SweepJob]]:
        """Group cells sharing a trace key, preserving first-seen order.

        Cells without a key (non-registry specs) each form their own
        singleton group — nothing can be shared for them.
        """
        groups: dict[object, list[SweepJob]] = {}
        for job in jobs:
            key = job_trace_key(job)
            groups.setdefault(key if key is not None else id(job), []).append(job)
        return list(groups.values())

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        pending: list[SweepJob],
        results: dict[SweepJob, SimulationReport | None],
        n_workers: int,
    ) -> None:
        """Best-effort chunked pool execution; failures stay None for serial."""
        dispatchable = [job for job in pending if is_registry_spec(job.spec)]
        if len(dispatchable) < 2:
            return
        chunks = self._group_by_trace(dispatchable)
        store = self.trace_store
        store_root = str(store.root) if store is not None and store.root is not None else None
        try:
            pool = ProcessPoolExecutor(max_workers=min(n_workers, len(chunks)))
        except (OSError, ValueError, NotImplementedError):
            self.stats.fallbacks += len(dispatchable)
            return
        wedged = False
        try:
            futures = []
            for chunk in chunks:
                payload = tuple(
                    (job.spec.name, job.config, job.seed, job.scale, job.n_lanes)
                    for job in chunk
                )
                try:
                    futures.append((chunk, pool.submit(_worker, store_root, payload)))
                except Exception:
                    self.stats.fallbacks += len(chunk)
            for chunk, future in futures:
                if wedged and not future.done():
                    # A worker already blew its deadline and may be wedged
                    # in its slot.  Waiting another full timeout per
                    # remaining future would serialize the damage, so only
                    # harvest results that are already in hand.
                    self.stats.fallbacks += len(chunk)
                    continue
                try:
                    started = perf_counter()
                    encoded = future.result(timeout=self.timeout)
                    for job, blob in zip(chunk, encoded):
                        results[job] = report_from_dict(blob)
                    self.stats.ipc_s += perf_counter() - started
                    self.stats.parallel_runs += len(chunk)
                    # every cell after a chunk's first replays its trace
                    self.stats.trace_reused += max(0, len(chunk) - 1)
                except FutureTimeoutError:
                    wedged = True
                    self.stats.fallbacks += len(chunk)
                except Exception:
                    self.stats.fallbacks += len(chunk)
        finally:
            # Grab the process handles first: shutdown() clears _processes.
            processes = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=not wedged, cancel_futures=True)
            if wedged:
                # shutdown(wait=False) leaves a wedged worker running —
                # possibly forever, holding a core and its memory.  Kill
                # the pool's processes outright; every unharvested cell is
                # re-run serially by the caller anyway.
                for proc in processes:
                    try:
                        proc.terminate()
                    except (OSError, ValueError):
                        pass
                for proc in processes:
                    try:
                        proc.join(timeout=5.0)
                    except (OSError, ValueError, AssertionError):
                        pass

    def _run_fleet(
        self,
        pending: list[SweepJob],
        results: dict[SweepJob, SimulationReport | None],
    ) -> None:
        """Submit dispatchable cells to the fleet coordinator.

        An unreachable coordinator or a fleet-side sweep failure leaves
        the cells as None — the caller's serial loop rescues them locally
        (counted in ``stats.fallbacks``).  Authentication failures raise:
        a misconfigured key must be loud, not silently slow.
        """
        # Imported lazily: repro.fleet imports this module.
        from repro.fleet.client import FleetClient, FleetError
        from repro.fleet.wire import load_auth_key

        dispatchable = [job for job in pending if is_registry_spec(job.spec)]
        if not dispatchable:
            return
        key = self.fleet_key if self.fleet_key is not None else load_auth_key()
        try:
            started = perf_counter()
            with FleetClient(self.fleet_addr, key) as client:
                reports = client.sweep(
                    dispatchable, priority=self.fleet_priority, timeout_s=self.timeout
                )
            self.stats.ipc_s += perf_counter() - started
        except FleetError as exc:
            if exc.code == "auth_failed":
                raise
            self.stats.fallbacks += len(dispatchable)
            return
        for job, report in zip(dispatchable, reports):
            results[job] = report
        self.stats.fleet_runs += len(dispatchable)

    def _run_cell(self, job: SweepJob) -> SimulationReport:
        """Run one cell in-process, sharing its trace through the store."""
        trace = None
        if is_registry_spec(job.spec):
            store = self.trace_store
            started = perf_counter()
            trace, source = store.get_or_generate(
                job.spec, job.config.n_gpus, job.seed, job.scale, job.n_lanes
            )
            elapsed = perf_counter() - started
            if source == "generated":
                self.stats.trace_gen_s += elapsed
            else:
                self.stats.trace_reused += 1
                if source == "disk":
                    self.stats.trace_store_hits += 1
        return self._run_serial(job, trace)

    def _retry_delay(self, job: SweepJob, attempt: int) -> float:
        """Exponential backoff with deterministic, cell-derived jitter.

        ``base * 2**attempt`` capped at ``retry_backoff_max``, plus up to
        25% jitter seeded from sha256 of ``"{cell}:{attempt}"`` — stable
        across runs (no wall-clock entropy) but decorrelated across cells.
        """
        if self.retry_backoff <= 0:
            return 0.0
        delay = min(self.retry_backoff * (2**attempt), self.retry_backoff_max)
        digest = hashlib.sha256(f"{job.describe()}:{attempt}".encode()).digest()
        jitter = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return delay * (1.0 + 0.25 * jitter)

    def _run_serial(self, job: SweepJob, trace=None) -> SimulationReport:
        attempts = max(1, self.retries + 1)
        last_error: Exception | None = None
        errors: list[dict[str, int | str]] = []
        backoff_total = 0.0
        for attempt in range(attempts):
            try:
                started = perf_counter()
                report = execute_job(job, trace=trace)
                self.stats.simulate_s += perf_counter() - started
                self.stats.serial_runs += 1
                if errors:
                    self.stats.failures.append(
                        {
                            "cell": job.describe(),
                            "attempts": attempt + 1,
                            "rescued": True,
                            "backoff_s": round(backoff_total, 6),
                            "errors": errors,
                        }
                    )
                return report
            except Exception as exc:  # deterministic sims rarely recover, but
                last_error = exc  # a retry costs little next to a lost sweep
                errors.append(
                    {
                        "attempt": attempt + 1,
                        "type": type(exc).__name__,
                        "message": str(exc),
                    }
                )
                if attempt + 1 < attempts:
                    self.stats.retries += 1
                    delay = self._retry_delay(job, attempt)
                    if delay > 0:
                        backoff_total += delay
                        sleep(delay)
        self.stats.failures.append(
            {
                "cell": job.describe(),
                "attempts": attempts,
                "rescued": False,
                "backoff_s": round(backoff_total, 6),
                "errors": errors,
            }
        )
        raise SweepError(
            f"sweep cell {job.describe()} failed after {attempts} attempt(s)"
        ) from last_error


__all__ = [
    "AUTO_PARALLEL_MIN_CELLS",
    "SweepRunner",
    "SweepStats",
    "SweepError",
    "available_cpus",
    "resolve_jobs",
]
