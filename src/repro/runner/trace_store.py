"""Content-addressed trace store: generate each trace once, share it everywhere.

Every figure in the paper is a sweep of schemes × workloads over *identical*
traces — the swept axis is the security configuration, never the workload
itself.  Before this store, ``execute_job`` regenerated the trace for every
cell: a 6-scheme sweep paid 6× trace generation per workload, and every
pool worker paid it again.

The store is two layers with one key:

* **in-process memo** — a dict from trace key to the shared (immutable)
  :class:`~repro.workloads.compiled.CompiledTrace` instance.  Within one
  runner every scheme replays literally the same object.
* **on-disk store** — one ``.npz`` per key under the store root (default
  ``results/.tracestore/``), written atomically, so separate processes —
  pool workers, repeated CLI invocations — load instead of regenerate.

The key is a SHA-256 over exactly what determines the trace:
``(workload, n_gpus, seed, scale, n_lanes)`` plus the compiled-layout
schema and the package-version salt.  Note what is *not* in the key: the
``SystemConfig``.  Traces are config-independent by construction — that is
the whole point of sharing them across schemes.

Only registry workloads get keys (a custom
:class:`~repro.workloads.registry.WorkloadSpec` closed over arbitrary knobs
has no stable content identity); everything else simply generates.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import repro
from repro.runner.atomic import atomic_write_bytes, sweep_stale_tmp
from repro.workloads.compiled import (
    TRACE_SCHEMA,
    CompiledTrace,
    compile_trace,
    dump_bytes,
    load_bytes,
)
from repro.workloads.registry import WorkloadSpec

#: Default on-disk store root, relative to the working directory.
DEFAULT_TRACE_DIR = Path("results") / ".tracestore"


def _is_registry_spec(spec: WorkloadSpec) -> bool:
    from repro.workloads import get_workload

    try:
        return get_workload(spec.name) is spec
    except KeyError:
        return False


def trace_key(
    workload: str, n_gpus: int, seed: int, scale: float, n_lanes: int
) -> str:
    """Content hash of everything that determines a registry trace."""
    material = {
        "schema": TRACE_SCHEMA,
        "salt": repro.__version__,
        "workload": workload,
        "n_gpus": n_gpus,
        "seed": seed,
        "scale": scale,
        "n_lanes": n_lanes,
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def job_trace_key(job) -> str | None:
    """Trace key for a sweep job, or None when its spec is not cacheable."""
    if not _is_registry_spec(job.spec):
        return None
    return trace_key(job.spec.name, job.config.n_gpus, job.seed, job.scale, job.n_lanes)


class TraceStore:
    """Two-layer (memo + disk) store of compiled traces.

    ``root=None`` disables the disk layer: the store is then a pure
    in-process memo (what ``REPRO_NO_TRACE_STORE`` selects — the memo alone
    already de-duplicates generation within a sweep).
    """

    def __init__(self, root: str | Path | None = DEFAULT_TRACE_DIR) -> None:
        self.root = Path(root) if root is not None else None
        self._memo: dict[str, CompiledTrace] = {}
        self._swept_tmp = False
        self.memo_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path | None:
        return self.root / f"{key}.npz" if self.root is not None else None

    def get(self, key: str) -> CompiledTrace | None:
        """Memo first, then disk; promotes disk hits into the memo."""
        trace = self._memo.get(key)
        if trace is not None:
            self.memo_hits += 1
            return trace
        path = self.path_for(key)
        if path is not None:
            try:
                trace = load_bytes(path.read_bytes())
            except (OSError, ValueError):
                trace = None  # missing, corrupt, or stale schema: a miss
            if trace is not None:
                self.disk_hits += 1
                self._memo[key] = trace
                return trace
        self.misses += 1
        return None

    def put(self, key: str, trace: CompiledTrace) -> None:
        """Insert into the memo and (best-effort, atomically) onto disk.

        Concurrent puts of the same key — pool workers racing on a shared
        store root, fleet workers on a shared filesystem — are benign:
        each writes a complete temp file and the last atomic rename wins
        with byte-identical content (traces are a pure function of the
        key; see :mod:`repro.runner.atomic`).
        """
        self._memo[key] = trace
        path = self.path_for(key)
        if path is None:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            if not self._swept_tmp:
                self._swept_tmp = True
                sweep_stale_tmp(self.root)
            atomic_write_bytes(path, dump_bytes(trace))
            self.stores += 1
        except OSError:
            pass  # unwritable store root — the memo still serves this run

    # ------------------------------------------------------------------
    # The one entry point the runner uses
    # ------------------------------------------------------------------
    def get_or_generate(
        self,
        spec: WorkloadSpec,
        n_gpus: int,
        seed: int,
        scale: float,
        n_lanes: int,
        telemetry=None,
    ) -> tuple[CompiledTrace, str]:
        """Return the shared compiled trace and where it came from
        (``"memo"`` / ``"disk"`` / ``"generated"``).

        The ``trace.generate`` profiling phase is attributed **only** on
        real generation — a reuse must not inflate the phase profile.
        """
        key = job_trace_key_parts(spec, n_gpus, seed, scale, n_lanes)
        if key is not None:
            before_disk = self.disk_hits
            trace = self.get(key)
            if trace is not None:
                return trace, ("disk" if self.disk_hits > before_disk else "memo")
        if telemetry is not None:
            with telemetry.phase("trace.generate"):
                trace = compile_trace(
                    spec.generate(n_gpus=n_gpus, seed=seed, scale=scale, n_lanes=n_lanes)
                )
        else:
            trace = compile_trace(
                spec.generate(n_gpus=n_gpus, seed=seed, scale=scale, n_lanes=n_lanes)
            )
        if key is not None:
            self.put(key, trace)
        return trace, "generated"

    def __repr__(self) -> str:
        return (
            f"TraceStore({self.root}, memo_hits={self.memo_hits}, "
            f"disk_hits={self.disk_hits}, misses={self.misses}, stores={self.stores})"
        )


def job_trace_key_parts(
    spec: WorkloadSpec, n_gpus: int, seed: int, scale: float, n_lanes: int
) -> str | None:
    if not _is_registry_spec(spec):
        return None
    return trace_key(spec.name, n_gpus, seed, scale, n_lanes)


def default_trace_store(
    trace_dir: str | Path | None = None, use_store: bool | None = None
) -> TraceStore:
    """Build the trace store an entry point should use.

    An explicit ``use_store`` wins; otherwise ``REPRO_NO_TRACE_STORE``
    drops the disk layer (the in-process memo always stays — it is free
    and required for cross-scheme sharing); ``trace_dir`` (or
    ``REPRO_TRACE_DIR``) overrides the default root.
    """
    if use_store is None:
        use_store = not os.environ.get("REPRO_NO_TRACE_STORE")
    if not use_store:
        return TraceStore(root=None)
    root = trace_dir or os.environ.get("REPRO_TRACE_DIR") or DEFAULT_TRACE_DIR
    return TraceStore(root)


__all__ = [
    "DEFAULT_TRACE_DIR",
    "TraceStore",
    "trace_key",
    "job_trace_key",
    "default_trace_store",
]
