"""Message-level trace capture and export.

Attaching a :class:`MessageTracer` to a system before ``run`` records every
interconnect message with its protocol-relevant fields (kind, endpoints,
sizes, send/delivery cycles).  Traces export to JSON-lines for external
analysis and re-import for post-processing with :func:`load_trace`.

This is observation-only: the tracer wraps the transport's instrumentation
hooks and never changes timing.  :meth:`MessageTracer.detach` restores the
original hooks, so a transport can be traced, released, and re-traced.

In-flight bookkeeping never leaks: protocol housekeeping (ACK/NACK/batch-
MAC packets, which have no arrival hook) is not tracked, a fault-injector
``drop`` evicts the doomed copy's entry (a later ``retransmit`` re-arms
it), a ``dup-content`` discard evicts the spurious retransmit of an
already-delivered block, and a recovery ``give-up`` evicts for good —
after any completed run, faulty or clean, the pending-send table is empty.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.interconnect.packet import Packet, PacketKind
from repro.system import MultiGpuSystem

#: Transport-generated housekeeping: sent but never fed to the arrival
#: hook, so tracking them in the pending-send table would leak an entry
#: per ACK.  (Mirrors the transport's own timeline exclusions.)
_HOUSEKEEPING = frozenset({PacketKind.SEC_ACK, PacketKind.SEC_NACK, PacketKind.BATCH_MAC})


@dataclass(frozen=True)
class FaultEvent:
    """One fault-injection or recovery event on the fabric.

    ``event`` is the transport's tag: injections (``drop``, ``corrupt``,
    ``duplicate``, ``delay``), detections (``mac-reject``, ``dup-discard``,
    ``dup-content``), and recovery actions (``timeout``, ``retransmit``,
    ``give-up``).
    """

    pid: int
    cycle: int
    event: str


@dataclass(frozen=True)
class MessageRecord:
    """One message's lifetime on the fabric."""

    pid: int
    kind: str
    src: int
    dst: int
    size_bytes: int
    meta_bytes: int
    sent_at: int
    delivered_at: int

    @property
    def latency(self) -> int:
        return self.delivered_at - self.sent_at


class MessageTracer:
    """Records every message a transport carries."""

    def __init__(self) -> None:
        self._sent: dict[int, tuple[Packet, int]] = {}
        self._delivered: set[int] = set()
        self.records: list[MessageRecord] = []
        self.fault_events: list[FaultEvent] = []
        # (transport, original hooks) while attached; None when detached
        self._attached: tuple | None = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, system: MultiGpuSystem) -> "MessageTracer":
        """Wrap ``system``'s transport instrumentation hooks."""
        transport = system.transport
        if getattr(transport, "_tracer", None) is not None:
            raise RuntimeError("transport already has a tracer attached")
        if self._attached is not None:
            raise RuntimeError("tracer is already attached; detach() it first")
        transport._tracer = self
        original_send = transport._note_send
        original_arrival = transport._note_arrival
        original_fault = transport._note_fault

        def note_send(packet, now):
            if packet.kind not in _HOUSEKEEPING:
                self._sent[packet.pid] = (packet, now)
            original_send(packet, now)

        def note_arrival(packet, now):
            sent = self._sent.pop(packet.pid, None)
            if sent is not None:
                self._record(packet, sent[1], now)
                self._delivered.add(packet.pid)
            original_arrival(packet, now)

        def note_fault(packet, event):
            self.fault_events.append(
                FaultEvent(pid=packet.pid, cycle=system.sim.now, event=event)
            )
            if event in ("drop", "give-up", "dup-content"):
                # None of these copies can ever reach note_arrival: a
                # dropped wire copy is gone (a later retransmit re-arms
                # it), a given-up block is abandoned, and a dup-content
                # copy was discarded because its pid already delivered —
                # which happens when a *delivered* block's ACK is lost, so
                # the retransmit below re-armed an entry that this evicts.
                self._sent.pop(packet.pid, None)
            elif event == "retransmit" and packet.pid not in self._delivered:
                # A fresh wire copy of a previously dropped block re-enters
                # flight now; corrupt-recovery retransmits keep their
                # original send time (the entry was never evicted), so
                # setdefault only re-arms drop-evicted blocks.  Already-
                # delivered pids are spurious retransmits (the ACK was
                # slow or lost): their copy can only end in a dup-content
                # discard or an ignored mac-reject, never an arrival, so
                # re-arming them would leak.
                self._sent.setdefault(packet.pid, (packet, system.sim.now))
            original_fault(packet, event)

        transport._note_send = note_send
        transport._note_arrival = note_arrival
        transport._note_fault = note_fault
        self._attached = (transport, original_send, original_arrival, original_fault)
        return self

    def detach(self) -> "MessageTracer":
        """Restore the transport's original hooks and release it.

        The captured records and fault events stay on the tracer; the
        transport can be re-attached (by this or another tracer).
        """
        if self._attached is None:
            raise RuntimeError("tracer is not attached to any transport")
        transport, original_send, original_arrival, original_fault = self._attached
        transport._note_send = original_send
        transport._note_arrival = original_arrival
        transport._note_fault = original_fault
        transport._tracer = None
        self._attached = None
        return self

    def _record(self, packet: Packet, sent_at: int, delivered_at: int) -> None:
        self.records.append(
            MessageRecord(
                pid=packet.pid,
                kind=packet.kind.value,
                src=packet.src,
                dst=packet.dst,
                size_bytes=packet.size_bytes,
                meta_bytes=packet.meta_bytes,
                sent_at=sent_at,
                delivered_at=delivered_at,
            )
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def by_pair(self) -> dict[tuple[int, int], list[MessageRecord]]:
        pairs: dict[tuple[int, int], list[MessageRecord]] = {}
        for record in self.records:
            pairs.setdefault((record.src, record.dst), []).append(record)
        return pairs

    def mean_latency(self, kind: str | None = None) -> float:
        latencies = [
            r.latency for r in self.records if kind is None or r.kind == kind
        ]
        return sum(latencies) / len(latencies) if latencies else 0.0

    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def fault_counts(self) -> dict[str, int]:
        """Event-tag histogram of the recorded fault/recovery activity."""
        counts: dict[str, int] = {}
        for event in self.fault_events:
            counts[event.event] = counts.get(event.event, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def dump_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per message; returns the record count."""
        path = Path(path)
        with path.open("w") as fh:
            for record in self.records:
                fh.write(json.dumps(asdict(record)) + "\n")
        return len(self.records)


def load_trace(path: str | Path) -> list[MessageRecord]:
    """Re-import a JSONL message trace."""
    records = []
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(MessageRecord(**json.loads(line)))
            except (json.JSONDecodeError, TypeError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed trace line") from exc
    return records


__all__ = ["FaultEvent", "MessageRecord", "MessageTracer", "load_trace"]
