"""Message-level trace capture and export.

Attaching a :class:`MessageTracer` to a system before ``run`` records every
interconnect message with its protocol-relevant fields (kind, endpoints,
sizes, send/delivery cycles).  Traces export to JSON-lines for external
analysis and re-import for post-processing with :func:`load_trace`.

This is observation-only: the tracer wraps the transport's instrumentation
hooks and never changes timing.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.interconnect.packet import Packet
from repro.system import MultiGpuSystem


@dataclass(frozen=True)
class FaultEvent:
    """One fault-injection or recovery event on the fabric.

    ``event`` is the transport's tag: injections (``drop``, ``corrupt``,
    ``duplicate``, ``delay``), detections (``mac-reject``, ``dup-discard``,
    ``dup-content``), and recovery actions (``timeout``, ``retransmit``,
    ``give-up``).
    """

    pid: int
    cycle: int
    event: str


@dataclass(frozen=True)
class MessageRecord:
    """One message's lifetime on the fabric."""

    pid: int
    kind: str
    src: int
    dst: int
    size_bytes: int
    meta_bytes: int
    sent_at: int
    delivered_at: int

    @property
    def latency(self) -> int:
        return self.delivered_at - self.sent_at


class MessageTracer:
    """Records every message a transport carries."""

    def __init__(self) -> None:
        self._sent: dict[int, tuple[Packet, int]] = {}
        self.records: list[MessageRecord] = []
        self.fault_events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, system: MultiGpuSystem) -> "MessageTracer":
        """Wrap ``system``'s transport instrumentation hooks."""
        transport = system.transport
        if getattr(transport, "_tracer", None) is not None:
            raise RuntimeError("transport already has a tracer attached")
        transport._tracer = self
        original_send = transport._note_send
        original_arrival = transport._note_arrival
        original_fault = transport._note_fault

        def note_send(packet, now):
            self._sent[packet.pid] = (packet, now)
            original_send(packet, now)

        def note_arrival(packet, now):
            sent = self._sent.pop(packet.pid, None)
            if sent is not None:
                self._record(packet, sent[1], now)
            original_arrival(packet, now)

        def note_fault(packet, event):
            self.fault_events.append(
                FaultEvent(pid=packet.pid, cycle=system.sim.now, event=event)
            )
            original_fault(packet, event)

        transport._note_send = note_send
        transport._note_arrival = note_arrival
        transport._note_fault = note_fault
        return self

    def _record(self, packet: Packet, sent_at: int, delivered_at: int) -> None:
        self.records.append(
            MessageRecord(
                pid=packet.pid,
                kind=packet.kind.value,
                src=packet.src,
                dst=packet.dst,
                size_bytes=packet.size_bytes,
                meta_bytes=packet.meta_bytes,
                sent_at=sent_at,
                delivered_at=delivered_at,
            )
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def by_pair(self) -> dict[tuple[int, int], list[MessageRecord]]:
        pairs: dict[tuple[int, int], list[MessageRecord]] = {}
        for record in self.records:
            pairs.setdefault((record.src, record.dst), []).append(record)
        return pairs

    def mean_latency(self, kind: str | None = None) -> float:
        latencies = [
            r.latency for r in self.records if kind is None or r.kind == kind
        ]
        return sum(latencies) / len(latencies) if latencies else 0.0

    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def fault_counts(self) -> dict[str, int]:
        """Event-tag histogram of the recorded fault/recovery activity."""
        counts: dict[str, int] = {}
        for event in self.fault_events:
            counts[event.event] = counts.get(event.event, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def dump_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per message; returns the record count."""
        path = Path(path)
        with path.open("w") as fh:
            for record in self.records:
                fh.write(json.dumps(asdict(record)) + "\n")
        return len(self.records)


def load_trace(path: str | Path) -> list[MessageRecord]:
    """Re-import a JSONL message trace."""
    records = []
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(MessageRecord(**json.loads(line)))
            except (json.JSONDecodeError, TypeError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed trace line") from exc
    return records


__all__ = ["FaultEvent", "MessageRecord", "MessageTracer", "load_trace"]
