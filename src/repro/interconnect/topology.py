"""System topology: one host CPU plus N GPUs on shared ports.

Node numbering follows the paper's processor accounting ("3 GPUs + 1 CPU"
in the 4-GPU discussion): the CPU is node 0 and GPUs are nodes 1..N.

Bandwidth is modeled where real systems bound it — at the *ports*:

* **PCIe** (Table III: "PCIe-v4 bus, 32 GB/s"): a bus shared by all GPUs,
  one 32 B/cycle serialized channel per direction (CPU→GPUs, GPUs→CPU).
* **NVLink-class GPU fabric** (50 GB/s): each GPU owns one egress and one
  ingress port at 50 B/cycle; a GPU↔GPU message serializes on the source's
  egress port, crosses the wire, then serializes on the destination's
  ingress port (store-and-forward).  All-to-all traffic therefore contends
  at hot senders and hot receivers, as it does on real NVLink bridges.

Traffic totals are counted once per message at the topology level, so the
multi-stage path never double-counts bytes.
"""

from __future__ import annotations

from repro.interconnect.link import Channel
from repro.interconnect.packet import Packet
from repro.sim.stats import StatsRegistry

NodeId = int
CPU_NODE: NodeId = 0


#: Supported GPU-fabric organizations.
FABRICS = ("p2p", "ring", "switch")


class Topology:
    """Port-contended fabric: shared PCIe bus + a configurable GPU fabric.

    ``fabric`` selects how GPU↔GPU messages travel:

    * ``p2p``    — every GPU owns a full-rate egress and ingress port;
      all-to-all single hop (the default, matching NVLink bridges).
    * ``ring``   — GPUs form a bidirectional ring; a message hops through
      intermediate GPUs' ring links (shortest direction), so distant pairs
      share segment bandwidth — the rack-scale organization of [51].
    * ``switch`` — all GPU traffic crosses one central switch whose
      aggregate bandwidth is ``switch_factor ×`` a port's rate (an NVSwitch
      abstraction); ports stay per-GPU.
    """

    def __init__(
        self,
        n_gpus: int,
        pcie_bytes_per_cycle: float = 32.0,
        nvlink_bytes_per_cycle: float = 50.0,
        pcie_latency: int = 120,
        nvlink_latency: int = 60,
        fabric: str = "p2p",
        switch_factor: float = 4.0,
    ) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        if fabric not in FABRICS:
            raise ValueError(f"unknown fabric {fabric!r}; expected one of {FABRICS}")
        self.n_gpus = n_gpus
        self.fabric = fabric
        self.pcie_bytes_per_cycle = pcie_bytes_per_cycle
        self.nvlink_bytes_per_cycle = nvlink_bytes_per_cycle
        # PCIe: one shared channel per direction carries the wire latency.
        self._pcie_down = Channel("pcie:cpu->gpus", pcie_bytes_per_cycle, pcie_latency)
        self._pcie_up = Channel("pcie:gpus->cpu", pcie_bytes_per_cycle, pcie_latency)
        # NVLink: per-GPU egress (with wire latency) and ingress (switch hop).
        self._nv_egress = {
            g: Channel(f"nvlink:gpu{g}.out", nvlink_bytes_per_cycle, nvlink_latency)
            for g in self.gpu_nodes()
        }
        self._nv_ingress = {
            g: Channel(f"nvlink:gpu{g}.in", nvlink_bytes_per_cycle, 0)
            for g in self.gpu_nodes()
        }
        self._switch: Channel | None = None
        self._ring_cw: dict[int, Channel] = {}
        self._ring_ccw: dict[int, Channel] = {}
        if fabric == "switch":
            self._switch = Channel(
                "nvswitch", nvlink_bytes_per_cycle * switch_factor, 0
            )
        elif fabric == "ring":
            for g in self.gpu_nodes():
                self._ring_cw[g] = Channel(
                    f"ring:gpu{g}.cw", nvlink_bytes_per_cycle, nvlink_latency
                )
                self._ring_ccw[g] = Channel(
                    f"ring:gpu{g}.ccw", nvlink_bytes_per_cycle, nvlink_latency
                )
        self.stats = StatsRegistry("fabric")
        self._bytes = self.stats.counter("bytes")
        self._base_bytes = self.stats.counter("base_bytes")
        self._meta_bytes = self.stats.counter("meta_bytes")
        self._packets = self.stats.counter("packets")
        # The fabric is static after construction, so (src, dst) → stages is
        # memoized — path() runs once per pair instead of once per packet.
        # quarantine() is the one sanctioned mutation: it *replaces* a
        # pair's cache entry with a memoized alternate route.
        self._path_cache: dict[tuple[NodeId, NodeId], list[Channel]] = {}
        self._quarantined: set[tuple[NodeId, NodeId]] = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes(self) -> list[NodeId]:
        return [CPU_NODE, *self.gpu_nodes()]

    def gpu_nodes(self) -> list[NodeId]:
        return list(range(1, self.n_gpus + 1))

    def peers_of(self, node: NodeId) -> list[NodeId]:
        return [n for n in self.nodes() if n != node]

    def _validate(self, node: NodeId) -> None:
        if node != CPU_NODE and node not in self._nv_egress:
            raise ValueError(f"node {node} is not part of this topology")

    def path(self, src: NodeId, dst: NodeId) -> list[Channel]:
        """The ordered channel stages a (src → dst) message traverses."""
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        path = self._build_path(src, dst)
        self._path_cache[(src, dst)] = path
        return path

    def _build_path(self, src: NodeId, dst: NodeId) -> list[Channel]:
        self._validate(src)
        self._validate(dst)
        if src == dst:
            raise ValueError("no path from a node to itself")
        if src == CPU_NODE:
            return [self._pcie_down]
        if dst == CPU_NODE:
            return [self._pcie_up]
        if self.fabric == "switch":
            return [self._nv_egress[src], self._switch, self._nv_ingress[dst]]
        if self.fabric == "ring":
            return self._ring_path(src, dst)
        return [self._nv_egress[src], self._nv_ingress[dst]]

    def _ring_path(self, src: NodeId, dst: NodeId) -> list[Channel]:
        """Hop along the shorter ring direction through intermediate GPUs."""
        n = self.n_gpus
        clockwise = (dst - src) % n <= (src - dst) % n
        return self._ring_walk(src, dst, clockwise=clockwise)

    def _ring_walk(self, src: NodeId, dst: NodeId, clockwise: bool) -> list[Channel]:
        n = self.n_gpus
        hops = (dst - src) % n if clockwise else (src - dst) % n
        stages: list[Channel] = []
        node = src
        for _ in range(hops):
            if clockwise:
                stages.append(self._ring_cw[node])
                node = 1 + (node % n)
            else:
                stages.append(self._ring_ccw[node])
                node = 1 + ((node - 2) % n)
        return stages

    # ------------------------------------------------------------------
    # Quarantine / failover
    # ------------------------------------------------------------------
    def quarantine(self, src: NodeId, dst: NodeId) -> bool:
        """Take the (src → dst) direct route out of service.

        Called when repeated attack detections implicate the pair's
        physical wire.  The pair's memoized path is replaced by an
        alternate route that avoids the direct link, so subsequent sends
        (including in-flight recovery retransmissions) detour around the
        compromised segment.  Returns False — and changes nothing — when
        no alternate exists (e.g. CPU↔GPU traffic owns exactly one shared
        PCIe bus); callers then stay on the guarded direct route.
        """
        if (src, dst) in self._quarantined:
            return True
        alt = self._alternate_path(src, dst)
        if alt is None:
            return False
        self._quarantined.add((src, dst))
        self._path_cache[(src, dst)] = alt
        return True

    def is_quarantined(self, src: NodeId, dst: NodeId) -> bool:
        return (src, dst) in self._quarantined

    def _alternate_path(self, src: NodeId, dst: NodeId) -> list[Channel] | None:
        """A route (src → dst) avoiding the pair's direct fabric segment."""
        self._validate(src)
        self._validate(dst)
        if src == dst:
            raise ValueError("no path from a node to itself")
        if src == CPU_NODE or dst == CPU_NODE:
            return None  # one shared PCIe bus per direction: nothing to fail over to
        via = next((g for g in self.gpu_nodes() if g != src and g != dst), None)
        if self.fabric == "ring":
            # The other ring direction reaches dst over disjoint segments.
            n = self.n_gpus
            clockwise = (dst - src) % n <= (src - dst) % n
            return self._ring_walk(src, dst, clockwise=not clockwise)
        if self.fabric == "switch":
            if via is None:
                return [self._nv_egress[src], self._pcie_up, self._pcie_down, self._nv_ingress[dst]]
            # Double switch transit: store-and-forward through an
            # intermediate GPU's ports, avoiding the direct crossing.
            return [
                self._nv_egress[src],
                self._switch,
                self._nv_ingress[via],
                self._nv_egress[via],
                self._switch,
                self._nv_ingress[dst],
            ]
        # p2p: relay through a third GPU, or detour over the host bus.
        if via is None:
            return [self._nv_egress[src], self._pcie_up, self._pcie_down, self._nv_ingress[dst]]
        return [
            self._nv_egress[src],
            self._nv_ingress[via],
            self._nv_egress[via],
            self._nv_ingress[dst],
        ]

    def hop_count(self, src: NodeId, dst: NodeId) -> int:
        """Number of serialized stages a message crosses."""
        return len(self.path(src, dst))

    def channel(self, src: NodeId, dst: NodeId) -> Channel:
        """The bandwidth-limiting first stage of the (src → dst) path."""
        return self.path(src, dst)[0]

    def channels(self) -> list[Channel]:
        extra: list[Channel] = []
        if self._switch is not None:
            extra.append(self._switch)
        extra.extend(self._ring_cw.values())
        extra.extend(self._ring_ccw.values())
        return [
            self._pcie_down,
            self._pcie_up,
            *self._nv_egress.values(),
            *self._nv_ingress.values(),
            *extra,
        ]

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    def send(self, packet: Packet, now: int) -> int:
        """Move ``packet`` through its path; returns the arrival cycle."""
        t = now
        for stage in self.path(packet.src, packet.dst):
            t = stage.send(packet, t)
        # Inlined Counter.add: one message-level bump per counter, on the
        # per-packet hot path.
        self._bytes.value += packet.size_bytes
        self._base_bytes.value += packet.base_bytes
        self._meta_bytes.value += packet.meta_bytes
        self._packets.value += 1
        return t

    # ------------------------------------------------------------------
    # Traffic accounting (counted once per message)
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self._bytes.value

    @property
    def meta_bytes(self) -> int:
        return self._meta_bytes.value

    @property
    def base_bytes(self) -> int:
        return self._base_bytes.value

    @property
    def packets(self) -> int:
        return self._packets.value


__all__ = ["Topology", "NodeId", "CPU_NODE", "FABRICS"]
