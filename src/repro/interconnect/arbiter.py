"""Round-robin arbitration among competing requesters.

Used where several logical streams contend for one resource in the same
cycle — e.g. compute-unit lanes competing for a GPU's outstanding-request
window slots.  Round-robin matches the fair wavefront schedulers of the
modeled hardware and keeps runs deterministic.
"""

from __future__ import annotations

from typing import Hashable, Iterable


class RoundRobinArbiter:
    """Grants one requester at a time, rotating the priority pointer."""

    def __init__(self, participants: Iterable[Hashable]) -> None:
        self._order: list[Hashable] = list(participants)
        if len(set(self._order)) != len(self._order):
            raise ValueError("arbiter participants must be unique")
        self._next = 0

    @property
    def participants(self) -> list[Hashable]:
        return list(self._order)

    def add(self, participant: Hashable) -> None:
        if participant in self._order:
            raise ValueError(f"{participant!r} already participates")
        self._order.append(participant)

    def grant(self, requesting: Iterable[Hashable]) -> Hashable | None:
        """Pick the next requester in round-robin order, or None."""
        if not self._order:
            return None
        request_set = set(requesting)
        if not request_set:
            return None
        n = len(self._order)
        for offset in range(n):
            idx = (self._next + offset) % n
            candidate = self._order[idx]
            if candidate in request_set:
                self._next = (idx + 1) % n
                return candidate
        return None

    def grant_all(self, requesting: Iterable[Hashable], slots: int) -> list[Hashable]:
        """Grant up to ``slots`` distinct requesters in rotation order."""
        granted: list[Hashable] = []
        remaining = set(requesting)
        while len(granted) < slots and remaining:
            winner = self.grant(remaining)
            if winner is None:
                break
            granted.append(winner)
            remaining.discard(winner)
        return granted


__all__ = ["RoundRobinArbiter"]
