"""Link-level fault injection for the timing simulator.

The functional layer (:mod:`repro.secure.faults`) proves the cryptographic
machinery *detects* tampering and replay; this module makes the *timing*
stack suffer the same hostile channel so the performance cost of recovery
becomes measurable.  A :class:`FaultInjector` rolls one seeded verdict per
secured data-block transmission: deliver intact, drop, bit-corrupt,
duplicate, or delay-spike (see :class:`~repro.configs.FaultConfig`).

Determinism is load-bearing: the sweep runner promises bit-identical
reports across serial / parallel / cached execution, so every verdict
stream is drawn from a per-directed-pair ``random.Random`` seeded from
``(config seed, src, dst)``.  Verdicts for the pair (1, 2) depend only on
how many transmissions (1 → 2) came before — never on how sends to other
pairs interleave with them.

When a secure sender exhausts its retransmission budget the channel raises
:class:`LinkFailureError`: a structured diagnostic that terminates the
simulation cleanly instead of letting the workload deadlock on a message
that will never arrive.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.configs import FaultConfig


class FaultVerdict(Enum):
    """Fate of one wire transmission."""

    OK = "ok"
    DROP = "drop"
    CORRUPT = "corrupt"
    DUPLICATE = "duplicate"
    DELAY = "delay"


class FaultInjector:
    """Seeded per-pair fault verdicts for every data-block transmission."""

    __slots__ = ("cfg", "_rngs")

    def __init__(self, cfg: FaultConfig) -> None:
        self.cfg = cfg
        self._rngs: dict[tuple[int, int], random.Random] = {}

    def _rng(self, src: int, dst: int) -> random.Random:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            # String seeding hashes through SHA-512: stable across processes
            # and Python versions, unlike builtin hash() of tuples.
            rng = random.Random(f"fault:{self.cfg.seed}:{src}->{dst}")
            self._rngs[key] = rng
        return rng

    def decide(self, src: int, dst: int) -> FaultVerdict:
        """Roll the fate of one (src → dst) transmission."""
        roll = self._rng(src, dst).random()
        cfg = self.cfg
        if roll < cfg.drop_rate:
            return FaultVerdict.DROP
        roll -= cfg.drop_rate
        if roll < cfg.corrupt_rate:
            return FaultVerdict.CORRUPT
        roll -= cfg.corrupt_rate
        if roll < cfg.duplicate_rate:
            return FaultVerdict.DUPLICATE
        roll -= cfg.duplicate_rate
        if roll < cfg.delay_rate:
            return FaultVerdict.DELAY
        return FaultVerdict.OK


class LinkFailureError(RuntimeError):
    """A message exhausted its retransmission budget.

    Raised by the secure channel when ``max_retries`` retransmissions of
    the same logical block all failed.  Carries the full diagnostic so the
    caller (sweep runner, experiment harness, operator) can report *which*
    link degraded and how hard recovery tried, instead of debugging a hung
    simulation.
    """

    def __init__(
        self,
        *,
        src: int,
        dst: int,
        pid: int,
        counter: int,
        attempts: int,
        first_sent: int,
        gave_up_at: int,
        fault_stats: dict | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.pid = pid
        self.counter = counter
        self.attempts = attempts
        self.first_sent = first_sent
        self.gave_up_at = gave_up_at
        self.fault_stats = dict(fault_stats or {})
        super().__init__(
            f"link {src}->{dst} failed: message pid={pid} undeliverable after "
            f"{attempts} transmissions (first sent cycle {first_sent}, gave up "
            f"cycle {gave_up_at})"
        )

    @property
    def diagnostic(self) -> dict:
        """Structured rendering for logs and reports."""
        return {
            "src": self.src,
            "dst": self.dst,
            "pid": self.pid,
            "counter": self.counter,
            "attempts": self.attempts,
            "first_sent": self.first_sent,
            "gave_up_at": self.gave_up_at,
            "fault_stats": dict(self.fault_stats),
        }


__all__ = ["FaultVerdict", "FaultInjector", "LinkFailureError"]
