"""Bandwidth-serialized link model with FIFO queueing.

Each :class:`Link` is full duplex: one :class:`Channel` per direction.  A
channel serializes packets at ``bytes_per_cycle`` (GB/s at the 1 GHz shader
clock is numerically bytes/cycle), then the wire adds a fixed propagation
latency.  Back-to-back packets queue: a packet begins serialization when the
previous one finishes, so metadata bytes directly lengthen the queue — the
mechanism behind the paper's +Traffic overhead (Fig. 11).
"""

from __future__ import annotations

from math import ceil

from repro.interconnect.packet import Packet
from repro.sim.stats import StatsRegistry


class Channel:
    """One direction of a link."""

    def __init__(self, name: str, bytes_per_cycle: float, latency: int) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.busy_until = 0
        self.stats = StatsRegistry(name)
        self._bytes = self.stats.counter("bytes")
        self._base_bytes = self.stats.counter("base_bytes")
        self._meta_bytes = self.stats.counter("meta_bytes")
        self._packets = self.stats.counter("packets")
        self._queue_cycles = self.stats.counter("queue_cycles")
        self._busy_cycles = self.stats.counter("busy_cycles")

    def serialization_cycles(self, size_bytes: int) -> int:
        return max(1, ceil(size_bytes / self.bytes_per_cycle))

    def send(self, packet: Packet, now: int) -> int:
        """Accept ``packet`` at cycle ``now``; return its arrival cycle."""
        start = max(now, self.busy_until)
        ser = self.serialization_cycles(packet.size_bytes)
        self.busy_until = start + ser
        # Inlined Counter.add: six bumps per packet per stage make this the
        # densest counter site in the simulator.
        self._bytes.value += packet.size_bytes
        self._base_bytes.value += packet.base_bytes
        self._meta_bytes.value += packet.meta_bytes
        self._packets.value += 1
        self._queue_cycles.value += start - now
        self._busy_cycles.value += ser
        return self.busy_until + self.latency

    @property
    def total_bytes(self) -> int:
        return self._bytes.value

    @property
    def meta_bytes(self) -> int:
        return self._meta_bytes.value

    @property
    def base_bytes(self) -> int:
        return self._base_bytes.value

    @property
    def packets(self) -> int:
        return self._packets.value

    @property
    def queue_cycles(self) -> int:
        return self._queue_cycles.value


class Link:
    """A full-duplex point-to-point link between nodes ``a`` and ``b``."""

    def __init__(
        self,
        a: int,
        b: int,
        bytes_per_cycle: float,
        latency: int,
        name: str | None = None,
    ) -> None:
        if a == b:
            raise ValueError("a link must connect two distinct nodes")
        self.a, self.b = a, b
        base = name or f"link{a}-{b}"
        self._channels = {
            (a, b): Channel(f"{base}:{a}->{b}", bytes_per_cycle, latency),
            (b, a): Channel(f"{base}:{b}->{a}", bytes_per_cycle, latency),
        }

    def channel(self, src: int, dst: int) -> Channel:
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise ValueError(f"link {self.a}<->{self.b} does not carry {src}->{dst}") from None

    def send(self, packet: Packet, now: int) -> int:
        return self.channel(packet.src, packet.dst).send(packet, now)

    def channels(self) -> list[Channel]:
        return list(self._channels.values())

    @property
    def total_bytes(self) -> int:
        return sum(c.total_bytes for c in self._channels.values())

    @property
    def meta_bytes(self) -> int:
        return sum(c.meta_bytes for c in self._channels.values())

    @property
    def base_bytes(self) -> int:
        return sum(c.base_bytes for c in self._channels.values())


__all__ = ["Channel", "Link"]
