"""Packet definitions for inter-processor messages.

A packet's ``size_bytes`` is everything that occupies link bandwidth:
header + payload + any security metadata the active scheme attaches.
Security metadata is accounted separately in ``meta_bytes`` so the traffic
breakdown figures (Figs 12/23) can split base traffic from metadata traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum


class PacketKind(Enum):
    """Message classes crossing the interconnect."""

    READ_REQ = "read_req"  # block read request
    WRITE_REQ = "write_req"  # block write (carries data)
    DATA_RESP = "data_resp"  # block data response
    WRITE_ACK = "write_ack"  # completion of a remote write
    SEC_ACK = "sec_ack"  # replay-protection acknowledgement
    SEC_NACK = "sec_nack"  # MAC-failure report requesting retransmission
    BATCH_MAC = "batch_mac"  # standalone batched MsgMAC (timeout close)
    MIGRATION_REQ = "migration_req"  # ask a page's owner to migrate it
    MIGRATION_DATA = "migration_data"  # one block of a 4 KB page migration
    TLB_WALK = "tlb_walk"  # IOMMU page-walk request/response

    @property
    def carries_data(self) -> bool:
        return self in (
            PacketKind.WRITE_REQ,
            PacketKind.DATA_RESP,
            PacketKind.MIGRATION_DATA,
        )


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One message on a link.

    ``slots=True``: packets are the most-allocated object in a simulation
    (one per message per hop), and slotted instances are both smaller and
    faster to field-access in the transport hot path.
    """

    kind: PacketKind
    src: int
    dst: int
    size_bytes: int
    meta_bytes: int = 0
    txn_id: int = -1
    address: int = -1
    pid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
        if self.meta_bytes < 0 or self.meta_bytes > self.size_bytes:
            raise ValueError(
                f"meta_bytes {self.meta_bytes} must lie within size_bytes {self.size_bytes}"
            )
        if self.src == self.dst:
            raise ValueError("packet source and destination must differ")

    @property
    def base_bytes(self) -> int:
        """Bytes the unsecure system would also have sent."""
        return self.size_bytes - self.meta_bytes


__all__ = ["Packet", "PacketKind"]
