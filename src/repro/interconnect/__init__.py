"""Interconnect substrate: packets, serialized links, and system topology.

Models the two untrusted channel classes of the paper's target system
(Fig. 2/17): PCIe-v4 between the host CPU and each GPU (32 GB/s) and
NVLink2-class point-to-point links among GPUs (50 GB/s).  Links serialize
packets at a bytes-per-cycle rate with FIFO queueing per direction, which is
what turns security-metadata bytes into measurable slowdown.
"""

from repro.interconnect.packet import Packet, PacketKind
from repro.interconnect.link import Channel, Link
from repro.interconnect.topology import Topology, NodeId, CPU_NODE
from repro.interconnect.arbiter import RoundRobinArbiter
from repro.interconnect.faults import FaultInjector, FaultVerdict, LinkFailureError

__all__ = [
    "Packet",
    "PacketKind",
    "Channel",
    "Link",
    "Topology",
    "NodeId",
    "CPU_NODE",
    "RoundRobinArbiter",
    "FaultInjector",
    "FaultVerdict",
    "LinkFailureError",
]
