"""Workload traces: the 17 synthetic benchmarks of Table IV.

The paper drives MGPUSim with binaries from five suites; this package
substitutes trace generators that reproduce each benchmark's multi-GPU
*communication structure* — remote-request rate, destination locality and
drift, burstiness, and migration/direct-access mix — which is what the
evaluated mechanisms respond to (see DESIGN.md §5).
"""

from repro.workloads.base import Access, AccessKind, GpuTrace, LaneTrace, WorkloadTrace
from repro.workloads.builder import TraceBuilder
from repro.workloads.registry import WorkloadSpec, all_workloads, get_workload, workloads_in_class
from repro.workloads.rpki import classify_rpki, rpki_of

__all__ = [
    "Access",
    "AccessKind",
    "GpuTrace",
    "LaneTrace",
    "WorkloadTrace",
    "TraceBuilder",
    "WorkloadSpec",
    "all_workloads",
    "get_workload",
    "workloads_in_class",
    "classify_rpki",
    "rpki_of",
]
