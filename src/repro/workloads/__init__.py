"""Workload traces: the 17 Table IV benchmarks plus the collective suite.

The paper drives MGPUSim with binaries from five suites; this package
substitutes trace generators that reproduce each benchmark's multi-GPU
*communication structure* — remote-request rate, destination locality and
drift, burstiness, and migration/direct-access mix — which is what the
evaluated mechanisms respond to (see DESIGN.md §5).  Beyond Table IV, the
``collective`` class adds NCCL-style collective-communication workloads
(ring/tree all-reduce, all-gather, reduce-scatter, broadcast, 2D halo
exchange); see ``docs/WORKLOADS.md`` for the full catalog.
"""

from repro.workloads.base import Access, AccessKind, GpuTrace, LaneTrace, WorkloadTrace
from repro.workloads.builder import TraceBuilder
from repro.workloads.compiled import (
    CompiledTrace,
    compile_trace,
    ensure_compiled,
    to_workload_trace,
)
from repro.workloads.collectives import CollectiveBuilder, training_step
from repro.workloads.registry import (
    WorkloadSpec,
    all_collectives,
    all_workloads,
    get_workload,
    workloads_in_class,
)
from repro.workloads.rpki import classify_rpki, rpki_of

__all__ = [
    "Access",
    "AccessKind",
    "GpuTrace",
    "LaneTrace",
    "WorkloadTrace",
    "CompiledTrace",
    "compile_trace",
    "ensure_compiled",
    "to_workload_trace",
    "TraceBuilder",
    "CollectiveBuilder",
    "training_step",
    "WorkloadSpec",
    "all_workloads",
    "all_collectives",
    "get_workload",
    "workloads_in_class",
    "classify_rpki",
    "rpki_of",
]
