"""RPKI (Remote requests Per Kilo-Instruction) classification.

Table IV groups the workloads by measured RPKI: high (> 1000), medium
(100–1000), and low (< 100).  The absolute values depend on how
instructions are counted — the paper counts wavefront instructions on a
64-CU machine, while our traces count abstract lane instructions — so the
registry carries each workload's *declared* class from the paper and this
module derives the *measured* class with thresholds scaled to the trace
model (the ordering is what the experiments verify, not the raw cutoffs).
"""

from __future__ import annotations

# Paper thresholds, over wavefront instructions (Table IV).
PAPER_HIGH_THRESHOLD = 1000.0
PAPER_MEDIUM_THRESHOLD = 100.0

# Trace-model thresholds: lane instructions run ~5x denser than wavefront
# instructions on the modeled 64-CU machine, so the cutoffs shrink.
HIGH_THRESHOLD = 200.0
MEDIUM_THRESHOLD = 20.0


def classify_rpki(rpki: float, high: float = HIGH_THRESHOLD, medium: float = MEDIUM_THRESHOLD) -> str:
    """Map an RPKI value to the Table IV class names."""
    if rpki < 0:
        raise ValueError("RPKI cannot be negative")
    if rpki >= high:
        return "high"
    if rpki >= medium:
        return "medium"
    return "low"


def rpki_of(remote_requests: int, instructions: int) -> float:
    """RPKI = remote requests / (instructions / 1000)."""
    if instructions <= 0:
        return 0.0
    return remote_requests / (instructions / 1000.0)


__all__ = [
    "classify_rpki",
    "rpki_of",
    "HIGH_THRESHOLD",
    "MEDIUM_THRESHOLD",
    "PAPER_HIGH_THRESHOLD",
    "PAPER_MEDIUM_THRESHOLD",
]
