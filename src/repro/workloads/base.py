"""Workload trace model.

A workload is compiled into a :class:`WorkloadTrace`: for every GPU, a set
of *lane traces*.  A lane abstracts a group of compute units executing the
same kernel region — its trace is an ordered list of memory accesses, each
preceded by ``gap`` cycles of computation.  Multiple lanes per GPU is what
produces the bursty, overlapped communication the paper measures (§III-B
attributes burstiness to "multiple thread blocks operating in each GPU").

Traces carry the executed-instruction estimate per GPU so RPKI (remote
requests per kilo-instruction, Table IV) can be computed after simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AccessKind(Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class Access:
    """One memory access in a lane trace.

    ``gap`` is compute cycles separating this access from the previous one
    in the same lane (the instruction work between memory operations).
    """

    gap: int
    address: int
    kind: AccessKind = AccessKind.READ

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("access gap must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE


LaneTrace = list[Access]


@dataclass
class GpuTrace:
    """All lanes of one GPU plus its instruction count."""

    lanes: list[LaneTrace]
    instructions: int

    @property
    def n_accesses(self) -> int:
        return sum(len(lane) for lane in self.lanes)


@dataclass
class WorkloadTrace:
    """A complete multi-GPU workload: traces, allocations, pinned pages."""

    name: str
    gpu_traces: dict[int, GpuTrace]  # node id -> trace
    pinned_pages: set[int] = field(default_factory=set)
    initial_owners: dict[int, int] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        return sum(t.n_accesses for t in self.gpu_traces.values())

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.gpu_traces.values())

    def compile(self):
        """Flatten into the array-backed replay form (see ``compiled.py``)."""
        from repro.workloads.compiled import compile_trace

        return compile_trace(self)

    def validate(self) -> None:
        """Sanity-check the trace against its own allocation map."""
        if not self.gpu_traces:
            raise ValueError(f"workload {self.name} has no GPU traces")
        if not self.initial_owners:
            raise ValueError(f"workload {self.name} has no page ownership map")
        from repro.memory.address_space import page_of

        for node, trace in self.gpu_traces.items():
            for lane in trace.lanes:
                for access in lane:
                    page = page_of(access.address)
                    if page not in self.initial_owners:
                        raise ValueError(
                            f"workload {self.name}: GPU {node} touches unmapped page {page}"
                        )


__all__ = ["Access", "AccessKind", "LaneTrace", "GpuTrace", "WorkloadTrace"]
