"""AMD APP SDK workloads: matrixtranspose, simpleconvolution,
matrixmultiplication, floydwarshall.

Each generator reproduces the benchmark's multi-GPU decomposition at the
communication level: which blocks a GPU touches, in what order, how bursty,
and who owns them.
"""

from __future__ import annotations

from repro.memory.address_space import Placement
from repro.workloads.base import WorkloadTrace
from repro.workloads.builder import TraceBuilder


def matrixtranspose(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Out-of-place transpose, row-blocked (high RPKI).

    GPU ``g`` produces row-block ``g`` of the transpose by reading the
    corresponding *column* block of the input — which lives almost entirely
    on the other GPUs.  Reads stream in 16-block tile bursts with no
    compute between them; output writes are local.  Since each input page
    is read straight through, the access-counter policy migrates many pages
    mid-stream, exercising bulk 4 KB transfers.
    """
    b = TraceBuilder("matrixtranspose", n_gpus, seed, n_lanes)
    rows_per_gpu = max(6, int(48 * scale))
    row_blocks = 64  # one page-wide matrix row per row index
    # the input is streamed by every GPU (all-to-all, no per-GPU reuse):
    # the locality API pins it for direct block access, as for relu's input
    src = b.alloc("input", n_gpus * rows_per_gpu * row_blocks, Placement.BLOCKED, pinned=True)
    dst = b.alloc("output", n_gpus * rows_per_gpu * row_blocks, Placement.BLOCKED)

    for g in b.gpus():
        my_first, my_blocks = b.blocked_range(dst, g)
        lane = 0
        # source-major blocking: a communication-optimal transpose gathers
        # everything it needs from one source before moving to the next,
        # so each source forms a long-lived communication phase
        for peer_off in range(n_gpus):
            peer = b.peer_gpu(g, peer_off + 1)
            p_first, p_blocks = b.blocked_range(src, peer)
            if p_blocks == 0:
                continue
            for row in range(rows_per_gpu):
                tile = (row * 16) % max(1, p_blocks - 16)
                b.burst(g, lane, src, p_first + tile, 16, gap=0)
                # partial transposed-tile writeback, local
                b.burst(g, lane, dst, my_first + (row * 16) % max(1, my_blocks - 16), 4,
                        gap=0, write=True)
                lane = (lane + 1) % n_lanes
    return b.build()


def simpleconvolution(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """3x3 convolution over a row-blocked image (medium RPKI).

    Interior rows are local; the first/last row of each GPU's slab reads a
    halo row from the ring neighbours in a short burst per output row.
    Moderate compute (the multiply-accumulate window) separates accesses.
    """
    b = TraceBuilder("simpleconvolution", n_gpus, seed, n_lanes)
    rows_per_gpu = max(16, int(280 * scale))
    row_blocks = 64
    image = b.alloc("image", n_gpus * rows_per_gpu * row_blocks, Placement.BLOCKED)
    out = b.alloc("out", n_gpus * rows_per_gpu * row_blocks, Placement.BLOCKED)

    for g in b.gpus():
        first, _ = b.blocked_range(image, g)
        out_first, _ = b.blocked_range(out, g)
        up = b.peer_gpu(g, -1)
        down = b.peer_gpu(g, +1)
        for row in range(rows_per_gpu):
            lane = row % n_lanes
            # halo: boundary rows read 8-block bursts from neighbours
            if row == 0 and n_gpus > 1:
                up_first, up_blocks = b.blocked_range(image, up)
                b.burst(g, lane, image, up_first + max(0, up_blocks - 16), 8, gap=1)
            if row == rows_per_gpu - 1 and n_gpus > 1:
                down_first, _ = b.blocked_range(image, down)
                b.burst(g, lane, image, down_first, 8, gap=1)
            # interior sweep with convolution compute between blocks
            b.burst(g, lane, image, first + row * row_blocks, 24, gap=4)
            b.burst(g, lane, out, out_first + row * row_blocks, 8, gap=2, write=True)
    return b.build()


def matrixmultiplication(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Tiled C = A x B with row-blocked A/B (medium RPKI).

    Runs ``n_gpus`` phases; in phase ``k`` GPU ``g`` consumes the B
    row-block owned by GPU ``(g + k) mod n`` — the rotating destination
    pattern of Figs 13/14.  B tiles stream in 16-block bursts, each touched
    twice (register-blocked reuse becomes L1 hits), with multiply-accumulate
    gaps between bursts.
    """
    b = TraceBuilder("matrixmultiplication", n_gpus, seed, n_lanes)
    tiles_per_phase = max(8, int(80 * scale))
    mat_a = b.alloc("A", n_gpus * 16 * 64, Placement.BLOCKED)
    mat_b = b.alloc("B", n_gpus * 16 * 64, Placement.BLOCKED)
    mat_c = b.alloc("C", n_gpus * 16 * 64, Placement.BLOCKED)

    for g in b.gpus():
        a_first, a_blocks = b.blocked_range(mat_a, g)
        c_first, c_blocks = b.blocked_range(mat_c, g)
        for phase in range(n_gpus):
            owner = b.peer_gpu(g, phase)
            b_first, b_blocks = b.blocked_range(mat_b, owner)
            for t in range(tiles_per_phase):
                lane = t % n_lanes
                tile = b_first + (t * 16) % max(1, b_blocks - 16)
                b.burst(g, lane, mat_b, tile, 16, gap=1)
                b.compute(g, lane, 40)  # FMA work on the fetched tile
                b.burst(g, lane, mat_b, tile, 16, gap=0)  # reuse: L1 hits
                b.burst(g, lane, mat_a, a_first + (t * 8) % max(1, a_blocks - 8), 8, gap=2)
                b.compute(g, lane, 60)
            # phase epilogue: accumulate into local C
            b.burst(g, phase % n_lanes, mat_c,
                    c_first + (phase * 16) % max(1, c_blocks - 16), 16, gap=1, write=True)
    return b.build()


def floydwarshall(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """All-pairs shortest paths, row-blocked distance matrix (low RPKI).

    Iteration ``k`` broadcasts pivot row ``k`` (a 16-block burst from its
    owner) to every GPU, followed by long local relaxation sweeps — heavy
    compute, little communication.
    """
    b = TraceBuilder("floydwarshall", n_gpus, seed, n_lanes)
    iters = max(8, int(56 * scale))
    dist = b.alloc("dist", n_gpus * 16 * 64, Placement.BLOCKED)

    for k in range(iters):
        pivot_owner = 1 + k % n_gpus
        p_first, p_blocks = b.blocked_range(dist, pivot_owner)
        pivot = p_first + (k * 16) % max(1, p_blocks - 16)
        for g in b.gpus():
            lane = k % n_lanes
            b.burst(g, lane, dist, pivot, 16, gap=1)  # pivot-row broadcast read
            my_first, my_blocks = b.blocked_range(dist, g)
            # local relaxation: compute-dominated sweep of our rows
            for chunk in range(4):
                b.compute(g, lane, 300)
                b.burst(g, lane, dist,
                        my_first + (k * 4 + chunk * 8) % max(1, my_blocks - 8), 8, gap=8)
            b.compute(g, lane, 200)
    return b.build()


__all__ = ["matrixtranspose", "simpleconvolution", "matrixmultiplication", "floydwarshall"]
