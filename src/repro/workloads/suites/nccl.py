"""NCCL-style collective workloads: the ``collective`` registry class.

Six trace generators mirroring the collectives that dominate production
multi-GPU traffic (DDP training, sharded inference): ring and tree
all-reduce, all-gather, reduce-scatter, broadcast, and a 2D halo exchange.
Schedules come from :mod:`repro.workloads.collectives`; algorithm sketches,
the parameter table, and which allocator behaviour each collective
stresses are documented in ``docs/WORKLOADS.md``.

All generators share the registry builder signature
``(n_gpus, seed, scale, n_lanes)``.  Message sizes are rounded to wire-
chunk multiples so every transfer decomposes into dense
:data:`~repro.workloads.collectives.DEFAULT_CHUNK_BLOCKS`-block bursts,
and each GPU streams its own buffer once up front (initialization +
local compute), which keeps single-GPU traces non-empty and the remote
fraction below 1.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadTrace
from repro.workloads.collectives import DEFAULT_CHUNK_BLOCKS, CollectiveBuilder


def _chunked(blocks: int, multiple: int) -> int:
    """Round ``blocks`` down to a positive multiple of ``multiple``."""
    return max(multiple, blocks - blocks % multiple)


def _warmup(b: CollectiveBuilder, shards, gap: int = 2) -> None:
    """Each GPU streams its own buffer once: init + local compute phase."""
    for g in b.gpus():
        shard = shards[g]
        per_lane = max(1, shard.n_blocks // b.n_lanes)
        for lane in range(b.n_lanes):
            b.burst(g, lane, shard, lane * per_lane, per_lane, gap=gap, write=True)
            b.compute(g, lane, 60)


def allreduce_ring(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Bandwidth-optimal ring all-reduce: reduce-scatter + all-gather.

    Every byte a GPU moves goes to its fixed left ring neighbour, so one
    (recv, peer) stream per GPU carries the entire load — the dynamic
    allocator's EWMA split should converge onto it and stay there.
    """
    b = CollectiveBuilder("allreduce_ring", n_gpus, seed, n_lanes)
    unit = n_gpus * DEFAULT_CHUNK_BLOCKS
    message = _chunked(int(6144 * scale), unit)
    rounds = max(3, int(6 * scale))
    grads = b.alloc_shards("grads", message)
    _warmup(b, grads)
    for _ in range(rounds):
        b.reduce_scatter_ring(grads)
        b.all_gather_ring(grads)
    return b.build()


def allreduce_tree(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Tree all-reduce: reduce up a binary tree, broadcast back down.

    Latency-optimal but bandwidth-hungry — the full message crosses every
    tree edge, and whole phases concentrate on the root's links while the
    leaves sit idle.  The root-heavy asymmetry is what a static equal
    per-peer OTP partition prices worst.
    """
    b = CollectiveBuilder("allreduce_tree", n_gpus, seed, n_lanes)
    message = _chunked(int(4096 * scale), DEFAULT_CHUNK_BLOCKS)
    rounds = max(2, int(4 * scale))
    grads = b.alloc_shards("grads", message)
    _warmup(b, grads)
    for _ in range(rounds):
        b.tree_reduce(grads)
        b.tree_broadcast(grads)
    return b.build()


def allgather(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Rotated direct all-gather over the p2p fabric.

    Each step every GPU pulls a *different* peer's shard (rank-staggered to
    avoid hotspots), so the hot recv destination rotates once per step —
    the abrupt, periodic destination drift that stresses the EWMA
    repartitioning hardest.
    """
    b = CollectiveBuilder("allgather", n_gpus, seed, n_lanes)
    contribution = _chunked(int(2048 * scale), DEFAULT_CHUNK_BLOCKS)
    rounds = max(4, int(8 * scale))
    shards = b.alloc_shards("shards", contribution)
    _warmup(b, shards)
    for _ in range(rounds):
        b.all_gather_direct(shards)
    return b.build()


def reducescatter(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Ring reduce-scatter alone: the gradient-sharding half of ZeRO/FSDP.

    Fixed-neighbour chunk rotation with reduction arithmetic between
    bursts — bulk-synchronous 1 KiB bursts separated by compute, the
    best case for metadata batching's one-MAC-per-16-blocks amortization.
    """
    b = CollectiveBuilder("reducescatter", n_gpus, seed, n_lanes)
    unit = n_gpus * DEFAULT_CHUNK_BLOCKS
    message = _chunked(int(6144 * scale), unit)
    rounds = max(5, int(10 * scale))
    grads = b.alloc_shards("grads", message)
    _warmup(b, grads)
    for _ in range(rounds):
        b.reduce_scatter_ring(grads)
    return b.build()


def broadcast(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Flat broadcast from rank 0: one hot source, N-1 sinks.

    The root's send direction carries (N-1)x the message while its recv
    direction is idle — maximal send/recv asymmetry on one node, the case
    the per-direction EWMA split (Formula 1) exists for.
    """
    b = CollectiveBuilder("broadcast", n_gpus, seed, n_lanes)
    message = _chunked(int(3072 * scale), DEFAULT_CHUNK_BLOCKS)
    rounds = max(5, int(10 * scale))
    shards = b.alloc_shards("params", message)
    _warmup(b, shards)
    root = b.gpu_of(0)
    for _ in range(rounds):
        b.broadcast_flat(shards[root], root)
        b.step_barrier(root)
    return b.build()


def halo2d(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """2D grid halo exchange: domain decomposition on a GPU grid.

    Each iteration every GPU pulls boundary strips from up to four grid
    neighbours — dense row halos north/south, strided column halos
    east/west (the single-block pattern batching cannot coalesce) — then
    sweeps its interior with stencil-arithmetic gaps.
    """
    b = CollectiveBuilder("halo2d", n_gpus, seed, n_lanes)
    tile_blocks = _chunked(int(1024 * scale), DEFAULT_CHUNK_BLOCKS)
    iterations = max(80, int(160 * scale))
    halo = DEFAULT_CHUNK_BLOCKS
    tiles = b.alloc_shards("tile", tile_blocks, pinned=False)
    for it in range(iterations):
        b.halo_exchange_2d(tiles, halo_blocks=halo, lane0=it)
        for g in b.gpus():
            tile = tiles[g]
            lane = it % n_lanes
            b.burst(g, lane, tile, (it * halo) % tile.n_blocks,
                    min(halo, tile.n_blocks), gap=3, write=(it % 2 == 1))
            b.compute(g, lane, 90)
    return b.build()


__all__ = [
    "allreduce_ring",
    "allreduce_tree",
    "allgather",
    "reducescatter",
    "broadcast",
    "halo2d",
]
