"""Hetero-Mark workloads: pagerank, kmeans, aes, fir.

CPU-GPU collaborative benchmarks: graph analytics with power-law remote
access, iterative clustering with broadcast-style centroid reads, and two
compute-dominated streaming kernels at the low-RPKI end of Table IV.
"""

from __future__ import annotations

import numpy as np

from repro.memory.address_space import Placement
from repro.workloads.base import WorkloadTrace
from repro.workloads.builder import TraceBuilder


def pagerank(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Push-style PageRank over an interleaved rank vector (high RPKI).

    Each GPU walks its local adjacency partition and gathers neighbour
    ranks at Zipf-distributed vertex indices — irregular, high-rate remote
    singles spread over every peer, repeated for a few iterations.
    """
    b = TraceBuilder("pagerank", n_gpus, seed, n_lanes)
    gathers_per_lane = max(64, int(800 * scale))
    iterations = 3
    ranks = b.alloc("ranks", n_gpus * 8 * 64, Placement.INTERLEAVED)
    adjacency = b.alloc("adjacency", n_gpus * 16 * 64, Placement.BLOCKED)

    for g in b.gpus():
        adj_first, adj_blocks = b.blocked_range(adjacency, g)
        for it in range(iterations):
            for lane in range(n_lanes):
                # stream a slice of the local edge list…
                b.burst(g, lane, adjacency,
                        adj_first + (lane * 8) % max(1, adj_blocks - 8), 8, gap=1)
                # …then chase the neighbours' ranks (power-law popularity)
                raw = b.rng.zipf(1.5, size=gathers_per_lane)
                indices = (raw * 37 + it * 11 + lane) % ranks.n_blocks
                b.gather(g, lane, ranks, indices, gap=1)
    return b.build()


def kmeans(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """K-means clustering (medium RPKI).

    Points live locally; the centroid table (one per iteration, modelling
    its update between iterations) lives on GPU 1 and is re-read by every
    GPU in a 16-block burst per point batch — broadcast-like reuse traffic.
    """
    b = TraceBuilder("kmeans", n_gpus, seed, n_lanes)
    iterations = 3
    batches = max(16, int(160 * scale))
    points = b.alloc("points", n_gpus * 12 * 64, Placement.BLOCKED)
    centroid_tables = [
        b.alloc(f"centroids{it}", 16, Placement.OWNER, owner=1) for it in range(iterations)
    ]

    for g in b.gpus():
        pts_first, pts_blocks = b.blocked_range(points, g)
        for it, centroids in enumerate(centroid_tables):
            for batch in range(batches):
                lane = (it * batches + batch) % n_lanes
                b.burst(g, lane, centroids, 0, 16, gap=1)  # fetch current centroids
                b.burst(g, lane, points,
                        pts_first + (batch * 24) % max(1, pts_blocks - 24), 24, gap=6)
                b.compute(g, lane, 200)  # distance computations
    return b.build()


def aes_cipher(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """AES encryption of local buffers (low RPKI).

    The expanded key schedule is fetched once from the host; after that the
    kernel is round-function compute over locally owned state with long
    gaps between memory touches.
    """
    b = TraceBuilder("aes", n_gpus, seed, n_lanes)
    blocks_per_lane = max(16, int(200 * scale))
    state = b.alloc("state", n_gpus * 12 * 64, Placement.BLOCKED)
    keys = b.alloc("round_keys", 16, Placement.OWNER, owner=0, pinned=True)

    for g in b.gpus():
        st_first, st_blocks = b.blocked_range(state, g)
        for lane in range(n_lanes):
            b.burst(g, lane, keys, 0, 11, gap=2)  # one-time key-schedule fetch
            for i in range(blocks_per_lane):
                block = st_first + (lane * blocks_per_lane + i) % max(1, st_blocks)
                b.compute(g, lane, 35)  # ten rounds of S-box work
                b.access(g, lane, state.block_addr(block), gap=2)
                b.access(g, lane, state.block_addr(block), gap=30, write=True)
    return b.build()


def fir(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """FIR filter over a blocked signal (low RPKI).

    Taps come from the host once per lane; each chunk needs a tiny halo
    from the ring predecessor, then the sliding-window MACs dominate.
    """
    b = TraceBuilder("fir", n_gpus, seed, n_lanes)
    chunks = max(8, int(100 * scale))
    signal = b.alloc("signal", n_gpus * 10 * 64, Placement.BLOCKED)
    taps = b.alloc("taps", 4, Placement.OWNER, owner=0, pinned=True)

    for g in b.gpus():
        sig_first, sig_blocks = b.blocked_range(signal, g)
        prev = b.peer_gpu(g, -1)
        prev_first, prev_blocks = b.blocked_range(signal, prev)
        for lane in range(n_lanes):
            b.burst(g, lane, taps, 0, 4, gap=3)
            for c in range(chunks):
                if c == 0 and n_gpus > 1:
                    # boundary halo: last 2 blocks of the predecessor's slab
                    b.burst(g, lane, signal, prev_first + max(0, prev_blocks - 2), 2, gap=2)
                b.burst(g, lane, signal,
                        sig_first + (lane * chunks + c * 8) % max(1, sig_blocks - 8),
                        8, gap=12)
                b.compute(g, lane, 150)
    return b.build()


__all__ = ["pagerank", "kmeans", "aes_cipher", "fir"]
