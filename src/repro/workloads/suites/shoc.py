"""SHOC workloads: spmv, stencil2d, fft.

The scalable heterogeneous-computing kernels: irregular sparse access,
iterative neighbour exchange, and staged butterfly communication whose
partner set rotates every stage — the pattern the Dynamic allocator's
interval adaptation is built for.
"""

from __future__ import annotations

import numpy as np

from repro.memory.address_space import Placement
from repro.workloads.base import WorkloadTrace
from repro.workloads.builder import TraceBuilder


def spmv(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Sparse matrix-vector multiply (high RPKI).

    Row data (values + column indices) streams locally; every nonzero then
    gathers one element of the interleaved dense vector at an effectively
    random block — constant-rate irregular remote singles to all peers.
    """
    b = TraceBuilder("spmv", n_gpus, seed, n_lanes)
    nnz_per_lane = max(96, int(1000 * scale))
    matrix = b.alloc("csr", n_gpus * 14 * 64, Placement.BLOCKED)
    x = b.alloc("x", n_gpus * 4 * 64, Placement.INTERLEAVED)

    for g in b.gpus():
        m_first, m_blocks = b.blocked_range(matrix, g)
        for lane in range(n_lanes):
            b.burst(g, lane, matrix,
                    m_first + (lane * 12) % max(1, m_blocks - 12), 12, gap=1)
            cols = b.rng.integers(0, x.n_blocks, size=nnz_per_lane)
            b.gather(g, lane, x, cols, gap=1)
    return b.build()


def stencil2d(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """9-point 2D stencil, iterated (medium RPKI).

    Every iteration exchanges halo rows with both ring neighbours in
    16-block bursts, then sweeps the interior with stencil-arithmetic gaps.
    The halo bursts recur each iteration — steady pairwise communication.
    """
    b = TraceBuilder("stencil2d", n_gpus, seed, n_lanes)
    iterations = max(16, int(140 * scale))
    rows_per_iter = 4
    grid = b.alloc("grid", n_gpus * 12 * 64, Placement.BLOCKED)

    for g in b.gpus():
        first, blocks = b.blocked_range(grid, g)
        up, down = b.peer_gpu(g, -1), b.peer_gpu(g, +1)
        for it in range(iterations):
            lane = it % n_lanes
            if n_gpus > 1:
                up_first, up_blocks = b.blocked_range(grid, up)
                down_first, _ = b.blocked_range(grid, down)
                b.burst(g, lane, grid, up_first + max(0, up_blocks - 16), 16, gap=0)
                b.burst(g, lane, grid, down_first, 16, gap=0)
            for row in range(rows_per_iter):
                sweep_lane = (it + row) % n_lanes
                b.burst(g, sweep_lane, grid,
                        first + (it * 8 + row * 16) % max(1, blocks - 16), 16, gap=3)
                b.compute(g, sweep_lane, 80)
    return b.build()


def fft(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Distributed radix-2 FFT (medium RPKI).

    ``log2`` stages: in stage ``s`` each GPU exchanges butterfly partners
    with GPU ``g XOR 2^s`` — one dominant destination per stage that
    switches abruptly at stage boundaries.  Within a stage, partner data
    arrives in dense 16-block bursts.
    """
    b = TraceBuilder("fft", n_gpus, seed, n_lanes)
    bursts_per_stage = max(12, int(64 * scale))
    data = b.alloc("signal", n_gpus * 12 * 64, Placement.BLOCKED)

    stages = max(1, (n_gpus - 1).bit_length())
    for g in b.gpus():
        my_first, my_blocks = b.blocked_range(data, g)
        for s in range(stages):
            partner = ((g - 1) ^ (1 << s)) + 1
            if partner > n_gpus or partner == g:
                partner = b.peer_gpu(g, 1 << s)
            p_first, p_blocks = b.blocked_range(data, partner)
            for t in range(bursts_per_stage):
                lane = (s * bursts_per_stage + t) % n_lanes
                if p_blocks:
                    b.burst(g, lane, data,
                            p_first + (t * 16) % max(1, p_blocks - 16), 16, gap=1)
                b.compute(g, lane, 50)  # twiddle multiplies
                b.burst(g, lane, data,
                        my_first + (t * 16) % max(1, my_blocks - 16), 16,
                        gap=2, write=(t % 2 == 1))
    return b.build()


__all__ = ["spmv", "stencil2d", "fft"]
