"""Per-suite workload generators: Table IV benchmarks + the collectives."""

from repro.workloads.suites import amdappsdk, dnnmark, heteromark, nccl, polybench, shoc

__all__ = ["amdappsdk", "dnnmark", "heteromark", "nccl", "polybench", "shoc"]
