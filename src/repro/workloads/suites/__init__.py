"""Per-suite workload generators for the 17 benchmarks of Table IV."""

from repro.workloads.suites import amdappsdk, dnnmark, heteromark, polybench, shoc

__all__ = ["amdappsdk", "dnnmark", "heteromark", "polybench", "shoc"]
