"""Polybench workloads: syr2k, atax, bicg, gesummv, mvt.

Dense linear-algebra kernels.  Matrices are row-blocked (local to their
compute owner); the shared vectors are page-interleaved across GPUs, so
vector sweeps generate strided remote traffic to every peer — the classic
medium-RPKI Polybench signature.  syr2k additionally re-reads whole remote
row blocks, putting it in the high-RPKI class.
"""

from __future__ import annotations

from repro.memory.address_space import Placement
from repro.workloads.base import WorkloadTrace
from repro.workloads.builder import TraceBuilder


def _vector_sweep(b: TraceBuilder, gpu: int, lane: int, vec, n_blocks: int, gap: int) -> None:
    """Sample an interleaved vector across page boundaries.

    A matrix row's dot product walks the whole vector; striding past the
    64-block page size makes consecutive touches land on different owners,
    as a real page-interleaved allocation would be hit by column index.
    """
    start = (gpu * 17 + lane * 29) % vec.n_blocks
    b.burst(gpu, lane, vec, start, n_blocks, gap=gap, stride=67)


def syr2k(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """C += A·Bᵀ + B·Aᵀ rank-2k update (high RPKI).

    Each output row block needs *whole rows* of both A and B from every
    GPU: long 16-block bursts at a high rate with only FMA-length gaps.
    """
    b = TraceBuilder("syr2k", n_gpus, seed, n_lanes)
    rows = max(8, int(40 * scale))
    # A and B are re-read by every GPU each row (read-shared): the
    # locality API pins them for direct access instead of page ping-pong
    mat_a = b.alloc("A", n_gpus * 12 * 64, Placement.BLOCKED, pinned=True)
    mat_b = b.alloc("B", n_gpus * 12 * 64, Placement.BLOCKED, pinned=True)
    mat_c = b.alloc("C", n_gpus * 12 * 64, Placement.BLOCKED)

    for g in b.gpus():
        c_first, c_blocks = b.blocked_range(mat_c, g)
        # owner-major blocking: consume one source partition completely
        # before moving to the next (the communication-optimal loop order),
        # so destination phases drift slowly as in the paper's Fig. 14
        for peer_off in range(n_gpus):
            owner = b.peer_gpu(g, peer_off + 1)
            for row in range(rows):
                lane = row % n_lanes
                for mat in (mat_a, mat_b):
                    first, blocks = b.blocked_range(mat, owner)
                    if blocks == 0:
                        continue
                    b.burst(g, lane, mat, first + (row * 16) % max(1, blocks - 16), 16, gap=1)
                b.compute(g, lane, 30)
                b.burst(g, lane, mat_c, c_first + (row * 16) % max(1, c_blocks - 16),
                        4, gap=1, write=True)
    return b.build()


def atax(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """y = Aᵀ(A·x) (medium RPKI): two matrix passes, two vector sweeps."""
    b = TraceBuilder("atax", n_gpus, seed, n_lanes)
    rows = max(24, int(280 * scale))
    mat = b.alloc("A", n_gpus * 10 * 64, Placement.BLOCKED)
    x = b.alloc("x", n_gpus * 4 * 64, Placement.INTERLEAVED)
    tmp = b.alloc("tmp", n_gpus * 4 * 64, Placement.INTERLEAVED)

    for g in b.gpus():
        a_first, a_blocks = b.blocked_range(mat, g)
        for row in range(rows):
            lane = row % n_lanes
            # pass 1: tmp = A x — local row stream + interleaved x sweep
            b.burst(g, lane, mat, a_first + (row * 12) % max(1, a_blocks - 12), 12, gap=2)
            _vector_sweep(b, g, lane, x, 12, gap=2)
            b.compute(g, lane, 80)
            # pass 2: y = Aᵀ tmp — re-stream the row + interleaved tmp sweep
            b.burst(g, lane, mat, a_first + (row * 12) % max(1, a_blocks - 12), 12, gap=2)
            _vector_sweep(b, g, lane, tmp, 12, gap=2)
            b.compute(g, lane, 80)
    return b.build()


def bicg(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """BiCG kernel: s = Aᵀ·r and q = A·p (medium RPKI)."""
    b = TraceBuilder("bicg", n_gpus, seed, n_lanes)
    rows = max(24, int(280 * scale))
    mat = b.alloc("A", n_gpus * 10 * 64, Placement.BLOCKED)
    p = b.alloc("p", n_gpus * 4 * 64, Placement.INTERLEAVED)
    r = b.alloc("r", n_gpus * 4 * 64, Placement.INTERLEAVED)

    for g in b.gpus():
        a_first, a_blocks = b.blocked_range(mat, g)
        for row in range(rows):
            lane = row % n_lanes
            b.burst(g, lane, mat, a_first + (row * 10) % max(1, a_blocks - 10), 10, gap=2)
            _vector_sweep(b, g, lane, p, 10, gap=2)
            b.compute(g, lane, 70)
            b.burst(g, lane, mat, a_first + (row * 10 + 5) % max(1, a_blocks - 10), 10, gap=2)
            _vector_sweep(b, g, lane, r, 10, gap=2)
            b.compute(g, lane, 70)
    return b.build()


def gesummv(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """y = α·A·x + β·B·x (medium RPKI): two local matrices, shared x."""
    b = TraceBuilder("gesummv", n_gpus, seed, n_lanes)
    rows = max(24, int(280 * scale))
    mat_a = b.alloc("A", n_gpus * 8 * 64, Placement.BLOCKED)
    mat_b = b.alloc("B", n_gpus * 8 * 64, Placement.BLOCKED)
    x = b.alloc("x", n_gpus * 4 * 64, Placement.INTERLEAVED)

    for g in b.gpus():
        for row in range(rows):
            lane = row % n_lanes
            for mat in (mat_a, mat_b):
                first, blocks = b.blocked_range(mat, g)
                b.burst(g, lane, mat, first + (row * 10) % max(1, blocks - 10), 10, gap=3)
                _vector_sweep(b, g, lane, x, 10, gap=3)
                b.compute(g, lane, 60)
    return b.build()


def mvt(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """x1 += A·y1, x2 += Aᵀ·y2 (medium RPKI)."""
    b = TraceBuilder("mvt", n_gpus, seed, n_lanes)
    rows = max(24, int(280 * scale))
    mat = b.alloc("A", n_gpus * 10 * 64, Placement.BLOCKED)
    y1 = b.alloc("y1", n_gpus * 4 * 64, Placement.INTERLEAVED)
    y2 = b.alloc("y2", n_gpus * 4 * 64, Placement.INTERLEAVED)

    for g in b.gpus():
        a_first, a_blocks = b.blocked_range(mat, g)
        for row in range(rows):
            lane = row % n_lanes
            b.burst(g, lane, mat, a_first + (row * 14) % max(1, a_blocks - 14), 14, gap=2)
            _vector_sweep(b, g, lane, y1, 8, gap=3)
            b.compute(g, lane, 90)
            b.burst(g, lane, mat, a_first + (row * 14 + 7) % max(1, a_blocks - 14), 14, gap=2)
            _vector_sweep(b, g, lane, y2, 8, gap=3)
            b.compute(g, lane, 90)
    return b.build()


__all__ = ["syr2k", "atax", "bicg", "gesummv", "mvt"]
