"""DNNMark workload: relu.

Inference-style activation functions stream input staged in host memory
through the GPUs exactly once — no reuse, so unified memory serves it by
direct block access over PCIe (the pages are pinned host-side, as a real
framework would advise for single-use streaming input).
"""

from __future__ import annotations

from repro.memory.address_space import Placement
from repro.workloads.base import WorkloadTrace
from repro.workloads.builder import TraceBuilder


def relu(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8) -> WorkloadTrace:
    """Elementwise max(x, 0) over CPU-resident activations (high RPKI).

    Every lane streams a disjoint slice of the input from the CPU with no
    compute gap (one compare per element), writing results to local memory.
    This is the PCIe-saturating, metadata-sensitive extreme of the suite.
    """
    b = TraceBuilder("relu", n_gpus, seed, n_lanes)
    blocks_per_lane = max(32, int(480 * scale))
    total = n_gpus * n_lanes * blocks_per_lane
    activations = b.alloc("activations", total, Placement.OWNER, owner=0, pinned=True)
    output = b.alloc("output", total, Placement.BLOCKED)

    for g in b.gpus():
        out_first, _ = b.blocked_range(output, g)
        gpu_base = (g - 1) * n_lanes * blocks_per_lane
        for lane in range(n_lanes):
            start = gpu_base + lane * blocks_per_lane
            b.burst(g, lane, activations, start, blocks_per_lane, gap=0)
            b.burst(g, lane, output, out_first + lane * blocks_per_lane,
                    blocks_per_lane // 2, gap=0, write=True)
    return b.build()


__all__ = ["relu"]
