"""Compiled trace layer: the immutable array-backed replay format.

A :class:`~repro.workloads.base.WorkloadTrace` is the *authoring* format —
per-lane lists of :class:`~repro.workloads.base.Access` objects, convenient
for generators to emit.  It is a terrible *replay* format: a full-scale
sweep touches millions of accesses and every one costs an object header,
three attribute loads, and an enum comparison on the simulator's hottest
path.

:class:`CompiledTrace` is the replay format: per-(GPU, lane) parallel
tuples of plain integers — ``gaps``, ``addrs``, ``writes`` — that the
device pump indexes directly.  Compilation is lossless and reversible
(property-tested in ``tests/test_compiled_trace.py``), so simulation
results are bit-identical regardless of which form a trace passed through.

Compiled traces also serialize compactly to ``.npz`` (one numpy array per
per-GPU stream plus a JSON header), which is what the content-addressed
trace store persists so a sweep generates each trace once and every scheme
— and every pool worker — replays the same bytes.
"""

from __future__ import annotations

import io
import json
import zipfile

import numpy as np

from repro.workloads.base import Access, AccessKind, GpuTrace, WorkloadTrace

#: Bump when the compiled layout (not the traced behavior) changes; folded
#: into trace-store keys so old files simply stop being found.
TRACE_SCHEMA = 1


class CompiledLane:
    """One lane's access stream as three parallel integer tuples."""

    __slots__ = ("gaps", "addrs", "writes")

    def __init__(
        self, gaps: tuple[int, ...], addrs: tuple[int, ...], writes: tuple[int, ...]
    ) -> None:
        if not (len(gaps) == len(addrs) == len(writes)):
            raise ValueError("lane streams must have equal length")
        self.gaps = gaps
        self.addrs = addrs
        self.writes = writes

    def __len__(self) -> int:
        return len(self.gaps)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CompiledLane)
            and self.gaps == other.gaps
            and self.addrs == other.addrs
            and self.writes == other.writes
        )

    def __repr__(self) -> str:
        return f"CompiledLane(n={len(self.gaps)})"


class CompiledGpuTrace:
    """All lanes of one GPU plus its instruction count."""

    __slots__ = ("lanes", "instructions")

    def __init__(self, lanes: tuple[CompiledLane, ...], instructions: int) -> None:
        self.lanes = lanes
        self.instructions = instructions

    @property
    def n_accesses(self) -> int:
        return sum(len(lane) for lane in self.lanes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CompiledGpuTrace)
            and self.lanes == other.lanes
            and self.instructions == other.instructions
        )


class CompiledTrace:
    """A complete multi-GPU workload in replay form.  Immutable by contract:
    the runner shares one instance across schemes and pool-worker memos, so
    nothing downstream may mutate it."""

    __slots__ = ("name", "gpu_traces", "pinned_pages", "initial_owners")

    def __init__(
        self,
        name: str,
        gpu_traces: dict[int, CompiledGpuTrace],
        pinned_pages: frozenset[int],
        initial_owners: dict[int, int],
    ) -> None:
        self.name = name
        self.gpu_traces = gpu_traces
        self.pinned_pages = pinned_pages
        self.initial_owners = initial_owners

    @property
    def total_accesses(self) -> int:
        return sum(t.n_accesses for t in self.gpu_traces.values())

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.gpu_traces.values())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CompiledTrace)
            and self.name == other.name
            and self.gpu_traces == other.gpu_traces
            and self.pinned_pages == other.pinned_pages
            and self.initial_owners == other.initial_owners
        )

    def validate(self) -> None:
        """Sanity-check the trace against its own allocation map."""
        if not self.gpu_traces:
            raise ValueError(f"workload {self.name} has no GPU traces")
        if not self.initial_owners:
            raise ValueError(f"workload {self.name} has no page ownership map")
        from repro.memory.address_space import PAGE_BYTES

        owners = self.initial_owners
        for node, trace in self.gpu_traces.items():
            for lane in trace.lanes:
                for addr in lane.addrs:
                    if addr // PAGE_BYTES not in owners:
                        raise ValueError(
                            f"workload {self.name}: GPU {node} touches unmapped "
                            f"page {addr // PAGE_BYTES}"
                        )


# ---------------------------------------------------------------------------
# Compilation (lossless, both directions)
# ---------------------------------------------------------------------------
def compile_trace(trace: WorkloadTrace) -> CompiledTrace:
    """Flatten a WorkloadTrace into the array-backed replay form."""
    gpu_traces: dict[int, CompiledGpuTrace] = {}
    for node, gpu_trace in trace.gpu_traces.items():
        lanes = []
        for lane in gpu_trace.lanes:
            gaps = tuple(a.gap for a in lane)
            addrs = tuple(a.address for a in lane)
            writes = tuple(1 if a.kind is AccessKind.WRITE else 0 for a in lane)
            lanes.append(CompiledLane(gaps, addrs, writes))
        gpu_traces[node] = CompiledGpuTrace(tuple(lanes), gpu_trace.instructions)
    return CompiledTrace(
        name=trace.name,
        gpu_traces=gpu_traces,
        pinned_pages=frozenset(trace.pinned_pages),
        initial_owners=dict(trace.initial_owners),
    )


def to_workload_trace(compiled: CompiledTrace) -> WorkloadTrace:
    """Reconstruct the authoring form (the exact inverse of compilation)."""
    gpu_traces: dict[int, GpuTrace] = {}
    for node, gpu_trace in compiled.gpu_traces.items():
        lanes = []
        for lane in gpu_trace.lanes:
            lanes.append(
                [
                    Access(
                        gap=gap,
                        address=addr,
                        kind=AccessKind.WRITE if write else AccessKind.READ,
                    )
                    for gap, addr, write in zip(lane.gaps, lane.addrs, lane.writes)
                ]
            )
        gpu_traces[node] = GpuTrace(lanes=lanes, instructions=gpu_trace.instructions)
    return WorkloadTrace(
        name=compiled.name,
        gpu_traces=gpu_traces,
        pinned_pages=set(compiled.pinned_pages),
        initial_owners=dict(compiled.initial_owners),
    )


def ensure_compiled(trace: WorkloadTrace | CompiledTrace) -> CompiledTrace:
    """Accept either form; compile on the way in."""
    if isinstance(trace, CompiledTrace):
        return trace
    return compile_trace(trace)


# ---------------------------------------------------------------------------
# Serialization: one .npz per trace (per-GPU concatenated streams + header)
# ---------------------------------------------------------------------------
def dump_bytes(compiled: CompiledTrace) -> bytes:
    """Render a compiled trace to compact ``.npz`` bytes.

    Lanes are concatenated per GPU into one ``gaps``/``addrs``/``writes``
    array each plus a lane-boundary offset table — dozens of numpy arrays
    instead of thousands of per-lane objects, and ``np.savez_compressed``
    squeezes the redundancy out of the strided address streams.
    """
    arrays: dict[str, np.ndarray] = {}
    header = {
        "schema": TRACE_SCHEMA,
        "name": compiled.name,
        "pinned_pages": sorted(compiled.pinned_pages),
        "initial_owners": {str(k): v for k, v in sorted(compiled.initial_owners.items())},
        "gpus": {},
    }
    for node, gpu_trace in sorted(compiled.gpu_traces.items()):
        bounds = [0]
        for lane in gpu_trace.lanes:
            bounds.append(bounds[-1] + len(lane))
        gaps = [g for lane in gpu_trace.lanes for g in lane.gaps]
        addrs = [a for lane in gpu_trace.lanes for a in lane.addrs]
        writes = [w for lane in gpu_trace.lanes for w in lane.writes]
        arrays[f"g{node}_gaps"] = np.asarray(gaps, dtype=np.int64)
        arrays[f"g{node}_addrs"] = np.asarray(addrs, dtype=np.int64)
        arrays[f"g{node}_writes"] = np.asarray(writes, dtype=np.int8)
        arrays[f"g{node}_bounds"] = np.asarray(bounds, dtype=np.int64)
        header["gpus"][str(node)] = {"instructions": gpu_trace.instructions}
    arrays["header"] = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def load_bytes(blob: bytes) -> CompiledTrace:
    """Inverse of :func:`dump_bytes`.  Raises ``ValueError`` on any mismatch
    (wrong schema, truncated file) so callers can treat it as a store miss."""
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as data:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            if header.get("schema") != TRACE_SCHEMA:
                raise ValueError(f"trace schema {header.get('schema')} != {TRACE_SCHEMA}")
            gpu_traces: dict[int, CompiledGpuTrace] = {}
            for node_str, meta in header["gpus"].items():
                node = int(node_str)
                gaps = data[f"g{node}_gaps"].tolist()
                addrs = data[f"g{node}_addrs"].tolist()
                writes = data[f"g{node}_writes"].tolist()
                bounds = data[f"g{node}_bounds"].tolist()
                lanes = tuple(
                    CompiledLane(
                        tuple(gaps[lo:hi]), tuple(addrs[lo:hi]), tuple(writes[lo:hi])
                    )
                    for lo, hi in zip(bounds, bounds[1:])
                )
                gpu_traces[node] = CompiledGpuTrace(lanes, int(meta["instructions"]))
            return CompiledTrace(
                name=header["name"],
                gpu_traces=gpu_traces,
                pinned_pages=frozenset(header["pinned_pages"]),
                initial_owners={int(k): v for k, v in header["initial_owners"].items()},
            )
    except (
        KeyError,
        OSError,
        EOFError,
        json.JSONDecodeError,
        zipfile.BadZipFile,
    ) as exc:
        raise ValueError(f"unreadable compiled trace: {exc}") from exc


__all__ = [
    "TRACE_SCHEMA",
    "CompiledLane",
    "CompiledGpuTrace",
    "CompiledTrace",
    "compile_trace",
    "to_workload_trace",
    "ensure_compiled",
    "dump_bytes",
    "load_bytes",
]
