"""Collective-communication trace machinery (ring, tree, grid schedules).

The Table IV kernels exercise the secure channel with *kernel-shaped*
traffic — gathers, stencils, butterflies.  Production multi-GPU systems are
dominated by a different family: the NCCL-style collectives that implement
data-parallel training and sharded inference (all-reduce, all-gather,
reduce-scatter, broadcast, halo exchange).  Their communication structure
is exactly what the paper's mechanisms react to, but in regimes Table IV
never enters:

* **fixed ring neighbours** — ring all-reduce sends every byte to one peer,
  so a single (direction, peer) stream carries the whole load and the
  dynamic allocator's EWMA split should converge hard onto it;
* **rotating peers** — a direct all-gather pulls a different peer's shard
  each step, drifting the hot destination once per phase (the Fig 13/14
  pattern, but periodic and abrupt);
* **root-heavy trees** — tree all-reduce and broadcast concentrate traffic
  on the root's links for entire phases, starving the leaves;
* **bulk-synchronous bursts** — every step moves one chunk as a dense
  back-to-back burst and then computes, the best case for metadata
  batching and the worst case for per-message ACK traffic.

This module provides :class:`CollectiveBuilder` — schedule primitives on
top of :class:`~repro.workloads.builder.TraceBuilder` — plus the
:func:`training_step` composite (forward compute + reduce-scatter /
all-gather gradient step) used by ``examples/secure_inference_pipeline.py``.
The registry-facing generators live in
:mod:`repro.workloads.suites.nccl`; algorithm sketches and the parameter
table are documented in ``docs/WORKLOADS.md``.

Transfer modeling: "GPU *p* sends a chunk to GPU *g*" appears in a trace as
*g* reading the chunk's blocks from an array owned by *p* (the response
data crosses the p→g link, exactly like any remote read in this
simulator); reductions and received copies are local writes.  Message
buffers are allocated page-aligned per rank and pinned, modeling NCCL's
registered buffers — collective traffic must not be "solved" by page
migration.
"""

from __future__ import annotations

from repro.memory.address_space import ArrayHandle, Placement
from repro.workloads.base import WorkloadTrace
from repro.workloads.builder import TraceBuilder

#: Wire-chunk granularity: blocks moved back-to-back before the next lane
#: takes over.  16 blocks = 1 KiB matches the batching controller's default
#: batch size, so a chunk is one "natural" batch.
DEFAULT_CHUNK_BLOCKS = 16

#: Cycles modeling the bulk-synchronous step barrier between collective
#: steps (kernel launch + synchronization on a real system).
STEP_BARRIER_CYCLES = 40

#: Cycles of reduction arithmetic per received chunk block.
REDUCE_CYCLES_PER_BLOCK = 2


class CollectiveBuilder(TraceBuilder):
    """Trace builder with collective-schedule primitives.

    Ranks are 0-based (``rank = gpu - 1``); GPU node ids stay 1-based as
    everywhere else in the simulator.
    """

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def gpu_of(self, rank: int) -> int:
        """GPU node id of a 0-based rank (modulo the ring)."""
        return 1 + rank % self.n_gpus

    def rank_of(self, gpu: int) -> int:
        return gpu - 1

    def alloc_shards(
        self, name: str, blocks_each: int, pinned: bool = True
    ) -> dict[int, ArrayHandle]:
        """One page-aligned, owner-placed message buffer per GPU.

        Pinned by default: collective buffers model NCCL-registered memory,
        whose pages never migrate under the access-counter policy.
        """
        return {
            g: self.alloc(f"{name}_{g}", blocks_each, Placement.OWNER, owner=g, pinned=pinned)
            for g in self.gpus()
        }

    # ------------------------------------------------------------------
    # Step primitives
    # ------------------------------------------------------------------
    def chunk_transfer(
        self,
        gpu: int,
        src: ArrayHandle,
        start_block: int,
        n_blocks: int,
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
        lane0: int = 0,
        write: bool = False,
    ) -> None:
        """Move ``n_blocks`` of ``src`` to ``gpu`` as dense wire chunks.

        The transfer is split into ``chunk_blocks``-sized bursts assigned
        round-robin to lanes starting at ``lane0`` — a multi-channel
        collective moving one logical chunk as overlapped DMA bursts.
        """
        if n_blocks <= 0:
            return
        lane = lane0 % self.n_lanes
        for off in range(0, n_blocks, chunk_blocks):
            self.burst(
                gpu, lane, src, start_block + off,
                min(chunk_blocks, n_blocks - off), gap=0, write=write,
            )
            lane = (lane + 1) % self.n_lanes

    def reduce_chunk(self, gpu: int, dst: ArrayHandle, start_block: int, n_blocks: int,
                     chunk_blocks: int = DEFAULT_CHUNK_BLOCKS, lane0: int = 0) -> None:
        """Local reduction of a just-received chunk: arithmetic + local writes."""
        lane = lane0 % self.n_lanes
        for off in range(0, n_blocks, chunk_blocks):
            size = min(chunk_blocks, n_blocks - off)
            self.compute(gpu, lane, REDUCE_CYCLES_PER_BLOCK * size)
            self.burst(gpu, lane, dst, start_block + off, size, gap=0, write=True)
            lane = (lane + 1) % self.n_lanes

    def step_barrier(self, gpu: int, cycles: int = STEP_BARRIER_CYCLES) -> None:
        """Bulk-synchronous step boundary: every lane pauses ``cycles``."""
        for lane in range(self.n_lanes):
            self.compute(gpu, lane, cycles)

    # ------------------------------------------------------------------
    # Collective schedules
    # ------------------------------------------------------------------
    def reduce_scatter_ring(
        self,
        shards: dict[int, ArrayHandle],
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
    ) -> None:
        """One ring reduce-scatter pass over per-rank buffers.

        The per-GPU message of ``M`` blocks is cut into ``N`` equal chunks.
        At step ``s`` rank ``r`` pulls chunk ``(r - s - 1) mod N`` from its
        left neighbour, reduces it into the same chunk of its own buffer,
        and barriers.  After ``N - 1`` steps each rank holds one fully
        reduced chunk; every rank moved exactly ``(N - 1) / N`` of the
        message, all of it to a single fixed peer.
        """
        n = self.n_gpus
        if n < 2:
            return
        per_chunk = shards[1].n_blocks // n
        for s in range(n - 1):
            for g in self.gpus():
                r = self.rank_of(g)
                left = self.gpu_of(r - 1)
                chunk = (r - s - 1) % n
                self.chunk_transfer(
                    g, shards[left], chunk * per_chunk, per_chunk,
                    chunk_blocks, lane0=s,
                )
                self.reduce_chunk(g, shards[g], chunk * per_chunk, per_chunk,
                                  chunk_blocks, lane0=s)
                self.step_barrier(g)

    def all_gather_ring(
        self,
        shards: dict[int, ArrayHandle],
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
    ) -> None:
        """One ring all-gather pass: circulate reduced chunks leftward.

        At step ``s`` rank ``r`` pulls chunk ``(r - s) mod N`` from its left
        neighbour — the chunk the neighbour finished (or received) one step
        earlier — and stores it locally.  Fixed single-peer traffic, no
        reduction arithmetic.
        """
        n = self.n_gpus
        if n < 2:
            return
        per_chunk = shards[1].n_blocks // n
        for s in range(n - 1):
            for g in self.gpus():
                r = self.rank_of(g)
                left = self.gpu_of(r - 1)
                chunk = (r - s) % n
                self.chunk_transfer(
                    g, shards[left], chunk * per_chunk, per_chunk,
                    chunk_blocks, lane0=s,
                )
                self.chunk_transfer(
                    g, shards[g], chunk * per_chunk, per_chunk,
                    chunk_blocks, lane0=s, write=True,
                )
                self.step_barrier(g)

    def all_gather_direct(
        self,
        shards: dict[int, ArrayHandle],
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
    ) -> None:
        """Rotated direct all-gather: pull each peer's shard in turn.

        Over a p2p fabric an all-gather can skip the ring staging and read
        every contribution straight from its owner; the rank-staggered
        schedule (rank ``r`` pulls from rank ``r - s - 1`` at step ``s``)
        keeps any single source from becoming a hotspot.  For the dynamic
        allocator this is the drifting-destination workload: the hot recv
        peer changes *every step*.
        """
        n = self.n_gpus
        if n < 2:
            return
        for s in range(n - 1):
            for g in self.gpus():
                r = self.rank_of(g)
                src = self.gpu_of(r - s - 1)
                self.chunk_transfer(g, shards[src], 0, shards[src].n_blocks,
                                    chunk_blocks, lane0=s)
                self.step_barrier(g)

    def _tree_edges(self) -> list[tuple[int, int]]:
        """(parent_rank, child_rank) edges of the binary reduction tree."""
        return [
            ((r - 1) // 2, r)
            for r in range(1, self.n_gpus)
        ]

    def tree_reduce(
        self,
        shards: dict[int, ArrayHandle],
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
    ) -> None:
        """Reduce full buffers up a binary tree to rank 0.

        Levels run leaves-first; at each level every parent pulls each
        child's whole message and reduces it locally.  Unlike the ring, the
        tree moves the *full* message per edge and concentrates the final
        level entirely on the root's recv links — the root-heavy phase.
        """
        if self.n_gpus < 2:
            return
        edges = self._tree_edges()
        # Deepest levels first: children must be reduced before their parent pulls.
        for parent, child in sorted(edges, key=lambda e: -e[1]):
            pg, cg = self.gpu_of(parent), self.gpu_of(child)
            self.chunk_transfer(pg, shards[cg], 0, shards[cg].n_blocks,
                                chunk_blocks, lane0=child)
            self.reduce_chunk(pg, shards[pg], 0, shards[pg].n_blocks,
                              chunk_blocks, lane0=child)
            self.step_barrier(pg)

    def tree_broadcast(
        self,
        shards: dict[int, ArrayHandle],
        root_rank: int = 0,
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
    ) -> None:
        """Broadcast rank 0's buffer down the binary tree.

        Each child pulls the full message from its parent, top level first;
        the root's send links carry the opening phase alone.
        """
        if self.n_gpus < 2:
            return
        for parent, child in sorted(self._tree_edges(), key=lambda e: e[1]):
            pg, cg = self.gpu_of((parent + root_rank) % self.n_gpus), \
                self.gpu_of((child + root_rank) % self.n_gpus)
            self.chunk_transfer(cg, shards[pg], 0, shards[pg].n_blocks,
                                chunk_blocks, lane0=child)
            self.chunk_transfer(cg, shards[cg], 0, shards[cg].n_blocks,
                                chunk_blocks, lane0=child, write=True)
            self.step_barrier(cg)

    def broadcast_flat(
        self,
        source: ArrayHandle,
        root: int,
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
    ) -> None:
        """Every non-root GPU pulls the root's full buffer directly.

        Rank-staggered start offsets spread the readers over the buffer so
        the root's send port serializes them rather than one page being
        thrashed; the root's send direction still carries (N-1)× the
        message — the pure single-hot-source phase.
        """
        n_blocks = source.n_blocks
        for g in self.gpus():
            if g == root:
                continue
            offset = ((self.rank_of(g) * n_blocks) // max(1, self.n_gpus))
            offset -= offset % chunk_blocks
            for off in range(0, n_blocks, chunk_blocks):
                start = (offset + off) % n_blocks
                size = min(chunk_blocks, n_blocks - start)
                self.chunk_transfer(g, source, start, size, chunk_blocks,
                                    lane0=off // chunk_blocks)
            self.step_barrier(g)

    # ------------------------------------------------------------------
    # 2D grid (halo exchange)
    # ------------------------------------------------------------------
    def grid_shape(self) -> tuple[int, int]:
        """Most-square (rows, cols) factorization of the GPU count."""
        best = (1, self.n_gpus)
        for rows in range(1, self.n_gpus + 1):
            if self.n_gpus % rows == 0:
                cols = self.n_gpus // rows
                if abs(rows - cols) <= abs(best[0] - best[1]):
                    best = (rows, cols)
        return best

    def grid_neighbors(self, gpu: int) -> dict[str, int]:
        """Non-periodic N/S/E/W neighbours of ``gpu`` in the 2D grid."""
        rows, cols = self.grid_shape()
        r, c = divmod(self.rank_of(gpu), cols)
        out: dict[str, int] = {}
        if r > 0:
            out["north"] = self.gpu_of((r - 1) * cols + c)
        if r < rows - 1:
            out["south"] = self.gpu_of((r + 1) * cols + c)
        if c > 0:
            out["west"] = self.gpu_of(r * cols + (c - 1))
        if c < cols - 1:
            out["east"] = self.gpu_of(r * cols + (c + 1))
        return out

    def halo_exchange_2d(
        self,
        tiles: dict[int, ArrayHandle],
        halo_blocks: int,
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
        lane0: int = 0,
    ) -> None:
        """One halo-exchange step: pull boundary strips from grid neighbours.

        North/south halos are contiguous rows (dense bursts); east/west
        halos are column strips, modeled as strided single-block reads —
        the metadata-unfriendly direction that batching cannot coalesce.
        """
        for g in self.gpus():
            for direction, peer in sorted(self.grid_neighbors(g).items()):
                tile = tiles[peer]
                if direction == "north":
                    self.chunk_transfer(g, tile, max(0, tile.n_blocks - halo_blocks),
                                        halo_blocks, chunk_blocks, lane0=lane0)
                elif direction == "south":
                    self.chunk_transfer(g, tile, 0, halo_blocks, chunk_blocks,
                                        lane0=lane0)
                else:
                    # Column strip: one block per "row" of the tile.
                    stride = max(1, tile.n_blocks // max(1, halo_blocks))
                    lane = lane0 % self.n_lanes
                    start = 0 if direction == "west" else stride - 1
                    self.burst(g, lane, tile, start, halo_blocks, gap=1,
                               stride=stride)
            self.step_barrier(g)


# ---------------------------------------------------------------------------
# Composite: one data-parallel training step
# ---------------------------------------------------------------------------
def training_step(
    n_gpus: int,
    seed: int = 0,
    scale: float = 1.0,
    n_lanes: int = 8,
    steps: int | None = None,
    grad_blocks: int | None = None,
) -> WorkloadTrace:
    """Data-parallel training steps: forward compute + gradient all-reduce.

    Each step streams a batch of activations in from the host, runs the
    layer compute against locally blocked weights, then synchronizes
    gradients with the bandwidth-optimal reduce-scatter / all-gather pair —
    the composite every DDP framework executes per iteration, and the
    traffic shape the GPU-TEE characterization of Lee et al.
    (arXiv:2501.11771) identifies as the dominant secure-channel load.
    """
    b = CollectiveBuilder("training_step", n_gpus, seed, n_lanes)
    if steps is None:
        steps = max(2, int(4 * scale))
    if grad_blocks is None:
        grad_blocks = max(4 * n_gpus, int(768 * scale))
    grad_blocks -= grad_blocks % max(1, n_gpus)

    batch = b.alloc("batch", n_gpus * n_lanes * 24, Placement.OWNER, owner=0, pinned=True)
    weights = b.alloc("weights", n_gpus * 8 * 64, Placement.BLOCKED)
    grads = b.alloc_shards("grads", grad_blocks)

    for step in range(steps):
        for g in b.gpus():
            w_first, w_blocks = b.blocked_range(weights, g)
            for lane in range(n_lanes):
                # Forward: ingest the batch slice, compute against weights.
                start = ((b.rank_of(g) * n_lanes + lane) * 24 + step) % batch.n_blocks
                b.burst(g, lane, batch, start, 12, gap=0)
                b.burst(g, lane, weights,
                        w_first + (lane * 8) % max(1, w_blocks - 8), 8, gap=4)
                b.compute(g, lane, 160)  # backward pass, gradient math
        # Gradient synchronization: ring all-reduce = RS + AG.
        b.reduce_scatter_ring(grads)
        b.all_gather_ring(grads)
    return b.build()


__all__ = [
    "CollectiveBuilder",
    "DEFAULT_CHUNK_BLOCKS",
    "REDUCE_CYCLES_PER_BLOCK",
    "STEP_BARRIER_CYCLES",
    "training_step",
]
