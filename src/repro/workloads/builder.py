"""Trace builder: turns communication patterns into workload traces.

The paper's workloads differ along exactly the axes the proposed mechanisms
react to — remote-request rate (RPKI class), destination locality and its
drift over time (Figs 13/14), burstiness (Figs 15/16), and the page-
migration vs direct-access mix.  The builder provides pattern primitives
(tile bursts, halo exchanges, gathers, broadcasts, streams) from which each
benchmark's generator composes its phases; addresses come from real
allocations in the unified address space so page ownership and cache
behaviour emerge from the same structure.

Every (gpu, lane) pair accumulates an ordered access list; ``gap`` cycles
of compute separate consecutive accesses of a lane.  Instruction counts —
needed for RPKI — are estimated as one wavefront instruction per gap cycle
plus one per memory access.
"""

from __future__ import annotations

import numpy as np

from repro.memory.address_space import AddressSpace, ArrayHandle, BLOCK_BYTES, Placement, page_of
from repro.workloads.base import Access, AccessKind, GpuTrace, WorkloadTrace


class TraceBuilder:
    """Accumulates accesses for all GPUs of one workload."""

    def __init__(self, name: str, n_gpus: int, seed: int = 0, n_lanes: int = 8) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        if n_lanes < 1:
            raise ValueError("need at least one lane per GPU")
        self.name = name
        self.n_gpus = n_gpus
        self.n_lanes = n_lanes
        self.rng = np.random.default_rng(seed)
        self.space = AddressSpace(gpu_nodes=list(range(1, n_gpus + 1)))
        self._lanes: dict[int, list[list[Access]]] = {
            g: [[] for _ in range(n_lanes)] for g in range(1, n_gpus + 1)
        }
        self._pending_gap: dict[tuple[int, int], int] = {}
        self._pinned_pages: set[int] = set()

    # ------------------------------------------------------------------
    # Allocation helpers
    # ------------------------------------------------------------------
    def alloc(
        self,
        name: str,
        n_blocks: int,
        placement: Placement = Placement.INTERLEAVED,
        owner: int | None = None,
        pinned: bool = False,
    ) -> ArrayHandle:
        """Allocate ``n_blocks`` 64 B blocks; optionally pin its pages."""
        handle = self.space.alloc(name, n_blocks * BLOCK_BYTES, placement, owner)
        if pinned:
            first = page_of(handle.base)
            self._pinned_pages.update(range(first, first + handle.n_pages))
        return handle

    def gpus(self) -> range:
        return range(1, self.n_gpus + 1)

    def peer_gpu(self, gpu: int, offset: int) -> int:
        """The GPU ``offset`` positions around the ring from ``gpu``."""
        return 1 + (gpu - 1 + offset) % self.n_gpus

    def blocked_range(self, array: ArrayHandle, gpu: int) -> tuple[int, int]:
        """(first_block, n_blocks) of ``array`` owned by ``gpu``.

        Mirrors :class:`AddressSpace`'s BLOCKED placement so generators can
        direct reads at a specific owner's partition.
        """
        from repro.memory.address_space import BLOCKS_PER_PAGE

        n_pages = array.n_pages
        per_gpu = max(1, (n_pages + self.n_gpus - 1) // self.n_gpus)
        first_page = per_gpu * (gpu - 1)
        if first_page >= n_pages:
            return 0, 0
        last_page = min(first_page + per_gpu, n_pages)
        if gpu == self.n_gpus:
            last_page = n_pages  # the last GPU absorbs the remainder
        first_block = first_page * BLOCKS_PER_PAGE
        n_blocks = min((last_page - first_page) * BLOCKS_PER_PAGE, array.n_blocks - first_block)
        return first_block, max(0, n_blocks)

    # ------------------------------------------------------------------
    # Primitive emission
    # ------------------------------------------------------------------
    def compute(self, gpu: int, lane: int, cycles: int) -> None:
        """Insert ``cycles`` of computation before the lane's next access."""
        if cycles < 0:
            raise ValueError("compute cycles must be non-negative")
        key = (gpu, lane)
        self._pending_gap[key] = self._pending_gap.get(key, 0) + cycles

    def access(self, gpu: int, lane: int, address: int, gap: int = 0, write: bool = False) -> None:
        """Emit one access on (gpu, lane) after ``gap`` compute cycles."""
        key = (gpu, lane)
        total_gap = self._pending_gap.pop(key, 0) + gap
        self._lanes[gpu][lane].append(
            Access(
                gap=total_gap,
                address=address,
                kind=AccessKind.WRITE if write else AccessKind.READ,
            )
        )

    def burst(
        self,
        gpu: int,
        lane: int,
        array: ArrayHandle,
        start_block: int,
        n_blocks: int,
        gap: int = 0,
        stride: int = 1,
        write: bool = False,
    ) -> None:
        """Read/write ``n_blocks`` consecutive (or strided) blocks rapidly.

        This is the builder's burst primitive: back-to-back block accesses
        with tiny gaps are what produce the paper's §III-B burstiness.
        """
        block = start_block
        for _ in range(n_blocks):
            self.access(gpu, lane, array.block_addr(block % array.n_blocks), gap, write)
            block += stride

    def gather(
        self,
        gpu: int,
        lane: int,
        array: ArrayHandle,
        indices: np.ndarray,
        gap: int = 0,
        write: bool = False,
    ) -> None:
        """Indexed (irregular) block accesses — sparse/graph patterns."""
        for idx in indices:
            self.access(gpu, lane, array.block_addr(int(idx) % array.n_blocks), gap, write)

    def stream(
        self,
        gpu: int,
        array: ArrayHandle,
        blocks_per_lane: int,
        gap: int = 0,
        write: bool = False,
        offset: int = 0,
    ) -> None:
        """Partition a contiguous streaming sweep across all lanes."""
        for lane in range(self.n_lanes):
            start = offset + lane * blocks_per_lane
            self.burst(gpu, lane, array, start, blocks_per_lane, gap=gap, write=write)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _instructions(self, lanes: list[list[Access]]) -> int:
        gaps = sum(a.gap for lane in lanes for a in lane)
        accesses = sum(len(lane) for lane in lanes)
        return gaps + accesses

    def build(self, lane_jitter: int = 257) -> WorkloadTrace:
        """Finalize the trace.

        ``lane_jitter`` prepends a random start offset in ``[0, jitter)``
        to every lane, modeling wavefront-scheduler skew.  Without it all
        lanes march in lockstep and their bursts collide artificially,
        which distorts the baseline the secure schemes are measured
        against.
        """
        gpu_traces = {}
        for gpu, lanes in self._lanes.items():
            if not any(lanes):
                continue
            staggered = []
            for lane in lanes:
                if lane and lane_jitter > 0:
                    offset = int(self.rng.integers(0, lane_jitter))
                    first = lane[0]
                    lane = [Access(first.gap + offset, first.address, first.kind)] + lane[1:]
                staggered.append(lane)
            gpu_traces[gpu] = GpuTrace(
                lanes=staggered,
                instructions=self._instructions(staggered),
            )
        trace = WorkloadTrace(
            name=self.name,
            gpu_traces=gpu_traces,
            pinned_pages=set(self._pinned_pages),
            initial_owners=self.space.initial_owners(),
        )
        trace.validate()
        return trace


__all__ = ["TraceBuilder"]
