"""Workload registry: the 17 benchmarks of Table IV plus the collectives.

Each entry binds a workload (name, abbreviation, suite, RPKI class) to its
trace generator.  Experiments iterate ``all_workloads()`` — the Table IV
set, in the paper's presentation order — or ``all_collectives()`` — the
NCCL-style collective-communication suite (``rpki_class == "collective"``,
see ``docs/WORKLOADS.md``); anything that needs one workload looks it up
by name or abbreviation via ``get_workload``, which spans both sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads.base import WorkloadTrace
from repro.workloads.suites import amdappsdk, dnnmark, heteromark, nccl, polybench, shoc

Builder = Callable[..., WorkloadTrace]


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table IV row."""

    name: str
    abbr: str
    suite: str
    rpki_class: str  # the paper's declared class: high / medium / low
    builder: Builder

    def generate(
        self, n_gpus: int = 4, seed: int = 0, scale: float = 1.0, n_lanes: int = 8
    ) -> WorkloadTrace:
        """Build this workload's trace for an ``n_gpus`` system."""
        return self.builder(n_gpus=n_gpus, seed=seed, scale=scale, n_lanes=n_lanes)


_SPECS = [
    # High RPKI
    WorkloadSpec("matrixtranspose", "mt", "AMD APP SDK", "high", amdappsdk.matrixtranspose),
    WorkloadSpec("relu", "relu", "DNNMark", "high", dnnmark.relu),
    WorkloadSpec("pagerank", "pr", "Hetero-Mark", "high", heteromark.pagerank),
    WorkloadSpec("syr2k", "syr2k", "Polybench", "high", polybench.syr2k),
    WorkloadSpec("spmv", "spmv", "SHOC", "high", shoc.spmv),
    # Medium RPKI
    WorkloadSpec("simpleconvolution", "sc", "AMD APP SDK", "medium", amdappsdk.simpleconvolution),
    WorkloadSpec("matrixmultiplication", "mm", "AMD APP SDK", "medium", amdappsdk.matrixmultiplication),
    WorkloadSpec("atax", "atax", "Polybench", "medium", polybench.atax),
    WorkloadSpec("bicg", "bicg", "Polybench", "medium", polybench.bicg),
    WorkloadSpec("gesummv", "ges", "Polybench", "medium", polybench.gesummv),
    WorkloadSpec("mvt", "mvt", "Polybench", "medium", polybench.mvt),
    WorkloadSpec("stencil2d", "st", "SHOC", "medium", shoc.stencil2d),
    WorkloadSpec("fft", "fft", "SHOC", "medium", shoc.fft),
    WorkloadSpec("kmeans", "km", "Hetero-Mark", "medium", heteromark.kmeans),
    # Low RPKI
    WorkloadSpec("floydwarshall", "floyd", "AMD APP SDK", "low", amdappsdk.floydwarshall),
    WorkloadSpec("aes", "aes", "Hetero-Mark", "low", heteromark.aes_cipher),
    WorkloadSpec("fir", "fir", "Hetero-Mark", "low", heteromark.fir),
]

#: The collective-communication suite (not part of Table IV): NCCL-style
#: traffic patterns whose per-peer, per-direction phase structure the
#: kernel workloads above never produce.  See ``docs/WORKLOADS.md``.
_COLLECTIVE_SPECS = [
    WorkloadSpec("allreduce_ring", "arr", "NCCL", "collective", nccl.allreduce_ring),
    WorkloadSpec("allreduce_tree", "art", "NCCL", "collective", nccl.allreduce_tree),
    WorkloadSpec("allgather", "ag", "NCCL", "collective", nccl.allgather),
    WorkloadSpec("reducescatter", "rs", "NCCL", "collective", nccl.reducescatter),
    WorkloadSpec("broadcast", "bc", "NCCL", "collective", nccl.broadcast),
    WorkloadSpec("halo2d", "halo", "NCCL", "collective", nccl.halo2d),
]

_BY_NAME = {spec.name: spec for spec in _SPECS + _COLLECTIVE_SPECS}
_BY_ABBR = {spec.abbr: spec for spec in _SPECS + _COLLECTIVE_SPECS}


def all_workloads() -> list[WorkloadSpec]:
    """Every Table IV workload, in the paper's order."""
    return list(_SPECS)


def all_collectives() -> list[WorkloadSpec]:
    """The collective-communication suite, ring-to-grid order."""
    return list(_COLLECTIVE_SPECS)


def workloads_in_class(rpki_class: str) -> list[WorkloadSpec]:
    matching = [
        spec
        for spec in _SPECS + _COLLECTIVE_SPECS
        if spec.rpki_class == rpki_class
    ]
    if not matching:
        raise ValueError(f"no workloads in RPKI class {rpki_class!r}")
    return matching


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by full name or Table IV abbreviation."""
    spec = _BY_NAME.get(name) or _BY_ABBR.get(name)
    if spec is None:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}")
    return spec


__all__ = [
    "WorkloadSpec",
    "all_workloads",
    "all_collectives",
    "workloads_in_class",
    "get_workload",
]
