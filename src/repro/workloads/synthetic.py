"""Parameterized synthetic workload: dial the communication axes directly.

The Table IV generators mirror specific benchmarks; this one exposes the
underlying axes — remote-access fraction, burst length, compute gap,
destination skew, and phase drift — as direct knobs, for sensitivity
studies and for users modeling their own applications:

* ``remote_fraction``  — share of accesses that target other processors;
* ``burst_length``     — consecutive remote blocks per burst (Figs 15/16);
* ``gap``              — compute cycles between accesses (sets RPKI);
* ``skew``             — Zipf-like concentration of remote destinations
  (0 = uniform across peers, larger = one dominant peer);
* ``phase_length``     — bursts before the preferred destination rotates
  (drives the Figs 13/14 drift the Dynamic allocator feeds on);
* ``cpu_share``        — fraction of remote traffic aimed at the host.
"""

from __future__ import annotations

import numpy as np

from repro.memory.address_space import Placement
from repro.workloads.base import WorkloadTrace
from repro.workloads.builder import TraceBuilder
from repro.workloads.registry import WorkloadSpec


def _destination_weights(peers: list[int], preferred_idx: int, skew: float) -> np.ndarray:
    """Weights over peers: uniform at skew 0, concentrated as skew grows."""
    weights = np.ones(len(peers), dtype=float)
    weights[preferred_idx] += skew * len(peers)
    return weights / weights.sum()


def synthetic_workload(
    n_gpus: int,
    seed: int = 0,
    scale: float = 1.0,
    n_lanes: int = 8,
    remote_fraction: float = 0.5,
    burst_length: int = 16,
    gap: int = 2,
    skew: float = 1.0,
    phase_length: int = 12,
    cpu_share: float = 0.1,
    bursts_per_lane: int = 40,
) -> WorkloadTrace:
    """Build a trace with the requested communication profile."""
    if not 0.0 <= remote_fraction <= 1.0:
        raise ValueError("remote_fraction must be a fraction")
    if not 0.0 <= cpu_share <= 1.0:
        raise ValueError("cpu_share must be a fraction")
    if burst_length < 1 or phase_length < 1 or bursts_per_lane < 1:
        raise ValueError("burst/phase/bursts counts must be positive")
    if gap < 0 or skew < 0:
        raise ValueError("gap and skew must be non-negative")

    b = TraceBuilder("synthetic", n_gpus, seed, n_lanes)
    total_bursts = max(1, int(bursts_per_lane * scale))
    local = b.alloc("local", n_gpus * 16 * 64, Placement.BLOCKED)
    shared = b.alloc("shared", max(n_gpus, 2) * 8 * 64, Placement.BLOCKED, pinned=True)
    host = b.alloc("host", 8 * 64, Placement.OWNER, owner=0, pinned=True)

    for g in b.gpus():
        my_first, my_blocks = b.blocked_range(local, g)
        peers = [p for p in b.gpus() if p != g]
        for lane in range(n_lanes):
            rng = np.random.default_rng(seed * 100_003 + g * 1009 + lane)
            preferred = int(rng.integers(0, max(1, len(peers))))
            for burst_idx in range(total_bursts):
                if peers and burst_idx % phase_length == phase_length - 1:
                    preferred = (preferred + 1) % len(peers)  # phase drift
                if rng.random() < remote_fraction:
                    if rng.random() < cpu_share or not peers:
                        array, first, blocks = host, 0, host.n_blocks
                    else:
                        weights = _destination_weights(peers, preferred, skew)
                        dest = peers[int(rng.choice(len(peers), p=weights))]
                        first, blocks = b.blocked_range(shared, dest)
                        array = shared
                        if blocks == 0:
                            first, blocks = 0, shared.n_blocks
                    start = int(rng.integers(0, max(1, blocks - burst_length)))
                    b.burst(g, lane, array, first + start, burst_length, gap=gap)
                else:
                    start = int(rng.integers(0, max(1, my_blocks - burst_length)))
                    b.burst(g, lane, local, my_first + start, burst_length, gap=gap)
                b.compute(g, lane, gap * burst_length)
    return b.build()


def synthetic_spec(name: str = "synthetic", rpki_class: str = "medium", **knobs) -> WorkloadSpec:
    """Wrap the synthetic generator as a registry-compatible spec."""

    def builder(n_gpus: int, seed: int = 0, scale: float = 1.0, n_lanes: int = 8):
        return synthetic_workload(
            n_gpus=n_gpus, seed=seed, scale=scale, n_lanes=n_lanes, **knobs
        )

    return WorkloadSpec(
        name=name, abbr=name, suite="synthetic", rpki_class=rpki_class, builder=builder
    )


__all__ = ["synthetic_workload", "synthetic_spec"]
