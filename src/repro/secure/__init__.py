"""Secure inter-processor communication layer.

Combines the timing model of OTP pre-generation (pad streams fed by
pipelined AES-GCM engines), the metadata/ACK wire protocol, the four OTP
buffer-management schemes, and the :class:`SecureTransport` that routes
device messages over the interconnect with all security costs applied.
"""

from repro.secure.otp_buffer import PadOutcome, PadGrant, PadStream
from repro.secure.adversary import AdversaryInjector, AttackKind, AttackReport
from repro.secure.engine import AesGcmEngineModel
from repro.secure.invariants import InvariantMonitor, InvariantViolationError
from repro.secure.metadata import MetadataAccountant
from repro.secure.replay import ReplayGuard
from repro.secure.channel import SecureTransport, UnsecureTransport, build_transport
from repro.secure.schemes import build_scheme

__all__ = [
    "PadOutcome",
    "PadGrant",
    "PadStream",
    "AdversaryInjector",
    "AttackKind",
    "AttackReport",
    "AesGcmEngineModel",
    "InvariantMonitor",
    "InvariantViolationError",
    "MetadataAccountant",
    "ReplayGuard",
    "SecureTransport",
    "UnsecureTransport",
    "build_transport",
    "build_scheme",
]
