"""Transports: the unsecured fabric and the secure channel layer.

``UnsecureTransport`` moves packets straight over the topology — the
baseline every figure normalizes against.  ``SecureTransport`` applies the
full protection pipeline of Fig. 5 around the same topology:

sender:   acquire send pads (scheme) → XOR encrypt + GHASH MAC → attach
          metadata bytes (conventional or batched) → serialize on the link
receiver: acquire receive pads (scheme, honouring counter sync) → XOR
          decrypt (+ blocking MAC verify unless lazily batched) → deliver
          → emit replay-protection ACK (per message, or per batch)

When the configuration enables link-fault injection
(:class:`~repro.configs.FaultConfig`), the secure transport additionally
runs a detection-driven recovery protocol (see ``docs/ROBUSTNESS.md``):
corrupted blocks fail their MsgMAC and trigger a NACK, dropped blocks fire
a sender-side retransmission timer with exponential backoff, wire
duplicates are rejected by the receiver's counter check, and a retry
budget bounds how long any block keeps the link busy — exhausting it
raises a structured :class:`~repro.interconnect.faults.LinkFailureError`.
Every retransmitted block burns a fresh counter/pad, so recovery cost
feeds straight back into the OTP allocator the paper studies.

Both transports also collect the paper's motivation measurements: per-node
send/receive timelines (Figs 13/14) and per-pair data-block burstiness
histograms (Figs 15/16).
"""

from __future__ import annotations

from repro.configs import SystemConfig
from repro.core.batching import BatchingController, MsgMacStorage
from repro.interconnect.faults import FaultInjector, FaultVerdict, LinkFailureError
from repro.interconnect.packet import Packet, PacketKind
from repro.interconnect.topology import Topology
from repro.obs import Telemetry
from repro.secure.adversary import (
    ALIEN_KINDS,
    TAMPER_KINDS,
    AdversaryInjector,
    AttackKind,
    AttackReport,
)
from repro.secure.engine import AesGcmEngineModel
from repro.secure.invariants import InvariantMonitor
from repro.secure.metadata import MetadataAccountant
from repro.secure.replay import ReplayGuard
from repro.secure.schemes import build_scheme
from repro.sim.engine import Simulator
from repro.sim.stats import FaultStats, Histogram, IntervalSeries
from repro.transport import DeliveryHandler

#: Histogram bin edges of Figs 15/16.
BURST_EDGES = [40, 160, 640, 2560]

#: Kinds excluded from the request timelines (protocol housekeeping).
_HOUSEKEEPING = frozenset({PacketKind.SEC_ACK, PacketKind.SEC_NACK, PacketKind.BATCH_MAC})


class _PendingMessage:
    """Sender-side retransmission state for one in-flight data block."""

    __slots__ = (
        "packet",
        "counter",
        "counters",
        "batch_ctx",
        "attempts",
        "rto",
        "timer",
        "first_sent",
    )

    def __init__(self, packet: Packet, counter: int, batch_ctx, rto: int, now: int) -> None:
        self.packet = packet
        self.counter = counter  # the counter of the *current* wire copy
        self.counters = [counter]  # every counter any copy ever used
        self.batch_ctx = batch_ctx
        self.attempts = 1  # transmissions so far (first copy included)
        self.rto = rto
        self.timer = None
        self.first_sent = now


class _TransportBase:
    """Delivery registry plus the measurement instrumentation."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        cfg: SystemConfig,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.cfg = cfg
        #: run-scoped metric sink; the owning system passes its own so the
        #: transport's ``fault.*`` counters land in the run's namespace
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._handlers: dict[int, DeliveryHandler] = {}
        self.timelines: dict[int, IntervalSeries] = {
            node: IntervalSeries(f"node{node}", cfg.timeline_interval)
            for node in topology.nodes()
        }
        self.burst16 = Histogram("burst16", BURST_EDGES)
        self.burst32 = Histogram("burst32", BURST_EDGES)
        self._burst_state: dict[tuple[int, int], list[int]] = {}
        self.messages_sent = 0
        self.data_blocks = 0
        # Fault injection and the active adversary are strictly opt-in:
        # with every rate at zero the injector is absent and the
        # clean-channel paths run unchanged (bit-identical reports).
        self.fault_injector = FaultInjector(cfg.fault) if cfg.fault.enabled else None
        self.fault_stats = FaultStats() if self.fault_injector is not None else None
        self.adversary = (
            AdversaryInjector(cfg.adversary, topology.nodes())
            if cfg.adversary.enabled
            else None
        )
        self.attack_report = AttackReport() if self.adversary is not None else None
        #: recovery machinery (pending table, RTO timers, dedup sets) arms
        #: whenever *either* hostile layer is active
        self._recovery = self.fault_injector is not None or self.adversary is not None

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, node: int, handler: DeliveryHandler) -> None:
        if node in self._handlers:
            raise ValueError(f"node {node} already registered")
        self._handlers[node] = handler

    def _deliver(self, packet: Packet, time: int) -> None:
        handler = self._handlers.get(packet.dst)
        if handler is None:
            raise KeyError(f"no delivery handler for node {packet.dst}")
        handler(packet, time)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _note_fault(self, packet: Packet, event: str) -> None:
        """Observation hook for fault/recovery events (wrapped by tracers).

        Only ever invoked under active fault injection, so a rate-0 run
        creates no ``fault.*`` metrics at all — absence of the namespace is
        the telemetry-level statement that the link stayed clean.
        """
        self.telemetry.counter(f"fault.{event.replace('-', '_')}").add()

    def _note_adv(self, event: str) -> None:
        """Observation hook for adversary/defense events.

        Only ever invoked under an active adversary, so attack-free runs
        create no ``adv.*`` metrics — mirroring the ``fault.*`` contract.
        """
        self.telemetry.counter(f"adv.{event.replace('-', '_')}").add()

    def _note_send(self, packet: Packet, now: int) -> None:
        self.messages_sent += 1
        if packet.kind in _HOUSEKEEPING:
            return
        timeline = self.timelines[packet.src]
        timeline.record(now, "send")
        timeline.record(now, f"to{packet.dst}")

    def _note_arrival(self, packet: Packet, now: int) -> None:
        if packet.kind in _HOUSEKEEPING:
            return
        self.timelines[packet.dst].record(now, "recv")
        if packet.kind.carries_data:
            self.data_blocks += 1
            self._track_burst(packet.src, packet.dst, now)

    def _track_burst(self, src: int, dst: int, now: int) -> None:
        # state: [count16, start16, count32, start32]
        state = self._burst_state.setdefault((src, dst), [0, 0, 0, 0])
        if state[0] == 0:
            state[1] = now
        state[0] += 1
        if state[0] == 16:
            self.burst16.record(now - state[1])
            state[0] = 0
        if state[2] == 0:
            state[3] = now
        state[2] += 1
        if state[2] == 32:
            self.burst32.record(now - state[3])
            state[2] = 0


class UnsecureTransport(_TransportBase):
    """The vanilla multi-GPU fabric: no pads, no metadata, no ACKs.

    Under fault injection the unsecure fabric has *no detection*: dropped
    payloads and flipped bits reach the consuming device as silently wrong
    data at zero timing cost.  The :class:`FaultStats` ledger records the
    damage (``lost_messages`` / ``corrupted_deliveries``) that the secure
    schemes' recovery machinery exists to prevent — the asymmetry
    ``experiments.fig_fault_sweep`` plots.
    """

    def send(self, packet: Packet, now: int) -> None:
        self._note_send(packet, now)
        if self._recovery and packet.kind.carries_data:
            self._send_guarded(packet, now)
            return
        arrival = self.topology.send(packet, now)
        self.sim.post_at(
            arrival, lambda p=packet: (self._note_arrival(p, self.sim.now), self._deliver(p, self.sim.now))
        )

    def _send_guarded(self, packet: Packet, now: int) -> None:
        verdict = (
            self.fault_injector.decide(packet.src, packet.dst)
            if self.fault_injector is not None
            else FaultVerdict.OK
        )
        stats = self.fault_stats
        arrival = self.topology.send(packet, now)
        if verdict is FaultVerdict.DROP:
            # The payload is gone but nothing downstream can tell: the
            # device consumes stale/garbage data on schedule.
            stats.drops_injected += 1
            stats.lost_messages += 1
            self._note_fault(packet, "drop")
        elif verdict is FaultVerdict.CORRUPT:
            stats.corruptions_injected += 1
            stats.corrupted_deliveries += 1
            self._note_fault(packet, "corrupt")
        elif verdict is FaultVerdict.DUPLICATE:
            stats.duplicates_injected += 1
            self._note_fault(packet, "duplicate")
            # The replayed copy burns link bandwidth; the device-side
            # interface absorbs the duplicate (no protocol notices).
            self.topology.send(packet, arrival)
        elif verdict is FaultVerdict.DELAY:
            stats.delays_injected += 1
            self._note_fault(packet, "delay")
            arrival += self.cfg.fault.delay_cycles
        if self.adversary is not None:
            attack = self.adversary.decide(packet.src, packet.dst)
            if attack is not None and verdict not in (FaultVerdict.DROP, FaultVerdict.CORRUPT):
                arrival = self._unsecure_attack(packet, attack, arrival)
        self.sim.post_at(
            arrival, lambda p=packet: (self._note_arrival(p, self.sim.now), self._deliver(p, self.sim.now))
        )

    def _unsecure_attack(self, packet: Packet, attack: AttackKind, arrival: int) -> int:
        """Apply one attack to an unprotected wire copy.

        The unsecure fabric has *no detection*: every attacker-controlled
        byte that a device consumes lands in ``accepted`` — the silent-
        compromise count the secure schemes drive to zero.  Delivery
        follows the fault model's deliver-but-count philosophy: the
        packet object still reaches its handler on schedule (the device
        consumes garbage without noticing), while the ledger records what
        actually happened on the wire.
        """
        report = self.attack_report
        report.note_injected(attack)
        self._note_adv(f"{attack.value}_injected")
        adv = self.cfg.adversary
        if attack is AttackKind.REORDER:
            # Late but intact: nothing attacker-controlled is consumed.
            report.note_harmless(attack)
            self._note_adv("reorder_absorbed")
            return arrival + adv.reorder_lag
        report.note_accepted(attack)
        self._note_adv("accepted")
        if attack is AttackKind.REPLAY:
            # The re-injected copy burns bandwidth and re-applies stale
            # data at the receiver's interface.
            self.topology.send(packet, arrival + adv.replay_lag)
        elif attack is AttackKind.SPLICE:
            # Redirected onto a third node's link: garbage consumed there.
            target = self.adversary.splice_target(packet.src, packet.dst)
            spliced = Packet(
                kind=packet.kind,
                src=packet.src,
                dst=target,
                size_bytes=packet.size_bytes,
                meta_bytes=packet.meta_bytes,
            )
            self.topology.send(spliced, arrival)
        elif attack is AttackKind.FORGE:
            forged = Packet(
                kind=packet.kind,
                src=packet.src,
                dst=packet.dst,
                size_bytes=packet.size_bytes,
                meta_bytes=packet.meta_bytes,
            )
            self.topology.send(forged, arrival)
        return arrival


class SecureTransport(_TransportBase):
    """Authenticated-encrypted fabric with OTP buffers and metadata."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        cfg: SystemConfig,
        telemetry: Telemetry | None = None,
    ) -> None:
        super().__init__(sim, topology, cfg, telemetry)
        sec = cfg.security
        if sec.scheme == "unsecure":
            raise ValueError("SecureTransport requires a managed scheme")
        self.accountant = MetadataAccountant(sec.metadata, sec.count_metadata)
        self.engines: dict[int, AesGcmEngineModel] = {}
        self.schemes = {}
        self.guards: dict[int, ReplayGuard] = {}
        self.batchers: dict[int, BatchingController] = {}
        self.mac_storage: dict[int, MsgMacStorage] = {}
        # Under an active adversary the replay guards tolerate in-window
        # ACK reordering (held-back blocks deliver late but legitimately);
        # dormant configs keep the strict-FIFO default.
        guard_window = cfg.adversary.replay_window if self.adversary is not None else 0
        for node in topology.nodes():
            engine = AesGcmEngineModel(sec.aes_gcm_latency, sec.ghash_latency, sec.xor_latency)
            self.engines[node] = engine
            self.schemes[node] = build_scheme(
                sec.scheme, node, topology.peers_of(node), sec, engine
            )
            self.guards[node] = ReplayGuard(node, window=guard_window)
            if sec.batching:
                self.batchers[node] = BatchingController(
                    sec.metadata, sec.batch_size, sec.batch_timeout
                )
                self.mac_storage[node] = MsgMacStorage(capacity_per_pair=64)
        self._ctrs: dict[tuple[int, int], int] = {}
        # Crypto units are FIFO per directed pair: a pad stall blocks the
        # messages queued behind it (head-of-line), while the XOR/GHASH
        # fast paths are fully pipelined and add latency only.
        self._send_crypto_busy: dict[tuple[int, int], int] = {}
        self._recv_crypto_busy: dict[tuple[int, int], int] = {}
        # receiver-side batch completion tracking:
        # (src, dst, batch_id) -> [blocks_arrived, expected_or_None]
        self._batch_arrivals: dict[tuple[int, int, int], list] = {}
        self.acks_sent = 0
        self.batch_macs_sent = 0
        #: secured messages that took the conventional per-message metadata
        #: path (MsgCTR+MsgMAC+senderID each) vs. the batched-block path —
        #: the split the metadata byte law in ``repro.verify`` is written in
        self.conventional_msgs = 0
        self.batched_blocks = 0
        #: when SecurityConfig.audit is set, every secured message is
        #: recorded for functional replay (repro.secure.audit)
        self.audit_log: list = [] if sec.audit else None
        # Recovery-protocol state, populated only under fault injection:
        # in-flight blocks awaiting their ACK (insertion-ordered per pair),
        # an alias from any live wire counter to the logical block it
        # carries, the receiver's already-seen counter sets (wire-replay
        # rejection), and the set of block pids already handed to a device
        # (late original vs. retransmit races deliver exactly once).
        self._pending: dict[tuple[int, int], dict[int, _PendingMessage]] = {}
        self._counter_owner: dict[tuple[int, int, int], int] = {}
        self._recv_seen: dict[tuple[int, int], set[int]] = {}
        self._delivered_pids: dict[tuple[int, int], set[int]] = {}
        # Adversary-side state: the runtime invariant sanitizer, per-pair
        # detection counts feeding quarantine, and the fabricated-counter
        # sequence forged blocks arrive under (negative: disjoint from any
        # counter a sender can ever issue).
        self.monitor = InvariantMonitor() if self.adversary is not None else None
        self._adv_detections: dict[tuple[int, int], int] = {}
        self._forge_seq = 0

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, packet: Packet, now: int) -> None:
        if packet.kind in _HOUSEKEEPING:
            raise ValueError("ACK/batch-MAC packets are generated by the transport itself")
        self._note_send(packet, now)

        if not packet.kind.carries_data and not self.cfg.security.protect_requests:
            # Control messages (read requests, write acks, migration
            # requests) carry addresses, not data; the paper's protocol
            # authenticated-encrypts *data* transfers (Figs 5/19) and
            # leaves request-content hiding to oblivious routing [34].
            # ``protect_requests`` enables that extension: control messages
            # then take the full secured path below.
            arrival = self.topology.send(packet, now)
            self.sim.post_at(
                arrival,
                lambda p=packet: (self._note_arrival(p, self.sim.now), self._deliver(p, self.sim.now)),
            )
            return

        sec = self.cfg.security
        src, dst = packet.src, packet.dst
        engine = self.engines[src]
        # head-of-line: the pad acquisition happens when this message
        # reaches the front of the pair's crypto queue
        demand = packet.kind is not PacketKind.MIGRATION_DATA
        # monitoring observes the message as it enqueues, before any stall
        self.schemes[src].note_send(dst, now, demand=demand)
        start = max(now, self._send_crypto_busy.get((src, dst), 0))
        send_grant = self.schemes[src].acquire_send(dst, start, demand=demand)
        self._send_crypto_busy[(src, dst)] = start + send_grant.grant.wait
        counter = self._next_counter(src, dst)
        if self.monitor is not None:
            self.monitor.on_send_pad(src, dst, counter)

        batch_ctx = None
        if sec.batching and self.accountant.batchable(packet.kind):
            grant = self.batchers[src].add_block(dst, now)
            meta = self.accountant.batched_block_meta(grant.opens_batch, grant.closes_batch)
            if self._recovery:
                # Hostile-channel batching verifies every block eagerly, so
                # each block keeps its own MsgMAC on the wire.
                meta += self.accountant.eager_block_mac_bytes()
            batch_ctx = grant
            self.batched_blocks += 1
            if grant.opens_batch:
                self.sim.post(
                    sec.batch_timeout,
                    lambda s=src, d=dst, b=grant.batch_id: self._batch_timeout(s, d, b),
                )
            if self.accountant.needs_ack(packet.kind):
                # Batched blocks are ACKed once per batch: tag the entry so
                # the guard retires it on *that* batch's ACK, not blindly
                # from the FIFO head (conventional ACKs overtake batch ACKs
                # by design — the batch waits for its close).
                self.guards[src].on_send(dst, counter, batch_id=grant.batch_id)
        else:
            meta = self.accountant.conventional_meta(packet)
            self.conventional_msgs += 1
            if self.accountant.needs_ack(packet.kind):
                self.guards[src].on_send(dst, counter)

        packet.size_bytes += meta
        packet.meta_bytes = meta
        engine.count_mac()

        if self.audit_log is not None:
            from repro.secure.audit import AuditEntry

            self.audit_log.append(
                AuditEntry(
                    src=src,
                    dst=dst,
                    counter=counter,
                    in_batch=batch_ctx is not None,
                    closes_batch=bool(batch_ctx and batch_ctx.closes_batch),
                    batch_size=batch_ctx.batch_size if batch_ctx else 0,
                )
            )

        launch_at = (
            start
            + send_grant.grant.wait
            + engine.mac_fast_path
            + engine.encrypt_fast_path
        )
        if self._recovery and packet.kind.carries_data:
            # Batched blocks are ACKed at batch close, which may lag by the
            # batch timeout; the sender's RTO accounts for that known delay
            # so a slow batch is not mistaken for a lost block.
            rto = self.cfg.fault.ack_timeout
            if batch_ctx is not None:
                rto += sec.batch_timeout
            pending = _PendingMessage(packet, counter, batch_ctx, rto, launch_at)
            self._pending.setdefault((src, dst), {})[packet.pid] = pending
            self._counter_owner[(src, dst, counter)] = packet.pid
        self.sim.post_at(
            launch_at,
            lambda p=packet, s=send_grant.receiver_synced, b=batch_ctx, c=counter: self._launch(
                p, s, b, c
            ),
        )

    def _next_counter(self, src: int, dst: int) -> int:
        key = (src, dst)
        ctr = self._ctrs.get(key, 0)
        self._ctrs[key] = ctr + 1
        if self.monitor is not None:
            self.monitor.on_counter(src, dst, ctr)
        return ctr

    def _launch(self, packet: Packet, synced: bool, batch_ctx, counter: int) -> None:
        if self._recovery and packet.kind.carries_data:
            self._launch_guarded(packet, synced, batch_ctx, counter)
            return
        arrival = self.topology.send(packet, self.sim.now)
        self.sim.post_at(
            arrival,
            lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(p, s, b, c),
        )

    def _launch_guarded(self, packet: Packet, synced: bool, batch_ctx, counter: int) -> None:
        """Put one wire copy on the link, applying the hostile layers.

        Every copy — original or retransmission — rolls its own fault
        verdict and its own attack verdict, and occupies link bandwidth
        even when dropped (the bits still crossed the wire; only the far
        end never saw them intact).  Both rolls always happen, in a fixed
        order, so each per-pair verdict stream stays a pure function of
        the pair's transmission count; the attack is *applied* only when
        the link fault left an intact copy for the attacker to touch.
        """
        now = self.sim.now
        verdict = (
            self.fault_injector.decide(packet.src, packet.dst)
            if self.fault_injector is not None
            else FaultVerdict.OK
        )
        attack = None
        if self.adversary is not None:
            attack = self.adversary.decide(packet.src, packet.dst)
            if verdict in (FaultVerdict.DROP, FaultVerdict.CORRUPT):
                attack = None  # the fault destroyed the copy first
        stats = self.fault_stats
        arrival = self.topology.send(packet, now)
        if verdict is FaultVerdict.DROP:
            stats.drops_injected += 1
            self._note_fault(packet, "drop")
            # no arrival is scheduled: only the sender's RTO timer can
            # notice the loss
        elif verdict is FaultVerdict.CORRUPT:
            stats.corruptions_injected += 1
            self._note_fault(packet, "corrupt")
            self.sim.post_at(
                arrival,
                lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(
                    p, s, b, c, corrupted=True
                ),
            )
        elif verdict is FaultVerdict.DUPLICATE:
            stats.duplicates_injected += 1
            self._note_fault(packet, "duplicate")
            self._dispatch_arrival(packet, synced, batch_ctx, counter, arrival, attack)
            # the replayed copy trails the original and burns bandwidth;
            # the receiver's counter check will reject it
            dup_arrival = self.topology.send(packet, arrival)
            self.sim.post_at(
                dup_arrival,
                lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(p, s, b, c),
            )
        elif verdict is FaultVerdict.DELAY:
            stats.delays_injected += 1
            self._note_fault(packet, "delay")
            self._dispatch_arrival(
                packet, synced, batch_ctx, counter,
                arrival + self.cfg.fault.delay_cycles, attack,
            )
        else:
            self._dispatch_arrival(packet, synced, batch_ctx, counter, arrival, attack)
        pending = self._pending.get((packet.src, packet.dst), {}).get(packet.pid)
        if pending is not None:
            self._arm_timer(pending)

    def _dispatch_arrival(
        self, packet: Packet, synced: bool, batch_ctx, counter: int,
        arrival: int, attack: AttackKind | None,
    ) -> None:
        if attack is None:
            self.sim.post_at(
                arrival,
                lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(p, s, b, c),
            )
            return
        self._inject_attack(packet, synced, batch_ctx, counter, arrival, attack)

    def _inject_attack(
        self, packet: Packet, synced: bool, batch_ctx, counter: int,
        arrival: int, attack: AttackKind,
    ) -> None:
        """Apply one attack to the intact wire copy due at ``arrival``.

        The attacker holds no keys and no pads, so mutated and fabricated
        copies (flip/truncate/splice/forge) are destined for a MsgMAC
        rejection; replay and reorder re-use authentic material and are
        caught by the counter check or absorbed by the ACK window.
        Spliced and forged copies travel under counters alien to the
        receiving pair and are never added to its seen-set — a tampered
        copy must not be able to poison a future legitimate counter.
        """
        adv = self.cfg.adversary
        src, dst = packet.src, packet.dst
        self.attack_report.note_injected(attack)
        self._note_adv(f"{attack.value}_injected")
        if attack in (AttackKind.FLIP_CIPHER, AttackKind.FLIP_MAC, AttackKind.TRUNCATE):
            if self.monitor is not None:
                self.monitor.on_tampered_copy(src, dst, counter, packet.pid)
            self.sim.post_at(
                arrival,
                lambda p=packet, s=synced, b=batch_ctx, c=counter, a=attack: self._arrive(
                    p, s, b, c, attack=a
                ),
            )
        elif attack is AttackKind.REPLAY:
            # The original proceeds untouched; the captured copy is
            # re-injected later and burns real bandwidth.
            self.sim.post_at(
                arrival,
                lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(p, s, b, c),
            )
            rep_arrival = self.topology.send(packet, arrival + adv.replay_lag)
            self.sim.post_at(
                rep_arrival,
                lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(
                    p, s, b, c, attack=AttackKind.REPLAY
                ),
            )
        elif attack is AttackKind.REORDER:
            # Held back so later counters overtake it on the wire.
            self.sim.post_at(
                arrival + adv.reorder_lag,
                lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(
                    p, s, b, c, attack=AttackKind.REORDER
                ),
            )
        elif attack is AttackKind.SPLICE:
            # Redirected mid-flight: the block never reaches dst (the
            # sender's RTO recovers it) and lands — MAC-doomed — on a
            # third node's ingress.  Detection is attributed to the
            # compromised (src, dst) wire it was captured on.
            target = self.adversary.splice_target(src, dst)
            spliced = Packet(
                kind=packet.kind,
                src=src,
                dst=target,
                size_bytes=packet.size_bytes,
                meta_bytes=packet.meta_bytes,
            )
            if self.monitor is not None:
                self.monitor.on_tampered_copy(src, target, counter, spliced.pid)
            sp_arrival = self.topology.send(spliced, arrival)
            self.sim.post_at(
                sp_arrival,
                lambda p=spliced, s=synced, c=counter, o=(src, dst): self._arrive(
                    p, s, None, c, attack=AttackKind.SPLICE, origin=o
                ),
            )
        elif attack is AttackKind.FORGE:
            # Fabricated from scratch alongside the untouched original,
            # under a counter no sender ever issued.
            self.sim.post_at(
                arrival,
                lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(p, s, b, c),
            )
            self._forge_seq += 1
            fake_counter = -self._forge_seq
            forged = Packet(
                kind=packet.kind,
                src=src,
                dst=dst,
                size_bytes=packet.size_bytes,
                meta_bytes=packet.meta_bytes,
            )
            if self.monitor is not None:
                self.monitor.on_tampered_copy(src, dst, fake_counter, forged.pid)
            fg_arrival = self.topology.send(forged, arrival)
            self.sim.post_at(
                fg_arrival,
                lambda p=forged, s=synced, c=fake_counter: self._arrive(
                    p, s, None, c, attack=AttackKind.FORGE
                ),
            )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _arrive(
        self,
        packet: Packet,
        synced: bool,
        batch_ctx,
        counter: int,
        corrupted: bool = False,
        attack: AttackKind | None = None,
        origin: tuple[int, int] | None = None,
    ) -> None:
        now = self.sim.now
        sec = self.cfg.security
        src, dst = packet.src, packet.dst
        guarded = self._recovery and packet.kind.carries_data
        if guarded:
            seen = self._recv_seen.setdefault((src, dst), set())
            if counter in seen:
                if attack is not None:
                    # The plaintext counter check rejects the attacked copy
                    # before it touches the crypto pipeline or burns a pad:
                    # a whole-block replay re-presents a consumed counter,
                    # and a spliced copy's alien counter can collide with
                    # one this pair already accepted.
                    event = (
                        "replay_discard"
                        if attack is AttackKind.REPLAY
                        else "counter_reject"
                    )
                    self._attack_detected(attack, origin or (src, dst), event)
                    return
                # Wire replay (link echo): rejected the same way.
                if self.fault_stats is not None:
                    self.fault_stats.duplicates_discarded += 1
                    self._note_fault(packet, "dup-discard")
                return
            if attack is None or attack not in ALIEN_KINDS:
                seen.add(counter)
        engine = self.engines[dst]
        demand = packet.kind is not PacketKind.MIGRATION_DATA
        self.schemes[dst].note_recv(src, now, demand=demand)
        start = max(now, self._recv_crypto_busy.get((src, dst), 0))
        recv_grant = self.schemes[dst].acquire_recv(src, start, synced=synced, demand=demand)
        self._recv_crypto_busy[(src, dst)] = start + recv_grant.wait
        # Tampered/alien copies burn this pair's receive pad at the counter
        # they *claim* and then die at the MsgMAC — wasted-pad cost, not a
        # security double-use, so they stay out of the single-use ledger
        # (the legitimate block under the same counter still must be unique).
        if (
            self.monitor is not None
            and guarded
            and (attack is None or attack not in TAMPER_KINDS)
        ):
            self.monitor.on_recv_pad(src, dst, counter)

        # A hostile link forfeits lazy verification: batched blocks verify
        # eagerly so corruption is caught before the block leaves the NoC.
        lazy = sec.batching and self.accountant.batchable(packet.kind) and not guarded
        verify = 0 if lazy else engine.mac_fast_path
        deliver_at = start + recv_grant.wait + engine.encrypt_fast_path + verify
        if corrupted:
            self.sim.post_at(
                deliver_at,
                lambda p=packet, c=counter: self._corruption_detected(p, c),
            )
            return
        if attack is not None and attack in TAMPER_KINDS:
            self.sim.post_at(
                deliver_at,
                lambda p=packet, c=counter, a=attack, o=origin or (src, dst): (
                    self._attack_rejected(p, c, a, o)
                ),
            )
            return
        self.sim.post_at(
            deliver_at,
            lambda p=packet, b=batch_ctx, c=counter, a=attack: self._delivered(p, b, c, a),
        )

    def _delivered(
        self, packet: Packet, batch_ctx, counter: int, attack: AttackKind | None = None
    ) -> None:
        now = self.sim.now
        if self._recovery and packet.kind.carries_data:
            delivered = self._delivered_pids.setdefault((packet.src, packet.dst), set())
            if packet.pid in delivered:
                # A late original raced its own retransmit: identical
                # content, different counter.  Deliver exactly once.
                if attack is not None:
                    # The attacked copy lost the race — absorbed, no damage.
                    self.attack_report.note_harmless(attack)
                    self._note_adv(f"{attack.value}_absorbed")
                if self.fault_stats is not None:
                    self.fault_stats.spurious_retransmits += 1
                    self.fault_stats.wasted_otps += 1  # the extra receive pad
                    self._note_fault(packet, "dup-content")
                return
            delivered.add(packet.pid)
        if attack is not None:
            if attack in TAMPER_KINDS:
                # Contract breach: a tampered copy reached a device.  The
                # ledger records it (the zero-undetected assertion fails)
                # and the invariant monitor flags it below.
                self.attack_report.note_accepted(attack)
                self._note_adv("accepted")
            else:
                # Replay/reorder copies that deliver are authentic data
                # arriving once: late (reorder) or standing in for a copy
                # a link fault destroyed (replay).
                self.attack_report.note_harmless(attack)
                self._note_adv(f"{attack.value}_absorbed")
        if self.monitor is not None and packet.kind.carries_data:
            self.monitor.on_delivered(packet.src, packet.dst, counter, packet.pid)
        self._note_arrival(packet, now)
        sec = self.cfg.security
        src, dst = packet.src, packet.dst

        if sec.batching and self.accountant.batchable(packet.kind):
            self.mac_storage[dst].store(src)
            self._batch_block_arrived(
                src,
                dst,
                batch_ctx.batch_id,
                expected=batch_ctx.batch_size if batch_ctx.closes_batch else None,
            )
        elif self.accountant.needs_ack(packet.kind):
            self._send_ack(dst, src, retire=1, counter=counter)

        self._deliver(packet, now)

    # ------------------------------------------------------------------
    # Batch completion and timeout
    # ------------------------------------------------------------------
    def _batch_block_arrived(
        self, src: int, dst: int, batch_id: int, expected: int | None
    ) -> None:
        key = (src, dst, batch_id)
        state = self._batch_arrivals.setdefault(key, [0, None])
        state[0] += 1
        if expected is not None:
            state[1] = expected
        self._maybe_complete_batch(key)

    def _batch_mac_arrived(self, src: int, dst: int, batch_id: int, expected: int) -> None:
        key = (src, dst, batch_id)
        state = self._batch_arrivals.setdefault(key, [0, None])
        state[1] = expected
        self._maybe_complete_batch(key)

    def _maybe_complete_batch(self, key: tuple[int, int, int]) -> None:
        state = self._batch_arrivals[key]
        if state[1] is None or state[0] < state[1]:
            return
        src, dst, batch_id = key
        del self._batch_arrivals[key]
        self.mac_storage[dst].release_batch(src, state[1])
        self.engines[dst].count_mac()  # the batched-MAC verification
        self._send_ack(dst, src, retire=state[1], batch_id=batch_id)

    def _batch_timeout(self, src: int, dst: int, batch_id: int) -> None:
        closed = self.batchers[src].timeout_close(dst, batch_id)
        if closed is None:
            return  # batch already filled up
        if self.audit_log is not None:
            from repro.secure.audit import AuditEntry

            self.audit_log.append(
                AuditEntry(
                    src=src,
                    dst=dst,
                    counter=-1,
                    in_batch=True,
                    closes_batch=True,
                    batch_size=closed,
                    timeout_close=True,
                )
            )
        packet = Packet(
            kind=PacketKind.BATCH_MAC,
            src=src,
            dst=dst,
            size_bytes=self.accountant.standalone_batch_mac_size(),
            meta_bytes=0,
        )
        packet.meta_bytes = packet.size_bytes if self.cfg.security.count_metadata else 0
        self.batch_macs_sent += 1
        self._note_send(packet, self.sim.now)
        arrival = self.topology.send(packet, self.sim.now)
        self.sim.post_at(
            arrival,
            lambda s=src, d=dst, b=batch_id, n=closed: self._batch_mac_arrived(s, d, b, n),
        )

    # ------------------------------------------------------------------
    # Replay-protection ACKs
    # ------------------------------------------------------------------
    def _send_ack(
        self,
        from_node: int,
        to_node: int,
        retire: int,
        counter: int | None = None,
        batch_id: int | None = None,
    ) -> None:
        if not self.cfg.security.count_metadata:
            # +SecureCommu mode: account the protocol without its bandwidth.
            self.guards[to_node].on_ack(from_node, counter, retire, batch_id=batch_id)
            self._resolve_acked(to_node, from_node, counter, retire, batch_id)
            return
        ack = Packet(
            kind=PacketKind.SEC_ACK,
            src=from_node,
            dst=to_node,
            size_bytes=self.accountant.ack_packet_size(),
            txn_id=retire,
        )
        ack.meta_bytes = ack.size_bytes
        self.acks_sent += 1
        self._note_send(ack, self.sim.now)
        arrival = self.topology.send(ack, self.sim.now)
        self.sim.post_at(
            arrival, lambda a=ack, c=counter, b=batch_id: self._ack_retire(a, c, b)
        )

    def _ack_retire(self, ack: Packet, counter: int | None, batch_id: int | None = None) -> None:
        # ack.dst is the original sender whose replay table retires entries
        self.guards[ack.dst].on_ack(ack.src, counter, retire=ack.txn_id, batch_id=batch_id)
        self._resolve_acked(ack.dst, ack.src, counter, ack.txn_id, batch_id)

    # ------------------------------------------------------------------
    # Fault recovery: detection, NACK/timeout, retransmission
    # ------------------------------------------------------------------
    def _resolve_acked(
        self,
        sender: int,
        receiver: int,
        counter: int | None,
        retire: int,
        batch_id: int | None,
    ) -> None:
        """Settle retransmission state for blocks the receiver just ACKed."""
        if not self._recovery:
            return
        pair = self._pending.get((sender, receiver))
        if not pair:
            return
        if batch_id is not None:
            # Batches can complete out of order under faults (a dropped
            # block stalls its batch while later ones finish), so batch
            # ACKs settle by batch id, never by queue position.
            pids = [
                pid
                for pid, p in pair.items()
                if p.batch_ctx is not None and p.batch_ctx.batch_id == batch_id
            ]
        elif counter is not None:
            pid = self._counter_owner.get((sender, receiver, counter))
            pids = [pid] if pid is not None and pid in pair else []
        else:
            pids = list(pair)[:retire]
        for pid in pids:
            self._resolve_pending(sender, receiver, pid)

    def _resolve_pending(self, sender: int, receiver: int, pid: int) -> None:
        pair = self._pending.get((sender, receiver))
        pending = pair.pop(pid, None) if pair else None
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None
        for ctr in pending.counters:
            self._counter_owner.pop((sender, receiver, ctr), None)

    def _arm_timer(self, pending: _PendingMessage) -> None:
        if pending.timer is not None:
            pending.timer.cancel()
        src, dst = pending.packet.src, pending.packet.dst
        pending.timer = self.sim.schedule(
            pending.rto,
            lambda s=src, d=dst, pid=pending.packet.pid: self._ack_timeout(s, d, pid),
        )

    def _ack_timeout(self, src: int, dst: int, pid: int) -> None:
        pair = self._pending.get((src, dst))
        pending = pair.get(pid) if pair else None
        if pending is None:
            return  # ACK won the race; this timer was lazily cancelled
        stats = self.fault_stats
        if stats is not None:
            stats.timeouts_fired += 1
            stats.backoff_cycles += pending.rto
            self._note_fault(pending.packet, "timeout")
        else:
            self._note_adv("timeout")
        fault = self.cfg.fault
        pending.rto = min(int(pending.rto * fault.backoff_factor), fault.backoff_max)
        pending.timer = None
        self._retransmit(pending, "timeout")

    def _corruption_detected(self, packet: Packet, counter: int) -> None:
        stats = self.fault_stats
        stats.corruptions_detected += 1
        stats.wasted_otps += 1  # the receive pad burned on a garbage block
        self._note_fault(packet, "mac-reject")
        self._send_nack(packet.dst, packet.src, counter)

    # ------------------------------------------------------------------
    # Adversary detection and link quarantine
    # ------------------------------------------------------------------
    def _attack_rejected(
        self, packet: Packet, counter: int, attack: AttackKind, origin: tuple[int, int]
    ) -> None:
        """MsgMAC verification rejected a mutated or fabricated copy.

        The receiver NACKs the counter it saw; for spliced copies the NACK
        reaches a sender with no matching pending entry (a no-op — the
        *original* pair's RTO drives recovery), and for forged copies the
        fabricated counter matches nothing either.  Detection is always
        charged to the compromised wire the attack originated on.
        """
        if self.monitor is not None:
            self.monitor.on_mac_reject(packet.src, packet.dst, counter, packet.pid)
        if self.fault_stats is not None:
            self.fault_stats.wasted_otps += 1  # the receive pad burned
        self._attack_detected(attack, origin, "mac_reject")
        self._send_nack(packet.dst, packet.src, counter)

    def _attack_detected(
        self, attack: AttackKind, origin: tuple[int, int], event: str
    ) -> None:
        self.attack_report.note_detected(attack)
        self._note_adv(event)
        self._register_detection(*origin)

    def _register_detection(self, src: int, dst: int) -> None:
        """Count a detection against the (src → dst) wire; maybe failover.

        Hitting ``quarantine_threshold`` detections takes the directed
        link out of service: the topology reroutes the pair over an
        alternate path and the injector stops seeing its traffic.  When no
        alternate exists (CPU↔GPU over the single PCIe bus) the pair stays
        on the guarded direct route and detections simply keep counting.
        """
        threshold = self.cfg.adversary.quarantine_threshold
        if threshold <= 0:
            return
        key = (src, dst)
        count = self._adv_detections.get(key, 0) + 1
        self._adv_detections[key] = count
        if count == threshold and self.topology.quarantine(src, dst):
            self.adversary.on_quarantine(src, dst)
            self.attack_report.note_quarantined(src, dst)
            self._note_adv("quarantine")

    def _send_nack(self, from_node: int, to_node: int, counter: int) -> None:
        if self.fault_stats is not None:
            self.fault_stats.nacks_sent += 1
        if not self.cfg.security.count_metadata:
            # +SecureCommu mode: the NACK costs no bandwidth or latency.
            self._recover(to_node, from_node, counter, "nack")
            return
        nack = Packet(
            kind=PacketKind.SEC_NACK,
            src=from_node,
            dst=to_node,
            size_bytes=self.accountant.ack_packet_size(),
        )
        nack.meta_bytes = nack.size_bytes
        self._note_send(nack, self.sim.now)
        arrival = self.topology.send(nack, self.sim.now)
        self.sim.post_at(
            arrival, lambda n=nack, c=counter: self._recover(n.dst, n.src, c, "nack")
        )

    def _recover(self, sender: int, receiver: int, counter: int, reason: str) -> None:
        pid = self._counter_owner.get((sender, receiver, counter))
        pair = self._pending.get((sender, receiver))
        pending = pair.get(pid) if (pair and pid is not None) else None
        if pending is None or pending.counter != counter:
            return  # stale NACK: a retransmit already superseded this copy
        self._retransmit(pending, reason)

    def _retransmit(self, pending: _PendingMessage, reason: str) -> None:
        fault = self.cfg.fault
        packet = pending.packet
        src, dst = packet.src, packet.dst
        stats = self.fault_stats
        if pending.attempts > fault.max_retries:
            if stats is not None:
                stats.link_failures += 1
                self._note_fault(packet, "give-up")
            else:
                self._note_adv("give_up")
            self._resolve_pending(src, dst, packet.pid)
            raise LinkFailureError(
                src=src,
                dst=dst,
                pid=packet.pid,
                counter=pending.counter,
                attempts=pending.attempts,
                first_sent=pending.first_sent,
                gave_up_at=self.sim.now,
                fault_stats=stats.as_dict() if stats is not None else {},
            )
        pending.attempts += 1
        if stats is not None:
            stats.retransmits += 1
            stats.wasted_otps += 1  # the superseded copy's send pad
            self._note_fault(packet, "retransmit")
        else:
            self._note_adv("retransmit")
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None
        # The old copy's ACK can never arrive; void its replay-guard entry
        # so the FIFO freshness check stays aligned.
        self.guards[src].retire_lost(dst, pending.counter)
        # Re-run the send tail: a retransmission is a brand-new secured
        # message — fresh pad, fresh counter, fresh MAC (a pad must never
        # encrypt two wire copies).
        now = self.sim.now
        engine = self.engines[src]
        demand = packet.kind is not PacketKind.MIGRATION_DATA
        self.schemes[src].note_send(dst, now, demand=demand)
        start = max(now, self._send_crypto_busy.get((src, dst), 0))
        send_grant = self.schemes[src].acquire_send(dst, start, demand=demand)
        self._send_crypto_busy[(src, dst)] = start + send_grant.grant.wait
        counter = self._next_counter(src, dst)
        if self.monitor is not None:
            self.monitor.on_send_pad(src, dst, counter)
        pending.counter = counter
        pending.counters.append(counter)
        self._counter_owner[(src, dst, counter)] = packet.pid
        self.guards[src].on_send(
            dst,
            counter,
            batch_id=pending.batch_ctx.batch_id if pending.batch_ctx is not None else None,
        )
        engine.count_mac()
        launch_at = (
            start
            + send_grant.grant.wait
            + engine.mac_fast_path
            + engine.encrypt_fast_path
        )
        self.sim.post_at(
            launch_at,
            lambda p=packet, s=send_grant.receiver_synced, b=pending.batch_ctx, c=counter: self._launch(
                p, s, b, c
            ),
        )

    # ------------------------------------------------------------------
    # Aggregated reporting
    # ------------------------------------------------------------------
    def run_invariant_checks(self) -> None:
        """End-of-run sanitizer pass over the whole security transcript.

        No-op without an attached monitor (adversary-free runs).  Raises
        :class:`~repro.secure.invariants.InvariantViolationError` if any
        invariant — counter monotonicity, pad single-use, tamper
        rejection, replay-window semantics, attack resolution — broke.
        """
        if self.monitor is None:
            return
        window = self.cfg.adversary.replay_window
        for guard in self.guards.values():
            self.monitor.check_guard(guard, window)
        if self.attack_report is not None:
            self.monitor.check_attack_report(self.attack_report)
        self.monitor.check()

    def otp_summary(self) -> dict[str, dict[str, float]]:
        """Fleet-wide send/recv hit-partial-miss fractions (Figs 10/22)."""
        send = {"hit": 0, "partial": 0, "miss": 0}
        recv = {"hit": 0, "partial": 0, "miss": 0}
        for scheme in self.schemes.values():
            for key, val in scheme.send_outcomes.counts.items():
                send[key] = send.get(key, 0) + val
            for key, val in scheme.recv_outcomes.counts.items():
                recv[key] = recv.get(key, 0) + val

        def fractions(counts):
            total = sum(counts.values())
            if not total:
                return {k: 0.0 for k in counts}
            return {k: v / total for k, v in counts.items()}

        return {"send": fractions(send), "recv": fractions(recv)}


def build_transport(
    sim: Simulator,
    topology: Topology,
    cfg: SystemConfig,
    telemetry: Telemetry | None = None,
):
    """Pick the transport matching ``cfg.security.scheme``."""
    if cfg.security.scheme == "unsecure":
        return UnsecureTransport(sim, topology, cfg, telemetry)
    return SecureTransport(sim, topology, cfg, telemetry)


__all__ = ["UnsecureTransport", "SecureTransport", "build_transport", "BURST_EDGES"]
