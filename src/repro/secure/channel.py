"""Transports: the unsecured fabric and the secure channel layer.

``UnsecureTransport`` moves packets straight over the topology — the
baseline every figure normalizes against.  ``SecureTransport`` applies the
full protection pipeline of Fig. 5 around the same topology:

sender:   acquire send pads (scheme) → XOR encrypt + GHASH MAC → attach
          metadata bytes (conventional or batched) → serialize on the link
receiver: acquire receive pads (scheme, honouring counter sync) → XOR
          decrypt (+ blocking MAC verify unless lazily batched) → deliver
          → emit replay-protection ACK (per message, or per batch)

Both transports also collect the paper's motivation measurements: per-node
send/receive timelines (Figs 13/14) and per-pair data-block burstiness
histograms (Figs 15/16).
"""

from __future__ import annotations

from repro.configs import SystemConfig
from repro.core.batching import BatchingController, MsgMacStorage
from repro.interconnect.packet import Packet, PacketKind
from repro.interconnect.topology import Topology
from repro.secure.engine import AesGcmEngineModel
from repro.secure.metadata import MetadataAccountant
from repro.secure.replay import ReplayGuard
from repro.secure.schemes import build_scheme
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, IntervalSeries
from repro.transport import DeliveryHandler

#: Histogram bin edges of Figs 15/16.
BURST_EDGES = [40, 160, 640, 2560]

#: Kinds excluded from the request timelines (protocol housekeeping).
_HOUSEKEEPING = frozenset({PacketKind.SEC_ACK, PacketKind.BATCH_MAC})


class _TransportBase:
    """Delivery registry plus the measurement instrumentation."""

    def __init__(self, sim: Simulator, topology: Topology, cfg: SystemConfig) -> None:
        self.sim = sim
        self.topology = topology
        self.cfg = cfg
        self._handlers: dict[int, DeliveryHandler] = {}
        self.timelines: dict[int, IntervalSeries] = {
            node: IntervalSeries(f"node{node}", cfg.timeline_interval)
            for node in topology.nodes()
        }
        self.burst16 = Histogram("burst16", BURST_EDGES)
        self.burst32 = Histogram("burst32", BURST_EDGES)
        self._burst_state: dict[tuple[int, int], list[int]] = {}
        self.messages_sent = 0
        self.data_blocks = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, node: int, handler: DeliveryHandler) -> None:
        if node in self._handlers:
            raise ValueError(f"node {node} already registered")
        self._handlers[node] = handler

    def _deliver(self, packet: Packet, time: int) -> None:
        handler = self._handlers.get(packet.dst)
        if handler is None:
            raise KeyError(f"no delivery handler for node {packet.dst}")
        handler(packet, time)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _note_send(self, packet: Packet, now: int) -> None:
        self.messages_sent += 1
        if packet.kind in _HOUSEKEEPING:
            return
        timeline = self.timelines[packet.src]
        timeline.record(now, "send")
        timeline.record(now, f"to{packet.dst}")

    def _note_arrival(self, packet: Packet, now: int) -> None:
        if packet.kind in _HOUSEKEEPING:
            return
        self.timelines[packet.dst].record(now, "recv")
        if packet.kind.carries_data:
            self.data_blocks += 1
            self._track_burst(packet.src, packet.dst, now)

    def _track_burst(self, src: int, dst: int, now: int) -> None:
        # state: [count16, start16, count32, start32]
        state = self._burst_state.setdefault((src, dst), [0, 0, 0, 0])
        if state[0] == 0:
            state[1] = now
        state[0] += 1
        if state[0] == 16:
            self.burst16.record(now - state[1])
            state[0] = 0
        if state[2] == 0:
            state[3] = now
        state[2] += 1
        if state[2] == 32:
            self.burst32.record(now - state[3])
            state[2] = 0


class UnsecureTransport(_TransportBase):
    """The vanilla multi-GPU fabric: no pads, no metadata, no ACKs."""

    def send(self, packet: Packet, now: int) -> None:
        self._note_send(packet, now)
        arrival = self.topology.send(packet, now)
        self.sim.schedule_at(
            arrival, lambda p=packet: (self._note_arrival(p, self.sim.now), self._deliver(p, self.sim.now))
        )


class SecureTransport(_TransportBase):
    """Authenticated-encrypted fabric with OTP buffers and metadata."""

    def __init__(self, sim: Simulator, topology: Topology, cfg: SystemConfig) -> None:
        super().__init__(sim, topology, cfg)
        sec = cfg.security
        if sec.scheme == "unsecure":
            raise ValueError("SecureTransport requires a managed scheme")
        self.accountant = MetadataAccountant(sec.metadata, sec.count_metadata)
        self.engines: dict[int, AesGcmEngineModel] = {}
        self.schemes = {}
        self.guards: dict[int, ReplayGuard] = {}
        self.batchers: dict[int, BatchingController] = {}
        self.mac_storage: dict[int, MsgMacStorage] = {}
        for node in topology.nodes():
            engine = AesGcmEngineModel(sec.aes_gcm_latency, sec.ghash_latency, sec.xor_latency)
            self.engines[node] = engine
            self.schemes[node] = build_scheme(
                sec.scheme, node, topology.peers_of(node), sec, engine
            )
            self.guards[node] = ReplayGuard(node)
            if sec.batching:
                self.batchers[node] = BatchingController(
                    sec.metadata, sec.batch_size, sec.batch_timeout
                )
                self.mac_storage[node] = MsgMacStorage(capacity_per_pair=64)
        self._ctrs: dict[tuple[int, int], int] = {}
        # Crypto units are FIFO per directed pair: a pad stall blocks the
        # messages queued behind it (head-of-line), while the XOR/GHASH
        # fast paths are fully pipelined and add latency only.
        self._send_crypto_busy: dict[tuple[int, int], int] = {}
        self._recv_crypto_busy: dict[tuple[int, int], int] = {}
        # receiver-side batch completion tracking:
        # (src, dst, batch_id) -> [blocks_arrived, expected_or_None]
        self._batch_arrivals: dict[tuple[int, int, int], list] = {}
        self.acks_sent = 0
        self.batch_macs_sent = 0
        #: when SecurityConfig.audit is set, every secured message is
        #: recorded for functional replay (repro.secure.audit)
        self.audit_log: list = [] if sec.audit else None

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, packet: Packet, now: int) -> None:
        if packet.kind in _HOUSEKEEPING:
            raise ValueError("ACK/batch-MAC packets are generated by the transport itself")
        self._note_send(packet, now)

        if not packet.kind.carries_data and not self.cfg.security.protect_requests:
            # Control messages (read requests, write acks, migration
            # requests) carry addresses, not data; the paper's protocol
            # authenticated-encrypts *data* transfers (Figs 5/19) and
            # leaves request-content hiding to oblivious routing [34].
            # ``protect_requests`` enables that extension: control messages
            # then take the full secured path below.
            arrival = self.topology.send(packet, now)
            self.sim.schedule_at(
                arrival,
                lambda p=packet: (self._note_arrival(p, self.sim.now), self._deliver(p, self.sim.now)),
            )
            return

        sec = self.cfg.security
        src, dst = packet.src, packet.dst
        engine = self.engines[src]
        # head-of-line: the pad acquisition happens when this message
        # reaches the front of the pair's crypto queue
        demand = packet.kind is not PacketKind.MIGRATION_DATA
        # monitoring observes the message as it enqueues, before any stall
        self.schemes[src].note_send(dst, now, demand=demand)
        start = max(now, self._send_crypto_busy.get((src, dst), 0))
        send_grant = self.schemes[src].acquire_send(dst, start, demand=demand)
        self._send_crypto_busy[(src, dst)] = start + send_grant.grant.wait
        counter = self._next_counter(src, dst)

        batch_ctx = None
        if sec.batching and self.accountant.batchable(packet.kind):
            grant = self.batchers[src].add_block(dst, now)
            meta = self.accountant.batched_block_meta(grant.opens_batch, grant.closes_batch)
            batch_ctx = grant
            if grant.opens_batch:
                self.sim.schedule(
                    sec.batch_timeout,
                    lambda s=src, d=dst, b=grant.batch_id: self._batch_timeout(s, d, b),
                )
            if self.accountant.needs_ack(packet.kind):
                self.guards[src].on_send(dst, counter)
        else:
            meta = self.accountant.conventional_meta(packet)
            if self.accountant.needs_ack(packet.kind):
                self.guards[src].on_send(dst, counter)

        packet.size_bytes += meta
        packet.meta_bytes = meta
        engine.count_mac()

        if self.audit_log is not None:
            from repro.secure.audit import AuditEntry

            self.audit_log.append(
                AuditEntry(
                    src=src,
                    dst=dst,
                    counter=counter,
                    in_batch=batch_ctx is not None,
                    closes_batch=bool(batch_ctx and batch_ctx.closes_batch),
                    batch_size=batch_ctx.batch_size if batch_ctx else 0,
                )
            )

        launch_at = (
            start
            + send_grant.grant.wait
            + engine.mac_fast_path
            + engine.encrypt_fast_path
        )
        self.sim.schedule_at(
            launch_at,
            lambda p=packet, s=send_grant.receiver_synced, b=batch_ctx, c=counter: self._launch(
                p, s, b, c
            ),
        )

    def _next_counter(self, src: int, dst: int) -> int:
        key = (src, dst)
        ctr = self._ctrs.get(key, 0)
        self._ctrs[key] = ctr + 1
        return ctr

    def _launch(self, packet: Packet, synced: bool, batch_ctx, counter: int) -> None:
        arrival = self.topology.send(packet, self.sim.now)
        self.sim.schedule_at(
            arrival,
            lambda p=packet, s=synced, b=batch_ctx, c=counter: self._arrive(p, s, b, c),
        )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _arrive(self, packet: Packet, synced: bool, batch_ctx, counter: int) -> None:
        now = self.sim.now
        sec = self.cfg.security
        src, dst = packet.src, packet.dst
        engine = self.engines[dst]
        demand = packet.kind is not PacketKind.MIGRATION_DATA
        self.schemes[dst].note_recv(src, now, demand=demand)
        start = max(now, self._recv_crypto_busy.get((src, dst), 0))
        recv_grant = self.schemes[dst].acquire_recv(src, start, synced=synced, demand=demand)
        self._recv_crypto_busy[(src, dst)] = start + recv_grant.wait

        lazy = sec.batching and self.accountant.batchable(packet.kind)
        verify = 0 if lazy else engine.mac_fast_path
        deliver_at = start + recv_grant.wait + engine.encrypt_fast_path + verify
        self.sim.schedule_at(
            deliver_at,
            lambda p=packet, b=batch_ctx, c=counter: self._delivered(p, b, c),
        )

    def _delivered(self, packet: Packet, batch_ctx, counter: int) -> None:
        now = self.sim.now
        self._note_arrival(packet, now)
        sec = self.cfg.security
        src, dst = packet.src, packet.dst

        if sec.batching and self.accountant.batchable(packet.kind):
            self.mac_storage[dst].store(src)
            self._batch_block_arrived(
                src,
                dst,
                batch_ctx.batch_id,
                expected=batch_ctx.batch_size if batch_ctx.closes_batch else None,
            )
        elif self.accountant.needs_ack(packet.kind):
            self._send_ack(dst, src, retire=1, counter=counter)

        self._deliver(packet, now)

    # ------------------------------------------------------------------
    # Batch completion and timeout
    # ------------------------------------------------------------------
    def _batch_block_arrived(
        self, src: int, dst: int, batch_id: int, expected: int | None
    ) -> None:
        key = (src, dst, batch_id)
        state = self._batch_arrivals.setdefault(key, [0, None])
        state[0] += 1
        if expected is not None:
            state[1] = expected
        self._maybe_complete_batch(key)

    def _batch_mac_arrived(self, src: int, dst: int, batch_id: int, expected: int) -> None:
        key = (src, dst, batch_id)
        state = self._batch_arrivals.setdefault(key, [0, None])
        state[1] = expected
        self._maybe_complete_batch(key)

    def _maybe_complete_batch(self, key: tuple[int, int, int]) -> None:
        state = self._batch_arrivals[key]
        if state[1] is None or state[0] < state[1]:
            return
        src, dst, _ = key
        del self._batch_arrivals[key]
        self.mac_storage[dst].release_batch(src, state[1])
        self.engines[dst].count_mac()  # the batched-MAC verification
        self._send_ack(dst, src, retire=state[1])

    def _batch_timeout(self, src: int, dst: int, batch_id: int) -> None:
        closed = self.batchers[src].timeout_close(dst, batch_id)
        if closed is None:
            return  # batch already filled up
        if self.audit_log is not None:
            from repro.secure.audit import AuditEntry

            self.audit_log.append(
                AuditEntry(
                    src=src,
                    dst=dst,
                    counter=-1,
                    in_batch=True,
                    closes_batch=True,
                    batch_size=closed,
                    timeout_close=True,
                )
            )
        packet = Packet(
            kind=PacketKind.BATCH_MAC,
            src=src,
            dst=dst,
            size_bytes=self.accountant.standalone_batch_mac_size(),
            meta_bytes=0,
        )
        packet.meta_bytes = packet.size_bytes if self.cfg.security.count_metadata else 0
        self.batch_macs_sent += 1
        self._note_send(packet, self.sim.now)
        arrival = self.topology.send(packet, self.sim.now)
        self.sim.schedule_at(
            arrival,
            lambda s=src, d=dst, b=batch_id, n=closed: self._batch_mac_arrived(s, d, b, n),
        )

    # ------------------------------------------------------------------
    # Replay-protection ACKs
    # ------------------------------------------------------------------
    def _send_ack(self, from_node: int, to_node: int, retire: int, counter: int | None = None) -> None:
        if not self.cfg.security.count_metadata:
            # +SecureCommu mode: account the protocol without its bandwidth.
            self.guards[to_node].on_ack(from_node, counter, retire)
            return
        ack = Packet(
            kind=PacketKind.SEC_ACK,
            src=from_node,
            dst=to_node,
            size_bytes=self.accountant.ack_packet_size(),
            txn_id=retire,
        )
        ack.meta_bytes = ack.size_bytes
        self.acks_sent += 1
        self._note_send(ack, self.sim.now)
        arrival = self.topology.send(ack, self.sim.now)
        self.sim.schedule_at(arrival, lambda a=ack, c=counter: self._ack_retire(a, c))

    def _ack_retire(self, ack: Packet, counter: int | None) -> None:
        # ack.dst is the original sender whose replay table retires entries
        self.guards[ack.dst].on_ack(ack.src, counter, retire=ack.txn_id)

    # ------------------------------------------------------------------
    # Aggregated reporting
    # ------------------------------------------------------------------
    def otp_summary(self) -> dict[str, dict[str, float]]:
        """Fleet-wide send/recv hit-partial-miss fractions (Figs 10/22)."""
        send = {"hit": 0, "partial": 0, "miss": 0}
        recv = {"hit": 0, "partial": 0, "miss": 0}
        for scheme in self.schemes.values():
            for key, val in scheme.send_outcomes.counts.items():
                send[key] = send.get(key, 0) + val
            for key, val in scheme.recv_outcomes.counts.items():
                recv[key] = recv.get(key, 0) + val

        def fractions(counts):
            total = sum(counts.values())
            if not total:
                return {k: 0.0 for k in counts}
            return {k: v / total for k, v in counts.items()}

        return {"send": fractions(send), "recv": fractions(recv)}


def build_transport(sim: Simulator, topology: Topology, cfg: SystemConfig):
    """Pick the transport matching ``cfg.security.scheme``."""
    if cfg.security.scheme == "unsecure":
        return UnsecureTransport(sim, topology, cfg)
    return SecureTransport(sim, topology, cfg)


__all__ = ["UnsecureTransport", "SecureTransport", "build_transport", "BURST_EDGES"]
