"""Security-metadata wire accounting.

Single place that decides how many metadata bytes ride on each message and
which messages trigger replay-protection ACKs, for both the conventional
per-message protocol (§II-C) and the batched protocol (§IV-C).  The
``count_metadata`` switch supports Fig. 11's "+SecureCommu" configuration:
security latencies apply but metadata occupies no link bandwidth.
"""

from __future__ import annotations

from repro.configs import MetadataConfig
from repro.interconnect.packet import Packet, PacketKind

#: Message kinds that carry a data payload and therefore get ACKed for
#: replay protection (read requests are implicitly covered by their
#: responses; ACK kinds are never themselves ACKed).
ACKED_KINDS = frozenset(
    {PacketKind.DATA_RESP, PacketKind.WRITE_REQ, PacketKind.MIGRATION_DATA}
)

#: Data kinds eligible for metadata batching (the paper batches data
#: responses and page-migration streams; writes stay conventional).
BATCHABLE_KINDS = frozenset({PacketKind.DATA_RESP, PacketKind.MIGRATION_DATA})


class MetadataAccountant:
    """Computes metadata sizes under the active configuration."""

    def __init__(self, metadata: MetadataConfig, count_metadata: bool = True) -> None:
        self.metadata = metadata
        self.count_metadata = count_metadata

    def _sized(self, nbytes: int) -> int:
        return nbytes if self.count_metadata else 0

    def conventional_meta(self, packet: Packet) -> int:
        """MsgCTR + MsgMAC + senderID on every secured message."""
        del packet  # same for all kinds in the conventional protocol
        return self._sized(self.metadata.per_message_meta_bytes)

    def batched_block_meta(self, opens_batch: bool, closes_batch: bool) -> int:
        """Per-block metadata when batching: CTR + ID (+len, +batch MAC)."""
        meta = self.metadata.batched_block_meta_bytes
        if opens_batch:
            meta += self.metadata.batch_len_bytes
        if closes_batch:
            meta += self.metadata.msg_mac_bytes
        return self._sized(meta)

    def eager_block_mac_bytes(self) -> int:
        """Per-block MsgMAC retained under fault-hardened batching.

        Lazy batched verification trades detection latency for bandwidth —
        acceptable on a clean channel, but an actively faulty link needs
        corruption caught *before* the block leaves the verified window.
        When fault injection is enabled the batched protocol therefore
        keeps the per-block MsgMAC on the wire (batch ACKs and counter
        compression still apply), and this is its cost.
        """
        return self._sized(self.metadata.msg_mac_bytes)

    def ack_packet_size(self) -> int:
        """Wire size of a replay-protection ACK (always >= 1 so the link
        model can serialize it even when metadata is not counted)."""
        return max(1, self._sized(self.metadata.ack_bytes))

    def standalone_batch_mac_size(self) -> int:
        """Timeout-closed batches ship their MAC in a tiny packet."""
        return max(
            1,
            self._sized(
                self.metadata.msg_mac_bytes + self.metadata.sender_id_bytes + 1
            ),
        )

    @staticmethod
    def needs_ack(kind: PacketKind) -> bool:
        return kind in ACKED_KINDS

    @staticmethod
    def batchable(kind: PacketKind) -> bool:
        return kind in BATCHABLE_KINDS


__all__ = ["MetadataAccountant", "ACKED_KINDS", "BATCHABLE_KINDS"]
