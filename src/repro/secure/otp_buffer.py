"""Pad-stream model of OTP buffer entries.

A :class:`PadStream` holds the pre-generated one-time pads for one
(direction, peer) message stream.  The AES-GCM engines are fully pipelined
(§IV-A), so consuming a pad immediately starts generating its replacement,
ready ``latency`` cycles later; what bounds pre-generation is the *number
of buffer entries* the stream owns.

A message acquiring a pad observes a wait ``w``:

* ``w == 0``            → **OTP_Hit** — latency fully hidden,
* ``0 < w < latency``   → **OTP_Partial** — a refill was in flight,
* ``w == latency``      → **OTP_Miss** — generation had not begun (or the
  stored pads were for the wrong counters: a *desync*, which always costs
  the full generation latency and discards the stale pad).

This is exactly the decomposition of Figs 10/22.  Because the engine is
fully pipelined, a message never waits more than one generation latency:
when its counter's pad was not even being pre-generated, the engine starts
it on demand the moment the message appears and streams the result straight
into the datapath.  Buffer capacity therefore bounds how much *hiding* is
possible, not how fast pads can be produced — a burst of ``B`` messages
against ``k`` entries gets ``k`` hits and ``B - k`` full-latency misses,
matching the paper's OTP 1x behaviour (~one AES latency per message, not a
pile-up).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum


class PadOutcome(Enum):
    HIT = "hit"
    PARTIAL = "partial"
    MISS = "miss"


@dataclass(frozen=True, slots=True)
class PadGrant:
    """Result of acquiring a pad: how long the message waited and why.

    One grant is allocated per secured message; ``slots=True`` keeps that
    per-message cost minimal.
    """

    wait: int
    outcome: PadOutcome

    @property
    def hidden(self) -> bool:
        return self.outcome is PadOutcome.HIT


class PadStream:
    """Pre-generated pads for one (direction, peer) stream."""

    __slots__ = ("latency", "_ready", "last_use", "consumed")

    def __init__(self, latency: int, capacity: int, now: int = 0, prefilled: bool = True) -> None:
        if latency < 1:
            raise ValueError("pad generation latency must be >= 1")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.latency = latency
        # min-heap of cycle times at which each buffered pad becomes ready
        self._ready: list[int] = [now if prefilled else now + latency] * capacity
        heapq.heapify(self._ready)
        self.last_use = now
        self.consumed = 0

    @property
    def capacity(self) -> int:
        return len(self._ready)

    def earliest_ready(self) -> int | None:
        return self._ready[0] if self._ready else None

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def consume(self, now: int) -> PadGrant:
        """Take a pad for the next counter value at cycle ``now``."""
        self.last_use = now
        self.consumed += 1
        if not self._ready:
            # No buffer entry at all: generate on demand, nothing to refill.
            return PadGrant(wait=self.latency, outcome=PadOutcome.MISS)
        ready = heapq.heappop(self._ready)
        # Pipelined engine: even if the pre-generation pipeline is behind,
        # on-demand generation for this message starts *now*, so the wait
        # never exceeds one generation latency.
        wait = min(max(0, ready - now), self.latency)
        # The freed entry immediately begins pre-generating a future pad.
        heapq.heappush(self._ready, now + self.latency)
        return PadGrant(wait=wait, outcome=self._classify(wait))

    def consume_desync(self, now: int) -> PadGrant:
        """Take a pad whose buffered pre-generations were all wrong.

        The stale pad is discarded and the correct one is generated on
        demand (full latency); its slot starts regenerating for the next
        expected counter so a back-to-back follow-up can hit.
        """
        self.last_use = now
        self.consumed += 1
        if self._ready:
            heapq.heappop(self._ready)
            heapq.heappush(self._ready, now + self.latency)
        return PadGrant(wait=self.latency, outcome=PadOutcome.MISS)

    def _classify(self, wait: int) -> PadOutcome:
        if wait <= 0:
            return PadOutcome.HIT
        if wait < self.latency:
            return PadOutcome.PARTIAL
        return PadOutcome.MISS  # wait == latency: generated on demand

    # ------------------------------------------------------------------
    # Capacity management (Dynamic / Cached reallocate entries at runtime)
    # ------------------------------------------------------------------
    def grow(self, now: int, n: int = 1) -> None:
        """Assign ``n`` more buffer entries; their pads generate from now."""
        if n < 0:
            raise ValueError("cannot grow by a negative amount")
        for _ in range(n):
            heapq.heappush(self._ready, now + self.latency)

    def shrink(self, n: int = 1) -> int:
        """Drop up to ``n`` entries, sacrificing the least-ready pads first.

        Returns how many entries were actually removed.
        """
        if n < 0:
            raise ValueError("cannot shrink by a negative amount")
        removed = 0
        while removed < n and self._ready:
            self._ready.remove(max(self._ready))
            removed += 1
        heapq.heapify(self._ready)
        return removed

    def set_capacity(self, now: int, capacity: int) -> None:
        """Grow or shrink to exactly ``capacity`` entries."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        delta = capacity - self.capacity
        if delta > 0:
            self.grow(now, delta)
        elif delta < 0:
            self.shrink(-delta)


__all__ = ["PadOutcome", "PadGrant", "PadStream"]
