"""AES-GCM engine timing model.

The paper's processors carry fully pipelined AES-GCM engines (§IV-A) with a
40-cycle pad-generation latency (Table III, following Plutus/SHM/PSSM).
Pipelining means throughput is one pad per cycle — the engine is never the
bottleneck; only the *latency* and the number of buffer entries matter.
This class is the single source of truth for the three latency constants
and counts engine work for the hardware-overhead report.
"""

from __future__ import annotations


class AesGcmEngineModel:
    """Latency parameters + utilization counters of one node's engines."""

    def __init__(self, pad_latency: int = 40, ghash_latency: int = 4, xor_latency: int = 1) -> None:
        if pad_latency < 1:
            raise ValueError("pad latency must be >= 1 cycle")
        if ghash_latency < 0 or xor_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.pad_latency = pad_latency
        self.ghash_latency = ghash_latency
        self.xor_latency = xor_latency
        self.pads_generated = 0
        self.macs_computed = 0

    def count_pad(self, n: int = 1) -> None:
        self.pads_generated += n

    def count_mac(self, n: int = 1) -> None:
        self.macs_computed += n

    @property
    def encrypt_fast_path(self) -> int:
        """Cycles to encrypt with a ready pad: a single XOR (Fig. 6)."""
        return self.xor_latency

    @property
    def mac_fast_path(self) -> int:
        """Cycles to MAC with a ready pad: one GHASH (Fig. 6)."""
        return self.ghash_latency


__all__ = ["AesGcmEngineModel"]
