"""Protocol audit: functional replay of a timing simulation's messages.

The timing simulator models *when* secure messages move; this module
proves the very same message sequence is cryptographically realizable.
With ``SecurityConfig(audit=True)`` the transport records every secured
message (sender, receiver, counter, batching decisions).
:func:`functional_replay` then re-executes the log on real
:class:`~repro.secure.protocol.SecureEndpoint` pairs — actual AES-128
pads, GHASH MACs, counter checks, batched-MAC verification — and reports
whether every block decrypted and every batch verified.

It also re-runs one randomly chosen message with a flipped ciphertext bit
to confirm the integrity machinery would have caught an interconnect
attacker during that exact run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.secure.protocol import ProtocolError, SecureEndpoint, WireMessage

DEFAULT_SESSION_KEY = bytes(range(16))
DEFAULT_HASH_KEY = bytes(range(16, 32))


@dataclass(frozen=True)
class AuditEntry:
    """One secured message as the transport sent it."""

    src: int
    dst: int
    counter: int
    in_batch: bool
    closes_batch: bool
    batch_size: int  # valid when closes_batch
    timeout_close: bool = False  # a batch closed by timer, no block carried


@dataclass
class AuditReport:
    """Outcome of a functional replay."""

    messages: int = 0
    batched_messages: int = 0
    batches_verified: int = 0
    replay_rejected: bool = False
    tamper_rejected: bool = False
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and self.tamper_rejected


def _payload_for(entry: AuditEntry) -> bytes:
    """Deterministic 64-byte stand-in payload for a block."""
    seed = (entry.src * 1_000_003 + entry.dst * 7919 + entry.counter) & 0xFFFFFFFF
    return seed.to_bytes(4, "big") * 16


def functional_replay(
    log: list[AuditEntry],
    session_key: bytes = DEFAULT_SESSION_KEY,
    hash_key: bytes = DEFAULT_HASH_KEY,
) -> AuditReport:
    """Re-execute ``log`` with real cryptography."""
    report = AuditReport()
    endpoints: dict[int, SecureEndpoint] = {}

    def endpoint(node: int) -> SecureEndpoint:
        ep = endpoints.get(node)
        if ep is None:
            ep = SecureEndpoint(node, session_key, hash_key)
            endpoints[node] = ep
        return ep

    last_wire: WireMessage | None = None
    open_batches: dict[tuple[int, int], int] = {}  # (src,dst) -> blocks pending

    for entry in log:
        sender = endpoint(entry.src)
        receiver = endpoint(entry.dst)
        if entry.timeout_close:
            key = (entry.src, entry.dst)
            if open_batches.get(key, 0) != entry.batch_size:
                report.failures.append(
                    f"timeout-close drift at {entry}: "
                    f"{open_batches.get(key, 0)} pending vs size {entry.batch_size}"
                )
            batch_mac = sender.close_batch(entry.dst)
            if receiver.verify_batch(batch_mac):
                report.batches_verified += 1
            else:
                report.failures.append(f"timeout batch MAC failed at {entry}")
            open_batches[key] = 0
            continue
        payload = _payload_for(entry)
        wire = sender.send_block(entry.dst, payload, in_batch=entry.in_batch)
        if wire.counter != entry.counter:
            report.failures.append(
                f"counter drift at {entry}: endpoint used {wire.counter}"
            )
            continue
        try:
            decrypted = receiver.receive_block(wire)
        except ProtocolError as exc:
            report.failures.append(f"receive failed at {entry}: {exc}")
            continue
        if decrypted != payload:
            report.failures.append(f"payload corrupted at {entry}")
            continue
        report.messages += 1
        if entry.in_batch:
            report.batched_messages += 1
            key = (entry.src, entry.dst)
            open_batches[key] = open_batches.get(key, 0) + 1
            if entry.closes_batch:
                if open_batches[key] != entry.batch_size:
                    report.failures.append(
                        f"batch bookkeeping drift at {entry}: "
                        f"{open_batches[key]} pending vs size {entry.batch_size}"
                    )
                batch_mac = sender.close_batch(entry.dst)
                if receiver.verify_batch(batch_mac):
                    report.batches_verified += 1
                else:
                    report.failures.append(f"batch MAC failed at {entry}")
                open_batches[key] = 0
        else:
            last_wire = wire

    # any batches the run left open (timeout-closed after the log ended)
    for (src, dst), pending in open_batches.items():
        if pending:
            batch_mac = endpoint(src).close_batch(dst)
            if endpoint(dst).verify_batch(batch_mac):
                report.batches_verified += 1
            else:
                report.failures.append(f"trailing batch MAC failed for {src}->{dst}")

    # adversarial checks on the final conventional message, if any
    if last_wire is not None:
        receiver = endpoint(last_wire.receiver_id)
        try:
            receiver.receive_block(last_wire)  # replayed verbatim
        except ProtocolError:
            report.replay_rejected = True
        tampered = WireMessage(
            last_wire.sender_id,
            last_wire.receiver_id,
            last_wire.counter + 1_000_000,  # fresh counter, forged content
            bytes([last_wire.ciphertext[0] ^ 1]) + last_wire.ciphertext[1:],
            last_wire.mac,
        )
        try:
            receiver.receive_block(tampered)
        except ProtocolError:
            report.tamper_rejected = True
    else:
        # batched-only logs: integrity is covered by batch verification
        report.tamper_rejected = True
        report.replay_rejected = True

    return report


__all__ = ["AuditEntry", "AuditReport", "functional_replay"]
