"""Adversarial fault injection against the functional protocol.

The threat model (§II-B) assumes a physical attacker on the PCIe and
inter-GPU links.  This module replays a timing simulation's audit log
(:mod:`repro.secure.audit`) through real :class:`SecureEndpoint` pairs
while an attacker tampers with or replays chosen messages — and verifies
that the *actual* cryptographic machinery catches every attack:

* **tamper** — a ciphertext bit is flipped on the wire.  Conventional
  messages must fail their MsgMAC check at receive; lazily verified
  (batched) blocks must surface at batched-MsgMAC verification — either
  way, before data leaves the verified window.
* **replay** — a previously delivered wire message is re-injected.  The
  receiver's counter tracking must reject the duplicate.

Nothing here is mocked: detection happens inside GHASH comparisons and
counter checks running on the from-scratch AES substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.secure.audit import AuditEntry, DEFAULT_HASH_KEY, DEFAULT_SESSION_KEY, _payload_for
from repro.secure.protocol import ProtocolError, SecureEndpoint, WireMessage


@dataclass(frozen=True)
class AttackPlan:
    """Which log positions the attacker hits, and how."""

    tampered: frozenset[int]
    replayed: frozenset[int]

    @property
    def total(self) -> int:
        return len(self.tampered) + len(self.replayed)


def plan_attacks(
    log: list[AuditEntry],
    tamper_rate: float = 0.05,
    replay_rate: float = 0.05,
    seed: int = 0,
) -> AttackPlan:
    """Randomly select victim messages (block-carrying entries only)."""
    if not 0 <= tamper_rate <= 1 or not 0 <= replay_rate <= 1:
        raise ValueError("attack rates must be probabilities")
    if tamper_rate + replay_rate > 1:
        raise ValueError("combined attack rate cannot exceed 1")
    rng = np.random.default_rng(seed)
    tampered, replayed = set(), set()
    for i, entry in enumerate(log):
        if entry.timeout_close:
            continue
        roll = rng.random()
        if roll < tamper_rate:
            tampered.add(i)
        elif roll < tamper_rate + replay_rate:
            replayed.add(i)
    return AttackPlan(tampered=frozenset(tampered), replayed=frozenset(replayed))


@dataclass
class FaultReport:
    """Attack outcome accounting."""

    messages: int = 0
    tampers_injected: int = 0
    replays_injected: int = 0
    tampers_detected: int = 0
    replays_detected: int = 0
    clean_failures: list[str] = field(default_factory=list)

    @property
    def all_detected(self) -> bool:
        return (
            not self.clean_failures
            and self.tampers_detected == self.tampers_injected
            and self.replays_detected == self.replays_injected
        )


def _flip_bit(wire: WireMessage) -> WireMessage:
    if not wire.ciphertext:
        raise ValueError("cannot tamper with an empty ciphertext")
    mutated = bytes([wire.ciphertext[0] ^ 0x80]) + wire.ciphertext[1:]
    return WireMessage(
        wire.sender_id, wire.receiver_id, wire.counter, mutated, wire.mac
    )


def adversarial_replay(
    log: list[AuditEntry],
    plan: AttackPlan,
    session_key: bytes = DEFAULT_SESSION_KEY,
    hash_key: bytes = DEFAULT_HASH_KEY,
) -> FaultReport:
    """Replay ``log`` under attack; every attack must be caught."""
    report = FaultReport()
    endpoints: dict[int, SecureEndpoint] = {}

    def endpoint(node: int) -> SecureEndpoint:
        if node not in endpoints:
            endpoints[node] = SecureEndpoint(node, session_key, hash_key)
        return endpoints[node]

    # batches whose contents were tampered must fail their batch MAC;
    # one failed verification catches every tampered block it covers
    dirty_batches: dict[tuple[int, int], int] = {}

    def close_and_check(src: int, dst: int) -> None:
        dirty_count = dirty_batches.pop((src, dst), 0)
        batch_mac = endpoint(src).close_batch(dst)
        ok = endpoint(dst).verify_batch(batch_mac)
        if dirty_count == 0 and not ok:
            report.clean_failures.append(f"clean batch {src}->{dst} failed its MAC")
        if dirty_count > 0:
            if ok:
                report.clean_failures.append(
                    f"tampered batch {src}->{dst} passed verification!"
                )
            else:
                report.tampers_detected += dirty_count

    for i, entry in enumerate(log):
        sender = endpoint(entry.src)
        receiver = endpoint(entry.dst)
        if entry.timeout_close:
            close_and_check(entry.src, entry.dst)
            continue

        wire = sender.send_block(entry.dst, _payload_for(entry), in_batch=entry.in_batch)
        report.messages += 1

        if i in plan.tampered:
            report.tampers_injected += 1
            attacked = _flip_bit(wire)
            if entry.in_batch:
                # lazy path: the block decrypts now, the batch MAC catches it
                receiver.receive_block(attacked)
                key = (entry.src, entry.dst)
                dirty_batches[key] = dirty_batches.get(key, 0) + 1
            else:
                try:
                    receiver.receive_block(attacked)
                    report.clean_failures.append(f"tamper at log[{i}] undetected")
                except ProtocolError:
                    report.tampers_detected += 1
        else:
            try:
                receiver.receive_block(wire)
            except ProtocolError as exc:
                report.clean_failures.append(f"clean message at log[{i}] rejected: {exc}")
                continue
            if i in plan.replayed:
                report.replays_injected += 1
                try:
                    receiver.receive_block(wire)  # verbatim re-injection
                    report.clean_failures.append(f"replay at log[{i}] undetected")
                except ProtocolError:
                    report.replays_detected += 1

        if entry.in_batch and entry.closes_batch:
            close_and_check(entry.src, entry.dst)

    # drain batches still open when the log ended
    for src, sender_ep in list(endpoints.items()):
        for dst in list(sender_ep._send_batch_macs):
            if sender_ep.open_batch_size(dst):
                close_and_check(src, dst)

    return report


__all__ = ["AttackPlan", "FaultReport", "plan_attacks", "adversarial_replay"]
