"""Runtime security-invariant monitor for the secure transport.

Assertions about the protocol ("counters are monotonic", "no pad is used
twice", "nothing tampered is ever accepted") normally live in tests, where
they check one curated scenario.  :class:`InvariantMonitor` turns them into
a *continuously evaluated contract*: a sanitizer attached to a
:class:`~repro.secure.channel.SecureTransport` that observes every counter
issue, pad consumption, MAC verdict, and delivery during a run, and raises
:class:`InvariantViolationError` at report time if any invariant broke —
the same shape as a thread/address sanitizer, but for the security
protocol.

Monitored invariants:

1. **Counter monotonicity** — per directed pair, issued MsgCTRs strictly
   increase (a stalled or reused counter would re-key a pad).
2. **Pad single-use** — no (pair, counter) consumes a send pad or a
   receive pad more than once; OTP security collapses on reuse.  Pads a
   MAC-rejected alien copy (splice/forge) wasted at the counter it merely
   *claimed* are excluded: the transport bills their cost, but they never
   decrypt an accepted block.
3. **Tamper rejection** — a wire copy the adversary mutated (flip,
   truncate, splice, forge) is never handed to a device; each must end in
   a MAC rejection.
4. **Replay-window semantics** — every out-of-order ACK a
   :class:`~repro.secure.replay.ReplayGuard` accepted sat strictly inside
   the configured window (depth < window), and guard ledgers reconcile.
5. **Attack resolution** — at end of run every injected attack is
   settled: detected, harmless, or (contract-breaking, but *recorded*)
   accepted; none simply vanish.

The monitor is pure bookkeeping — it never touches simulated time — and
it is attached automatically only when an adversary is configured, so
clean and fault-only runs keep their hot paths (and their bytes) intact.
"""

from __future__ import annotations

from repro.secure.adversary import AttackReport
from repro.secure.replay import ReplayGuard


class InvariantViolationError(AssertionError):
    """One or more security invariants broke during a run."""

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        lines = "\n  - ".join(self.violations)
        super().__init__(f"{len(self.violations)} security invariant violation(s):\n  - {lines}")


class InvariantMonitor:
    """Transcript-level sanitizer for one transport's security protocol."""

    def __init__(self) -> None:
        self.violations: list[str] = []
        self._last_counter: dict[tuple[int, int], int] = {}
        self._send_pads: set[tuple[int, int, int]] = set()
        self._recv_pads: set[tuple[int, int, int]] = set()
        self._tampered: set[tuple[int, int, int]] = set()
        self._rejected: set[tuple[int, int, int]] = set()
        self.counters_issued = 0
        self.deliveries = 0

    def _flag(self, message: str) -> None:
        self.violations.append(message)

    # ------------------------------------------------------------------
    # Hooks called by the transport
    # ------------------------------------------------------------------
    def on_counter(self, src: int, dst: int, counter: int) -> None:
        """A sender issued ``counter`` on the (src -> dst) pair."""
        self.counters_issued += 1
        last = self._last_counter.get((src, dst))
        if last is not None and counter <= last:
            self._flag(
                f"counter not strictly monotonic on {src}->{dst}: "
                f"issued {counter} after {last}"
            )
        self._last_counter[(src, dst)] = counter

    def on_send_pad(self, src: int, dst: int, counter: int) -> None:
        """A send pad encrypted the wire copy keyed by ``counter``."""
        key = (src, dst, counter)
        if key in self._send_pads:
            self._flag(f"send pad consumed twice for {src}->{dst} ctr={counter}")
        self._send_pads.add(key)

    def on_recv_pad(self, src: int, dst: int, counter: int) -> None:
        """A receive pad decrypted the wire copy keyed by ``counter``."""
        key = (src, dst, counter)
        if key in self._recv_pads:
            self._flag(f"receive pad consumed twice for {src}->{dst} ctr={counter}")
        self._recv_pads.add(key)

    def on_tampered_copy(self, src: int, dst: int, counter: int, pid: int) -> None:
        """The adversary mutated/fabricated one wire copy.

        Copies are identified by ``(pid, counter)``: the counter alone is
        only unique within one directed pair's sequence, and a spliced
        copy carries its *origin* pair's counter onto another pair —
        where the same value names an unrelated legitimate block.
        """
        self._tampered.add((pid, counter))

    def on_mac_reject(self, src: int, dst: int, counter: int, pid: int) -> None:
        """MsgMAC verification rejected one wire copy."""
        self._rejected.add((pid, counter))

    def on_delivered(self, src: int, dst: int, counter: int, pid: int) -> None:
        """A device consumed the block carried by one wire copy."""
        self.deliveries += 1
        key = (pid, counter)
        if key in self._tampered:
            self._flag(
                f"tampered block accepted post-MAC on {src}->{dst} ctr={counter}"
            )
        if key in self._rejected:
            self._flag(
                f"block delivered after MAC rejection on {src}->{dst} ctr={counter}"
            )

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def check_guard(self, guard: ReplayGuard, window: int) -> None:
        """Audit one sender's replay guard against its configured window."""
        if guard.max_reorder_depth > max(0, window - 1):
            self._flag(
                f"replay guard node {guard.node} accepted an ACK at reorder "
                f"depth {guard.max_reorder_depth} outside window {window}"
            )
        settled = guard.acked + guard.dropped
        sent = settled + guard.outstanding()
        if guard.acked < 0 or guard.dropped < 0 or sent < settled:
            self._flag(f"replay guard node {guard.node} ledger inconsistent")

    def check_attack_report(self, report: AttackReport) -> None:
        """Every injected attack must have resolved into an outcome."""
        if report.unresolved != 0:
            self._flag(
                f"{report.unresolved} injected attack(s) never resolved into "
                "detected/harmless/accepted"
            )

    def check(self) -> None:
        """Raise if any invariant broke; no-op on a clean transcript."""
        if self.violations:
            raise InvariantViolationError(self.violations)


__all__ = ["InvariantMonitor", "InvariantViolationError"]
