"""Functional secure-message protocol.

Where the timing simulator models *when* things happen, this module proves
*what* happens is implementable: real counter-mode pads, real GHASH MACs,
counter synchronization, replay rejection, and batched-MAC verification
with out-of-order tolerance — all running on the from-scratch crypto
substrate.  Integration tests pair two endpoints and push actual payload
bytes through the full paper protocol, including Formula 5's
``Batched_MsgMAC`` construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.counter_mode import BLOCK_BYTES, OneTimePad, PadGenerator
from repro.crypto.mac import MessageMAC, batched_mac


@dataclass(frozen=True)
class WireMessage:
    """What actually crosses the untrusted interconnect for one block."""

    sender_id: int
    receiver_id: int
    counter: int
    ciphertext: bytes
    mac: bytes | None  # None while the block's MAC rides in a batch


@dataclass(frozen=True)
class WireBatchMac:
    """The batched MsgMAC closing a group of blocks (Fig. 19b)."""

    sender_id: int
    receiver_id: int
    first_counter: int
    count: int
    mac: bytes


class ProtocolError(Exception):
    """Integrity, ordering, or replay violation."""


class SecureEndpoint:
    """One processor's send/receive protocol state under a session key."""

    def __init__(self, node_id: int, session_key: bytes, hash_key: bytes) -> None:
        self.node_id = node_id
        self._pads = PadGenerator(session_key)
        self._mac = MessageMAC(hash_key)
        self._hash_key = hash_key
        self._send_ctr: dict[int, int] = {}  # receiver -> next counter
        # Replay detection tolerant of out-of-order arrival within a window:
        # per sender, the set of counters seen above a low watermark.
        self._recv_seen: dict[int, set[int]] = {}
        self._recv_floor: dict[int, int] = {}
        # Sender side: per-receiver MACs of in-batch blocks awaiting close.
        # Receiver side: per-sender MsgMAC storage for lazy verification.
        # These MUST be separate: counters of the two directions overlap.
        self._send_batch_macs: dict[int, dict[int, bytes]] = {}
        self._recv_mac_storage: dict[int, dict[int, bytes]] = {}
        self.replay_window = 1024

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _next_send_counter(self, receiver: int) -> int:
        ctr = self._send_ctr.get(receiver, 0)
        self._send_ctr[receiver] = ctr + 1
        return ctr

    def _pad_for(self, counter: int, sender: int, receiver: int) -> OneTimePad:
        return self._pads.generate(counter, sender, receiver)

    def send_block(self, receiver: int, payload: bytes, in_batch: bool = False) -> WireMessage:
        """Encrypt + MAC one block for ``receiver``.

        ``in_batch=True`` keeps the per-block MAC local (it will be folded
        into a batched MsgMAC) — the wire message then carries no MAC.
        """
        if len(payload) > BLOCK_BYTES:
            raise ValueError(f"payload exceeds the {BLOCK_BYTES}-byte block")
        counter = self._next_send_counter(receiver)
        pad = self._pad_for(counter, self.node_id, receiver)
        ciphertext = pad.encrypt(payload)
        mac = self._mac.compute(ciphertext, pad)
        if in_batch:
            storage = self._send_batch_macs.setdefault(receiver, {})
            storage[counter] = mac
            return WireMessage(self.node_id, receiver, counter, ciphertext, mac=None)
        return WireMessage(self.node_id, receiver, counter, ciphertext, mac=mac)

    def close_batch(self, receiver: int) -> WireBatchMac:
        """Emit the batched MsgMAC over every pending in-batch block."""
        storage = self._send_batch_macs.get(receiver)
        if not storage:
            raise ProtocolError(f"no open batch toward node {receiver}")
        counters = sorted(storage)
        macs = [storage[c] for c in counters]
        self._send_batch_macs[receiver] = {}
        return WireBatchMac(
            sender_id=self.node_id,
            receiver_id=receiver,
            first_counter=counters[0],
            count=len(counters),
            mac=batched_mac(self._hash_key, macs),
        )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive_block(self, message: WireMessage) -> bytes:
        """Decrypt (and, for un-batched messages, verify) one block.

        Batched blocks are decrypted immediately (lazy verification) and
        their recomputed MACs parked in MsgMAC storage until the batch MAC
        arrives — out-of-order arrival within a batch is tolerated.
        """
        if message.receiver_id != self.node_id:
            raise ProtocolError(
                f"node {self.node_id} received a message for {message.receiver_id}"
            )
        sender = message.sender_id
        self._check_replay(sender, message.counter)
        pad = self._pad_for(message.counter, sender, self.node_id)
        local_mac = self._mac.compute(message.ciphertext, pad)
        if message.mac is None:
            # Lazy path: hold the MAC for batch verification.
            self._recv_mac_storage.setdefault(sender, {})[message.counter] = local_mac
        elif message.mac != local_mac:
            raise ProtocolError(f"MAC mismatch on counter {message.counter} from {sender}")
        self._mark_seen(sender, message.counter)
        return pad.decrypt(message.ciphertext)

    def _check_replay(self, sender: int, counter: int) -> None:
        floor = self._recv_floor.get(sender, 0)
        if counter < floor:
            raise ProtocolError(
                f"replayed or ancient counter {counter} from node {sender} (floor {floor})"
            )
        if counter in self._recv_seen.get(sender, ()):
            raise ProtocolError(f"replayed counter {counter} from node {sender}")

    def _mark_seen(self, sender: int, counter: int) -> None:
        seen = self._recv_seen.setdefault(sender, set())
        seen.add(counter)
        high = max(seen)
        floor = max(self._recv_floor.get(sender, 0), high - self.replay_window + 1)
        if floor > self._recv_floor.get(sender, 0):
            self._recv_floor[sender] = floor
            stale = [c for c in seen if c < floor]
            for c in stale:
                seen.discard(c)

    def verify_batch(self, batch: WireBatchMac) -> bool:
        """Check a batched MsgMAC against the stored per-block MACs."""
        storage = self._recv_mac_storage.get(batch.sender_id, {})
        counters = range(batch.first_counter, batch.first_counter + batch.count)
        try:
            macs = [storage[c] for c in counters]
        except KeyError as missing:
            raise ProtocolError(
                f"batch from {batch.sender_id} verified before block {missing} arrived"
            ) from None
        ok = batched_mac(self._hash_key, macs) == batch.mac
        if ok:
            for c in counters:
                del storage[c]
        return ok

    def stored_macs(self, sender: int) -> int:
        """Receiver-side MsgMAC-storage occupancy for ``sender``."""
        return len(self._recv_mac_storage.get(sender, {}))

    def open_batch_size(self, receiver: int) -> int:
        """Sender-side blocks awaiting their batch close toward ``receiver``."""
        return len(self._send_batch_macs.get(receiver, {}))


__all__ = ["SecureEndpoint", "WireMessage", "WireBatchMac", "ProtocolError"]
